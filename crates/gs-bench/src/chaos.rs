//! `gs-bench chaos` — run a seeded fault-injection corpus and assert
//! chaos equivalence: every workload must finish under injected faults
//! with the same answer a fault-free run produces (byte-identical for the
//! integer algorithms, within a documented 1e-9 tolerance for PageRank's
//! f64 reductions), or degrade along its documented ladder (retries,
//! skipped batches) without losing accounting.
//!
//! Mirrors `irlint` and `sanitize` one robustness layer up: the table
//! lists each workload, the faults the plan actually injected, and the
//! equivalence verdict; `--deny` turns any failed verdict into a non-zero
//! exit (the CI bar).
//!
//! Only meaningful when built with `--features chaos`; a pass-through
//! build prints a note and exits 0 so the subcommand is safe to script.

use crate::util::TablePrinter;
use gs_chaos::{ChaosStats, FaultPlan, RetryPolicy};
use gs_grape::{GrapeEngine, RecoveryConfig};
use gs_graph::VId;
use gs_ir::Value;
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// One chaos workload: the faults that fired and the equivalence verdict.
pub struct ChaosResult {
    pub workload: &'static str,
    pub stats: ChaosStats,
    /// `Ok` carries the equivalence summary; `Err` the violation.
    pub outcome: Result<&'static str, String>,
}

/// A seeded random digraph shared by the BSP workloads.
fn random_edges(seed: u64, n: usize, degree: usize) -> Vec<(VId, VId)> {
    let mut rng = rand_pcg::Pcg64Mcg::new(seed as u128);
    (0..n * degree)
        .map(|_| {
            (
                VId(rng.gen_range(0..n as u64)),
                VId(rng.gen_range(0..n as u64)),
            )
        })
        .collect()
}

/// PageRank under scheduled worker kills: two workers die at different
/// supersteps; checkpoint/restart must reproduce the fault-free ranks
/// within the documented f64 tolerance (the dangling-mass all-reduce sums
/// in worker-arrival order, so bit equality is not guaranteed).
fn pagerank_kills(seed: u64) -> ChaosResult {
    let n = 300;
    let edges = random_edges(seed, n, 5);
    let want = gs_grape::algorithms::pagerank(&GrapeEngine::from_edges(n, &edges, 4), 0.85, 12);
    let plan = FaultPlan::new(seed ^ 0x4b11)
        .kill_worker(1, 4)
        .kill_worker(3, 8);
    let (got, stats) = gs_chaos::with_chaos(plan, || {
        let engine = GrapeEngine::from_edges(n, &edges, 4)
            .with_recovery(RecoveryConfig::default().interval(3));
        gs_grape::algorithms::pagerank(&engine, 0.85, 12)
    });
    let max_dev = want
        .iter()
        .zip(&got)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    let outcome = if stats.worker_kills != 2 {
        Err(format!(
            "expected 2 worker kills, saw {}",
            stats.worker_kills
        ))
    } else if max_dev > 1e-9 {
        Err(format!("ranks deviate by {max_dev:e} (tolerance 1e-9)"))
    } else {
        Ok("ranks within 1e-9 of the fault-free run")
    };
    ChaosResult {
        workload: "pagerank-kills",
        stats,
        outcome,
    }
}

/// WCC under probabilistic message drop/duplication/delay: the integer
/// label all-reduce is order-insensitive, so recovery must reproduce the
/// fault-free labels byte-identically.
fn wcc_msgfaults(seed: u64) -> ChaosResult {
    let n = 240;
    let mut edges = random_edges(seed.wrapping_add(1), n, 4);
    let back: Vec<(VId, VId)> = edges.iter().map(|&(a, b)| (b, a)).collect();
    edges.extend(back);
    let want = gs_grape::algorithms::wcc(&GrapeEngine::from_edges(n, &edges, 4));
    let plan = FaultPlan::new(seed ^ 0x3c3c)
        .message_faults(0.03, 0.03, 0.03)
        .budget(12);
    let (got, stats) = gs_chaos::with_chaos(plan, || {
        let engine = GrapeEngine::from_edges(n, &edges, 4).with_recovery(
            RecoveryConfig::default()
                .interval(2)
                .detect_timeout(Duration::from_millis(250)),
        );
        gs_grape::algorithms::wcc(&engine)
    });
    let outcome = if stats.msgs_dropped + stats.msgs_duplicated + stats.msgs_delayed == 0 {
        Err("plan injected no message faults".to_string())
    } else if got != want {
        Err("labels differ from the fault-free run".to_string())
    } else {
        Ok("labels byte-identical to the fault-free run")
    };
    ChaosResult {
        workload: "wcc-msgfaults",
        stats,
        outcome,
    }
}

/// BFS under a mixed plan — a scheduled worker kill *and* probabilistic
/// message faults in the same run; distances must stay byte-identical.
fn bfs_mixed(seed: u64) -> ChaosResult {
    let n = 260;
    let edges = random_edges(seed.wrapping_add(2), n, 5);
    let want = gs_grape::algorithms::bfs(&GrapeEngine::from_edges(n, &edges, 4), VId(0));
    let plan = FaultPlan::new(seed ^ 0xbf5)
        .kill_worker(2, 2)
        .message_faults(0.02, 0.02, 0.02)
        .budget(8);
    let (got, stats) = gs_chaos::with_chaos(plan, || {
        let engine = GrapeEngine::from_edges(n, &edges, 4).with_recovery(
            RecoveryConfig::default()
                .interval(2)
                .detect_timeout(Duration::from_millis(250)),
        );
        gs_grape::algorithms::bfs(&engine, VId(0))
    });
    let outcome = if stats.worker_kills == 0 {
        Err("the scheduled worker kill never fired".to_string())
    } else if got != want {
        Err("distances differ from the fault-free run".to_string())
    } else {
        Ok("distances byte-identical to the fault-free run")
    };
    ChaosResult {
        workload: "bfs-mixed",
        stats,
        outcome,
    }
}

/// The query service against a slow shard and a shard that dies mid-run:
/// deadlines, retries, and dead-shard rerouting must mask both — every
/// call still succeeds.
fn hiactor_slow_dead(seed: u64) -> ChaosResult {
    let plan = FaultPlan::new(seed ^ 0x51d)
        .slow_shard(0, Duration::from_millis(3))
        .dead_shard(1, 4);
    let (failed, stats) = gs_chaos::with_chaos(plan, || {
        let svc = gs_hiactor::QueryService::new(2).with_config(gs_hiactor::ServiceConfig {
            deadline: Some(Duration::from_secs(2)),
            retry: RetryPolicy::new(4, Duration::from_millis(2)),
            ..Default::default()
        });
        svc.register_idempotent("ping", Arc::new(|_| Ok(vec![vec![Value::Int(1)]])));
        (0..32)
            .filter(|_| svc.call_sync("ping", HashMap::new()).is_err())
            .count()
    });
    let outcome = if stats.shard_deaths == 0 || stats.shard_delays == 0 {
        Err("plan injected no shard faults".to_string())
    } else if failed > 0 {
        Err(format!("{failed}/32 calls failed despite retries"))
    } else {
        Ok("all 32 calls succeeded despite shard faults")
    };
    ChaosResult {
        workload: "hiactor-slow-dead",
        stats,
        outcome,
    }
}

/// The sampling/training pipeline over a faulty store: storage-read
/// bursts exhaust the sampler's retries for some batches; the epoch must
/// finish with every batch either trained or reported as skipped.
fn learn_sampler(seed: u64) -> ChaosResult {
    let n = 150;
    let edges: Vec<(u64, u64, f64)> = random_edges(seed.wrapping_add(3), n, 6)
        .into_iter()
        .map(|(a, b)| (a.0, b.0, 1.0))
        .collect();
    let plan = FaultPlan::new(seed ^ 0x1ea2)
        .storage_faults(0.08, 4)
        .budget(2);
    let (stats_epoch, stats) = gs_chaos::with_chaos(plan, || {
        let graph = gs_chaos::ChaosGraph::new(
            gs_grin::graph::mock::MockGraph::new(n, &edges),
            "learn.sampler",
        );
        let cfg = gs_learn::PipelineConfig {
            samplers: 1,
            trainers: 2,
            batch_size: 16,
            fanouts: vec![4, 3],
            feature_dim: 8,
            hidden: 16,
            classes: 4,
            batches_per_epoch: 8,
            sampler_retries: 1,
            seed,
            ..Default::default()
        };
        let (stats, _model) =
            gs_learn::train_epoch(&graph, gs_graph::LabelId(0), gs_graph::LabelId(0), &cfg);
        stats
    });
    let outcome = if stats.storage_faults == 0 {
        Err("plan injected no storage faults".to_string())
    } else if stats_epoch.skipped == 0 {
        Err("retry exhaustion never skipped a batch".to_string())
    } else if stats_epoch.batches + stats_epoch.skipped != 8 {
        Err(format!(
            "batch accounting broke: {} trained + {} skipped != 8",
            stats_epoch.batches, stats_epoch.skipped
        ))
    } else {
        Ok("epoch finished; every batch trained or reported skipped")
    };
    ChaosResult {
        workload: "learn-sampler",
        stats,
        outcome,
    }
}

/// Runs the whole corpus; each workload installs its own exclusive fault
/// plan so injections attribute cleanly.
pub fn run_corpus(seed: u64) -> Vec<ChaosResult> {
    vec![
        pagerank_kills(seed),
        wcc_msgfaults(seed),
        bfs_mixed(seed),
        hiactor_slow_dead(seed),
        learn_sampler(seed),
    ]
}

/// Runs the corpus and prints the equivalence table. With `deny`, any
/// failed verdict makes the exit code non-zero (the CI bar).
pub fn run(deny: bool, seed: u64) -> i32 {
    if !gs_chaos::COMPILED {
        println!(
            "chaos: built without the `chaos` feature — every fault hook is a \
             no-op (rebuild with `--features chaos`)"
        );
        return 0;
    }
    let results = run_corpus(seed);
    let mut table = TablePrinter::new(&["workload", "injected", "verdict"]);
    let mut failures = 0usize;
    for r in &results {
        let verdict = match &r.outcome {
            Ok(summary) => format!("ok: {summary}"),
            Err(why) => {
                failures += 1;
                format!("FAIL: {why}")
            }
        };
        table.row(vec![r.workload.to_string(), r.stats.render(), verdict]);
    }
    table.print();
    println!(
        "chaos: {} workloads checked (seed {seed}), {failures} equivalence failures",
        results.len()
    );
    if deny && failures > 0 {
        1
    } else {
        0
    }
}

#[cfg(test)]
#[cfg(feature = "chaos")]
mod tests {
    use super::*;

    /// The acceptance gate: the whole corpus holds chaos equivalence —
    /// the `gs-bench chaos --deny` CI bar.
    #[test]
    fn corpus_holds_chaos_equivalence() {
        for r in run_corpus(42) {
            assert!(
                r.outcome.is_ok(),
                "{} broke equivalence ({}): {}",
                r.workload,
                r.stats.render(),
                r.outcome.unwrap_err()
            );
        }
    }
}
