/root/repo/target/debug/deps/gs_graph-0074f449d1c240a2.d: crates/gs-graph/src/lib.rs crates/gs-graph/src/csr.rs crates/gs-graph/src/data.rs crates/gs-graph/src/edgelist.rs crates/gs-graph/src/error.rs crates/gs-graph/src/ids.rs crates/gs-graph/src/json.rs crates/gs-graph/src/partition.rs crates/gs-graph/src/props.rs crates/gs-graph/src/schema.rs crates/gs-graph/src/value.rs crates/gs-graph/src/varint.rs

/root/repo/target/debug/deps/gs_graph-0074f449d1c240a2: crates/gs-graph/src/lib.rs crates/gs-graph/src/csr.rs crates/gs-graph/src/data.rs crates/gs-graph/src/edgelist.rs crates/gs-graph/src/error.rs crates/gs-graph/src/ids.rs crates/gs-graph/src/json.rs crates/gs-graph/src/partition.rs crates/gs-graph/src/props.rs crates/gs-graph/src/schema.rs crates/gs-graph/src/value.rs crates/gs-graph/src/varint.rs

crates/gs-graph/src/lib.rs:
crates/gs-graph/src/csr.rs:
crates/gs-graph/src/data.rs:
crates/gs-graph/src/edgelist.rs:
crates/gs-graph/src/error.rs:
crates/gs-graph/src/ids.rs:
crates/gs-graph/src/json.rs:
crates/gs-graph/src/partition.rs:
crates/gs-graph/src/props.rs:
crates/gs-graph/src/schema.rs:
crates/gs-graph/src/value.rs:
crates/gs-graph/src/varint.rs:
