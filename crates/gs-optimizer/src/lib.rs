//! # gs-optimizer — the IR-based query optimizer
//!
//! Implements §5.2 of the paper: rule-based optimization (EdgeVertexFusion,
//! FilterPushIntoMatch) and GLogue-style cost-based pattern ordering, then
//! lowers the logical DAG to a physical plan for either execution engine.
//!
//! Every optimization can be toggled through [`OptimizerConfig`], which is
//! how the Fig. 7(e) experiment isolates each rule's contribution.

pub mod glogue;
pub mod rbo;

pub use glogue::{cbo_order, order_cost, GlogueCatalog};

use gs_graph::schema::GraphSchema;
use gs_ir::cost::{cost_logical, cost_physical, CostBudget, W_COST_INCREASE};
use gs_ir::logical::LogicalPlan;
use gs_ir::physical::{lower_naive, lower_with, PhysicalPlan};
use gs_ir::verify::Severity;
use gs_ir::{verify_logical, verify_physical, Diagnostic, Result};

/// Which optimizations to apply.
#[derive(Clone, Debug)]
pub struct OptimizerConfig {
    /// EdgeVertexFusion (RBO).
    pub fusion: bool,
    /// FilterPushIntoMatch (RBO) + predicate pushdown into scans/expands.
    pub filter_push: bool,
    /// GLogue cost-based pattern ordering (requires a catalog).
    pub cbo: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self {
            fusion: true,
            filter_push: true,
            cbo: true,
        }
    }
}

impl OptimizerConfig {
    /// Everything off — the Fig. 7(e) baseline.
    pub fn none() -> Self {
        Self {
            fusion: false,
            filter_push: false,
            cbo: false,
        }
    }
}

/// The IR-based optimizer.
pub struct Optimizer {
    pub config: OptimizerConfig,
    pub catalog: Option<GlogueCatalog>,
    /// When set, every rewrite rule's output is re-verified against this
    /// schema; a rule that produces an invalid plan fails `optimize` with
    /// the rule's name in the diagnostic (see [`verify_rewrite_logical`]).
    pub verify_schema: Option<GraphSchema>,
}

/// Re-verifies a logical plan after a rewrite rule ran, attributing any
/// error to `rule` by name. Warnings pass; errors fail.
pub fn verify_rewrite_logical(rule: &str, plan: &LogicalPlan, schema: &GraphSchema) -> Result<()> {
    verify_logical(plan, schema).with_rule(rule).check(rule)
}

/// Physical-plan counterpart of [`verify_rewrite_logical`].
pub fn verify_rewrite_physical(
    rule: &str,
    plan: &PhysicalPlan,
    schema: &GraphSchema,
) -> Result<()> {
    verify_physical(plan, schema).with_rule(rule).check(rule)
}

/// Estimated plan cost (total estimated intermediate rows) before and
/// after one rewrite rule ran — the first real CBO signal: rules are
/// ranked by benefit and a rule that *increases* cost is flagged `C303`
/// with its name attached.
#[derive(Clone, Debug, PartialEq)]
pub struct RewriteCost {
    pub rule: &'static str,
    pub before_est: f64,
    pub after_est: f64,
}

impl RewriteCost {
    /// Estimated rows saved by the rule (negative = it made things worse).
    pub fn benefit(&self) -> f64 {
        self.before_est - self.after_est
    }
}

/// Cost attribution for one `optimize` run.
#[derive(Clone, Debug, Default)]
pub struct OptimizeTrace {
    /// One entry per rewrite stage, in application order.
    pub rules: Vec<RewriteCost>,
    /// `C303` warnings for cost-increasing rules (rule-attributed).
    pub diagnostics: Vec<Diagnostic>,
}

impl OptimizeTrace {
    /// Rules sorted by estimated benefit, best first.
    pub fn ranked(&self) -> Vec<&RewriteCost> {
        let mut r: Vec<&RewriteCost> = self.rules.iter().collect();
        r.sort_by(|a, b| b.benefit().total_cmp(&a.benefit()));
        r
    }

    fn record(&mut self, rule: &'static str, before: f64, after: f64, check_increase: bool) {
        self.rules.push(RewriteCost {
            rule,
            before_est: before,
            after_est: after,
        });
        // small relative slack: estimate noise isn't a regression
        if check_increase && after > before * 1.01 && after.is_finite() {
            self.diagnostics.push(Diagnostic {
                code: W_COST_INCREASE,
                severity: Severity::Warning,
                op_index: None,
                rule: Some(rule.to_string()),
                message: format!(
                    "rewrite increased estimated plan cost: {before:.1} → {after:.1} rows"
                ),
            });
        }
    }
}

impl Optimizer {
    /// Full optimization with statistics.
    pub fn new(catalog: GlogueCatalog) -> Self {
        Self {
            config: OptimizerConfig::default(),
            catalog: Some(catalog),
            verify_schema: None,
        }
    }

    /// Rule-based only (no statistics available).
    pub fn rbo_only() -> Self {
        Self {
            config: OptimizerConfig {
                cbo: false,
                ..OptimizerConfig::default()
            },
            catalog: None,
            verify_schema: None,
        }
    }

    /// No optimization at all (naive lowering).
    pub fn disabled() -> Self {
        Self {
            config: OptimizerConfig::none(),
            catalog: None,
            verify_schema: None,
        }
    }

    /// With an explicit config (catalog used only when `config.cbo`).
    pub fn with_config(config: OptimizerConfig, catalog: Option<GlogueCatalog>) -> Self {
        Self {
            config,
            catalog,
            verify_schema: None,
        }
    }

    /// Enables post-rewrite verification: each rule's output is re-checked
    /// against `schema` and a rule that breaks the plan is named in the
    /// resulting error.
    pub fn with_verify(mut self, schema: GraphSchema) -> Self {
        self.verify_schema = Some(schema);
        self
    }

    /// Compiles a logical plan to an optimized physical plan.
    pub fn optimize(&self, plan: &LogicalPlan) -> Result<PhysicalPlan> {
        self.optimize_traced(plan).map(|(p, _)| p)
    }

    /// [`optimize`](Self::optimize), also returning per-rule cost
    /// attribution: each rewrite is costed before/after with the catalog's
    /// statistics (conservative defaults without one) and checked
    /// cost-non-increasing (`C303` warning otherwise, attributed to the
    /// rule). `trace.ranked()` orders rules by estimated benefit.
    pub fn optimize_traced(&self, plan: &LogicalPlan) -> Result<(PhysicalPlan, OptimizeTrace)> {
        let stats = self.catalog.as_ref().map(|c| c.to_cost_stats());
        let budget = CostBudget::default();
        let lcost = |p: &LogicalPlan| cost_logical(p, stats.as_ref(), &budget).total_est_rows;
        let pcost = |p: &PhysicalPlan| cost_physical(p, stats.as_ref(), &budget).total_est_rows;
        let mut trace = OptimizeTrace::default();

        let pre_push_cost = lcost(plan);
        let logical = if self.config.filter_push {
            let pushed = rbo::push_filters(plan)?;
            if let Some(s) = &self.verify_schema {
                verify_rewrite_logical("FilterPushIntoMatch", &pushed, s)?;
            }
            trace.record("FilterPushIntoMatch", pre_push_cost, lcost(&pushed), true);
            pushed
        } else {
            plan.clone()
        };
        let logical_cost = lcost(&logical);
        let physical = if !self.config.fusion && !self.config.filter_push && !self.config.cbo {
            let p = lower_naive(&logical)?;
            // cross-stage (logical → physical): recorded, never a C303
            trace.record("Lowering", logical_cost, pcost(&p), false);
            p
        } else {
            let catalog = self.catalog.clone();
            let use_cbo = self.config.cbo && catalog.is_some();
            let lower_ordered = |cbo: bool| {
                let catalog = catalog.clone();
                lower_with(
                    &logical,
                    self.config.fusion,
                    self.config.filter_push,
                    move |pattern| {
                        if cbo {
                            cbo_order(pattern, catalog.as_ref().unwrap())
                        } else {
                            (0..pattern.vertices.len()).collect()
                        }
                    },
                )
            };
            let p = lower_ordered(use_cbo)?;
            let ordered_cost = pcost(&p);
            trace.record("Lowering", logical_cost, ordered_cost, false);
            if use_cbo {
                // the CBO's contribution = cost vs declaration-order lowering
                let identity_cost = pcost(&lower_ordered(false)?);
                trace.record("GlogueOrder", identity_cost, ordered_cost, true);
            }
            p
        };
        if let Some(s) = &self.verify_schema {
            verify_rewrite_physical("Lowering", &physical, s)?;
        }
        let physical = if self.config.fusion {
            let before = pcost(&physical);
            let fused = rbo::fuse_expand_get_vertex(&physical);
            if let Some(s) = &self.verify_schema {
                verify_rewrite_physical("EdgeVertexFusion", &fused, s)?;
            }
            trace.record("EdgeVertexFusion", before, pcost(&fused), true);
            fused
        } else {
            physical
        };
        Ok((physical, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::schema::GraphSchema;
    use gs_graph::Value;
    use gs_grin::graph::mock::MockGraph;
    use gs_grin::GrinGraph;
    use gs_ir::exec::execute;
    use gs_ir::expr::BinOp;
    use gs_ir::logical::ProjectItem;
    use gs_ir::{Expr, Pattern, PlanBuilder};

    fn mock() -> MockGraph {
        // two triangles sharing vertex 0, plus tags
        let mut g = MockGraph::new(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (0, 3, 1.0),
                (3, 4, 1.0),
                (0, 4, 1.0),
                (4, 5, 1.0),
            ],
        );
        for v in 0..6 {
            g.set_tag(gs_graph::VId(v), v as i64);
        }
        g
    }

    fn schema(g: &MockGraph) -> GraphSchema {
        g.schema().clone()
    }

    fn triangle_plan(s: &GraphSchema) -> gs_ir::LogicalPlan {
        let mut p = Pattern::new();
        let a = p.add_vertex("a", gs_graph::LabelId(0));
        let b = p.add_vertex("b", gs_graph::LabelId(0));
        let c = p.add_vertex("c", gs_graph::LabelId(0));
        p.add_edge(None, gs_graph::LabelId(0), a, b);
        p.add_edge(None, gs_graph::LabelId(0), b, c);
        p.add_edge(None, gs_graph::LabelId(0), a, c);
        let builder = PlanBuilder::new(s).match_pattern(p).unwrap();
        let pred = Expr::bin(
            BinOp::Gt,
            builder.prop("c", "tag").unwrap(),
            Expr::Const(Value::Int(1)),
        );
        builder
            .select(pred)
            .project(vec![
                (ProjectItem::Expr(Expr::Column(0)), "a"),
                (ProjectItem::Expr(Expr::Column(1)), "b"),
                (ProjectItem::Expr(Expr::Column(2)), "c"),
            ])
            .unwrap()
            .build()
    }

    /// Every optimizer configuration must produce the same result set.
    #[test]
    fn all_configs_agree_on_results() {
        let g = mock();
        let s = schema(&g);
        let plan = triangle_plan(&s);
        let catalog = GlogueCatalog::build(&g, 100);
        let canon = |mut v: Vec<gs_ir::Record>| {
            v.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            v
        };
        let baseline = canon(execute(&Optimizer::disabled().optimize(&plan).unwrap(), &g).unwrap());
        assert!(!baseline.is_empty());
        for config in [
            OptimizerConfig {
                fusion: true,
                filter_push: false,
                cbo: false,
            },
            OptimizerConfig {
                fusion: false,
                filter_push: true,
                cbo: false,
            },
            OptimizerConfig {
                fusion: false,
                filter_push: false,
                cbo: true,
            },
            OptimizerConfig::default(),
        ] {
            let opt = Optimizer::with_config(config.clone(), Some(catalog.clone()));
            let res = canon(execute(&opt.optimize(&plan).unwrap(), &g).unwrap());
            assert_eq!(res, baseline, "config {config:?} diverged");
        }
    }

    #[test]
    fn trace_attributes_cost_to_rules() {
        let g = mock();
        let s = schema(&g);
        let plan = triangle_plan(&s);
        let opt = Optimizer::new(GlogueCatalog::build(&g, 100));
        let (_, trace) = opt.optimize_traced(&plan).unwrap();
        let names: Vec<&str> = trace.rules.iter().map(|r| r.rule).collect();
        assert_eq!(
            names,
            vec![
                "FilterPushIntoMatch",
                "Lowering",
                "GlogueOrder",
                "EdgeVertexFusion"
            ]
        );
        // no rule may increase estimated cost on the triangle query
        assert!(trace.diagnostics.is_empty(), "{:?}", trace.diagnostics);
        // ranked() orders by benefit, best first
        let ranked = trace.ranked();
        for w in ranked.windows(2) {
            assert!(w[0].benefit() >= w[1].benefit());
        }
        // fusion removes ops, so it must save estimated rows
        let fusion = trace
            .rules
            .iter()
            .find(|r| r.rule == "EdgeVertexFusion")
            .unwrap();
        assert!(fusion.benefit() >= 0.0);
    }

    #[test]
    fn c303_fires_when_a_rewrite_raises_cost() {
        // directly exercise the trace bookkeeping: a cost increase past
        // the slack threshold yields a rule-attributed C303 warning
        let mut trace = OptimizeTrace::default();
        trace.record("BadRule", 10.0, 100.0, true);
        trace.record("CrossStage", 10.0, 100.0, false);
        trace.record("GoodRule", 100.0, 10.0, true);
        assert_eq!(trace.diagnostics.len(), 1);
        let d = &trace.diagnostics[0];
        assert_eq!(d.code, gs_ir::cost::W_COST_INCREASE);
        assert_eq!(d.rule.as_deref(), Some("BadRule"));
        assert_eq!(trace.ranked()[0].rule, "GoodRule");
    }

    #[test]
    fn optimized_plan_is_shorter() {
        let g = mock();
        let s = schema(&g);
        let plan = triangle_plan(&s);
        let naive = Optimizer::disabled().optimize(&plan).unwrap();
        let optimized = Optimizer::new(GlogueCatalog::build(&g, 100))
            .optimize(&plan)
            .unwrap();
        assert!(
            optimized.ops.len() <= naive.ops.len(),
            "optimized {} vs naive {}",
            optimized.ops.len(),
            naive.ops.len()
        );
    }
}
