/root/repo/target/debug/deps/gs_graph-bbea0e360c06871e.d: crates/gs-graph/src/lib.rs crates/gs-graph/src/csr.rs crates/gs-graph/src/data.rs crates/gs-graph/src/edgelist.rs crates/gs-graph/src/error.rs crates/gs-graph/src/ids.rs crates/gs-graph/src/json.rs crates/gs-graph/src/partition.rs crates/gs-graph/src/props.rs crates/gs-graph/src/schema.rs crates/gs-graph/src/value.rs crates/gs-graph/src/varint.rs Cargo.toml

/root/repo/target/debug/deps/libgs_graph-bbea0e360c06871e.rmeta: crates/gs-graph/src/lib.rs crates/gs-graph/src/csr.rs crates/gs-graph/src/data.rs crates/gs-graph/src/edgelist.rs crates/gs-graph/src/error.rs crates/gs-graph/src/ids.rs crates/gs-graph/src/json.rs crates/gs-graph/src/partition.rs crates/gs-graph/src/props.rs crates/gs-graph/src/schema.rs crates/gs-graph/src/value.rs crates/gs-graph/src/varint.rs Cargo.toml

crates/gs-graph/src/lib.rs:
crates/gs-graph/src/csr.rs:
crates/gs-graph/src/data.rs:
crates/gs-graph/src/edgelist.rs:
crates/gs-graph/src/error.rs:
crates/gs-graph/src/ids.rs:
crates/gs-graph/src/json.rs:
crates/gs-graph/src/partition.rs:
crates/gs-graph/src/props.rs:
crates/gs-graph/src/schema.rs:
crates/gs-graph/src/value.rs:
crates/gs-graph/src/varint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
