//! Static plan verification invariants (the `gs-irlint` pass).
//!
//! Three families of guarantees:
//! * every plan the [`PlanBuilder`] can construct verifies with zero
//!   errors, logically and after every lowering/rewrite (property tests);
//! * each optimizer rewrite rule is verify-preserving on randomized plans,
//!   and an intentionally broken rewrite is caught *and attributed to the
//!   rule by name*;
//! * the verifier's submit-time levels behave: `Deny` rejects bad plans at
//!   every engine, `Off` never raises verifier diagnostics.

use graphscope_flex::prelude::*;
use gs_grin::graph::mock::MockGraph;
use gs_ir::expr::{AggFunc, BinOp};
use gs_ir::logical::ProjectItem;
use gs_ir::physical::{lower_naive, PhysicalOp, PhysicalPlan};
use gs_ir::record::Layout;
use gs_ir::verify::{self, VerifyLevel};
use gs_ir::{verify_logical, verify_physical, Expr, PlanBuilder};
use gs_optimizer::{rbo, verify_rewrite_logical, verify_rewrite_physical};
use proptest::prelude::*;

fn mock_schema() -> GraphSchema {
    MockGraph::new(4, &[(0, 1, 1.0), (1, 2, 1.0)])
        .schema()
        .clone()
}

/// Builds a random-but-valid plan from a byte script: scan, then a mix of
/// expand/get_vertex, select, dedup, order, limit, and an optional final
/// aggregate projection. Everything goes through `PlanBuilder`, so the
/// result must be well-formed by construction.
fn random_plan(schema: &GraphSchema, script: &[u8], with_agg: bool) -> gs_ir::LogicalPlan {
    let mut b = PlanBuilder::new(schema).scan("v0", "V").unwrap();
    let mut vertices = vec!["v0".to_string()];
    let mut next = 1usize;
    for &op in script {
        match op % 5 {
            0 => {
                let src = vertices[op as usize % vertices.len()].clone();
                let e = format!("e{next}");
                let v = format!("v{next}");
                next += 1;
                b = b
                    .expand_edge(&src, "E", gs_grin::Direction::Out, &e)
                    .unwrap()
                    .get_vertex(&e, &v)
                    .unwrap();
                vertices.push(v);
            }
            1 => {
                let target = &vertices[op as usize % vertices.len()];
                let pred = Expr::bin(
                    BinOp::Gt,
                    b.prop(target, "tag").unwrap(),
                    Expr::Const(Value::Int((op % 7) as i64)),
                );
                b = b.select(pred);
            }
            2 => {
                let target = vertices[op as usize % vertices.len()].clone();
                b = b.dedup(&[&target]).unwrap();
            }
            3 => {
                b = b.order(
                    vec![(Expr::Column(0), op % 2 == 0)],
                    Some((op % 9) as usize + 1),
                );
            }
            _ => {
                b = b.limit((op % 13) as usize + 1);
            }
        }
    }
    if with_agg {
        let key = vertices[script.first().copied().unwrap_or(0) as usize % vertices.len()].clone();
        let key_col = Expr::Column(b.layout().index_of(&key).unwrap());
        b = b
            .project(vec![
                (ProjectItem::Expr(key_col.clone()), "k"),
                (ProjectItem::Agg(AggFunc::Count, key_col), "n"),
            ])
            .unwrap();
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every PlanBuilder-constructible plan passes verification with zero
    /// errors — logically, after naive lowering, and after each RBO rule.
    #[test]
    fn builder_plans_always_verify(
        script in proptest::collection::vec(any::<u8>(), 0..6),
        with_agg in any::<bool>(),
    ) {
        let schema = mock_schema();
        let plan = random_plan(&schema, &script, with_agg);
        let rep = verify_logical(&plan, &schema);
        prop_assert_eq!(rep.error_count(), 0, "logical: {}", rep.render());
        let phys = lower_naive(&plan).unwrap();
        let rep = verify_physical(&phys, &schema);
        prop_assert_eq!(rep.error_count(), 0, "physical: {}", rep.render());
    }

    /// `push_filters` (FilterPushIntoMatch) is verify-preserving.
    #[test]
    fn filter_push_is_verify_preserving(
        script in proptest::collection::vec(any::<u8>(), 0..6),
    ) {
        let schema = mock_schema();
        let plan = random_plan(&schema, &script, false);
        let pushed = rbo::push_filters(&plan).unwrap();
        prop_assert!(
            verify_rewrite_logical("FilterPushIntoMatch", &pushed, &schema).is_ok()
        );
    }

    /// `fuse_expand_get_vertex` (EdgeVertexFusion) is verify-preserving.
    #[test]
    fn fusion_is_verify_preserving(
        script in proptest::collection::vec(any::<u8>(), 0..6),
        with_agg in any::<bool>(),
    ) {
        let schema = mock_schema();
        let plan = random_plan(&schema, &script, with_agg);
        let phys = lower_naive(&plan).unwrap();
        let fused = rbo::fuse_expand_get_vertex(&phys);
        prop_assert!(
            verify_rewrite_physical("EdgeVertexFusion", &fused, &schema).is_ok(),
            "{}",
            verify_physical(&fused, &schema).render()
        );
    }

    /// The full optimizer pipeline under `with_verify` never trips its own
    /// post-rewrite checks.
    #[test]
    fn optimizer_passes_self_verification(
        script in proptest::collection::vec(any::<u8>(), 0..6),
        with_agg in any::<bool>(),
    ) {
        let schema = mock_schema();
        let plan = random_plan(&schema, &script, with_agg);
        let opt = Optimizer::rbo_only().with_verify(schema.clone());
        prop_assert!(opt.optimize(&plan).is_ok());
    }
}

/// An intentionally broken rewrite is caught and attributed to the rule by
/// name: simulate EdgeVertexFusion corrupting a column reference.
#[test]
fn broken_physical_rewrite_is_attributed_to_rule() {
    let schema = mock_schema();
    let plan = random_plan(&schema, &[0, 2], false);
    let mut phys = lower_naive(&plan).unwrap();
    // "fusion" that forgets to remap a downstream dedup column
    for op in &mut phys.ops {
        if let PhysicalOp::Dedup { columns } = op {
            columns[0] = 99;
        }
    }
    let err = verify_rewrite_physical("EdgeVertexFusion", &phys, &schema).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("EdgeVertexFusion"), "names the rule: {msg}");
    assert!(msg.contains("E005"), "column-range code: {msg}");
}

/// Same attribution for a broken logical rewrite (a filter push that
/// corrupts the flowing layouts).
#[test]
fn broken_logical_rewrite_is_attributed_to_rule() {
    let schema = mock_schema();
    let mut plan = random_plan(&schema, &[0], false);
    plan.layouts.pop();
    let err = verify_rewrite_logical("FilterPushIntoMatch", &plan, &schema).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("FilterPushIntoMatch"), "names the rule: {msg}");
    assert!(msg.contains("E008"), "layout code: {msg}");
}

/// A cross-product smell the builder *can* express is reported as a
/// warning, not an error (two scans in one plan).
#[test]
fn cross_product_is_a_warning_not_an_error() {
    let schema = mock_schema();
    let plan = PlanBuilder::new(&schema)
        .scan("a", "V")
        .unwrap()
        .scan("b", "V")
        .unwrap()
        .limit(3)
        .build();
    let rep = verify_logical(&plan, &schema);
    assert_eq!(rep.error_count(), 0, "{}", rep.render());
    assert!(rep.has_code(verify::W_CROSS_PRODUCT), "{}", rep.render());
}

/// Every engine rejects a malformed plan under `Deny` with the diagnostic
/// code in the error, through the shared `QueryEngine` interface.
#[test]
fn all_engines_deny_bad_plans_on_submit() {
    let g = MockGraph::new(6, &[(0, 1, 1.0), (1, 2, 1.0)]);
    let bad = PhysicalPlan {
        ops: vec![PhysicalOp::Scan {
            label: gs_graph::LabelId(7),
            predicate: None,
            index_lookup: None,
        }],
        layout: Layout::new(),
    };
    let engines: Vec<Box<dyn QueryEngine>> = vec![
        Box::new(ReferenceEngine::with_verify(VerifyLevel::Deny)),
        Box::new(GaiaEngine::new(2).with_verify(VerifyLevel::Deny)),
        Box::new(gs_hiactor::QueryService::new(2).with_verify(VerifyLevel::Deny)),
    ];
    for e in &engines {
        let err = e.execute(&bad, &g).unwrap_err();
        assert!(err.to_string().contains("E001"), "{}: {err}", e.name());
        // the prepared-statement path verifies on first execute and must
        // reject identically
        let prepared = e.prepare(&bad).unwrap();
        let err = prepared.execute(&g).unwrap_err();
        assert!(err.to_string().contains("E001"), "{}: {err}", e.name());
    }
}

/// A deployment's engine comes back with `Deny` wired in, and the
/// deployment can statically pre-check plans via `verify_plan`.
#[test]
fn deployment_verifies_plans_at_the_boundary() {
    let deployment = FlexBuild::compose(
        "lint-check",
        &[
            Component::GraphIr,
            Component::Optimizer,
            Component::Gaia,
            Component::Grin,
            Component::Vineyard,
        ],
        DeployTarget::SingleMachineBinary,
    )
    .unwrap();
    let schema = mock_schema();
    let good = lower_naive(&random_plan(&schema, &[0], false)).unwrap();
    assert!(deployment.verify_plan(&good, &schema).is_ok());
    let bad = PhysicalPlan {
        ops: vec![PhysicalOp::Scan {
            label: gs_graph::LabelId(9),
            predicate: None,
            index_lookup: None,
        }],
        layout: Layout::new(),
    };
    let err = deployment.verify_plan(&bad, &schema).unwrap_err();
    let gs_flex::flexbuild::BuildError::PlanRejected { diagnostics } = &err else {
        panic!("wrong error: {err:?}");
    };
    assert!(diagnostics[0].contains("E001"), "{diagnostics:?}");
    // the composed engine rejects it too
    let g = MockGraph::new(4, &[(0, 1, 1.0)]);
    let engine = deployment.query_engine(2);
    assert!(engine.execute(&bad, &g).is_err());
}

/// Frontends refuse to emit plans with verifier errors; well-formed
/// queries still parse, including ones that carry only warnings.
#[test]
fn frontends_verify_after_lowering() {
    let schema = mock_schema();
    let plan = parse_cypher(
        "MATCH (a:V)-[:E]->(b:V) WHERE a.tag > 1 RETURN b, COUNT(a) AS n",
        &schema,
        &Default::default(),
    )
    .unwrap();
    assert_eq!(verify_logical(&plan, &schema).error_count(), 0);
    let plan = parse_gremlin("g.V().hasLabel('V').out('E').dedup()", &schema).unwrap();
    assert_eq!(verify_logical(&plan, &schema).error_count(), 0);
}
