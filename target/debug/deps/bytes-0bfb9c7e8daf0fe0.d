/root/repo/target/debug/deps/bytes-0bfb9c7e8daf0fe0.d: vendor/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-0bfb9c7e8daf0fe0.rmeta: vendor/bytes/src/lib.rs Cargo.toml

vendor/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
