/root/repo/target/debug/deps/gs_lang-7600c6cbb4c8ee43.d: crates/gs-lang/src/lib.rs crates/gs-lang/src/cypher.rs crates/gs-lang/src/gremlin.rs crates/gs-lang/src/lexer.rs

/root/repo/target/debug/deps/libgs_lang-7600c6cbb4c8ee43.rlib: crates/gs-lang/src/lib.rs crates/gs-lang/src/cypher.rs crates/gs-lang/src/gremlin.rs crates/gs-lang/src/lexer.rs

/root/repo/target/debug/deps/libgs_lang-7600c6cbb4c8ee43.rmeta: crates/gs-lang/src/lib.rs crates/gs-lang/src/cypher.rs crates/gs-lang/src/gremlin.rs crates/gs-lang/src/lexer.rs

crates/gs-lang/src/lib.rs:
crates/gs-lang/src/cypher.rs:
crates/gs-lang/src/gremlin.rs:
crates/gs-lang/src/lexer.rs:
