//! Gemini design replica (Fig. 7h/7i CPU comparator).
//!
//! Gemini [OSDI'16]: chunk-based edge-cut partitioning with adaptive
//! dense (pull) / sparse (push) mode switching. It is the strongest CPU
//! baseline in the paper (GRAPE only 2.3× on average); the residual gap
//! comes from what we also reproduce:
//!
//! * vertex chunks are *contiguous id ranges of equal vertex count*, not
//!   degree-balanced, so power-law graphs skew per-thread work;
//! * inter-node update exchange ships plain `(u32 id, f64 value)` tuple
//!   vectors — no delta/varint packing of the kind GRAPE's message manager
//!   applies.

use gs_graph::csr::Csr;
use gs_graph::VId;
use std::sync::atomic::{AtomicU64, Ordering};

/// The Gemini-like engine: one "node" per chunk, threads inside.
pub struct GeminiEngine {
    n: usize,
    nodes: usize,
    /// Contiguous vertex ranges per node (equal vertex counts).
    ranges: Vec<(usize, usize)>,
    csr: Csr,
    csc: Csr,
}

impl GeminiEngine {
    pub fn new(n: usize, edges: &[(VId, VId)], nodes: usize) -> Self {
        let nodes = nodes.max(1);
        let chunk = n.div_ceil(nodes);
        let ranges = (0..nodes)
            .map(|i| (i * chunk, ((i + 1) * chunk).min(n)))
            .collect();
        let csr = Csr::from_edges(n, edges);
        let csc = csr.transpose();
        Self {
            n,
            nodes,
            ranges,
            csr,
            csc,
        }
    }

    /// Dense-mode (pull) PageRank: each node pulls over in-edges of its
    /// vertex range, then broadcasts its updated range as (id, value)
    /// tuples.
    pub fn pagerank(&self, damping: f64, iters: usize) -> Vec<f64> {
        let n = self.n;
        let mut rank = vec![1.0 / n as f64; n];
        let mut contrib = vec![0.0f64; n];
        for _ in 0..iters {
            // precompute contributions rank/deg
            let mut dangling = 0.0;
            for v in 0..n {
                let d = self.csr.degree(VId(v as u64));
                if d == 0 {
                    dangling += rank[v];
                    contrib[v] = 0.0;
                } else {
                    contrib[v] = rank[v] / d as f64;
                }
            }
            let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
            // each node pulls its own range in parallel, then produces an
            // update tuple vector (the inter-node traffic)
            let updates: Vec<Vec<(u32, f64)>> = crossbeam::thread::scope(|s| {
                let handles: Vec<_> = self
                    .ranges
                    .iter()
                    .map(|&(lo, hi)| {
                        let csc = &self.csc;
                        let contrib = &contrib;
                        s.spawn(move |_| {
                            let mut out = Vec::with_capacity(hi - lo);
                            for v in lo..hi {
                                let mut sum = 0.0;
                                for &w in csc.neighbors(VId(v as u64)) {
                                    sum += contrib[w.index()];
                                }
                                out.push((v as u32, base + damping * sum));
                            }
                            out
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .expect("gemini scope");
            // apply broadcast updates (tuple-by-tuple, unpacked)
            for chunk in updates {
                for (v, r) in chunk {
                    rank[v as usize] = r;
                }
            }
        }
        rank
    }

    /// Push/pull adaptive BFS: sparse frontiers push, dense frontiers pull
    /// (Gemini's signature optimisation).
    pub fn bfs(&self, src: VId) -> Vec<u64> {
        let n = self.n;
        let depth: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
        depth[src.index()].store(0, Ordering::Relaxed);
        let mut frontier_size = 1usize;
        let mut level = 0u64;
        let m = self.csr.edge_count().max(1);
        while frontier_size > 0 {
            let found = AtomicU64::new(0);
            let dense = frontier_size * 20 > m; // mode switch heuristic
            crossbeam::thread::scope(|s| {
                for &(lo, hi) in &self.ranges {
                    let csr = &self.csr;
                    let csc = &self.csc;
                    let depth = &depth;
                    let found = &found;
                    s.spawn(move |_| {
                        if dense {
                            // pull: unvisited vertices look for a frontier
                            // in-neighbor
                            for v in lo..hi {
                                if depth[v].load(Ordering::Relaxed) != u64::MAX {
                                    continue;
                                }
                                for &w in csc.neighbors(VId(v as u64)) {
                                    if depth[w.index()].load(Ordering::Relaxed) == level {
                                        depth[v].store(level + 1, Ordering::Relaxed);
                                        found.fetch_add(1, Ordering::Relaxed);
                                        break;
                                    }
                                }
                            }
                        } else {
                            // push: frontier vertices in this range expand
                            for v in lo..hi {
                                if depth[v].load(Ordering::Relaxed) != level {
                                    continue;
                                }
                                for &w in csr.neighbors(VId(v as u64)) {
                                    if depth[w.index()]
                                        .compare_exchange(
                                            u64::MAX,
                                            level + 1,
                                            Ordering::Relaxed,
                                            Ordering::Relaxed,
                                        )
                                        .is_ok()
                                    {
                                        found.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                    });
                }
            })
            .expect("gemini bfs scope");
            frontier_size = found.load(Ordering::Relaxed) as usize;
            level += 1;
        }
        depth.into_iter().map(|d| d.into_inner()).collect()
    }

    /// Number of simulated nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powergraph::PowerGraphEngine;

    fn random_edges(n: u64, m: usize, seed: u64) -> Vec<(VId, VId)> {
        use rand::Rng;
        let mut rng = rand_pcg::Pcg64Mcg::new(seed as u128);
        (0..m)
            .map(|_| (VId(rng.gen_range(0..n)), VId(rng.gen_range(0..n))))
            .collect()
    }

    #[test]
    fn gemini_pagerank_matches_powergraph() {
        let edges = random_edges(120, 500, 4);
        let gm = GeminiEngine::new(120, &edges, 3).pagerank(0.85, 12);
        let pg = PowerGraphEngine::new(120, &edges, 3).pagerank(0.85, 12);
        for (a, b) in gm.iter().zip(&pg) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn gemini_bfs_depths_correct() {
        let edges = vec![
            (VId(0), VId(1)),
            (VId(1), VId(2)),
            (VId(2), VId(3)),
            (VId(0), VId(3)),
        ];
        let gm = GeminiEngine::new(5, &edges, 2);
        assert_eq!(gm.bfs(VId(0)), vec![0, 1, 2, 1, u64::MAX]);
    }

    #[test]
    fn bfs_dense_and_sparse_paths_agree() {
        // high-degree graph to force the dense path at some level
        let mut edges = random_edges(80, 2000, 9);
        edges.push((VId(0), VId(1)));
        let gm = GeminiEngine::new(80, &edges, 2);
        let got = gm.bfs(VId(0));
        let pg = PowerGraphEngine::new(80, &edges, 2).bfs(VId(0));
        assert_eq!(got, pg);
    }
}
