/root/repo/target/debug/deps/gs_learn-1de615d8b27dd0b2.d: crates/gs-learn/src/lib.rs crates/gs-learn/src/ncn.rs crates/gs-learn/src/pipeline.rs crates/gs-learn/src/sage.rs crates/gs-learn/src/sampler.rs crates/gs-learn/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libgs_learn-1de615d8b27dd0b2.rmeta: crates/gs-learn/src/lib.rs crates/gs-learn/src/ncn.rs crates/gs-learn/src/pipeline.rs crates/gs-learn/src/sage.rs crates/gs-learn/src/sampler.rs crates/gs-learn/src/tensor.rs Cargo.toml

crates/gs-learn/src/lib.rs:
crates/gs-learn/src/ncn.rs:
crates/gs-learn/src/pipeline.rs:
crates/gs-learn/src/sage.rs:
crates/gs-learn/src/sampler.rs:
crates/gs-learn/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
