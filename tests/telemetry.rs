//! Telemetry integration: running the BI stack (Cypher → IR → Gaia over
//! Vineyard) with a registry installed must produce the expected span tree
//! and non-zero operator counters.
//!
//! This lives in its own integration-test binary because the telemetry
//! registry is process-global: no other test here installs or uninstalls.

use graphscope_flex::prelude::*;
use std::collections::HashMap;

#[test]
fn gaia_query_emits_span_tree_and_operator_counters() {
    let social = generate_snb(&SnbConfig::lite(200));
    let store = VineyardGraph::build(&social.data).unwrap();
    let schema = social.data.schema.clone();
    let q = "MATCH (a:Person)-[:KNOWS]-(b:Person) \
             RETURN b, COUNT(a) AS deg ORDER BY deg DESC, b LIMIT 5";
    let compiled = Frontend::Cypher
        .compile_with(q, &schema, &HashMap::new(), &Optimizer::rbo_only())
        .unwrap();

    let registry = gs_telemetry::Registry::new();
    gs_telemetry::install(registry.clone());
    let engine: &dyn QueryEngine = &GaiaEngine::new(3);
    let rows = engine.execute(&compiled.physical, &store).unwrap();
    gs_telemetry::uninstall();
    assert_eq!(rows.len(), 5);

    // the span tree: gaia.query at the root, segments and barriers below
    let spans = registry.span_names();
    assert!(
        spans.iter().any(|s| s == "gaia.query{workers=3}"),
        "missing root query span: {spans:?}"
    );
    assert!(
        spans
            .iter()
            .any(|s| s.starts_with("gaia.query{workers=3}/gaia.segment")),
        "missing nested segment span: {spans:?}"
    );
    assert!(
        spans
            .iter()
            .any(|s| s.starts_with("gaia.query{workers=3}/gaia.barrier")),
        "missing nested barrier span: {spans:?}"
    );
    let root = registry.span_stat("gaia.query{workers=3}");
    assert_eq!(root.count(), 1);
    assert!(root.total_ns() > 0, "query span must have wall time");

    // operator counters: the scan visited every person at least once
    let persons = social
        .data
        .schema
        .vertex_label_by_name("Person")
        .unwrap()
        .id;
    let person_count = store.vertex_count(persons) as u64;
    let scanned = registry.counter_value("gaia.records{op=Scan}");
    assert!(
        scanned >= person_count,
        "Scan emitted {scanned} records for {person_count} persons"
    );
    assert!(registry.counter_value("gaia.records{op=Expand}") > 0);

    // per-operator latency histograms got observations
    let report = registry.text_report();
    assert!(report.contains("gaia.op_ns{op=Scan}"), "{report}");

    // the report renders both sections
    assert!(report.contains("-- spans --"), "{report}");
    assert!(report.contains("-- counters --"), "{report}");

    // and the JSON rendering is parseable by the in-tree parser
    let json = registry.json_report();
    let doc = gs_graph::json::Json::parse(&json).expect("valid JSON report");
    assert!(doc.field("counters").is_ok(), "{json}");
}

#[test]
fn disabled_telemetry_records_nothing() {
    // no install() in this test — a fresh registry stays empty even though
    // instrumented code runs (this is the zero-cost-when-off contract)
    let social = generate_snb(&SnbConfig::lite(100));
    let store = VineyardGraph::build(&social.data).unwrap();
    let schema = social.data.schema.clone();
    let q = "MATCH (a:Person)-[:KNOWS]-(b:Person) RETURN a, b";
    let plan = parse_cypher(q, &schema, &HashMap::new()).unwrap();
    let optimized = Optimizer::rbo_only().optimize(&plan).unwrap();
    let registry = gs_telemetry::Registry::new();
    let engine: &dyn QueryEngine = &GaiaEngine::new(2);
    engine.execute(&optimized, &store).unwrap();
    assert!(registry.span_names().is_empty());
    assert!(registry.counter_names().is_empty());
}
