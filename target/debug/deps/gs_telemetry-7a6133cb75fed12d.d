/root/repo/target/debug/deps/gs_telemetry-7a6133cb75fed12d.d: crates/gs-telemetry/src/lib.rs crates/gs-telemetry/src/histogram.rs crates/gs-telemetry/src/registry.rs crates/gs-telemetry/src/span.rs

/root/repo/target/debug/deps/gs_telemetry-7a6133cb75fed12d: crates/gs-telemetry/src/lib.rs crates/gs-telemetry/src/histogram.rs crates/gs-telemetry/src/registry.rs crates/gs-telemetry/src/span.rs

crates/gs-telemetry/src/lib.rs:
crates/gs-telemetry/src/histogram.rs:
crates/gs-telemetry/src/registry.rs:
crates/gs-telemetry/src/span.rs:
