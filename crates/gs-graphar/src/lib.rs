//! # gs-graphar — GraphAr, the standardized graph archive format
//!
//! GraphAr (paper §4.2) is GraphScope Flex's persistent format: a chunked
//! columnar container with lightweight encodings that (a) loads graphs ~5×
//! faster than CSV (Fig. 7d) thanks to parallel chunk decode and no text
//! parsing, and (b) can serve as a *direct* GRIN data source, fetching only
//! the chunks an access touches.
//!
//! Modules:
//! * [`codec`] — checksummed column chunks (delta varint / dictionary /
//!   bit-packed encodings),
//! * [`mod@format`] — the on-disk layout, archive writer and (parallel) reader,
//! * [`store`] — [`store::GraphArStore`], the lazy GRIN view,
//! * [`csv`] — the CSV baseline loader used by the Fig. 7(d) comparison.

pub mod codec;
pub mod csv;
pub mod format;
pub mod store;

pub use format::{read_archive, read_metadata, write_archive, Metadata};
pub use store::GraphArStore;

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::data::PropertyGraphData;
    use gs_graph::schema::GraphSchema;
    use gs_graph::{LabelId, Value, ValueType};
    use gs_grin::{Direction, GrinGraph, PropId, VId};

    fn sample() -> PropertyGraphData {
        let mut schema = GraphSchema::new();
        let v = schema.add_vertex_label(
            "Node",
            &[("name", ValueType::Str), ("score", ValueType::Float)],
        );
        schema.add_edge_label("LINK", v, v, &[("w", ValueType::Int)]);
        let mut g = PropertyGraphData::new(schema);
        for i in 0..2000u64 {
            g.add_vertex(
                LabelId(0),
                i * 10, // non-dense external ids
                vec![Value::Str(format!("n{i}")), Value::Float(i as f64 / 7.0)],
            );
        }
        for i in 0..2000u64 {
            g.add_edge(
                LabelId(0),
                i * 10,
                ((i + 1) % 2000) * 10,
                vec![Value::Int(i as i64)],
            );
            g.add_edge(
                LabelId(0),
                i * 10,
                ((i * 7) % 2000) * 10,
                vec![Value::Int(-(i as i64))],
            );
        }
        g
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("gs-graphar-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn archive_round_trip_preserves_graph() {
        let data = sample();
        let dir = tmpdir("rt");
        write_archive(&dir, &data).unwrap();
        let back = read_archive(&dir, 4).unwrap();
        // Vertices identical; edges may be reordered (CSR sort), so compare
        // as multisets with properties attached.
        assert_eq!(back.vertices, data.vertices);
        let canon = |g: &PropertyGraphData| {
            let mut v: Vec<_> = g.edges[0]
                .endpoints
                .iter()
                .zip(&g.edges[0].properties)
                .map(|(&(s, d), p)| (s, d, format!("{p:?}")))
                .collect();
            v.sort();
            v
        };
        assert_eq!(canon(&back), canon(&data));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lazy_store_serves_grin_queries() {
        let data = sample();
        let dir = tmpdir("lazy");
        write_archive(&dir, &data).unwrap();
        let store = GraphArStore::open(&dir).unwrap();
        assert_eq!(store.vertex_count(LabelId(0)), 2000);
        assert_eq!(store.edge_count(LabelId(0)), 4000);
        // vertex 5 (external id 50): neighbours via chunked adjacency
        let v = store.internal_id(LabelId(0), 50).unwrap();
        let out: Vec<_> = store
            .adjacent(v, LabelId(0), LabelId(0), Direction::Out)
            .collect();
        assert_eq!(out.len(), 2);
        // property reads resolve through chunks
        assert_eq!(
            store.vertex_property(LabelId(0), v, PropId(0)),
            Value::Str("n5".into())
        );
        // edge property follows the edge id
        for e in out {
            assert!(!store.edge_property(LabelId(0), e.edge, PropId(0)).is_null());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lazy_store_touches_few_chunks() {
        let data = sample();
        let dir = tmpdir("chunks");
        write_archive(&dir, &data).unwrap();
        let store = GraphArStore::open(&dir).unwrap();
        let _: Vec<_> = store
            .adjacent(VId(3), LabelId(0), LabelId(0), Direction::Out)
            .collect();
        // one vertex's adjacency = 3 chunk files (offsets/targets/eids)
        assert!(store.cached_chunks() <= 3, "{}", store.cached_chunks());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn in_adjacency_from_archive() {
        let data = sample();
        let dir = tmpdir("in");
        write_archive(&dir, &data).unwrap();
        let store = GraphArStore::open(&dir).unwrap();
        let v = store.internal_id(LabelId(0), 10).unwrap(); // internal 1
        let ins: Vec<_> = store
            .adjacent(v, LabelId(0), LabelId(0), Direction::In)
            .map(|e| e.nbr)
            .collect();
        // vertex 1 receives the ring edge from 0
        assert!(ins.contains(&VId(0)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bulk_scan_matches_per_vertex_adjacency() {
        let data = sample();
        let dir = tmpdir("scan");
        write_archive(&dir, &data).unwrap();
        let store = GraphArStore::open(&dir).unwrap();
        for dir_ in [Direction::Out, Direction::In] {
            let mut rows = Vec::new();
            let bulk = store.scan_adjacency(LabelId(0), LabelId(0), dir_, &mut |v, nbrs, eids| {
                rows.push((v, nbrs.to_vec(), eids.to_vec()));
            });
            assert!(bulk, "archive scan must use the chunk-granular path");
            assert_eq!(rows.len(), 2000);
            // spot-check every 97th vertex against the iterator API
            for (v, nbrs, eids) in rows.into_iter().step_by(97) {
                let expect: Vec<_> = store.adjacent(v, LabelId(0), LabelId(0), dir_).collect();
                assert_eq!(nbrs, expect.iter().map(|a| a.nbr).collect::<Vec<_>>());
                assert_eq!(eids, expect.iter().map(|a| a.edge).collect::<Vec<_>>());
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pinned_layouts_match_lazy_adjacency() {
        use gs_graph::LayoutKind;
        use gs_grin::Capabilities;
        let data = sample();
        let dir = tmpdir("layouts");
        write_archive(&dir, &data).unwrap();
        let lazy = GraphArStore::open(&dir).unwrap();
        assert_eq!(lazy.topology_layout(), LayoutKind::Csr);
        for layout in [LayoutKind::SortedCsr, LayoutKind::CompressedCsr] {
            let pinned = GraphArStore::open_with_layout(&dir, layout).unwrap();
            assert_eq!(pinned.layout(), layout);
            assert_eq!(pinned.topology_layout(), layout);
            assert!(pinned
                .capabilities()
                .supports(Capabilities::SORTED_ADJACENCY));
            for dir_ in [Direction::Out, Direction::In, Direction::Both] {
                for v in (0..2000u64).step_by(173) {
                    let v = VId(v);
                    let mut want: Vec<_> = lazy.adjacent(v, LabelId(0), LabelId(0), dir_).collect();
                    let mut got: Vec<_> =
                        pinned.adjacent(v, LabelId(0), LabelId(0), dir_).collect();
                    want.sort_by_key(|a| (a.nbr, a.edge));
                    got.sort_by_key(|a| (a.nbr, a.edge));
                    assert_eq!(got, want, "{layout} {dir_:?} {v:?}");
                }
            }
            // bulk scans agree row for row
            let mut rows_lazy = Vec::new();
            lazy.scan_adjacency(LabelId(0), LabelId(0), Direction::Out, &mut |v, ns, es| {
                rows_lazy.push((v, ns.to_vec(), es.to_vec()));
            });
            let mut rows_pinned = Vec::new();
            pinned.scan_adjacency(LabelId(0), LabelId(0), Direction::Out, &mut |v, ns, es| {
                rows_pinned.push((v, ns.to_vec(), es.to_vec()));
            });
            // lazy rows come out of unsorted chunk order; normalise
            for (_, ns, es) in rows_lazy.iter_mut().chain(rows_pinned.iter_mut()) {
                let mut pairs: Vec<_> = ns.iter().copied().zip(es.iter().copied()).collect();
                pairs.sort_unstable();
                *ns = pairs.iter().map(|&(n, _)| n).collect();
                *es = pairs.iter().map(|&(_, e)| e).collect();
            }
            assert_eq!(rows_pinned, rows_lazy, "{layout}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn csv_round_trip() {
        let data = sample();
        let dir = tmpdir("csv");
        csv::write_csv(&dir, &data).unwrap();
        let back = csv::read_csv(&dir).unwrap();
        assert_eq!(back, data);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metadata_counts() {
        let data = sample();
        let dir = tmpdir("meta");
        let meta = write_archive(&dir, &data).unwrap();
        assert_eq!(meta.vertex_counts, vec![2000]);
        assert_eq!(meta.edge_counts, vec![4000]);
        assert_eq!(meta.vertex_chunks(LabelId(0)), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
