//! GNN training with the decoupled learning stack (paper §7): GraphSAGE
//! over a product-graph analogue with independently scaled sampling and
//! training workers, then NCN link prediction for the §8 social scenario.
//!
//! ```text
//! cargo run --release --example gnn_training
//! ```

use gs_datagen::catalog::Dataset;
use gs_flex::{train_social, SocialConfig};
use gs_graph::{LabelId, PropertyGraphData};
use gs_learn::{train_epoch, PipelineConfig};
use gs_vineyard::VineyardGraph;

fn main() -> gs_graph::Result<()> {
    // ---- supervised GraphSAGE on the ogbn-products analogue ----------
    let el = Dataset::by_abbr("PD").unwrap().edges(0.05);
    let pairs: Vec<(u64, u64)> = el.edges().iter().map(|&(s, d)| (s.0, d.0)).collect();
    let graph = VineyardGraph::build(&PropertyGraphData::from_edge_list(
        el.vertex_count(),
        &pairs,
    ))?;
    println!(
        "product graph: {} vertices, {} edges",
        el.vertex_count(),
        el.edge_count()
    );

    println!("\nscaling the decoupled pipeline (samplers = trainers = G):");
    for gpus in [1usize, 2, 4] {
        let cfg = PipelineConfig {
            samplers: gpus,
            trainers: gpus,
            batch_size: 128,
            fanouts: vec![15, 10, 5],
            feature_dim: 32,
            hidden: 64,
            classes: 8,
            batches_per_epoch: 16,
            ..Default::default()
        };
        let (stats, _model) = train_epoch(&graph, LabelId(0), LabelId(0), &cfg);
        println!(
            "  G={gpus}: epoch {:?} ({} batches, mean loss {:.3}, sampling busy {:?}, training busy {:?})",
            stats.wall, stats.batches, stats.mean_loss, stats.sample_busy, stats.train_busy
        );
    }

    // ---- NCN link prediction (social relation prediction, §8) --------
    println!("\nNCN social relation prediction:");
    let run = train_social(&SocialConfig {
        vertices: 1_500,
        train_pairs: 300,
        epochs: 4,
        ..Default::default()
    })?;
    for (i, e) in run.epochs.iter().enumerate() {
        println!(
            "  epoch {}: {:?}, mean loss {:.4}",
            i + 1,
            e.duration,
            e.mean_loss
        );
    }
    println!(
        "  held-out separation (positive minus negative mean probability): {:.3}",
        run.separation
    );
    Ok(())
}
