//! Decoupled sampling & training with asynchronous pipelining (paper §7).
//!
//! * **Decoupling**: sampling workers and training workers are separate
//!   thread pools that can be scaled independently (CPU cluster for
//!   sampling, GPUs for training, in the paper's deployments).
//! * **Asynchronous pipelining**: samplers work ahead on multiple batches;
//!   a bounded *sample channel* plus per-trainer prefetch keeps trainers
//!   from idling while batches are in flight.
//! * **Scale-out simulation**: `nodes > 1` injects a per-batch remote
//!   feature-collection delay modelling distributed sampling's network
//!   cost; the asynchronous pipeline is what keeps scaling near-linear
//!   despite it (Fig. 7m).

use crate::sage::GraphSage;
use crate::sampler::{SampledBatch, Sampler};
use gs_graph::{LabelId, VId};
use gs_grin::GrinGraph;
use gs_sanitizer::channel::bounded;
use gs_sanitizer::TrackedMutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Training-run configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Sampling worker threads ("sampling processes").
    pub samplers: usize,
    /// Training worker threads ("GPUs").
    pub trainers: usize,
    /// Simulated cluster nodes (1 = single machine).
    pub nodes: usize,
    pub batch_size: usize,
    pub fanouts: Vec<usize>,
    pub feature_dim: usize,
    pub hidden: usize,
    pub classes: usize,
    /// Bounded sample-channel capacity (the prefetch cache).
    pub prefetch: usize,
    pub batches_per_epoch: usize,
    pub lr: f32,
    /// Extra per-batch sampling latency when `nodes > 1` (network cost of
    /// distributed feature collection).
    pub remote_fetch_cost: Duration,
    /// How many times a failed sampling attempt (a transient storage
    /// fault) is retried before the batch is skipped.
    pub sampler_retries: usize,
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            samplers: 2,
            trainers: 2,
            nodes: 1,
            batch_size: 64,
            fanouts: vec![15, 10, 5],
            feature_dim: 32,
            hidden: 64,
            classes: 8,
            prefetch: 4,
            batches_per_epoch: 16,
            lr: 0.005,
            remote_fetch_cost: Duration::from_micros(200),
            sampler_retries: 2,
            seed: 1,
        }
    }
}

/// Measured epoch outcome.
#[derive(Clone, Debug)]
pub struct EpochStats {
    pub wall: Duration,
    pub batches: usize,
    pub mean_loss: f32,
    /// Total busy time across sampling workers.
    pub sample_busy: Duration,
    /// Total busy time across training workers.
    pub train_busy: Duration,
    /// Batches abandoned after exhausting sampler retries (graceful
    /// degradation: the epoch completes on the surviving batches).
    pub skipped: usize,
}

/// Runs one training epoch with the decoupled pipeline; returns stats and
/// the averaged model.
pub fn train_epoch(
    graph: &dyn GrinGraph,
    vlabel: LabelId,
    elabel: LabelId,
    cfg: &PipelineConfig,
) -> (EpochStats, GraphSage) {
    let n = graph.vertex_count(vlabel);
    assert!(n > 0, "empty graph");
    let start = Instant::now();
    let next_batch = AtomicUsize::new(0);
    let skipped = AtomicUsize::new(0);
    let (batch_tx, batch_rx) =
        bounded::<(SampledBatch, Vec<usize>)>("learn.batches", cfg.prefetch.max(1));
    let sample_busy = TrackedMutex::new("learn.sample_busy", Duration::ZERO);
    let train_busy = TrackedMutex::new("learn.train_busy", Duration::ZERO);
    let losses = TrackedMutex::new("learn.losses", Vec::<f32>::new());

    let models: Vec<GraphSage> = crossbeam::thread::scope(|s| {
        // ---- sampling workers ----
        for w in 0..cfg.samplers.max(1) {
            let batch_tx = batch_tx.clone();
            let next_batch = &next_batch;
            let skipped = &skipped;
            let sample_busy = &sample_busy;
            let cfg = cfg.clone();
            s.spawn(move |_| {
                let sampler =
                    Sampler::new(graph, vlabel, elabel, cfg.fanouts.clone(), cfg.feature_dim);
                loop {
                    let b = next_batch.fetch_add(1, Ordering::Relaxed);
                    if b >= cfg.batches_per_epoch {
                        break;
                    }
                    let t0 = Instant::now();
                    // round-robin seed selection over the vertex set
                    let seeds: Vec<VId> = (0..cfg.batch_size)
                        .map(|i| VId(((b * cfg.batch_size + i) % n) as u64))
                        .collect();
                    // a transient storage fault aborts the attempt mid-
                    // sample; retry a bounded number of times, then skip
                    // the batch — the epoch degrades instead of dying
                    let mut sampled = None;
                    for attempt in 0..=cfg.sampler_retries {
                        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            let batch = sampler.sample(&seeds, cfg.seed.wrapping_add(b as u64));
                            let labels: Vec<usize> = seeds
                                .iter()
                                .map(|&v| sampler.label_of(v, cfg.classes))
                                .collect();
                            (batch, labels)
                        }));
                        match out {
                            Ok(r) => {
                                sampled = Some(r);
                                break;
                            }
                            Err(payload) => {
                                // only injected faults are survivable; a
                                // real bug keeps panicking the worker
                                if !gs_chaos::is_chaos_unwind(payload.as_ref()) {
                                    std::panic::resume_unwind(payload);
                                }
                                if attempt < cfg.sampler_retries {
                                    gs_telemetry::counter!("learn.sampler_retries");
                                }
                            }
                        }
                    }
                    let Some((batch, labels)) = sampled else {
                        skipped.fetch_add(1, Ordering::Relaxed);
                        gs_telemetry::counter!("learn.batches_skipped");
                        *sample_busy.lock() += t0.elapsed();
                        continue;
                    };
                    if cfg.nodes > 1 {
                        // distributed feature collection: network round-trips
                        std::thread::sleep(cfg.remote_fetch_cost);
                    }
                    *sample_busy.lock() += t0.elapsed();
                    if batch_tx.send((batch, labels)).is_err() {
                        break;
                    }
                    let _ = w;
                }
            });
        }
        drop(batch_tx);

        // ---- training workers (each owns a model replica) ----
        let mut handles = Vec::new();
        for t in 0..cfg.trainers.max(1) {
            let batch_rx = batch_rx.clone();
            let train_busy = &train_busy;
            let losses = &losses;
            let cfg = cfg.clone();
            handles.push(s.spawn(move |_| {
                let depth = cfg.fanouts.len();
                let mut model =
                    GraphSage::new(depth, cfg.feature_dim, cfg.hidden, cfg.classes, cfg.seed);
                let _ = t;
                for (batch, labels) in batch_rx.iter() {
                    let t0 = Instant::now();
                    let loss = model.forward_backward(&batch, &labels);
                    model.step(cfg.lr);
                    *train_busy.lock() += t0.elapsed();
                    losses.lock().push(loss);
                }
                model
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("trainer panicked"))
            .collect()
    })
    .expect("pipeline scope");

    // local-SGD parameter averaging across replicas
    let mut iter = models.into_iter();
    let mut avg = iter.next().expect("at least one trainer");
    let rest: Vec<GraphSage> = iter.collect();
    let refs: Vec<&GraphSage> = rest.iter().collect();
    if !refs.is_empty() {
        avg.average_from(&refs);
    }

    let l = losses.into_inner();
    let stats = EpochStats {
        wall: start.elapsed(),
        batches: l.len(),
        mean_loss: if l.is_empty() {
            f32::NAN
        } else {
            l.iter().sum::<f32>() / l.len() as f32
        },
        sample_busy: sample_busy.into_inner(),
        train_busy: train_busy.into_inner(),
        skipped: skipped.into_inner(),
    };
    if gs_telemetry::enabled() {
        gs_telemetry::counter!("learn.batches"; stats.batches as u64);
        gs_telemetry::counter!("learn.epoch_wall_ns"; stats.wall.as_nanos() as u64);
        gs_telemetry::counter!("learn.sample_busy_ns"; stats.sample_busy.as_nanos() as u64);
        gs_telemetry::counter!("learn.train_busy_ns"; stats.train_busy.as_nanos() as u64);
        // pipeline occupancy: trainer busy time as a share of trainer
        // capacity over the epoch, in percent
        let cap = stats.wall.as_nanos() as u64 * cfg.trainers.max(1) as u64;
        if let Some(pct) = (stats.train_busy.as_nanos() as u64 * 100).checked_div(cap) {
            gs_telemetry::observe!("learn.trainer_occupancy_pct"; pct);
        }
    }
    (stats, avg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_grin::graph::mock::MockGraph;

    fn graph() -> MockGraph {
        let mut edges = Vec::new();
        for i in 0..120u64 {
            for j in 1..=8u64 {
                edges.push((i, (i + j * 3) % 120, 1.0));
            }
        }
        MockGraph::new(120, &edges)
    }

    fn small_cfg() -> PipelineConfig {
        PipelineConfig {
            samplers: 2,
            trainers: 2,
            batch_size: 16,
            fanouts: vec![4, 3],
            feature_dim: 8,
            hidden: 16,
            classes: 4,
            batches_per_epoch: 8,
            ..Default::default()
        }
    }

    #[test]
    fn epoch_processes_all_batches() {
        let g = graph();
        let (stats, _) = train_epoch(&g, LabelId(0), LabelId(0), &small_cfg());
        assert_eq!(stats.batches, 8);
        assert_eq!(stats.skipped, 0, "fault-free epochs skip nothing");
        assert!(stats.mean_loss.is_finite());
        assert!(stats.wall > Duration::ZERO);
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let g = graph();
        let cfg = PipelineConfig {
            trainers: 1,
            samplers: 1,
            batches_per_epoch: 12,
            ..small_cfg()
        };
        let (first, _) = train_epoch(&g, LabelId(0), LabelId(0), &cfg);
        // run several epochs; later epochs should have lower average loss.
        // (fresh models per call; so instead run one longer epoch and
        // compare first vs last quarter of losses — approximated by running
        // two different epoch lengths)
        let cfg_long = PipelineConfig {
            batches_per_epoch: 60,
            ..cfg
        };
        let (long, _) = train_epoch(&g, LabelId(0), LabelId(0), &cfg_long);
        assert!(
            long.mean_loss < first.mean_loss * 1.5,
            "long {} vs first {}",
            long.mean_loss,
            first.mean_loss
        );
    }

    #[test]
    fn more_trainers_do_not_lose_batches() {
        let g = graph();
        for trainers in [1, 2, 4] {
            let cfg = PipelineConfig {
                trainers,
                samplers: 2,
                batches_per_epoch: 10,
                ..small_cfg()
            };
            let (stats, _) = train_epoch(&g, LabelId(0), LabelId(0), &cfg);
            assert_eq!(stats.batches, 10, "trainers={trainers}");
        }
    }

    #[test]
    fn distributed_mode_adds_sampling_cost_but_completes() {
        let g = graph();
        let cfg = PipelineConfig {
            nodes: 2,
            remote_fetch_cost: Duration::from_micros(100),
            ..small_cfg()
        };
        let (stats, _) = train_epoch(&g, LabelId(0), LabelId(0), &cfg);
        assert_eq!(stats.batches, 8);
    }

    #[cfg(feature = "chaos")]
    mod chaos_on {
        use super::*;
        use gs_chaos::{ChaosGraph, FaultPlan};

        /// Graceful degradation: injected storage-read faults exhaust the
        /// sampler's retries for some batches, which are skipped — the
        /// epoch still finishes, accounts for every batch, and reports the
        /// skips.
        #[test]
        fn sampler_faults_degrade_to_skipped_batches() {
            let g = ChaosGraph::new(graph(), "learn.sampler");
            let plan = FaultPlan::new(0x1ea51).storage_faults(0.08, 4).budget(2);
            let (stats, chaos) = gs_chaos::with_chaos(plan, || {
                let cfg = PipelineConfig {
                    samplers: 1,
                    sampler_retries: 1,
                    ..small_cfg()
                };
                let (stats, _) = train_epoch(&g, LabelId(0), LabelId(0), &cfg);
                stats
            });
            assert!(
                chaos.storage_faults > 0,
                "faults must have fired: {chaos:?}"
            );
            assert!(stats.skipped >= 1, "retry exhaustion must skip: {stats:?}");
            assert_eq!(
                stats.batches + stats.skipped,
                8,
                "every batch trained or accounted as skipped: {stats:?}"
            );
            assert!(stats.mean_loss.is_finite());
        }
    }
}
