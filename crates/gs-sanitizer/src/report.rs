//! Concurrency diagnostics with stable codes, mirroring `gs-ir::verify`'s
//! `E0xx`/`W1xx` scheme one layer down: `S0xx` are concurrency defects
//! (potential deadlocks, races, liveness failures), `W2xx` are smells.

use std::fmt;

// ---------------------------------------------------------------------
// Diagnostic codes
// ---------------------------------------------------------------------

/// A cycle in the lock-order graph: some set of lock sites is acquired in
/// inconsistent nested order across threads (potential deadlock).
pub const S_LOCK_CYCLE: &str = "S001";
/// A happens-before violation on a [`SharedCell`](crate::SharedCell):
/// two conflicting accesses with no ordering between them (data race).
pub const S_DATA_RACE: &str = "S002";
/// A send on a channel whose receivers are all gone — the message (and
/// usually the sender's thread of work) is lost.
pub const S_SEND_DISCONNECTED: &str = "S003";
/// A receiver still blocked in `recv()` when the report was taken: the
/// workload tore down while a thread was waiting for a message that will
/// never arrive.
pub const S_RECV_STUCK: &str = "S004";
/// The last receiver of a channel was dropped while messages were still
/// queued — in-flight work silently discarded at teardown.
pub const S_LOST_MESSAGES: &str = "S005";
/// An unbounded channel's queue grew past the configured high-watermark:
/// producers outpace consumers with no back-pressure (liveness smell).
pub const W_QUEUE_WATERMARK: &str = "W201";

/// Diagnostic severity: `S` codes are errors, `W` codes warnings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// A concurrency defect (`S001`–`S005`).
    Error,
    /// A smell worth a look (`W201`).
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => f.write_str("error"),
            Severity::Warning => f.write_str("warning"),
        }
    }
}

/// One concurrency finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable code (`S001`…`S005`, `W201`).
    pub code: &'static str,
    /// Error for `S` codes, warning for `W` codes.
    pub severity: Severity,
    /// The instrumentation-site labels involved — both sites for a
    /// lock-order cycle, the cell or channel label otherwise.
    pub sites: Vec<String>,
    /// Human-readable description with thread attribution.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} ({})",
            self.code,
            self.severity,
            self.message,
            self.sites.join(", ")
        )
    }
}

/// The outcome of one sanitized run: every finding since the last
/// [`take_report`](crate::take_report).
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Findings in detection order (lock-order cycles are appended at
    /// report time, after the event-driven findings).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Number of `S`-code findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of `W`-code findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any finding carries `code`.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// One line per finding, for assertions and logs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{d}\n"));
        }
        out
    }
}

/// One entry of the global event log: what a tracked wrapper observed.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Global sequence number (total order of recorded events).
    pub seq: u64,
    /// Sanitizer-assigned dense thread id.
    pub thread: u32,
    /// Operation kind: `acquire`, `release`, `send`, `recv`,
    /// `barrier`, `cell.read`, `cell.update`, `cell.set`.
    pub kind: &'static str,
    /// The instrumentation-site label passed to the wrapper.
    pub site: &'static str,
}
