//! Storage-layer experiments: Table 1 and Figures 7(a)–7(d).

use crate::util::{fmt_duration, fmt_speedup, time_it, TablePrinter};
use gs_datagen::catalog::{Dataset, TABLE1};
use gs_datagen::snb::{generate, SnbConfig};
use gs_gart::GartStore;
use gs_graph::data::PropertyGraphData;
use gs_graph::{LabelId, VId};
use gs_graphar::{read_archive, write_archive, GraphArStore};
use gs_grin::{Direction, GrinGraph};
use gs_learn::{GraphSage, Sampler};
use gs_vineyard::VineyardGraph;
use std::time::Duration;

/// Table 1: the dataset inventory at the chosen scale.
pub fn table1(scale: f64) {
    println!("== Table 1: datasets (scale factor {scale} of paper-shape analogues) ==");
    let mut t = TablePrinter::new(&["Abbr", "Paper dataset", "|V|", "|E|"]);
    for d in TABLE1 {
        let el = d.edges(scale);
        t.row(vec![
            d.abbr.to_string(),
            d.paper_name.to_string(),
            el.vertex_count().to_string(),
            el.edge_count().to_string(),
        ]);
    }
    for persons in [600usize, 2000] {
        let g = generate(&SnbConfig::lite(persons));
        t.row(vec![
            format!("SNB-lite-{persons}"),
            "LDBC SNB datagen".to_string(),
            g.data.vertex_count().to_string(),
            g.data.edge_count().to_string(),
        ]);
    }
    t.print();
}

/// PageRank through the GRIN interface only (the portability probe of
/// Fig. 7a: identical code, any backend).
pub fn pagerank_grin(g: &dyn GrinGraph, label: LabelId, iters: usize) -> Vec<f64> {
    // baseline contract: iterator access must exist or we fail loudly with
    // the missing flag names instead of panicking mid-scan
    g.capabilities()
        .require(gs_grin::Capabilities::VERTEX_LIST_ITER | gs_grin::Capabilities::ADJ_LIST_ITER)
        .expect("backend lacks baseline GRIN traits");
    let n = g.vertex_count(label);
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    let damping = 0.85;
    // engines check capabilities and pick the fastest GRIN trait available
    let array_access = g
        .capabilities()
        .supports(gs_grin::Capabilities::ADJ_LIST_ARRAY);
    for _ in 0..iters {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0;
        for (v, &rv) in rank.iter().enumerate() {
            let vid = VId(v as u64);
            if array_access {
                let (nbrs, _) = g
                    .adjacent_slice(vid, label, label, Direction::Out)
                    .expect("advertised array access");
                if nbrs.is_empty() {
                    dangling += rv;
                    continue;
                }
                let share = rv / nbrs.len() as f64;
                for &w in nbrs {
                    next[w.index()] += share;
                }
                continue;
            }
            let deg = g.degree(vid, label, label, Direction::Out);
            if deg == 0 {
                dangling += rv;
                continue;
            }
            let share = rv / deg as f64;
            g.for_each_adjacent(vid, label, label, Direction::Out, &mut |a| {
                next[a.nbr.index()] += share;
            });
        }
        let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
        for x in next.iter_mut() {
            *x = base + damping * *x;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

fn graphar_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("gs-bench-graphar-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Fig. 7(a): three applications × three storage backends through GRIN.
pub fn fig7a(scale: f64) {
    println!("== Fig 7(a): one implementation, three GRIN backends ==");
    println!("paper shape: Vineyard fastest, GART slower (MVCC), GraphAr slowest (I/O)\n");
    let mut t = TablePrinter::new(&["application", "Vineyard", "GART", "GraphAr"]);

    // --- PageRank on the CF analogue ---
    let cf = Dataset::by_abbr("CF").unwrap().edges(0.05 * scale);
    let pairs: Vec<(u64, u64)> = cf.edges().iter().map(|&(s, d)| (s.0, d.0)).collect();
    let data = PropertyGraphData::from_edge_list(cf.vertex_count(), &pairs);
    let l0 = LabelId(0);
    let vineyard = VineyardGraph::build(&data).unwrap();
    let gart = GartStore::from_data(&data).unwrap();
    let dir = graphar_dir("pr");
    write_archive(&dir, &data).unwrap();
    let archive = GraphArStore::open(&dir).unwrap();
    let iters = 5;
    let (tv, _) = time_it(3, || pagerank_grin(&vineyard, l0, iters));
    let snap = gart.snapshot();
    let (tg, _) = time_it(3, || pagerank_grin(&snap, l0, iters));
    let (ta, _) = time_it(1, || pagerank_grin(&archive, l0, iters));
    t.row(vec![
        "PageRank (CF-lite)".into(),
        fmt_duration(tv),
        fmt_duration(tg),
        fmt_duration(ta),
    ]);

    // --- BI query on SNB-lite ---
    let snb = generate(&SnbConfig::lite((400.0 * scale) as usize));
    let schema = snb.data.schema.clone();
    let vy = VineyardGraph::build(&snb.data).unwrap();
    let gt = GartStore::from_data(&snb.data).unwrap();
    let dir2 = graphar_dir("bi");
    write_archive(&dir2, &snb.data).unwrap();
    let ar = GraphArStore::open(&dir2).unwrap();
    let plan = gs_flex::snb::bi_plan(2, &schema, &snb.labels, &Default::default()).unwrap();
    let optimizer = gs_optimizer::Optimizer::rbo_only();
    let phys = optimizer.optimize(&plan).unwrap();
    let gaia = gs_gaia::GaiaEngine::new(2);
    let (tv, _) = time_it(3, || gaia.execute(&phys, &vy).unwrap());
    let snap2 = gt.snapshot();
    let (tg, _) = time_it(3, || gaia.execute(&phys, &snap2).unwrap());
    let (ta, _) = time_it(1, || gaia.execute(&phys, &ar).unwrap());
    t.row(vec![
        "BI query (SNB-lite)".into(),
        fmt_duration(tv),
        fmt_duration(tg),
        fmt_duration(ta),
    ]);

    // --- one GNN training batch on the PD analogue ---
    let pd = Dataset::by_abbr("PD").unwrap().edges(0.05 * scale);
    let pd_pairs: Vec<(u64, u64)> = pd.edges().iter().map(|&(s, d)| (s.0, d.0)).collect();
    let pd_data = PropertyGraphData::from_edge_list(pd.vertex_count(), &pd_pairs);
    let vy3 = VineyardGraph::build(&pd_data).unwrap();
    let gt3 = GartStore::from_data(&pd_data).unwrap();
    let dir3 = graphar_dir("gnn");
    write_archive(&dir3, &pd_data).unwrap();
    let ar3 = GraphArStore::open(&dir3).unwrap();
    let train_batch = |g: &dyn GrinGraph| {
        let sampler = Sampler::new(g, l0, l0, vec![10, 5], 16);
        let seeds: Vec<VId> = (0..64u64).map(VId).collect();
        let batch = sampler.sample(&seeds, 7);
        let labels: Vec<usize> = seeds.iter().map(|&v| sampler.label_of(v, 8)).collect();
        let mut model = GraphSage::new(2, 16, 32, 8, 1);
        let loss = model.forward_backward(&batch, &labels);
        model.step(0.01);
        loss
    };
    let (tv, _) = time_it(3, || train_batch(&vy3));
    let snap3 = gt3.snapshot();
    let (tg, _) = time_it(3, || train_batch(&snap3));
    let (ta, _) = time_it(1, || train_batch(&ar3));
    t.row(vec![
        "GNN batch (PD-lite)".into(),
        fmt_duration(tv),
        fmt_duration(tg),
        fmt_duration(ta),
    ]);
    t.print();
    for d in [dir, dir2, dir3] {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// Fig. 7(b): GRIN dynamic dispatch vs the tightly-coupled native path.
pub fn fig7b(scale: f64) {
    println!("== Fig 7(b): GRIN overhead vs tightly-coupled baseline ==");
    println!("paper shape: GRIN within 8% of the coupled implementation\n");
    let cf = Dataset::by_abbr("CF").unwrap().edges(0.1 * scale);
    let pairs: Vec<(u64, u64)> = cf.edges().iter().map(|&(s, d)| (s.0, d.0)).collect();
    let data = PropertyGraphData::from_edge_list(cf.vertex_count(), &pairs);
    let store = VineyardGraph::build(&data).unwrap();
    let l0 = LabelId(0);
    let n = store.vertex_count(l0);
    let iters = 5;

    // native: static dispatch over raw CSR slices
    let native = |store: &VineyardGraph| {
        let damping = 0.85;
        let mut rank = vec![1.0 / n as f64; n];
        let mut next = vec![0.0f64; n];
        for _ in 0..iters {
            next.iter_mut().for_each(|x| *x = 0.0);
            let mut dangling = 0.0;
            for (v, &rv) in rank.iter().enumerate() {
                let vid = VId(v as u64);
                let nbrs = store.out_neighbors(l0, vid);
                if nbrs.is_empty() {
                    dangling += rv;
                    continue;
                }
                let share = rv / nbrs.len() as f64;
                for &w in nbrs {
                    next[w.index()] += share;
                }
            }
            let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
            for x in next.iter_mut() {
                *x = base + damping * *x;
            }
            std::mem::swap(&mut rank, &mut next);
        }
        rank
    };
    let (t_native, r_native) = time_it(5, || native(&store));
    let grin: &dyn GrinGraph = &store;
    let (t_grin, r_grin) = time_it(5, || pagerank_grin(grin, l0, iters));
    // same answers
    let max_diff = r_native
        .iter()
        .zip(&r_grin)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    let overhead = (t_grin.as_secs_f64() / t_native.as_secs_f64() - 1.0) * 100.0;
    let mut t = TablePrinter::new(&["path", "PageRank time", "overhead", "max |Δrank|"]);
    t.row(vec![
        "native (coupled)".into(),
        fmt_duration(t_native),
        "—".into(),
        "0".into(),
    ]);
    t.row(vec![
        "through GRIN".into(),
        fmt_duration(t_grin),
        format!("{overhead:+.1}%"),
        format!("{max_diff:.1e}"),
    ]);
    t.print();
}

/// Fig. 7(c): edge-scan throughput — GART vs LiveGraph vs static CSR.
pub fn fig7c(scale: f64) {
    println!("== Fig 7(c): dynamic storage read throughput (edges/s) ==");
    println!("paper shape: GART ≈3.9× LiveGraph, ≈73% of static CSR\n");
    let mut t = TablePrinter::new(&[
        "dataset",
        "CSR (Medges/s)",
        "GART (Medges/s)",
        "LiveGraph (Medges/s)",
        "GART/CSR",
        "GART/LiveGraph",
    ]);
    for abbr in ["UK", "CF", "TW"] {
        let el = Dataset::by_abbr(abbr).unwrap().edges(0.1 * scale);
        scan_row(&mut t, abbr, el.vertex_count(), el.edges());
    }
    let snb = generate(&SnbConfig::lite((300.0 * scale) as usize));
    // flatten SNB to a homogeneous edge list over a unified id space
    let mut edges = Vec::new();
    let mut base = vec![0u64; snb.data.vertices.len() + 1];
    for (i, b) in snb.data.vertices.iter().enumerate() {
        base[i + 1] = base[i] + b.external_ids.len() as u64;
    }
    let schema = snb.data.schema.clone();
    for (li, b) in snb.data.edges.iter().enumerate() {
        let def = schema.edge_label(LabelId(li as u16)).unwrap();
        for &(s, d) in &b.endpoints {
            edges.push((
                VId(base[def.src.index()] + s),
                VId(base[def.dst.index()] + d),
            ));
        }
    }
    let n = *base.last().unwrap() as usize;
    scan_row(&mut t, "SNB-lite", n, &edges);
    t.print();
}

fn scan_row(t: &mut TablePrinter, name: &str, n: usize, edges: &[(VId, VId)]) {
    use gs_baselines::LiveGraphStore;
    let m = edges.len() as f64;
    // CSR upper bound
    let csr = gs_graph::Csr::from_edges(n, edges);
    let (t_csr, _) = time_it(5, || {
        let mut acc = 0u64;
        for v in 0..n {
            for &w in csr.neighbors(VId(v as u64)) {
                acc = acc.wrapping_add(w.0);
            }
        }
        acc
    });
    // GART
    let data = PropertyGraphData::from_edge_list(
        n,
        &edges.iter().map(|&(s, d)| (s.0, d.0)).collect::<Vec<_>>(),
    );
    let gart = GartStore::from_data(&data).unwrap();
    let version = gart.committed_version();
    let (t_gart, _) = time_it(5, || {
        let mut acc = 0u64;
        gart.scan_edges(LabelId(0), version, &mut |_, d, _| {
            acc = acc.wrapping_add(d.0);
        });
        acc
    });
    // LiveGraph
    let lg = LiveGraphStore::from_edges(n, edges);
    let lv = lg.committed_version();
    let (t_lg, _) = time_it(5, || {
        let mut acc = 0u64;
        lg.scan_edges(lv, &mut |_, d, _| {
            acc = acc.wrapping_add(d.0);
        });
        acc
    });
    let rate = |d: Duration| m / d.as_secs_f64() / 1e6;
    t.row(vec![
        name.to_string(),
        format!("{:.1}", rate(t_csr)),
        format!("{:.1}", rate(t_gart)),
        format!("{:.1}", rate(t_lg)),
        format!("{:.0}%", 100.0 * t_csr.as_secs_f64() / t_gart.as_secs_f64()),
        fmt_speedup(t_lg, t_gart),
    ]);
}

/// Fig. 7(d): graph construction from GraphAr archives vs CSV files.
pub fn fig7d(scale: f64) {
    println!("== Fig 7(d): graph loading — GraphAr vs CSV ==");
    println!("paper shape: ≈5× speedup from the archive format\n");
    let mut t = TablePrinter::new(&["dataset", "CSV load", "GraphAr load", "speedup"]);
    for abbr in ["FB0", "UK", "TW", "CF"] {
        let el = Dataset::by_abbr(abbr).unwrap().edges(0.05 * scale);
        let pairs: Vec<(u64, u64)> = el.edges().iter().map(|&(s, d)| (s.0, d.0)).collect();
        let data = PropertyGraphData::from_edge_list(el.vertex_count(), &pairs);
        let csv_dir = graphar_dir(&format!("csv-{abbr}"));
        let ar_dir = graphar_dir(&format!("ar-{abbr}"));
        gs_graphar::csv::write_csv(&csv_dir, &data).unwrap();
        write_archive(&ar_dir, &data).unwrap();
        let (t_csv, from_csv) = time_it(3, || gs_graphar::csv::read_csv(&csv_dir).unwrap());
        let threads = 4;
        let (t_ar, from_ar) = time_it(3, || read_archive(&ar_dir, threads).unwrap());
        assert_eq!(from_csv.vertex_count(), from_ar.vertex_count());
        t.row(vec![
            abbr.to_string(),
            fmt_duration(t_csv),
            fmt_duration(t_ar),
            fmt_speedup(t_csv, t_ar),
        ]);
        let _ = std::fs::remove_dir_all(csv_dir);
        let _ = std::fs::remove_dir_all(ar_dir);
    }
    t.print();
}
