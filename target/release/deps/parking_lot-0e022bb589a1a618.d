/root/repo/target/release/deps/parking_lot-0e022bb589a1a618.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-0e022bb589a1a618.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-0e022bb589a1a618.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
