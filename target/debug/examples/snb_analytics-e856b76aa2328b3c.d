/root/repo/target/debug/examples/snb_analytics-e856b76aa2328b3c.d: examples/snb_analytics.rs

/root/repo/target/debug/examples/snb_analytics-e856b76aa2328b3c: examples/snb_analytics.rs

examples/snb_analytics.rs:
