//! The PIE (Partial evaluation / Incremental Evaluation) model.
//!
//! PIE [TODS'18, §6 of the paper] is subgraph-centric: a program first runs
//! a *partial evaluation* over its whole fragment as if the fragment were
//! the entire graph, then repeatedly *incrementally evaluates* against
//! messages from other fragments until a global fixpoint. GRAPE's claim is
//! that this auto-parallelizes sequential algorithms: both callbacks can be
//! plain sequential code over the fragment.

use crate::engine::GrapeEngine;
use crate::fragment::Fragment;
use crate::messages::{OutBuffers, Payload};
use gs_graph::VId;

/// A PIE program over per-fragment state `Self::State`.
pub trait PieProgram: Sync {
    /// Cross-fragment message payload.
    type Msg: Payload;
    /// Per-fragment state.
    type State: Send;
    /// Per-vertex output value.
    type Out: Clone + Default + Send + 'static;

    /// Fresh state for a fragment.
    fn init(&self, frag: &Fragment) -> Self::State;

    /// Sequential evaluation over the whole fragment; sends updates for
    /// border vertices through `ctx`.
    fn partial_eval(
        &self,
        frag: &Fragment,
        state: &mut Self::State,
        ctx: &mut PieContext<'_, Self::Msg>,
    );

    /// Incremental evaluation against messages received since the last
    /// round; sends further updates through `ctx`.
    fn inc_eval(
        &self,
        frag: &Fragment,
        state: &mut Self::State,
        msgs: &[(VId, Self::Msg)],
        ctx: &mut PieContext<'_, Self::Msg>,
    );

    /// Extracts per-inner-vertex outputs once converged.
    fn collect(&self, frag: &Fragment, state: &Self::State) -> Vec<(VId, Self::Out)>;
}

/// Message-sending context for PIE callbacks.
pub struct PieContext<'a, M: Payload> {
    frag: &'a Fragment,
    out: &'a mut OutBuffers,
    _marker: std::marker::PhantomData<M>,
}

impl<'a, M: Payload> PieContext<'a, M> {
    /// Sends a message to the owner of a global vertex.
    #[inline]
    pub fn send(&mut self, target: VId, msg: M) {
        let to = self.frag.owner(target).index();
        self.out.send(to, target, msg);
    }
}

/// Runs a PIE program: one partial evaluation, then incremental rounds
/// until no messages flow (or `max_rounds`).
pub fn run_pie<P: PieProgram>(engine: &GrapeEngine, program: &P, max_rounds: usize) -> Vec<P::Out> {
    engine.run(|frag, comm| {
        let mut state = program.init(frag);
        let mut out = OutBuffers::new(comm.workers);
        {
            let mut ctx = PieContext {
                frag,
                out: &mut out,
                _marker: std::marker::PhantomData,
            };
            program.partial_eval(frag, &mut state, &mut ctx);
        }
        for _ in 0..max_rounds {
            let sent = out.total();
            let (blocks, _) = comm.exchange(&mut out);
            let global_sent = comm.allreduce(sent);
            if global_sent == 0 {
                break;
            }
            let mut msgs: Vec<(VId, P::Msg)> = Vec::new();
            for b in &blocks {
                b.for_each::<P::Msg>(|v, m| msgs.push((v, m)));
            }
            let mut ctx = PieContext {
                frag,
                out: &mut out,
                _marker: std::marker::PhantomData,
            };
            program.inc_eval(frag, &mut state, &msgs, &mut ctx);
        }
        program.collect(frag, &state)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sequential WCC inside a fragment + incremental border updates: the
    /// canonical PIE example from the GRAPE paper.
    struct PieWcc;

    struct WccState {
        label: Vec<u64>, // per local vertex
    }

    fn local_propagate(frag: &Fragment, label: &mut [u64]) -> Vec<u32> {
        // sequential pointer-jump propagation until stable; returns local
        // ids whose labels changed
        let mut changed_any = true;
        let mut touched = vec![false; frag.local_count()];
        while changed_any {
            changed_any = false;
            for l in 0..frag.inner_count as u32 {
                frag.for_each_out(l, |nbr, _| {
                    let (a, b) = (l as usize, nbr.index());
                    let m = label[a].min(label[b]);
                    if label[a] != m {
                        label[a] = m;
                        touched[a] = true;
                        changed_any = true;
                    }
                    if label[b] != m {
                        label[b] = m;
                        touched[b] = true;
                        changed_any = true;
                    }
                });
            }
        }
        (0..frag.local_count() as u32)
            .filter(|&l| touched[l as usize])
            .collect()
    }

    impl PieProgram for PieWcc {
        type Msg = u64;
        type State = WccState;
        type Out = u64;

        fn init(&self, frag: &Fragment) -> WccState {
            WccState {
                label: (0..frag.local_count() as u32)
                    .map(|l| frag.global(l).0)
                    .collect(),
            }
        }

        fn partial_eval(
            &self,
            frag: &Fragment,
            state: &mut WccState,
            ctx: &mut PieContext<'_, u64>,
        ) {
            let changed = local_propagate(frag, &mut state.label);
            for l in changed {
                let g = frag.global(l);
                if !frag.is_inner(l) || frag.owner(g) != frag.id {
                    ctx.send(g, state.label[l as usize]);
                } else {
                    // inner border vertices: their mirrors elsewhere need it;
                    // we simply broadcast to the owner of each outer copy via
                    // neighbors — handled next round through outer sends.
                }
            }
            // also push inner labels to mirrors: mirrors live on THIS
            // fragment as outer; other fragments have mirrors of OUR inner
            // vertices only if they have edges to them — they will learn via
            // their own outer sends, so nothing more to do here.
            let _ = frag;
        }

        fn inc_eval(
            &self,
            frag: &Fragment,
            state: &mut WccState,
            msgs: &[(VId, u64)],
            ctx: &mut PieContext<'_, u64>,
        ) {
            let mut dirty = false;
            for &(g, m) in msgs {
                if let Some(l) = frag.local(g) {
                    if m < state.label[l as usize] {
                        state.label[l as usize] = m;
                        dirty = true;
                    }
                }
            }
            if dirty {
                let changed = local_propagate(frag, &mut state.label);
                for l in changed {
                    let g = frag.global(l);
                    if !frag.is_inner(l) {
                        ctx.send(g, state.label[l as usize]);
                    }
                }
            }
        }

        fn collect(&self, frag: &Fragment, state: &WccState) -> Vec<(VId, u64)> {
            (0..frag.inner_count as u32)
                .map(|l| (frag.global(l), state.label[l as usize]))
                .collect()
        }
    }

    #[test]
    fn pie_wcc_on_two_components() {
        // component A: 0..10 chain (symmetrized); component B: 10..15 chain
        let mut edges = Vec::new();
        for i in 0..9u64 {
            edges.push((VId(i), VId(i + 1)));
            edges.push((VId(i + 1), VId(i)));
        }
        for i in 10..14u64 {
            edges.push((VId(i), VId(i + 1)));
            edges.push((VId(i + 1), VId(i)));
        }
        for k in [1, 2, 4] {
            let engine = GrapeEngine::from_edges(15, &edges, k);
            let labels = run_pie(&engine, &PieWcc, 100);
            assert!(labels[..10].iter().all(|&l| l == 0), "k={k} {labels:?}");
            assert!(labels[10..].iter().all(|&l| l == 10), "k={k} {labels:?}");
        }
    }
}
