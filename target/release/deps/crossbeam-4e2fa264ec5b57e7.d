/root/repo/target/release/deps/crossbeam-4e2fa264ec5b57e7.d: vendor/crossbeam/src/lib.rs vendor/crossbeam/src/channel.rs vendor/crossbeam/src/deque.rs vendor/crossbeam/src/thread.rs

/root/repo/target/release/deps/libcrossbeam-4e2fa264ec5b57e7.rlib: vendor/crossbeam/src/lib.rs vendor/crossbeam/src/channel.rs vendor/crossbeam/src/deque.rs vendor/crossbeam/src/thread.rs

/root/repo/target/release/deps/libcrossbeam-4e2fa264ec5b57e7.rmeta: vendor/crossbeam/src/lib.rs vendor/crossbeam/src/channel.rs vendor/crossbeam/src/deque.rs vendor/crossbeam/src/thread.rs

vendor/crossbeam/src/lib.rs:
vendor/crossbeam/src/channel.rs:
vendor/crossbeam/src/deque.rs:
vendor/crossbeam/src/thread.rs:
