/root/repo/target/debug/deps/gs_grape-68c9a97045fd6e24.d: crates/gs-grape/src/lib.rs crates/gs-grape/src/algorithms/mod.rs crates/gs-grape/src/algorithms/bfs.rs crates/gs-grape/src/algorithms/cdlp.rs crates/gs-grape/src/algorithms/kcore.rs crates/gs-grape/src/algorithms/lcc.rs crates/gs-grape/src/algorithms/pagerank.rs crates/gs-grape/src/algorithms/sssp.rs crates/gs-grape/src/algorithms/wcc.rs crates/gs-grape/src/compat.rs crates/gs-grape/src/engine.rs crates/gs-grape/src/flash.rs crates/gs-grape/src/fragment.rs crates/gs-grape/src/gpu.rs crates/gs-grape/src/ingress.rs crates/gs-grape/src/messages.rs crates/gs-grape/src/pie.rs Cargo.toml

/root/repo/target/debug/deps/libgs_grape-68c9a97045fd6e24.rmeta: crates/gs-grape/src/lib.rs crates/gs-grape/src/algorithms/mod.rs crates/gs-grape/src/algorithms/bfs.rs crates/gs-grape/src/algorithms/cdlp.rs crates/gs-grape/src/algorithms/kcore.rs crates/gs-grape/src/algorithms/lcc.rs crates/gs-grape/src/algorithms/pagerank.rs crates/gs-grape/src/algorithms/sssp.rs crates/gs-grape/src/algorithms/wcc.rs crates/gs-grape/src/compat.rs crates/gs-grape/src/engine.rs crates/gs-grape/src/flash.rs crates/gs-grape/src/fragment.rs crates/gs-grape/src/gpu.rs crates/gs-grape/src/ingress.rs crates/gs-grape/src/messages.rs crates/gs-grape/src/pie.rs Cargo.toml

crates/gs-grape/src/lib.rs:
crates/gs-grape/src/algorithms/mod.rs:
crates/gs-grape/src/algorithms/bfs.rs:
crates/gs-grape/src/algorithms/cdlp.rs:
crates/gs-grape/src/algorithms/kcore.rs:
crates/gs-grape/src/algorithms/lcc.rs:
crates/gs-grape/src/algorithms/pagerank.rs:
crates/gs-grape/src/algorithms/sssp.rs:
crates/gs-grape/src/algorithms/wcc.rs:
crates/gs-grape/src/compat.rs:
crates/gs-grape/src/engine.rs:
crates/gs-grape/src/flash.rs:
crates/gs-grape/src/fragment.rs:
crates/gs-grape/src/gpu.rs:
crates/gs-grape/src/ingress.rs:
crates/gs-grape/src/messages.rs:
crates/gs-grape/src/pie.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
