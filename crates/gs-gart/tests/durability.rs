//! WAL durability and crash recovery: reopen equivalence, uncommitted
//! discard, torn-tail truncation, and checkpoint/rotation round trips.
//! (Seeded kill-point sweeps live in `tests/chaos.rs` and the
//! `gs-bench durability` corpus.)

use gs_gart::{Durability, DurabilityConfig, GartStore};
use gs_graph::schema::GraphSchema;
use gs_graph::ValueType;
use gs_grin::{Direction, GrinGraph, LabelId, PropId, Value};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn schema() -> (GraphSchema, LabelId, LabelId) {
    let mut s = GraphSchema::new();
    let v = s.add_vertex_label("V", &[("x", ValueType::Int)]);
    let e = s.add_edge_label("E", v, v, &[("w", ValueType::Float)]);
    (s, v, e)
}

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "gs-gart-dur-{}-{}-{}",
        tag,
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A full deterministic scan of the committed state: vertices with
/// externals and properties, edges with resolved endpoints and weights.
fn digest(store: &Arc<GartStore>, vl: LabelId, el: LabelId) -> String {
    let snap = store.snapshot();
    let mut out = format!("v{}\n", store.committed_version());
    for v in snap.vertices(vl) {
        out.push_str(&format!(
            "V {} {:?}\n",
            snap.external_id(vl, v).unwrap(),
            snap.vertex_property(vl, v, PropId(0))
        ));
    }
    let mut rows = Vec::new();
    store.scan_edges(el, store.committed_version(), &mut |s, d, e| {
        rows.push((s, d, e));
    });
    for (s, d, e) in rows {
        out.push_str(&format!(
            "E {} {} {:?}\n",
            snap.external_id(vl, s).unwrap(),
            snap.external_id(vl, d).unwrap(),
            snap.edge_property(el, e, PropId(0))
        ));
    }
    out
}

#[test]
fn reopen_restores_committed_state_bit_identically() {
    let dir = tmpdir("roundtrip");
    let (s, vl, el) = schema();
    let before = {
        let store = GartStore::open(s.clone(), DurabilityConfig::new(&dir)).unwrap();
        assert!(store.durable());
        for i in 1..=4 {
            store.add_vertex(vl, i, vec![Value::Int(i as i64)]).unwrap();
        }
        store.commit();
        store.add_edge(el, 1, 2, vec![Value::Float(1.2)]).unwrap();
        store.add_edge(el, 2, 3, vec![Value::Float(2.3)]).unwrap();
        store.commit();
        assert!(store.delete_edge(el, 1, 2).unwrap());
        assert!(store.delete_vertex(vl, 4).unwrap());
        store.commit();
        // explicit transactions persist too
        let mut t = store.begin();
        t.add_vertex(vl, 5, vec![Value::Int(55)]).unwrap();
        t.add_edge(el, 5, 1, vec![Value::Float(5.1)]).unwrap();
        t.commit().unwrap();
        digest(&store, vl, el)
    };
    let store = GartStore::open(s, DurabilityConfig::new(&dir)).unwrap();
    assert_eq!(digest(&store, vl, el), before);
    // and the reopened store keeps working: another commit, another reopen
    store.add_vertex(vl, 6, vec![Value::Int(6)]).unwrap();
    store.commit();
    let after = digest(&store, vl, el);
    drop(store);
    let store = GartStore::open(schema().0, DurabilityConfig::new(&dir)).unwrap();
    assert_eq!(digest(&store, vl, el), after);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn uncommitted_writes_are_discarded_on_reopen() {
    let dir = tmpdir("discard");
    let (s, vl, el) = schema();
    let committed = {
        let store = GartStore::open(s.clone(), DurabilityConfig::new(&dir)).unwrap();
        store.add_vertex(vl, 1, vec![Value::Int(1)]).unwrap();
        store.add_vertex(vl, 2, vec![Value::Int(2)]).unwrap();
        store.commit();
        let d = digest(&store, vl, el);
        // implicit staged-but-uncommitted writes...
        store.add_vertex(vl, 3, vec![Value::Int(3)]).unwrap();
        // ...and an explicit transaction that never commits: leak it so
        // its Drop-abort cannot run, simulating a crash mid-transaction
        let mut t = store.begin();
        t.add_vertex(vl, 4, vec![Value::Int(4)]).unwrap();
        t.add_edge(el, 1, 4, vec![Value::Float(1.4)]).unwrap();
        std::mem::forget(t);
        d
    };
    let store = GartStore::open(s, DurabilityConfig::new(&dir)).unwrap();
    assert_eq!(digest(&store, vl, el), committed);
    assert_eq!(store.snapshot().internal_id(vl, 3), None);
    assert_eq!(store.snapshot().internal_id(vl, 4), None);
    // discarded ids are usable again
    store.add_vertex(vl, 3, vec![Value::Int(33)]).unwrap();
    store.commit();
    assert!(store.snapshot().internal_id(vl, 3).is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn aborted_txns_stay_aborted_across_reopen() {
    let dir = tmpdir("abort");
    let (s, vl, el) = schema();
    let expect = {
        let store = GartStore::open(s.clone(), DurabilityConfig::new(&dir)).unwrap();
        store.add_vertex(vl, 1, vec![Value::Int(1)]).unwrap();
        store.commit();
        let mut t = store.begin();
        t.add_vertex(vl, 2, vec![Value::Int(2)]).unwrap();
        t.abort();
        // work after the abort must replay on top of the same holes
        store.add_vertex(vl, 3, vec![Value::Int(3)]).unwrap();
        store.add_edge(el, 1, 3, vec![Value::Float(1.3)]).unwrap();
        store.commit();
        digest(&store, vl, el)
    };
    let store = GartStore::open(s, DurabilityConfig::new(&dir)).unwrap();
    assert_eq!(digest(&store, vl, el), expect);
    assert_eq!(store.snapshot().internal_id(vl, 2), None);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_is_truncated_to_the_committed_prefix() {
    let dir = tmpdir("torn");
    let (s, vl, el) = schema();
    let committed = {
        let store = GartStore::open(s.clone(), DurabilityConfig::new(&dir)).unwrap();
        store.add_vertex(vl, 1, vec![Value::Int(1)]).unwrap();
        store.add_vertex(vl, 2, vec![Value::Int(2)]).unwrap();
        store.add_edge(el, 1, 2, vec![Value::Float(1.2)]).unwrap();
        store.commit();
        digest(&store, vl, el)
    };
    // simulate a crash mid-write: a frame header promising more bytes
    // than the file holds
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("wal.log"))
            .unwrap();
        f.write_all(&200u32.to_le_bytes()).unwrap();
        f.write_all(&0xdead_beefu32.to_le_bytes()).unwrap();
        f.write_all(&[7u8; 11]).unwrap();
    }
    let store = GartStore::open(s.clone(), DurabilityConfig::new(&dir)).unwrap();
    assert_eq!(digest(&store, vl, el), committed);
    // the tear was truncated and the log folded into a checkpoint, so a
    // second reopen is clean too
    drop(store);
    let store = GartStore::open(s, DurabilityConfig::new(&dir)).unwrap();
    assert_eq!(digest(&store, vl, el), committed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_image_plus_log_tail_round_trips() {
    let dir = tmpdir("ckpt");
    let (s, vl, el) = schema();
    let cfg = || DurabilityConfig::new(&dir).checkpoint_every(2);
    let expect = {
        let store = GartStore::open(s.clone(), cfg()).unwrap();
        for i in 1..=6 {
            store.add_vertex(vl, i, vec![Value::Int(i as i64)]).unwrap();
            store.commit();
        }
        // the every-2-commits trigger must have produced an image
        assert!(dir.join("checkpoint.snap").exists());
        // leave a log tail past the image: deletions + a re-add
        assert!(store.delete_vertex(vl, 6).unwrap());
        store.add_edge(el, 1, 2, vec![Value::Float(1.2)]).unwrap();
        store.commit();
        digest(&store, vl, el)
    };
    let store = GartStore::open(s.clone(), cfg()).unwrap();
    assert_eq!(digest(&store, vl, el), expect);
    // shadowed slots and tombstones survived the image: old versions still
    // resolve and the deleted vertex stays gone
    assert_eq!(store.snapshot().internal_id(vl, 6), None);
    store.add_vertex(vl, 6, vec![Value::Int(66)]).unwrap();
    store.commit();
    let v6 = store.snapshot().internal_id(vl, 6).unwrap();
    assert_eq!(
        store.snapshot().vertex_property(vl, v6, PropId(0)),
        Value::Int(66)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explicit_checkpoint_defers_while_a_txn_is_in_flight() {
    let dir = tmpdir("defer");
    let (s, vl, _el) = schema();
    let store = GartStore::open(s, DurabilityConfig::new(&dir)).unwrap();
    store.add_vertex(vl, 1, vec![Value::Int(1)]).unwrap();
    store.commit();
    let mut t = store.begin();
    t.add_vertex(vl, 2, vec![Value::Int(2)]).unwrap();
    assert!(
        !store.checkpoint().unwrap(),
        "checkpoints are quiescent: an active txn defers them"
    );
    t.commit().unwrap();
    assert!(store.checkpoint().unwrap());
    assert!(dir.join("checkpoint.snap").exists());
    // an implicit (staged, uncommitted) write also defers
    store.add_vertex(vl, 3, vec![Value::Int(3)]).unwrap();
    assert!(!store.checkpoint().unwrap());
    store.commit();
    assert!(store.checkpoint().unwrap());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn buffered_durability_still_replays_after_clean_close() {
    let dir = tmpdir("buffered");
    let (s, vl, el) = schema();
    let cfg = || DurabilityConfig::new(&dir).buffered();
    let expect = {
        let store = GartStore::open(s.clone(), cfg()).unwrap();
        assert_eq!(store.wal_records(), 1, "fresh log holds exactly the header");
        store.add_vertex(vl, 1, vec![Value::Int(1)]).unwrap();
        store.add_vertex(vl, 2, vec![Value::Int(2)]).unwrap();
        store.add_edge(el, 1, 2, vec![Value::Float(1.2)]).unwrap();
        store.commit();
        assert!(store.wal_writes() > 1);
        digest(&store, vl, el)
    };
    let store = GartStore::open(s, cfg()).unwrap();
    assert_eq!(digest(&store, vl, el), expect);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durable_snapshot_advertises_the_capability() {
    let dir = tmpdir("caps");
    let (s, _vl, _el) = schema();
    let store = GartStore::open(s, DurabilityConfig::new(&dir)).unwrap();
    let caps = store.snapshot().capabilities();
    assert!(caps.supports(gs_grin::Capabilities::DURABLE));
    assert!(caps.supports(gs_grin::Capabilities::TRANSACTIONS));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sync_and_buffered_modes_expose_their_durability() {
    let d1 = DurabilityConfig::new("x");
    assert_eq!(d1.durability, Durability::Sync);
    let d2 = DurabilityConfig::new("x").buffered();
    assert_eq!(d2.durability, Durability::Buffered);
}

#[test]
fn frozen_topology_survives_reopen() {
    // a freeze taken from a recovered store equals one taken before the
    // crash — snapshot isolation composes with recovery
    let dir = tmpdir("freeze");
    let (s, vl, el) = schema();
    let (before_rows, ver) = {
        let store = GartStore::open(s.clone(), DurabilityConfig::new(&dir)).unwrap();
        for i in 1..=4 {
            store.add_vertex(vl, i, vec![Value::Int(i as i64)]).unwrap();
        }
        for (a, b) in [(1u64, 2u64), (2, 3), (3, 4), (4, 1)] {
            store.add_edge(el, a, b, vec![Value::Float(0.5)]).unwrap();
        }
        store.commit();
        assert!(store.delete_vertex(vl, 4).unwrap());
        store.commit();
        let snap = store.snapshot();
        let frozen = snap.freeze(gs_graph::layout::LayoutKind::SortedCsr);
        let mut rows = Vec::new();
        for v in frozen.vertices(vl) {
            let adj: Vec<_> = frozen.adjacent(v, vl, el, Direction::Out).collect();
            rows.push((v, adj));
        }
        (rows, snap.version())
    };
    let store = GartStore::open(s, DurabilityConfig::new(&dir)).unwrap();
    let frozen = store
        .snapshot_at(ver)
        .freeze(gs_graph::layout::LayoutKind::SortedCsr);
    let mut rows = Vec::new();
    for v in frozen.vertices(vl) {
        let adj: Vec<_> = frozen.adjacent(v, vl, el, Direction::Out).collect();
        rows.push((v, adj));
    }
    assert_eq!(rows, before_rows);
    let _ = std::fs::remove_dir_all(&dir);
}
