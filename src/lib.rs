//! # GraphScope Flex (Rust reproduction)
//!
//! A from-scratch Rust implementation of *GraphScope Flex: LEGO-like Graph
//! Computing Stack* (SIGMOD 2024): a modular graph computing stack whose
//! storage backends, query front-ends, execution engines, analytical
//! models, and learning pipeline compose like bricks.
//!
//! This crate is the umbrella: it re-exports every brick and provides a
//! [`prelude`] for examples and downstream users. See `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! | Layer | Crates |
//! |---|---|
//! | Storage | [`gs_vineyard`], [`gs_gart`], [`gs_graphar`] behind [`gs_grin`] |
//! | Query | [`gs_lang`] → [`gs_ir`] → [`gs_optimizer`] → [`gs_gaia`] / [`gs_hiactor`] |
//! | Analytics | [`gs_grape`] (Pregel / PIE / FLASH, CPU + simulated GPU) |
//! | Learning | [`gs_learn`] (sampler, pipeline, GraphSAGE, NCN) |
//! | Assembly | [`gs_flex`] (flexbuild, SNB workloads, §8 applications) |
//! | Comparators | [`gs_baselines`] |

pub use gs_baselines;
pub use gs_chaos;
pub use gs_datagen;
pub use gs_flex;
pub use gs_gaia;
pub use gs_gart;
pub use gs_grape;
pub use gs_graph;
pub use gs_graphar;
pub use gs_grin;
pub use gs_hiactor;
pub use gs_ir;
pub use gs_lang;
pub use gs_learn;
pub use gs_optimizer;
pub use gs_sanitizer;
pub use gs_serve;
pub use gs_telemetry;
pub use gs_vineyard;

/// Everything the examples need, one import away.
pub mod prelude {
    pub use gs_datagen::snb::{generate as generate_snb, SnbConfig};
    pub use gs_flex::{Component, DeployTarget, EngineChoice, FlexBuild};
    pub use gs_gaia::GaiaEngine;
    pub use gs_gart::GartStore;
    pub use gs_grape::algorithms as grape_algorithms;
    pub use gs_grape::GrapeEngine;
    pub use gs_graph::schema::GraphSchema;
    pub use gs_graph::{PropertyGraphData, VId, Value, ValueType};
    pub use gs_grin::{Capabilities, Direction, GrinGraph};
    pub use gs_hiactor::QueryService;
    pub use gs_ir::{Expr, PlanBuilder, PreparedQuery, QueryEngine, ReferenceEngine};
    pub use gs_lang::{parse_cypher, parse_gremlin, CompiledQuery, Frontend};
    pub use gs_optimizer::{GlogueCatalog, Optimizer};
    pub use gs_serve::{
        GartServeStore, Priority, ServeConfig, ServeStore, Server, StaticServeStore,
    };
    pub use gs_vineyard::VineyardGraph;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let d = FlexBuild::compose(
            "t",
            &[Component::Grape, Component::Grin, Component::Vineyard],
            DeployTarget::SingleMachineBinary,
        )
        .unwrap();
        assert_eq!(d.name, "t");
    }
}
