/root/repo/target/release/deps/gs_lang-5235624879b04746.d: crates/gs-lang/src/lib.rs crates/gs-lang/src/cypher.rs crates/gs-lang/src/gremlin.rs crates/gs-lang/src/lexer.rs

/root/repo/target/release/deps/libgs_lang-5235624879b04746.rlib: crates/gs-lang/src/lib.rs crates/gs-lang/src/cypher.rs crates/gs-lang/src/gremlin.rs crates/gs-lang/src/lexer.rs

/root/repo/target/release/deps/libgs_lang-5235624879b04746.rmeta: crates/gs-lang/src/lib.rs crates/gs-lang/src/cypher.rs crates/gs-lang/src/gremlin.rs crates/gs-lang/src/lexer.rs

crates/gs-lang/src/lib.rs:
crates/gs-lang/src/cypher.rs:
crates/gs-lang/src/gremlin.rs:
crates/gs-lang/src/lexer.rs:
