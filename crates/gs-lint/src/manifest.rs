//! A tiny Cargo.toml reader: just enough TOML for feature-gate hygiene.
//!
//! gs-lint has no crates.io access, so it reads manifests with a
//! line-oriented subset parser: `[section]` headers, `key = "string"`,
//! `key = [ "array", "of", "strings" ]` (single- or multi-line, with
//! comments), dotted keys (`gs-sanitizer.workspace = true`), and inline
//! tables (`{ path = "..", optional = true }`). Everything the workspace's
//! own manifests actually use — and nothing more.

use std::collections::BTreeMap;

/// The subset of a Cargo.toml the lints need.
#[derive(Debug, Default, Clone)]
pub struct Manifest {
    /// `[package] name`.
    pub package_name: Option<String>,
    /// Keys of `[dependencies]` (dep names, dotted keys collapsed).
    pub dependencies: Vec<String>,
    /// Keys of `[dev-dependencies]`.
    pub dev_dependencies: Vec<String>,
    /// `[features]`: name → forwarded entries (`"gs-sanitizer/sanitize"`).
    pub features: BTreeMap<String, Vec<String>>,
}

impl Manifest {
    /// True if `feature` is declared in `[features]`.
    pub fn declares_feature(&self, feature: &str) -> bool {
        self.features.contains_key(feature)
    }

    /// True if `[features] feature` forwards `entry` (exact match).
    pub fn forwards(&self, feature: &str, entry: &str) -> bool {
        self.features
            .get(feature)
            .map(|v| v.iter().any(|e| e == entry))
            .unwrap_or(false)
    }
}

/// Strips a trailing `#` comment that is not inside a string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Extracts all `"quoted"` strings from a snippet.
fn quoted_strings(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = s;
    while let Some(start) = rest.find('"') {
        let tail = &rest[start + 1..];
        match tail.find('"') {
            Some(end) => {
                out.push(tail[..end].to_string());
                rest = &tail[end + 1..];
            }
            None => break,
        }
    }
    out
}

/// Parses manifest text. Unknown constructs are skipped, not errors.
pub fn parse(text: &str) -> Manifest {
    let mut m = Manifest::default();
    let mut section = String::new();
    let mut lines = text.lines().peekable();
    while let Some(raw) = lines.next() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line
                .trim_matches(|c| c == '[' || c == ']')
                .trim()
                .to_string();
            // `[dependencies.foo]` long-form dep tables
            if let Some(dep) = section.strip_prefix("dependencies.") {
                m.dependencies.push(dep.to_string());
            }
            if let Some(dep) = section.strip_prefix("dev-dependencies.") {
                m.dev_dependencies.push(dep.to_string());
            }
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key_full = line[..eq].trim();
        // dotted keys: `gs-sanitizer.workspace = true` → dep "gs-sanitizer"
        let key = key_full
            .split('.')
            .next()
            .unwrap_or(key_full)
            .trim_matches('"');
        let mut value = line[eq + 1..].trim().to_string();
        // multi-line arrays: keep consuming until brackets balance
        while value.matches('[').count() > value.matches(']').count() {
            match lines.next() {
                Some(next) => {
                    value.push(' ');
                    value.push_str(strip_comment(next).trim());
                }
                None => break,
            }
        }
        match section.as_str() {
            "package" if key == "name" => {
                m.package_name = quoted_strings(&value).into_iter().next();
            }
            "dependencies" => m.dependencies.push(key.to_string()),
            "dev-dependencies" => m.dev_dependencies.push(key.to_string()),
            "features" => {
                m.features.insert(key.to_string(), quoted_strings(&value));
            }
            _ => {}
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[package]
name = "gs-example" # trailing comment
version.workspace = true

[dependencies]
gs-sanitizer.workspace = true
gs-telemetry = { path = "../gs-telemetry" }
parking_lot.workspace = true

[dev-dependencies]
proptest.workspace = true

[features]
# forwards instrumentation downward
sanitize = [
    "gs-sanitizer/sanitize",  # the defining crate
    "gs-telemetry/sanitize",
]
chaos = ["gs-chaos/chaos"]
empty = []
"#;

    #[test]
    fn parses_the_workspace_manifest_shape() {
        let m = parse(SAMPLE);
        assert_eq!(m.package_name.as_deref(), Some("gs-example"));
        assert_eq!(
            m.dependencies,
            vec!["gs-sanitizer", "gs-telemetry", "parking_lot"]
        );
        assert_eq!(m.dev_dependencies, vec!["proptest"]);
        assert!(m.declares_feature("sanitize"));
        assert!(m.forwards("sanitize", "gs-sanitizer/sanitize"));
        assert!(m.forwards("sanitize", "gs-telemetry/sanitize"));
        assert!(m.forwards("chaos", "gs-chaos/chaos"));
        assert!(!m.forwards("sanitize", "gs-grape/sanitize"));
        assert_eq!(m.features["empty"], Vec::<String>::new());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let m = parse("[package]\nname = \"has#hash\"\n");
        assert_eq!(m.package_name.as_deref(), Some("has#hash"));
    }

    #[test]
    fn long_form_dep_tables() {
        let m = parse("[dependencies.gs-graph]\npath = \"../gs-graph\"\n");
        assert_eq!(m.dependencies, vec!["gs-graph"]);
    }
}
