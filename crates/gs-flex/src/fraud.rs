//! Real-time fraud detection (paper §8, Table 2).
//!
//! Deployment: HiActor (OLTP engine) over GART (dynamic store). Each
//! incoming order inserts an `(Account)-[BUY]->(Item)` edge into GART and
//! triggers the §8 check: direct and one-hop (via KNOWS) co-purchasing with
//! known *fraud seeds* within a date window; a weighted count over a
//! threshold raises an alert.
//!
//! The check runs two ways:
//! * [`FraudApp::check_order`] — the production path: a compiled stored
//!   procedure walking GART snapshots through GRIN;
//! * [`FraudApp::check_order_cypher`] — the paper's Cypher statement parsed
//!   and executed through the IR stack, used to differential-test the
//!   procedure.

use gs_datagen::apps::{FraudSchema, FraudWorkload};
use gs_gart::GartStore;
use gs_graph::{Result, Value};
use gs_grin::{Direction, GrinGraph};
use gs_hiactor::QueryService;
use gs_ir::exec::execute;
use gs_lang::Frontend;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Detection weights/threshold from the §8 query (`w1·cnt1 + w2·cnt2 >
/// threshold`).
#[derive(Clone, Copy, Debug)]
pub struct FraudConfig {
    pub w1: i64,
    pub w2: i64,
    pub threshold: i64,
    /// Days of the co-purchase window for the direct check.
    pub window: i64,
}

impl Default for FraudConfig {
    fn default() -> Self {
        Self {
            w1: 2,
            w2: 1,
            threshold: 3,
            window: 5,
        }
    }
}

/// The fraud-detection service.
pub struct FraudApp {
    store: Arc<GartStore>,
    labels: FraudSchema,
    seeds: HashSet<u64>,
    config: FraudConfig,
    service: QueryService,
    alerts: AtomicU64,
}

impl FraudApp {
    /// Builds the deployment from a generated workload.
    pub fn new(workload: &FraudWorkload, config: FraudConfig, shards: usize) -> Result<Self> {
        let store = GartStore::from_data(&workload.data)?;
        Ok(Self {
            store,
            labels: workload.labels,
            seeds: workload.seeds.iter().copied().collect(),
            config,
            service: QueryService::new(shards),
            alerts: AtomicU64::new(0),
        })
    }

    /// Total alerts raised so far.
    pub fn alerts(&self) -> u64 {
        self.alerts.load(Ordering::Relaxed)
    }

    /// The stored-procedure check (runs on the caller's thread; the
    /// benchmark wraps it in HiActor submissions).
    pub fn check_order(&self, account: u64, order_date: i64) -> Result<bool> {
        let l = self.labels;
        let version = self.store.committed_version();
        // One read-lock acquisition for the whole procedure (GartView) —
        // the high-QPS path Table 2 measures.
        let flagged = self.store.with_view(version, |view| {
            let Some(v) = view.internal_id(l.account, account) else {
                return false;
            };
            // Counting follows Cypher pattern-match (homomorphism)
            // semantics so the procedure and the parsed query agree
            // exactly: every (b1, b2) edge pair with a seed endpoint
            // counts, including pairs where `s` binds back to the start.
            let count_copurchases = |start: gs_graph::VId, window: Option<i64>| -> i64 {
                let mut cnt = 0;
                view.for_each_adjacent(start, l.buy, Direction::Out, &mut |item, b1| {
                    let d1 = view
                        .edge_property(l.buy, b1, gs_graph::PropId(0))
                        .as_int()
                        .unwrap_or(0);
                    view.for_each_adjacent(item, l.buy, Direction::In, &mut |other, b2| {
                        let Some(ext) = view.external_id(l.account, other) else {
                            return;
                        };
                        if !self.seeds.contains(&ext) {
                            return;
                        }
                        if let Some(w) = window {
                            let d2 = view
                                .edge_property(l.buy, b2, gs_graph::PropId(0))
                                .as_int()
                                .unwrap_or(0);
                            if (d1 - d2).abs() >= w {
                                return;
                            }
                        }
                        cnt += 1;
                    });
                });
                cnt
            };
            let cnt1 = count_copurchases(v, Some(self.config.window));
            let mut cnt2 = 0i64;
            view.for_each_adjacent(v, l.knows, Direction::Out, &mut |f, _| {
                cnt2 += count_copurchases(f, None);
            });
            let _ = order_date;
            // MATCH-without-matches eliminates the row in Cypher: an alert
            // requires both pattern stages to have produced bindings.
            cnt1 > 0
                && cnt2 > 0
                && self.config.w1 * cnt1 + self.config.w2 * cnt2 > self.config.threshold
        });
        if flagged {
            self.alerts.fetch_add(1, Ordering::Relaxed);
        }
        Ok(flagged)
    }

    /// The same check through the Cypher front-end + IR executor.
    pub fn check_order_cypher(&self, account: u64) -> Result<bool> {
        let snap = self.store.snapshot();
        let seeds: Vec<Value> = self.seeds.iter().map(|&s| Value::Int(s as i64)).collect();
        let mut params = HashMap::new();
        params.insert("SEEDS".to_string(), Value::List(seeds));
        params.insert("account".to_string(), Value::Int(account as i64));
        let q = format!(
            "MATCH (v:Account {{id: {account}}})-[b1:BUY]->(:Item)<-[b2:BUY]-(s:Account) \
             WHERE s.id IN $SEEDS AND b1.date - b2.date < {w} AND b2.date - b1.date < {w} \
             WITH v, COUNT(s) AS cnt1 \
             MATCH (v)-[:KNOWS]-(f:Account), (f)-[b3:BUY]->(:Item)<-[b4:BUY]-(s2:Account) \
             WHERE s2.id IN $SEEDS \
             WITH v, cnt1, COUNT(s2) AS cnt2 \
             WHERE {w1} * cnt1 + {w2} * cnt2 > {t} \
             RETURN v",
            w = self.config.window,
            w1 = self.config.w1,
            w2 = self.config.w2,
            t = self.config.threshold,
        );
        let compiled = Frontend::Cypher.compile_with(
            &q,
            snap.schema(),
            &params,
            &gs_optimizer::Optimizer::disabled(),
        )?;
        let rows = execute(&compiled.physical, &snap)?;
        Ok(!rows.is_empty())
    }

    /// Ingests one order (GART insert + commit) and runs the §8 "set of
    /// mandatory queries": the buyer's check plus checks on its direct
    /// contacts (diverse relational checks per order). Returns the number
    /// of checks executed.
    pub fn process_order(&self, account: u64, item: u64, date: i64) -> Result<usize> {
        self.store
            .add_edge(self.labels.buy, account, item, vec![Value::Date(date)])?;
        self.store.commit();
        let mut targets = vec![account];
        let version = self.store.committed_version();
        self.store.with_view(version, |view| {
            if let Some(v) = view.internal_id(self.labels.account, account) {
                view.for_each_adjacent(v, self.labels.knows, Direction::Out, &mut |f, _| {
                    if targets.len() < 8 {
                        if let Some(ext) = view.external_id(self.labels.account, f) {
                            targets.push(ext);
                        }
                    }
                });
            }
        });
        let n = targets.len();
        for t in targets {
            self.check_order(t, date)?;
        }
        Ok(n)
    }

    /// Drives `orders` through the production topology: one dedicated
    /// writer thread ingests the order stream into GART (the single-writer
    /// design GART assumes) while `threads` query clients run the mandatory
    /// checks each order triggers. Returns check throughput (checks/s),
    /// Table 2's metric.
    pub fn run_throughput(self: &Arc<Self>, orders: &[(u64, u64, i64)], threads: usize) -> f64 {
        use crossbeam::deque::{Injector, Steal};
        let queue: Injector<(u64, i64)> = Injector::new();
        let done = std::sync::atomic::AtomicBool::new(false);
        let checks = AtomicU64::new(0);
        let start = std::time::Instant::now();
        crossbeam::thread::scope(|s| {
            // the writer: ingest + fan out the per-order check set
            {
                let app = Arc::clone(self);
                let queue = &queue;
                let done = &done;
                s.spawn(move |_| {
                    // group commit: one write-lock acquisition per batch
                    for chunk in orders.chunks(128) {
                        let batch: Vec<(u64, u64, Vec<Value>)> = chunk
                            .iter()
                            .map(|&(a, it, d)| (a, it, vec![Value::Date(d)]))
                            .collect();
                        let _ = app.store.add_edges(app.labels.buy, &batch);
                        app.store.commit();
                        // fan out each order's mandatory check set
                        let version = app.store.committed_version();
                        app.store.with_view(version, |view| {
                            for &(a, _, d) in chunk {
                                queue.push((a, d));
                                if let Some(v) = view.internal_id(app.labels.account, a) {
                                    let mut n = 0;
                                    view.for_each_adjacent(
                                        v,
                                        app.labels.knows,
                                        Direction::Out,
                                        &mut |f, _| {
                                            if n < 7 {
                                                if let Some(ext) =
                                                    view.external_id(app.labels.account, f)
                                                {
                                                    queue.push((ext, d));
                                                    n += 1;
                                                }
                                            }
                                        },
                                    );
                                }
                            }
                        });
                    }
                    done.store(true, Ordering::Release);
                });
            }
            // query clients
            for _ in 0..threads.max(1) {
                let app = Arc::clone(self);
                let queue = &queue;
                let done = &done;
                let checks = &checks;
                s.spawn(move |_| loop {
                    match queue.steal() {
                        Steal::Success((a, d)) => {
                            let _ = app.check_order(a, d);
                            checks.fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) && queue.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                        Steal::Retry => {}
                    }
                });
            }
        })
        .expect("fraud clients");
        checks.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64()
    }

    /// The HiActor service (exposed for deployments that register extra
    /// procedures).
    pub fn service(&self) -> &QueryService {
        &self.service
    }

    /// Offline risk scoring — the analytics arm of the anti-fraud
    /// deployment. Composes the paper's Workload-2 preset
    /// ([`crate::flexbuild::FlexBuild::antifraud_analytics_preset`]),
    /// projects the Account/KNOWS social graph out of the live GART
    /// snapshot through GRIN, and runs built-in PageRank on GRAPE. Higher
    /// scores mark accounts central to the purchase-collusion network.
    pub fn risk_scores(&self, fragments: usize, iters: usize) -> Result<Vec<f64>> {
        let deployment = crate::flexbuild::FlexBuild::antifraud_analytics_preset()
            .map_err(|e| gs_graph::GraphError::Config(e.to_string()))?;
        let engine = deployment
            .analytics_engine(fragments)
            .expect("the antifraud preset selects GRAPE");
        let snap = self.store.snapshot();
        let proj = gs_grape::GrinProjection {
            vertex_labels: Some(vec![self.labels.account]),
            edge_labels: Some(vec![self.labels.knows]),
            ..Default::default()
        };
        let (grape, _space) = engine.load(&snap, &proj)?;
        Ok(gs_grape::algorithms::pagerank(&grape, 0.85, iters))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_datagen::apps::fraud_graph;

    fn app() -> (Arc<FraudApp>, FraudWorkload) {
        let w = fraud_graph(300, 120, 1500, 60, 9);
        let app = FraudApp::new(&w, FraudConfig::default(), 2).unwrap();
        (Arc::new(app), w)
    }

    #[test]
    fn stored_procedure_matches_cypher_path() {
        let (app, w) = app();
        let mut checked = 0;
        for account in (0..60u64).chain(w.seeds.iter().copied()) {
            let fast = app.check_order(account, 15350).unwrap();
            let slow = app.check_order_cypher(account).unwrap();
            assert_eq!(fast, slow, "account {account}");
            checked += 1;
        }
        assert!(checked > 50);
    }

    #[test]
    fn seed_ring_orders_raise_alerts() {
        let (app, w) = app();
        // a seed buying a pumped item must co-purchase with other seeds
        for &s in w.seeds.iter().take(10) {
            app.process_order(s, 0, 15360).unwrap();
        }
        assert!(app.alerts() > 0, "no alerts for seed-ring orders");
    }

    #[test]
    fn risk_scores_run_the_preset_pipeline_end_to_end() {
        let (app, w) = app();
        let scores = app.risk_scores(2, 15).unwrap();
        let snap = app.store.snapshot();
        let n = snap.vertex_count(w.labels.account);
        assert_eq!(scores.len(), n, "one score per account");
        // the preset-loaded result must match a direct edge-list load of
        // the same KNOWS social graph
        let edges: Vec<(gs_graph::VId, gs_graph::VId)> = w.data.edges[w.labels.knows.index()]
            .endpoints
            .iter()
            .map(|&(s, d)| (gs_graph::VId(s), gs_graph::VId(d)))
            .collect();
        let baseline = gs_grape::GrapeEngine::from_edges(n, &edges, 2);
        let expect = gs_grape::algorithms::pagerank(&baseline, 0.85, 15);
        for (i, (a, b)) in scores.iter().zip(&expect).enumerate() {
            assert!((a - b).abs() < 1e-12, "account {i}: {a} vs {b}");
        }
    }

    #[test]
    fn throughput_run_processes_all_orders() {
        let (app, w) = app();
        let qps = app.run_throughput(&w.order_stream, 4);
        assert!(qps > 0.0);
        // graph grew by the stream size
        let snap = app.store.snapshot();
        assert_eq!(snap.edge_count(app.labels.buy), 1500 + w.order_stream.len());
    }
}
