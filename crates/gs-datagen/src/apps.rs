//! Application graphs for the paper's §8 use cases: a transaction graph for
//! real-time fraud detection, an equity-ownership graph for equity analysis,
//! and a host/process/connection graph for cybersecurity monitoring.

use gs_graph::data::PropertyGraphData;
use gs_graph::schema::GraphSchema;
use gs_graph::value::{Value, ValueType};
use gs_graph::LabelId;
use rand::Rng;
use rand_pcg::Pcg64Mcg;

/// Labels of the transaction (fraud) graph.
#[derive(Clone, Copy, Debug)]
pub struct FraudSchema {
    pub account: LabelId,
    pub item: LabelId,
    pub buy: LabelId,
    pub knows: LabelId,
}

/// A generated fraud-detection workload: the starting graph, the fraud-seed
/// account ids, and a stream of future orders to apply online.
pub struct FraudWorkload {
    pub data: PropertyGraphData,
    pub labels: FraudSchema,
    pub accounts: usize,
    pub items: usize,
    /// Accounts previously identified with known frauds.
    pub seeds: Vec<u64>,
    /// Orders arriving online: (account, item, date).
    pub order_stream: Vec<(u64, u64, i64)>,
}

/// Generates the fraud-detection transaction graph.
///
/// Fraud seeds form co-purchasing rings around a subset of "pumped" items,
/// so the Cypher check from §8 has positives to find; everyone else buys
/// uniformly.
pub fn fraud_graph(
    accounts: usize,
    items: usize,
    orders: usize,
    stream_len: usize,
    seed: u64,
) -> FraudWorkload {
    let mut schema = GraphSchema::new();
    let account = schema.add_vertex_label("Account", &[("id", ValueType::Int)]);
    let item = schema.add_vertex_label("Item", &[("popularity", ValueType::Int)]);
    let buy = schema.add_edge_label("BUY", account, item, &[("date", ValueType::Date)]);
    let knows = schema.add_edge_label("KNOWS", account, account, &[]);
    let labels = FraudSchema {
        account,
        item,
        buy,
        knows,
    };
    let mut g = PropertyGraphData::new(schema);
    let mut rng = Pcg64Mcg::new((seed as u128) << 64 | 0xf4a0d);

    for a in 0..accounts as u64 {
        g.add_vertex(account, a, vec![Value::Int(a as i64)]);
    }
    for i in 0..items as u64 {
        g.add_vertex(item, i, vec![Value::Int(rng.gen_range(0..1000))]);
    }
    // fraud seeds: 1% of accounts
    let nseeds = (accounts / 100).max(4);
    let seeds: Vec<u64> = (0..nseeds as u64)
        .map(|i| i * 97 % accounts as u64)
        .collect();
    let pumped: Vec<u64> = (0..(items / 50).max(2) as u64).collect();

    // historical orders
    for _ in 0..orders {
        let (a, it) = if rng.gen::<f64>() < 0.05 {
            // seed ring purchase of a pumped item
            (
                seeds[rng.gen_range(0..seeds.len())],
                pumped[rng.gen_range(0..pumped.len())],
            )
        } else {
            (
                rng.gen_range(0..accounts as u64),
                rng.gen_range(0..items as u64),
            )
        };
        g.add_edge(buy, a, it, vec![Value::Date(rng.gen_range(15000..15300))]);
    }
    // social edges among accounts (KNOWS is symmetric)
    for a in 0..accounts as u64 {
        for _ in 0..rng.gen_range(0..4) {
            let b = rng.gen_range(0..accounts as u64);
            if a != b {
                g.add_edge(knows, a, b, vec![]);
                g.add_edge(knows, b, a, vec![]);
            }
        }
    }
    // online order stream; ~10% involve a pumped item (possible fraud)
    let order_stream = (0..stream_len)
        .map(|_| {
            let a = rng.gen_range(0..accounts as u64);
            let it = if rng.gen::<f64>() < 0.1 {
                pumped[rng.gen_range(0..pumped.len())]
            } else {
                rng.gen_range(0..items as u64)
            };
            (a, it, rng.gen_range(15300..15400))
        })
        .collect();

    FraudWorkload {
        data: g,
        labels,
        accounts,
        items,
        seeds,
        order_stream,
    }
}

/// Labels of the equity-ownership graph.
#[derive(Clone, Copy, Debug)]
pub struct EquitySchema {
    pub holder: LabelId,
    pub invest: LabelId,
}

/// A generated equity graph: companies and persons as `holder` vertices,
/// weighted `INVEST` edges carrying share percentages that sum to ~1 per
/// company.
pub struct EquityGraph {
    pub data: PropertyGraphData,
    pub labels: EquitySchema,
    /// Number of company vertices (ids 0..companies); persons follow.
    pub companies: usize,
    pub persons: usize,
}

/// Generates an equity ownership graph shaped like the §8 scenario: layered
/// corporate shareholding DAG with person ultimate owners; each company's
/// incoming shares sum to 1.
pub fn equity_graph(companies: usize, persons: usize, seed: u64) -> EquityGraph {
    let mut schema = GraphSchema::new();
    let holder = schema.add_vertex_label(
        "Holder",
        &[("name", ValueType::Str), ("isPerson", ValueType::Bool)],
    );
    let invest = schema.add_edge_label("INVEST", holder, holder, &[("share", ValueType::Float)]);
    let labels = EquitySchema { holder, invest };
    let mut g = PropertyGraphData::new(schema);
    let mut rng = Pcg64Mcg::new((seed as u128) << 64 | 0xeb1);

    for c in 0..companies as u64 {
        g.add_vertex(
            holder,
            c,
            vec![Value::Str(format!("Company {c}")), Value::Bool(false)],
        );
    }
    for p in 0..persons as u64 {
        g.add_vertex(
            holder,
            companies as u64 + p,
            vec![Value::Str(format!("Person {p}")), Value::Bool(true)],
        );
    }
    // Owners of company c come from companies with larger id (keeps the
    // graph a DAG) or persons; 2-4 shareholders whose shares sum to 1.
    for c in 0..companies as u64 {
        let k = rng.gen_range(2..=4usize);
        let mut cuts: Vec<f64> = (0..k - 1).map(|_| rng.gen::<f64>()).collect();
        cuts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut shares = Vec::with_capacity(k);
        let mut prev = 0.0;
        for &cut in &cuts {
            shares.push(cut - prev);
            prev = cut;
        }
        shares.push(1.0 - prev);
        for share in shares {
            let owner = if rng.gen::<f64>() < 0.5 && c + 1 < companies as u64 {
                rng.gen_range(c + 1..companies as u64)
            } else {
                companies as u64 + rng.gen_range(0..persons as u64)
            };
            g.add_edge(invest, owner, c, vec![Value::Float(share)]);
        }
    }

    EquityGraph {
        data: g,
        labels,
        companies,
        persons,
    }
}

/// Labels of the cybersecurity graph.
#[derive(Clone, Copy, Debug)]
pub struct CyberSchema {
    pub host: LabelId,
    pub process: LabelId,
    pub runs: LabelId,
    pub connects: LabelId,
}

/// A generated cyber-monitoring graph: hosts run processes; processes open
/// network connections to hosts. Trojan detection is the 2-hop traversal
/// host → process → remote host against a blocklist.
pub struct CyberGraph {
    pub data: PropertyGraphData,
    pub labels: CyberSchema,
    pub hosts: usize,
    pub processes: usize,
    /// Hosts on the threat blocklist.
    pub blocklist: Vec<u64>,
}

/// Generates the cybersecurity graph.
pub fn cyber_graph(hosts: usize, processes_per_host: usize, seed: u64) -> CyberGraph {
    let mut schema = GraphSchema::new();
    let host = schema.add_vertex_label("Host", &[("ip", ValueType::Str)]);
    let process = schema.add_vertex_label(
        "Process",
        &[("name", ValueType::Str), ("suspicious", ValueType::Bool)],
    );
    let runs = schema.add_edge_label("RUNS", host, process, &[]);
    let connects = schema.add_edge_label("CONNECTS", process, host, &[("port", ValueType::Int)]);
    let labels = CyberSchema {
        host,
        process,
        runs,
        connects,
    };
    let mut g = PropertyGraphData::new(schema);
    let mut rng = Pcg64Mcg::new((seed as u128) << 64 | 0xcb);

    for h in 0..hosts as u64 {
        g.add_vertex(
            host,
            h,
            vec![Value::Str(format!("10.0.{}.{}", h / 256, h % 256))],
        );
    }
    let mut pid = 0u64;
    let nblock = (hosts / 50).max(2);
    let blocklist: Vec<u64> = (0..nblock as u64).map(|i| i * 31 % hosts as u64).collect();
    for h in 0..hosts as u64 {
        for _ in 0..processes_per_host {
            let suspicious = rng.gen::<f64>() < 0.02;
            g.add_vertex(
                process,
                pid,
                vec![Value::Str(format!("proc-{pid}")), Value::Bool(suspicious)],
            );
            g.add_edge(runs, h, pid, vec![]);
            let conns = rng.gen_range(1..6);
            for _ in 0..conns {
                let target = if suspicious && rng.gen::<f64>() < 0.5 {
                    blocklist[rng.gen_range(0..blocklist.len())]
                } else {
                    rng.gen_range(0..hosts as u64)
                };
                g.add_edge(
                    connects,
                    pid,
                    target,
                    vec![Value::Int(rng.gen_range(1..65535))],
                );
            }
            pid += 1;
        }
    }

    CyberGraph {
        data: g,
        labels,
        hosts,
        processes: pid as usize,
        blocklist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraud_graph_is_valid_and_has_seeds() {
        let w = fraud_graph(500, 200, 2000, 100, 1);
        w.data.validate().unwrap();
        assert!(!w.seeds.is_empty());
        assert_eq!(w.order_stream.len(), 100);
        assert!(w.seeds.iter().all(|&s| s < 500));
    }

    #[test]
    fn equity_shares_sum_to_one() {
        let eq = equity_graph(100, 50, 2);
        eq.data.validate().unwrap();
        let edges = &eq.data.edges[eq.labels.invest.index()];
        let mut sums = vec![0.0f64; 100];
        for (i, &(_, dst)) in edges.endpoints.iter().enumerate() {
            sums[dst as usize] += edges.properties[i][0].as_float().unwrap();
        }
        for (c, s) in sums.iter().enumerate() {
            assert!((s - 1.0).abs() < 1e-9, "company {c} shares sum {s}");
        }
    }

    #[test]
    fn equity_is_dag_over_companies() {
        let eq = equity_graph(80, 20, 3);
        let edges = &eq.data.edges[eq.labels.invest.index()];
        for &(owner, c) in &edges.endpoints {
            if owner < eq.companies as u64 {
                assert!(owner > c, "company edge {owner}->{c} breaks DAG order");
            }
        }
    }

    #[test]
    fn cyber_graph_structure() {
        let cg = cyber_graph(100, 3, 4);
        cg.data.validate().unwrap();
        assert_eq!(cg.processes, 300);
        let runs = &cg.data.edges[cg.labels.runs.index()];
        assert_eq!(runs.endpoints.len(), 300);
        assert!(!cg.blocklist.is_empty());
    }

    #[test]
    fn app_generators_deterministic() {
        assert_eq!(
            fraud_graph(100, 50, 300, 10, 7).data,
            fraud_graph(100, 50, 300, 10, 7).data
        );
        assert_eq!(equity_graph(50, 20, 7).data, equity_graph(50, 20, 7).data);
        assert_eq!(cyber_graph(50, 2, 7).data, cyber_graph(50, 2, 7).data);
    }
}
