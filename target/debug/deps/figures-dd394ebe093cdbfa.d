/root/repo/target/debug/deps/figures-dd394ebe093cdbfa.d: crates/gs-bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-dd394ebe093cdbfa: crates/gs-bench/src/bin/figures.rs

crates/gs-bench/src/bin/figures.rs:
