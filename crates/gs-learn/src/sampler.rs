//! Multi-hop graph sampling over GRIN graphs.
//!
//! The learning stack's sampling side (paper §7): given seed vertices, a
//! fan-out vector like `[15, 10, 5]` drives k-hop neighbour sampling; each
//! hop is one node in the sampling dataflow. Feature collection is the sink
//! node. Samplers draw through GRIN, so the same sampler runs on Vineyard
//! (Fig. 7a GNN column), GART, or GraphAr.

use gs_graph::{LabelId, VId};
use gs_grin::{Direction, GrinGraph};
use rand::Rng;
use rand_pcg::Pcg64Mcg;

/// A sampled computation block for one mini-batch.
#[derive(Clone, Debug, Default)]
pub struct SampledBatch {
    /// Seed vertices (layer 0).
    pub seeds: Vec<VId>,
    /// All sampled vertices per layer: `layers[0] == seeds`,
    /// `layers[k]` are the vertices reached at hop k.
    pub layers: Vec<Vec<VId>>,
    /// Hop adjacency: `hops[k][i]` lists indexes *into `layers[k+1]`* of the
    /// sampled neighbours of `layers[k][i]`.
    pub hops: Vec<Vec<Vec<usize>>>,
    /// Node features for every layer, concatenated per layer
    /// (`features[k]` has `layers[k].len()` rows).
    pub features: Vec<Vec<Vec<f32>>>,
}

/// Neighbour sampler with fixed fan-outs.
pub struct Sampler<'a> {
    graph: &'a dyn GrinGraph,
    vlabel: LabelId,
    elabel: LabelId,
    pub fanouts: Vec<usize>,
    pub feature_dim: usize,
}

impl<'a> Sampler<'a> {
    /// Sampler over one (vertex label, edge label) pair.
    pub fn new(
        graph: &'a dyn GrinGraph,
        vlabel: LabelId,
        elabel: LabelId,
        fanouts: Vec<usize>,
        feature_dim: usize,
    ) -> Self {
        Self {
            graph,
            vlabel,
            elabel,
            fanouts,
            feature_dim,
        }
    }

    /// Samples one mini-batch starting from `seeds`; deterministic in
    /// `seed`.
    pub fn sample(&self, seeds: &[VId], seed: u64) -> SampledBatch {
        let mut rng = Pcg64Mcg::new((seed as u128) << 64 | 0x5a);
        let mut layers: Vec<Vec<VId>> = vec![seeds.to_vec()];
        let mut hops: Vec<Vec<Vec<usize>>> = Vec::with_capacity(self.fanouts.len());
        for &fanout in &self.fanouts {
            let frontier = layers.last().unwrap().clone();
            let mut next: Vec<VId> = Vec::new();
            let mut hop: Vec<Vec<usize>> = Vec::with_capacity(frontier.len());
            for &v in &frontier {
                let nbrs: Vec<VId> = self
                    .graph
                    .adjacent(v, self.vlabel, self.elabel, Direction::Out)
                    .map(|a| a.nbr)
                    .collect();
                let mut picks = Vec::with_capacity(fanout.min(nbrs.len()));
                if nbrs.len() <= fanout {
                    picks.extend(nbrs.iter().copied());
                } else {
                    // sample without replacement (partial Fisher-Yates)
                    let mut pool = nbrs.clone();
                    for i in 0..fanout {
                        let j = rng.gen_range(i..pool.len());
                        pool.swap(i, j);
                        picks.push(pool[i]);
                    }
                }
                let ids = picks
                    .into_iter()
                    .map(|w| {
                        next.push(w);
                        next.len() - 1
                    })
                    .collect();
                hop.push(ids);
            }
            hops.push(hop);
            layers.push(next);
        }
        // feature collection (the dataflow's sink node)
        let features = layers
            .iter()
            .map(|layer| {
                layer
                    .iter()
                    .map(|&v| self.features_of(v))
                    .collect::<Vec<_>>()
            })
            .collect();
        SampledBatch {
            seeds: seeds.to_vec(),
            layers,
            hops,
            features,
        }
    }

    /// Deterministic synthetic node features (stands in for stored feature
    /// tensors; keyed on the vertex id so every worker agrees).
    pub fn features_of(&self, v: VId) -> Vec<f32> {
        let mut x = v.0.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x1234);
        (0..self.feature_dim)
            .map(|_| {
                x ^= x >> 33;
                x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                ((x >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    /// Deterministic synthetic label in `0..classes` (class = a hash of the
    /// vertex id mixed with its degree so labels correlate with structure).
    pub fn label_of(&self, v: VId, classes: usize) -> usize {
        let deg = self
            .graph
            .degree(v, self.vlabel, self.elabel, Direction::Out);
        ((v.0 as usize).wrapping_mul(31).wrapping_add(deg * 7)) % classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_grin::graph::mock::MockGraph;

    fn graph() -> MockGraph {
        // vertex i → (i+1..i+20) mod 100
        let mut edges = Vec::new();
        for i in 0..100u64 {
            for j in 1..=20u64 {
                edges.push((i, (i + j) % 100, 1.0));
            }
        }
        MockGraph::new(100, &edges)
    }

    #[test]
    fn fanouts_are_respected() {
        let g = graph();
        let s = Sampler::new(&g, LabelId(0), LabelId(0), vec![15, 10, 5], 8);
        let batch = s.sample(&[VId(0), VId(50)], 1);
        assert_eq!(batch.layers.len(), 4);
        assert_eq!(batch.layers[1].len(), 2 * 15);
        assert_eq!(batch.layers[2].len(), 2 * 15 * 10);
        assert_eq!(batch.layers[3].len(), 2 * 15 * 10 * 5);
        // hop adjacency indexes are valid
        for (k, hop) in batch.hops.iter().enumerate() {
            for nbrs in hop {
                for &i in nbrs {
                    assert!(i < batch.layers[k + 1].len());
                }
            }
        }
    }

    #[test]
    fn low_degree_vertices_take_all_neighbors() {
        let g = MockGraph::new(4, &[(0, 1, 1.0), (0, 2, 1.0)]);
        let s = Sampler::new(&g, LabelId(0), LabelId(0), vec![10], 4);
        let batch = s.sample(&[VId(0)], 1);
        assert_eq!(batch.layers[1].len(), 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = graph();
        let s = Sampler::new(&g, LabelId(0), LabelId(0), vec![5, 5], 8);
        let a = s.sample(&[VId(3)], 42);
        let b = s.sample(&[VId(3)], 42);
        assert_eq!(a.layers, b.layers);
        let c = s.sample(&[VId(3)], 43);
        assert_ne!(a.layers, c.layers);
    }

    #[test]
    fn features_are_stable_and_sized() {
        let g = graph();
        let s = Sampler::new(&g, LabelId(0), LabelId(0), vec![2], 16);
        let f1 = s.features_of(VId(7));
        let f2 = s.features_of(VId(7));
        assert_eq!(f1, f2);
        assert_eq!(f1.len(), 16);
        assert_ne!(f1, s.features_of(VId(8)));
        // roughly centred
        let mean: f32 = f1.iter().sum::<f32>() / 16.0;
        assert!(mean.abs() < 0.5);
    }

    #[test]
    fn labels_in_range() {
        let g = graph();
        let s = Sampler::new(&g, LabelId(0), LabelId(0), vec![2], 4);
        for v in 0..100u64 {
            assert!(s.label_of(VId(v), 7) < 7);
        }
    }
}
