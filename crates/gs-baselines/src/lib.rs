//! # gs-baselines — design-replica comparator systems
//!
//! Every system the paper's evaluation compares GraphScope Flex against,
//! implemented as a *design replica*: each reproduces the published design
//! decisions that cause its performance profile (see DESIGN.md §4), so the
//! benchmark *shapes* — who wins and why — carry over even though absolute
//! numbers are machine-specific.
//!
//! | Module | Replica of | Used by |
//! |---|---|---|
//! | [`livegraph`] | LiveGraph (VLDB'20) | Fig. 7c |
//! | [`powergraph`] | PowerGraph (OSDI'12) | Fig. 7h/7i |
//! | [`gemini`] | Gemini (OSDI'16) | Fig. 7h/7i |
//! | [`gpu_baselines`] | Groute + Gunrock | Fig. 7j/7k |
//! | [`tugraph`] | TuGraph-like interactive DB | Fig. 7f/7g |
//! | [`sqlengine`] | relational SQL pipelines | Exp-6/8, Table 2 |

pub mod gemini;
pub mod gpu_baselines;
pub mod livegraph;
pub mod powergraph;
pub mod sqlengine;
pub mod tugraph;

pub use gemini::GeminiEngine;
pub use gpu_baselines::{GrouteEngine, GunrockEngine};
pub use livegraph::LiveGraphStore;
pub use powergraph::PowerGraphEngine;
pub use sqlengine::Table;
pub use tugraph::TuGraphDb;
