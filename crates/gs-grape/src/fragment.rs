//! Fragments: the per-worker piece of an edge-cut-partitioned graph.
//!
//! A fragment owns its *inner* vertices and all edges sourced at them;
//! destination vertices owned elsewhere appear as *outer* mirrors. Local
//! dense ids place inner vertices first (`0..inner_count`) and outer
//! mirrors after, so per-vertex state is a flat array — the layout GRAPE's
//! "highly optimized core operators for fragment management" rely on.

use gs_graph::csr::Csr;
use gs_graph::partition::{EdgeCutPartitioner, FragmentSpec, PartitionId};
use gs_graph::VId;
use std::collections::HashMap;

/// One fragment of a partitioned (optionally weighted) graph.
pub struct Fragment {
    pub id: PartitionId,
    pub total_fragments: usize,
    /// Total vertex count of the global graph.
    pub global_n: usize,
    /// Partitioner used to route messages to owners.
    pub router: EdgeCutPartitioner,
    /// local id → global id (inner first, then outer).
    pub l2g: Vec<VId>,
    /// global id → local id.
    g2l: HashMap<VId, u32>,
    /// Number of inner (owned) vertices.
    pub inner_count: usize,
    /// Local CSR over local ids (edges sourced at inner vertices).
    pub out: Csr,
    /// Local reverse CSR (in-edges of local vertices, from local sources).
    pub inn: Csr,
    /// Optional edge weights parallel to `out` edge ids.
    pub weights: Option<Vec<f64>>,
}

impl Fragment {
    /// Partitions a global edge list into `k` fragments.
    pub fn partition_edges(n: usize, edges: &[(VId, VId)], k: usize) -> Vec<Fragment> {
        Self::partition_weighted(n, edges, None, k)
    }

    /// Partitions with optional per-edge weights (parallel to `edges`).
    pub fn partition_weighted(
        n: usize,
        edges: &[(VId, VId)],
        weights: Option<&[f64]>,
        k: usize,
    ) -> Vec<Fragment> {
        let specs = FragmentSpec::partition(n, edges, k);
        let router = EdgeCutPartitioner::new(k);
        // weights must follow their edge through the per-fragment split
        let mut weight_of: HashMap<(VId, VId), Vec<f64>> = HashMap::new();
        if let Some(ws) = weights {
            for (&e, &w) in edges.iter().zip(ws) {
                weight_of.entry(e).or_default().push(w);
            }
        }
        specs
            .into_iter()
            .map(|spec| {
                let mut l2g: Vec<VId> = spec.inner.clone();
                l2g.extend(spec.outer.iter().copied());
                let g2l: HashMap<VId, u32> = l2g
                    .iter()
                    .enumerate()
                    .map(|(i, &g)| (g, i as u32))
                    .collect();
                let local_edges: Vec<(VId, VId)> = spec
                    .edges
                    .iter()
                    .map(|&(s, d)| (VId(g2l[&s] as u64), VId(g2l[&d] as u64)))
                    .collect();
                let out = Csr::from_edges(l2g.len(), &local_edges);
                let inn = out.transpose();
                // weights in CSR edge-id order: edge id i = i-th pushed edge
                let w = if weights.is_some() {
                    let mut per_edge = vec![0.0; local_edges.len()];
                    let mut pools = weight_of.clone();
                    // replay: visit edges in CSR edge-id order (push order ==
                    // spec.edges order)
                    for (i, &(s, d)) in spec.edges.iter().enumerate() {
                        let pool = pools.get_mut(&(s, d)).expect("weight pool");
                        per_edge[i] = pool.pop().expect("weight");
                    }
                    Some(per_edge)
                } else {
                    None
                };
                Fragment {
                    id: spec.id,
                    total_fragments: k,
                    global_n: n,
                    router,
                    l2g,
                    g2l,
                    inner_count: spec.inner.len(),
                    out,
                    inn,
                    weights: w,
                }
            })
            .collect()
    }

    /// Local id of a global vertex, if present on this fragment.
    #[inline]
    pub fn local(&self, g: VId) -> Option<u32> {
        self.g2l.get(&g).copied()
    }

    /// Global id of a local vertex.
    #[inline]
    pub fn global(&self, l: u32) -> VId {
        self.l2g[l as usize]
    }

    /// Whether a local id is an inner (owned) vertex.
    #[inline]
    pub fn is_inner(&self, l: u32) -> bool {
        (l as usize) < self.inner_count
    }

    /// Owner fragment of a global vertex.
    #[inline]
    pub fn owner(&self, g: VId) -> PartitionId {
        self.router.owner(g)
    }

    /// Local vertex count (inner + outer).
    #[inline]
    pub fn local_count(&self) -> usize {
        self.l2g.len()
    }

    /// Out-neighbors (local ids) of a local vertex.
    #[inline]
    pub fn out_neighbors(&self, l: u32) -> &[VId] {
        self.out.neighbors(VId(l as u64))
    }

    /// Edge ids parallel to [`Fragment::out_neighbors`] (index `weights`).
    #[inline]
    pub fn out_edge_ids(&self, l: u32) -> &[gs_graph::EId] {
        self.out.edge_ids(VId(l as u64))
    }

    /// Local edge count.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out.edge_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Vec<(VId, VId)> {
        (0..n as u64)
            .map(|i| (VId(i), VId((i + 1) % n as u64)))
            .collect()
    }

    #[test]
    fn fragments_cover_graph() {
        let edges = ring(100);
        let frags = Fragment::partition_edges(100, &edges, 4);
        let inner_total: usize = frags.iter().map(|f| f.inner_count).sum();
        let edge_total: usize = frags.iter().map(|f| f.edge_count()).sum();
        assert_eq!(inner_total, 100);
        assert_eq!(edge_total, 100);
    }

    #[test]
    fn local_global_round_trip() {
        let edges = ring(50);
        let frags = Fragment::partition_edges(50, &edges, 3);
        for f in &frags {
            for l in 0..f.local_count() as u32 {
                let g = f.global(l);
                assert_eq!(f.local(g), Some(l));
                if f.is_inner(l) {
                    assert_eq!(f.owner(g), f.id);
                }
            }
        }
    }

    #[test]
    fn edges_point_to_valid_locals() {
        let edges = ring(64);
        let frags = Fragment::partition_edges(64, &edges, 4);
        for f in &frags {
            for l in 0..f.inner_count as u32 {
                for &nbr in f.out_neighbors(l) {
                    assert!((nbr.index()) < f.local_count());
                }
            }
        }
    }

    #[test]
    fn weights_follow_edges() {
        let edges = vec![(VId(0), VId(1)), (VId(1), VId(2)), (VId(2), VId(0))];
        let weights = vec![0.1, 0.2, 0.3];
        let frags = Fragment::partition_weighted(3, &edges, Some(&weights), 2);
        let mut seen: Vec<f64> = Vec::new();
        for f in &frags {
            if let Some(ws) = &f.weights {
                for l in 0..f.inner_count as u32 {
                    for (&nbr, &eid) in f.out_neighbors(l).iter().zip(f.out_edge_ids(l)) {
                        let _ = nbr;
                        seen.push(ws[eid.index()]);
                    }
                }
            }
        }
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(seen, weights);
    }

    #[test]
    fn single_fragment_has_everything_inner() {
        let edges = ring(10);
        let frags = Fragment::partition_edges(10, &edges, 1);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].inner_count, 10);
        assert_eq!(frags[0].local_count(), 10);
    }
}
