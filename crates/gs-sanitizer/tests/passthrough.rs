//! The wrappers must behave exactly like the primitives they wrap in both
//! feature configurations, and a run that never enabled the sanitizer must
//! report nothing. These tests compile with and without `sanitize`.

use gs_sanitizer::channel;
use gs_sanitizer::{SharedCell, TrackedBarrier, TrackedMutex, TrackedRwLock};

#[test]
fn compiled_flag_matches_build() {
    assert_eq!(gs_sanitizer::COMPILED, cfg!(feature = "sanitize"));
}

#[test]
fn mutex_behaves_like_a_mutex() {
    let m = TrackedMutex::new("pt.mutex", 0u64);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            });
        }
    });
    assert_eq!(m.into_inner(), 4000);
}

#[test]
fn rwlock_behaves_like_an_rwlock() {
    let l = TrackedRwLock::new("pt.rwlock", vec![1, 2, 3]);
    assert_eq!(l.read().len(), 3);
    l.write().push(4);
    assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    assert_eq!(l.into_inner().len(), 4);
}

#[test]
fn barrier_elects_one_leader_per_round() {
    let b = TrackedBarrier::new("pt.barrier", 4);
    let leaders = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..10 {
                    if b.wait().is_leader() {
                        leaders.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(leaders.into_inner(), 10);
}

#[test]
fn channels_deliver_in_order_and_disconnect() {
    let (tx, rx) = channel::unbounded::<u64>("pt.chan");
    for i in 0..100 {
        tx.send(i).unwrap();
    }
    assert_eq!(rx.len(), 100);
    assert!(!rx.is_empty());
    let got: Vec<u64> = (0..100).map(|_| rx.recv().unwrap()).collect();
    assert_eq!(got, (0..100).collect::<Vec<_>>());
    assert!(rx.try_recv().is_err());
    drop(tx);
    assert!(rx.recv().is_err(), "disconnect surfaces as RecvError");
}

#[test]
fn bounded_channel_iterates_until_disconnect() {
    let (tx, rx) = channel::bounded::<u64>("pt.bounded", 8);
    let h = std::thread::spawn(move || {
        for i in 0..32 {
            tx.send(i).unwrap();
        }
    });
    let sum: u64 = rx.iter().sum();
    h.join().unwrap();
    assert_eq!(sum, (0..32).sum());
}

#[test]
fn shared_cell_round_trips() {
    let c = SharedCell::new("pt.cell", 5u64);
    assert_eq!(c.get(), 5);
    c.update(|v| *v *= 3);
    assert_eq!(c.read_with(|v| *v + 1), 16);
    c.set(0);
    assert_eq!(c.into_inner(), 0);
}

#[test]
fn no_enable_means_empty_report() {
    // tracked ops without `enable` must leave no trace in either build
    let m = TrackedMutex::new("pt.silent", ());
    drop(m.lock());
    let (tx, rx) = channel::unbounded::<u64>("pt.silent.chan");
    tx.send(1).unwrap();
    rx.recv().unwrap();
    let report = gs_sanitizer::take_report();
    assert!(report.is_clean(), "{}", report.render());
    let (events, dropped) = gs_sanitizer::take_events();
    assert!(events.is_empty());
    assert_eq!(dropped, 0);
    assert!(!gs_sanitizer::enabled());
}
