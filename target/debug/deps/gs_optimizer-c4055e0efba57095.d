/root/repo/target/debug/deps/gs_optimizer-c4055e0efba57095.d: crates/gs-optimizer/src/lib.rs crates/gs-optimizer/src/glogue.rs crates/gs-optimizer/src/rbo.rs

/root/repo/target/debug/deps/gs_optimizer-c4055e0efba57095: crates/gs-optimizer/src/lib.rs crates/gs-optimizer/src/glogue.rs crates/gs-optimizer/src/rbo.rs

crates/gs-optimizer/src/lib.rs:
crates/gs-optimizer/src/glogue.rs:
crates/gs-optimizer/src/rbo.rs:
