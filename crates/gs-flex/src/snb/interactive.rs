//! LDBC SNB Interactive workload (lite): the 14 complex, 7 short, and 8
//! update queries of Fig. 7(f), adapted to the SNB-lite schema (see
//! DESIGN.md). Every query is written once against [`SnbBackend`], so the
//! Flex and TuGraph-like systems execute identical logic and differ only in
//! storage/engine design.

use super::backend::SnbBackend;
use gs_graph::Value;
use std::collections::{HashMap, HashSet, VecDeque};

/// A query result: rows of display values (used for cross-system diffing).
pub type Rows = Vec<Vec<Value>>;

/// Query parameters drawn per-invocation by the benchmark driver.
#[derive(Clone, Debug)]
pub struct Params {
    pub person: u64,
    pub person2: u64,
    pub date: i64,
    pub tag: u64,
    pub forum: u64,
    pub first_name: String,
    pub limit: usize,
}

impl Params {
    pub fn example() -> Self {
        Self {
            person: 0,
            person2: 1,
            date: 15300,
            tag: 0,
            forum: 0,
            first_name: "Jan".to_string(),
            limit: 20,
        }
    }
}

fn take_top<K: Ord, V>(mut items: Vec<(K, V)>, limit: usize) -> Vec<(K, V)> {
    items.sort_by(|a, b| a.0.cmp(&b.0));
    items.truncate(limit);
    items
}

/// Friends of friends up to `depth` hops with hop distance (excluding the
/// start person).
fn khop_friends(b: &dyn SnbBackend, start: u64, depth: usize) -> HashMap<u64, usize> {
    let mut dist: HashMap<u64, usize> = HashMap::new();
    let mut q = VecDeque::new();
    dist.insert(start, 0);
    q.push_back(start);
    while let Some(p) = q.pop_front() {
        let d = dist[&p];
        if d == depth {
            continue;
        }
        for f in b.friends(p) {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(f) {
                e.insert(d + 1);
                q.push_back(f);
            }
        }
    }
    dist.remove(&start);
    dist
}

// ------------------------------------------------------------- complex

/// IC1: transitive friends (≤3 hops) with a given first name, ordered by
/// (distance, lastName, id).
pub fn ic1(b: &dyn SnbBackend, p: &Params) -> Rows {
    let friends = khop_friends(b, p.person, 3);
    let mut rows: Vec<((usize, String, u64), ())> = friends
        .into_iter()
        .filter(|(f, _)| b.person_prop(*f, "firstName").as_str() == Some(p.first_name.as_str()))
        .map(|(f, d)| {
            let last = b
                .person_prop(f, "lastName")
                .as_str()
                .unwrap_or("")
                .to_string();
            ((d, last, f), ())
        })
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows.truncate(p.limit);
    rows.into_iter()
        .map(|((d, last, f), _)| vec![Value::Int(f as i64), Value::Str(last), Value::Int(d as i64)])
        .collect()
}

/// IC2: recent posts of friends created before `date`, newest first.
pub fn ic2(b: &dyn SnbBackend, p: &Params) -> Rows {
    let mut items = Vec::new();
    for f in b.friends(p.person) {
        for post in b.posts_by(f) {
            let d = b.post_prop(post, "creationDate").as_int().unwrap_or(0);
            if d < p.date {
                items.push(((std::cmp::Reverse(d), post), f));
            }
        }
    }
    take_top(items, p.limit)
        .into_iter()
        .map(|((std::cmp::Reverse(d), post), f)| {
            vec![
                Value::Int(f as i64),
                Value::Int(post as i64),
                Value::Date(d),
            ]
        })
        .collect()
}

/// IC3: friends (≤2 hops) ranked by posts carrying the parameter tag
/// within the window `[date, date+30)`.
pub fn ic3(b: &dyn SnbBackend, p: &Params) -> Rows {
    let friends = khop_friends(b, p.person, 2);
    let mut counts: Vec<((std::cmp::Reverse<usize>, u64), ())> = Vec::new();
    for &f in friends.keys() {
        let mut c = 0usize;
        for post in b.posts_by(f) {
            let d = b.post_prop(post, "creationDate").as_int().unwrap_or(0);
            if d >= p.date && d < p.date + 30 && b.tags_of_post(post).contains(&p.tag) {
                c += 1;
            }
        }
        if c > 0 {
            counts.push(((std::cmp::Reverse(c), f), ()));
        }
    }
    take_top(counts, p.limit)
        .into_iter()
        .map(|((std::cmp::Reverse(c), f), _)| vec![Value::Int(f as i64), Value::Int(c as i64)])
        .collect()
}

/// IC4: tags on friends' posts in the window, ranked by count then name.
pub fn ic4(b: &dyn SnbBackend, p: &Params) -> Rows {
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for f in b.friends(p.person) {
        for post in b.posts_by(f) {
            let d = b.post_prop(post, "creationDate").as_int().unwrap_or(0);
            if d >= p.date && d < p.date + 30 {
                for t in b.tags_of_post(post) {
                    *counts.entry(t).or_insert(0) += 1;
                }
            }
        }
    }
    let items: Vec<((std::cmp::Reverse<usize>, String), ())> = counts
        .into_iter()
        .map(|(t, c)| ((std::cmp::Reverse(c), b.tag_name(t)), ()))
        .collect();
    take_top(items, p.limit)
        .into_iter()
        .map(|((std::cmp::Reverse(c), name), _)| vec![Value::Str(name), Value::Int(c as i64)])
        .collect()
}

/// IC5: forums friends joined after `date`, ranked by posts those friends
/// made in them.
pub fn ic5(b: &dyn SnbBackend, p: &Params) -> Rows {
    let friends: HashSet<u64> = b.friends(p.person).into_iter().collect();
    let mut forum_members: HashMap<u64, HashSet<u64>> = HashMap::new();
    for &f in &friends {
        for (forum, join) in b.forums_of_member(f) {
            if join > p.date {
                forum_members.entry(forum).or_default().insert(f);
            }
        }
    }
    let mut items = Vec::new();
    for (forum, joined) in &forum_members {
        let c = b
            .posts_in_forum(*forum)
            .into_iter()
            .filter(|post| {
                b.post_creator(*post)
                    .map(|cr| joined.contains(&cr))
                    .unwrap_or(false)
            })
            .count();
        items.push(((std::cmp::Reverse(c), *forum), ()));
    }
    take_top(items, p.limit)
        .into_iter()
        .map(|((std::cmp::Reverse(c), forum), _)| {
            vec![Value::Int(forum as i64), Value::Int(c as i64)]
        })
        .collect()
}

/// IC6: tags co-occurring with the parameter tag on friends' (≤2 hop) posts.
pub fn ic6(b: &dyn SnbBackend, p: &Params) -> Rows {
    let friends = khop_friends(b, p.person, 2);
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for &f in friends.keys() {
        for post in b.posts_by(f) {
            let tags = b.tags_of_post(post);
            if tags.contains(&p.tag) {
                for t in tags {
                    if t != p.tag {
                        *counts.entry(t).or_insert(0) += 1;
                    }
                }
            }
        }
    }
    let items: Vec<((std::cmp::Reverse<usize>, String), ())> = counts
        .into_iter()
        .map(|(t, c)| ((std::cmp::Reverse(c), b.tag_name(t)), ()))
        .collect();
    take_top(items, 10)
        .into_iter()
        .map(|((std::cmp::Reverse(c), name), _)| vec![Value::Str(name), Value::Int(c as i64)])
        .collect()
}

/// IC7: most recent likers of the person's posts.
pub fn ic7(b: &dyn SnbBackend, p: &Params) -> Rows {
    let mut items = Vec::new();
    for post in b.posts_by(p.person) {
        for (liker, d) in b.likes_of_post(post) {
            items.push(((std::cmp::Reverse(d), liker, post), ()));
        }
    }
    take_top(items, p.limit)
        .into_iter()
        .map(|((std::cmp::Reverse(d), liker, post), _)| {
            vec![
                Value::Int(liker as i64),
                Value::Int(post as i64),
                Value::Date(d),
            ]
        })
        .collect()
}

/// IC8: most recent replies to the person's posts.
pub fn ic8(b: &dyn SnbBackend, p: &Params) -> Rows {
    let mut items = Vec::new();
    for post in b.posts_by(p.person) {
        for c in b.replies_of_post(post) {
            let d = b.comment_prop(c, "creationDate").as_int().unwrap_or(0);
            let author = b.comment_creator(c).unwrap_or(0);
            items.push(((std::cmp::Reverse(d), c), author));
        }
    }
    take_top(items, p.limit)
        .into_iter()
        .map(|((std::cmp::Reverse(d), c), author)| {
            vec![
                Value::Int(author as i64),
                Value::Int(c as i64),
                Value::Date(d),
            ]
        })
        .collect()
}

/// IC9: recent posts and comments by ≤2-hop friends strictly before `date`.
pub fn ic9(b: &dyn SnbBackend, p: &Params) -> Rows {
    let friends = khop_friends(b, p.person, 2);
    let mut items = Vec::new();
    for &f in friends.keys() {
        for post in b.posts_by(f) {
            let d = b.post_prop(post, "creationDate").as_int().unwrap_or(0);
            if d < p.date {
                items.push(((std::cmp::Reverse(d), post), (f, false)));
            }
        }
        for c in b.comments_by(f) {
            let d = b.comment_prop(c, "creationDate").as_int().unwrap_or(0);
            if d < p.date {
                items.push(((std::cmp::Reverse(d), c), (f, true)));
            }
        }
    }
    take_top(items, p.limit)
        .into_iter()
        .map(|((std::cmp::Reverse(d), id), (f, is_comment))| {
            vec![
                Value::Int(f as i64),
                Value::Int(id as i64),
                Value::Bool(is_comment),
                Value::Date(d),
            ]
        })
        .collect()
}

/// IC10: friend-of-friend recommendation scored by shared interests.
pub fn ic10(b: &dyn SnbBackend, p: &Params) -> Rows {
    let direct: HashSet<u64> = b.friends(p.person).into_iter().collect();
    let my_interests: HashSet<u64> = b.interests(p.person).into_iter().collect();
    let mut fofs: HashSet<u64> = HashSet::new();
    for &f in &direct {
        for ff in b.friends(f) {
            if ff != p.person && !direct.contains(&ff) {
                fofs.insert(ff);
            }
        }
    }
    let mut items = Vec::new();
    for fof in fofs {
        let score = b
            .interests(fof)
            .into_iter()
            .filter(|t| my_interests.contains(t))
            .count() as i64;
        items.push(((std::cmp::Reverse(score), fof), ()));
    }
    take_top(items, 10)
        .into_iter()
        .map(|((std::cmp::Reverse(s), f), _)| vec![Value::Int(f as i64), Value::Int(s)])
        .collect()
}

/// IC11: friends' forum memberships that started before `date`, ordered by
/// join date.
pub fn ic11(b: &dyn SnbBackend, p: &Params) -> Rows {
    let mut items = Vec::new();
    for f in b.friends(p.person) {
        for (forum, join) in b.forums_of_member(f) {
            if join < p.date {
                items.push(((join, f, forum), ()));
            }
        }
    }
    take_top(items, p.limit)
        .into_iter()
        .map(|((join, f, forum), _)| {
            vec![
                Value::Int(f as i64),
                Value::Int(forum as i64),
                Value::Date(join),
            ]
        })
        .collect()
}

/// IC12: expert search — friends ranked by replies they wrote to posts
/// carrying the parameter tag.
pub fn ic12(b: &dyn SnbBackend, p: &Params) -> Rows {
    let mut items = Vec::new();
    for f in b.friends(p.person) {
        let mut c = 0usize;
        for comment in b.comments_by(f) {
            if let Some(post) = b.reply_target(comment) {
                if b.tags_of_post(post).contains(&p.tag) {
                    c += 1;
                }
            }
        }
        if c > 0 {
            items.push(((std::cmp::Reverse(c), f), ()));
        }
    }
    take_top(items, p.limit)
        .into_iter()
        .map(|((std::cmp::Reverse(c), f), _)| vec![Value::Int(f as i64), Value::Int(c as i64)])
        .collect()
}

/// IC13: shortest KNOWS-path length between two persons (-1 if none).
pub fn ic13(b: &dyn SnbBackend, p: &Params) -> Rows {
    let mut dist: HashMap<u64, i64> = HashMap::new();
    let mut q = VecDeque::new();
    dist.insert(p.person, 0);
    q.push_back(p.person);
    while let Some(x) = q.pop_front() {
        if x == p.person2 {
            break;
        }
        let d = dist[&x];
        for f in b.friends(x) {
            dist.entry(f).or_insert_with(|| {
                q.push_back(f);
                d + 1
            });
        }
    }
    vec![vec![Value::Int(
        dist.get(&p.person2).copied().unwrap_or(-1),
    )]]
}

/// IC14: number of distinct shortest KNOWS-paths between two persons.
pub fn ic14(b: &dyn SnbBackend, p: &Params) -> Rows {
    let mut dist: HashMap<u64, i64> = HashMap::new();
    let mut paths: HashMap<u64, u64> = HashMap::new();
    let mut q = VecDeque::new();
    dist.insert(p.person, 0);
    paths.insert(p.person, 1);
    q.push_back(p.person);
    while let Some(x) = q.pop_front() {
        let d = dist[&x];
        if let Some(&dt) = dist.get(&p.person2) {
            if d >= dt {
                continue;
            }
        }
        let px = paths[&x];
        for f in b.friends(x) {
            match dist.get(&f) {
                None => {
                    dist.insert(f, d + 1);
                    paths.insert(f, px);
                    q.push_back(f);
                }
                Some(&df) if df == d + 1 => {
                    *paths.get_mut(&f).unwrap() += px;
                }
                _ => {}
            }
        }
    }
    vec![vec![Value::Int(
        paths.get(&p.person2).copied().unwrap_or(0) as i64,
    )]]
}

// ------------------------------------------------------------- short

/// IS1: person profile.
pub fn is1(b: &dyn SnbBackend, p: &Params) -> Rows {
    vec![vec![
        b.person_prop(p.person, "firstName"),
        b.person_prop(p.person, "lastName"),
        b.person_prop(p.person, "birthday"),
        b.person_prop(p.person, "creationDate"),
    ]]
}

/// IS2: the person's 10 most recent posts.
pub fn is2(b: &dyn SnbBackend, p: &Params) -> Rows {
    let items: Vec<((std::cmp::Reverse<i64>, u64), ())> = b
        .posts_by(p.person)
        .into_iter()
        .map(|post| {
            (
                (
                    std::cmp::Reverse(b.post_prop(post, "creationDate").as_int().unwrap_or(0)),
                    post,
                ),
                (),
            )
        })
        .collect();
    take_top(items, 10)
        .into_iter()
        .map(|((std::cmp::Reverse(d), post), _)| vec![Value::Int(post as i64), Value::Date(d)])
        .collect()
}

/// IS3: friends with KNOWS creation dates, newest first.
pub fn is3(b: &dyn SnbBackend, p: &Params) -> Rows {
    let mut items: Vec<((std::cmp::Reverse<i64>, u64), ())> = b
        .friends(p.person)
        .into_iter()
        .map(|f| {
            (
                (std::cmp::Reverse(b.knows_date(p.person, f).unwrap_or(0)), f),
                (),
            )
        })
        .collect();
    items.sort_by_key(|a| a.0);
    items
        .into_iter()
        .map(|((std::cmp::Reverse(d), f), _)| vec![Value::Int(f as i64), Value::Date(d)])
        .collect()
}

/// IS4: post content and date (uses `person` param as a post id).
pub fn is4(b: &dyn SnbBackend, p: &Params) -> Rows {
    vec![vec![
        b.post_prop(p.person, "content"),
        b.post_prop(p.person, "creationDate"),
    ]]
}

/// IS5: creator of a post.
pub fn is5(b: &dyn SnbBackend, p: &Params) -> Rows {
    vec![vec![Value::Int(
        b.post_creator(p.person).map(|c| c as i64).unwrap_or(-1),
    )]]
}

/// IS6: forum of a post with its title.
pub fn is6(b: &dyn SnbBackend, p: &Params) -> Rows {
    match b.forum_of_post(p.person) {
        Some(f) => vec![vec![Value::Int(f as i64), b.forum_prop(f, "title")]],
        None => vec![],
    }
}

/// IS7: replies of a post with their authors.
pub fn is7(b: &dyn SnbBackend, p: &Params) -> Rows {
    let items: Vec<((std::cmp::Reverse<i64>, u64), u64)> = b
        .replies_of_post(p.person)
        .into_iter()
        .map(|c| {
            (
                (
                    std::cmp::Reverse(b.comment_prop(c, "creationDate").as_int().unwrap_or(0)),
                    c,
                ),
                b.comment_creator(c).unwrap_or(0),
            )
        })
        .collect();
    take_top(items, 20)
        .into_iter()
        .map(|((std::cmp::Reverse(d), c), author)| {
            vec![
                Value::Int(c as i64),
                Value::Int(author as i64),
                Value::Date(d),
            ]
        })
        .collect()
}

// ------------------------------------------------------------- updates

/// The eight update operations, parameterised by a fresh-id counter.
pub struct UpdateIds {
    pub next_person: u64,
    pub next_post: u64,
    pub next_comment: u64,
    pub next_forum: u64,
}

/// IU1: add person.
pub fn iu1(b: &dyn SnbBackend, ids: &mut UpdateIds, date: i64) -> gs_graph::Result<u64> {
    let id = ids.next_person;
    ids.next_person += 1;
    b.add_person(id, "New", "Person", date - 9000, date)?;
    Ok(id)
}

/// IU2: add like.
pub fn iu2(b: &dyn SnbBackend, person: u64, post: u64, date: i64) -> gs_graph::Result<()> {
    b.add_like(person, post, date)
}

/// IU3: add interest (stands in for comment-likes absent from SNB-lite).
pub fn iu3(b: &dyn SnbBackend, person: u64, tag: u64) -> gs_graph::Result<()> {
    b.add_interest(person, tag)
}

/// IU4: add forum.
pub fn iu4(b: &dyn SnbBackend, ids: &mut UpdateIds, date: i64) -> gs_graph::Result<u64> {
    let id = ids.next_forum;
    ids.next_forum += 1;
    b.add_forum(id, "new forum", date)?;
    Ok(id)
}

/// IU5: add forum membership.
pub fn iu5(b: &dyn SnbBackend, forum: u64, person: u64, date: i64) -> gs_graph::Result<()> {
    b.add_member(forum, person, date)
}

/// IU6: add post.
pub fn iu6(
    b: &dyn SnbBackend,
    ids: &mut UpdateIds,
    creator: u64,
    forum: u64,
    date: i64,
) -> gs_graph::Result<u64> {
    let id = ids.next_post;
    ids.next_post += 1;
    b.add_post(id, creator, forum, "fresh content", date, 42)?;
    Ok(id)
}

/// IU7: add comment.
pub fn iu7(
    b: &dyn SnbBackend,
    ids: &mut UpdateIds,
    creator: u64,
    post: u64,
    date: i64,
) -> gs_graph::Result<u64> {
    let id = ids.next_comment;
    ids.next_comment += 1;
    b.add_comment(id, creator, post, date, 17)?;
    Ok(id)
}

/// IU8: add friendship.
pub fn iu8(b: &dyn SnbBackend, a: u64, c: u64, date: i64) -> gs_graph::Result<()> {
    b.add_knows(a, c, date)
}

/// Complex-query dispatch table (for the benchmark driver).
pub type ComplexQuery = fn(&dyn SnbBackend, &Params) -> Rows;

/// The ordered complex query set C1–C14.
pub const COMPLEX_QUERIES: [(&str, ComplexQuery); 14] = [
    ("C1", ic1),
    ("C2", ic2),
    ("C3", ic3),
    ("C4", ic4),
    ("C5", ic5),
    ("C6", ic6),
    ("C7", ic7),
    ("C8", ic8),
    ("C9", ic9),
    ("C10", ic10),
    ("C11", ic11),
    ("C12", ic12),
    ("C13", ic13),
    ("C14", ic14),
];

/// The ordered short query set S1–S7.
pub const SHORT_QUERIES: [(&str, ComplexQuery); 7] = [
    ("S1", is1),
    ("S2", is2),
    ("S3", is3),
    ("S4", is4),
    ("S5", is5),
    ("S6", is6),
    ("S7", is7),
];

/// Canonicalises rows for cross-system comparison (orders may legitimately
/// differ within equal sort keys).
pub fn canonical(mut rows: Rows) -> Rows {
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    rows
}
