/root/repo/target/debug/deps/graphscope_flex-b0705472efd3e6d0.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgraphscope_flex-b0705472efd3e6d0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
