//! Storm-harness determinism and graceful-degradation invariants.
//!
//! The open-loop generator must be a pure function of its seed: two runs
//! with the same `StormConfig` produce the identical request schedule and
//! an identical `BENCH_storm.json` modulo timing fields (wall clock,
//! latencies, throughput). `determinism_view()` is exactly that
//! timing-free projection.

use gs_bench::storm::{run, schedule, schedule_digest, StormConfig};

fn quick(seed: u64) -> StormConfig {
    StormConfig {
        seed,
        duration_supersteps: 1,
        workers: 2,
    }
}

#[test]
fn same_seed_same_schedule_and_digest() {
    let cfg = quick(42);
    for phase in 0..3 {
        assert_eq!(
            schedule(&cfg, phase, 200),
            schedule(&cfg, phase, 200),
            "phase {phase} schedule must be a pure function of the seed"
        );
    }
    let a: Vec<_> = (0..3).map(|p| schedule(&cfg, p, 200)).collect();
    let b: Vec<_> = (0..3).map(|p| schedule(&cfg, p, 200)).collect();
    assert_eq!(schedule_digest(&a), schedule_digest(&b));

    let other = quick(43);
    let c: Vec<_> = (0..3).map(|p| schedule(&other, p, 200)).collect();
    assert_ne!(
        schedule_digest(&a),
        schedule_digest(&c),
        "a different seed must produce a different storm"
    );
}

#[test]
fn full_runs_agree_modulo_timings_and_account_every_request() {
    let cfg = quick(42);
    let first = run(&cfg);
    let second = run(&cfg);

    assert_eq!(
        first.determinism_view(),
        second.determinism_view(),
        "same seed, same report (modulo timing fields)"
    );
    assert_eq!(first.schedule_digest, second.schedule_digest);

    for report in [&first, &second] {
        assert_eq!(report.phases.len(), 3);
        for p in &report.phases {
            assert_eq!(
                p.completed + p.shed + p.errors,
                p.offered,
                "phase {}: every offered request ends as rows, a shed, or an error",
                p.name
            );
            assert_eq!(p.errors, 0, "phase {}: shedding is not an error", p.name);
            assert_eq!(
                p.mix.iter().sum::<u64>(),
                p.completed,
                "the per-template mix counts completed requests"
            );
        }
        assert!(
            report.prepared_iterations > 0 && report.prepared_us > 0.0,
            "the prepared-vs-parse section must have run"
        );
        assert!(
            report.data_versions_seen > 1,
            "the online writer must have committed during surge/overload"
        );
    }
}
