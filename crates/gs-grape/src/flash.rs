//! The FLASH model: vertex-subset-centric programming with flexible control
//! flow and non-neighbor communication (paper §6, after FLASH [ICDE'23]).
//!
//! A FLASH program is ordinary sequential Rust driving *collective*
//! primitives over a distributed [`VertexSubset`]: `vertex_map` transforms,
//! `edge_map` pushes along edges, `size` is a global count — and, beyond
//! fixed-point vertex-centric models, [`FlashContext::send`] can message
//! *any* vertex, with [`FlashContext::deliver`] as the matching collective
//! receive. Programs run SPMD: every fragment's worker executes the same
//! control flow, so collectives must be invoked the same number of times on
//! every worker.

use crate::engine::{CommHandle, GrapeEngine};
use crate::fragment::Fragment;
use crate::messages::{OutBuffers, Payload};
use gs_graph::VId;

/// A distributed vertex subset: a bitset over this fragment's inner
/// vertices (each fragment holds its share).
#[derive(Clone, Debug)]
pub struct VertexSubset {
    bits: Vec<bool>,
}

impl VertexSubset {
    /// All inner vertices.
    pub fn full(frag: &Fragment) -> Self {
        Self {
            bits: vec![true; frag.inner_count],
        }
    }

    /// Empty subset.
    pub fn empty(frag: &Fragment) -> Self {
        Self {
            bits: vec![false; frag.inner_count],
        }
    }

    /// Membership of a local inner vertex.
    #[inline]
    pub fn contains(&self, l: u32) -> bool {
        self.bits.get(l as usize).copied().unwrap_or(false)
    }

    /// Adds / removes a local inner vertex.
    #[inline]
    pub fn set(&mut self, l: u32, member: bool) {
        self.bits[l as usize] = member;
    }

    /// Local member count.
    pub fn local_size(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Iterates local member ids.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i as u32)
    }
}

/// Per-worker FLASH execution context.
pub struct FlashContext<'a> {
    pub frag: &'a Fragment,
    comm: &'a CommHandle,
    out: OutBuffers,
}

impl<'a> FlashContext<'a> {
    /// Global size of a subset (collective).
    pub fn size(&self, subset: &VertexSubset) -> u64 {
        self.comm.allreduce(subset.local_size() as u64)
    }

    /// Filters/updates members sequentially on each fragment: keep vertices
    /// where `f` returns true.
    pub fn vertex_filter(
        &self,
        subset: &VertexSubset,
        mut f: impl FnMut(u32) -> bool,
    ) -> VertexSubset {
        let mut out = VertexSubset::empty(self.frag);
        for l in subset.iter() {
            if f(l) {
                out.set(l, true);
            }
        }
        out
    }

    /// Queues a message to any vertex by global id (non-neighbor
    /// communication — FLASH's differentiator).
    #[inline]
    pub fn send<M: Payload>(&mut self, target: VId, msg: M) {
        let to = self.frag.owner(target).index();
        self.out.send(to, target, msg);
    }

    /// Pushes `f(src_local, dst_global)`-generated messages along the out
    /// edges of every subset member, then delivers (collective). Returns
    /// received `(local inner id, msg)` pairs.
    pub fn edge_map<M: Payload>(
        &mut self,
        subset: &VertexSubset,
        mut f: impl FnMut(u32, VId) -> Option<M>,
    ) -> Vec<(u32, M)> {
        let frag = self.frag;
        let out = &mut self.out;
        for l in subset.iter() {
            frag.for_each_out(l, |nbr, _| {
                let g = frag.global(nbr.0 as u32);
                if let Some(m) = f(l, g) {
                    let to = frag.owner(g).index();
                    out.send(to, g, m);
                }
            });
        }
        self.deliver()
    }

    /// Collective exchange of queued messages; returns `(local id, msg)`.
    pub fn deliver<M: Payload>(&mut self) -> Vec<(u32, M)> {
        let (blocks, _) = self.comm.exchange(&mut self.out);
        let mut out = Vec::new();
        for b in &blocks {
            b.for_each::<M>(|g, m| {
                if let Some(l) = self.frag.local(g) {
                    if self.frag.is_inner(l) {
                        out.push((l, m));
                    }
                }
            });
        }
        out
    }
}

/// Runs a FLASH program (SPMD closure per fragment); gathers per-vertex
/// outputs.
pub fn run_flash<T, F>(engine: &GrapeEngine, program: F) -> Vec<T>
where
    T: Clone + Default + Send + 'static,
    F: Fn(&mut FlashContext<'_>) -> Vec<(VId, T)> + Sync,
{
    engine.run(|frag, comm| {
        let mut ctx = FlashContext {
            frag,
            comm,
            out: OutBuffers::new(comm.workers),
        };
        program(&mut ctx)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_is_global() {
        let edges: Vec<(VId, VId)> = (0..20u64).map(|i| (VId(i), VId((i + 1) % 20))).collect();
        let engine = GrapeEngine::from_edges(20, &edges, 3);
        let out = run_flash(&engine, |ctx| {
            let all = VertexSubset::full(ctx.frag);
            let n = ctx.size(&all);
            assert_eq!(n, 20);
            vec![]
        });
        let _: Vec<u64> = out;
    }

    #[test]
    fn edge_map_reaches_neighbors() {
        // star 0 -> 1..5
        let edges: Vec<(VId, VId)> = (1..6u64).map(|i| (VId(0), VId(i))).collect();
        let engine = GrapeEngine::from_edges(6, &edges, 2);
        let got = run_flash(&engine, |ctx| {
            let all = VertexSubset::full(ctx.frag);
            let received = ctx.edge_map::<u64>(&all, |_, _| Some(7));
            received
                .into_iter()
                .map(|(l, m)| (ctx.frag.global(l), m))
                .collect()
        });
        // vertices 1..5 each received 7; vertex 0 received nothing (default)
        assert_eq!(got[0], 0);
        assert!(got[1..].iter().all(|&m| m == 7), "{got:?}");
    }

    #[test]
    fn non_neighbor_send_works() {
        let edges: Vec<(VId, VId)> = vec![(VId(0), VId(1))];
        let engine = GrapeEngine::from_edges(8, &edges, 4);
        let got = run_flash(&engine, |ctx| {
            // every fragment sends its inner-count to vertex 7 (no edge!)
            let count = ctx.frag.inner_count as u64;
            ctx.send(VId(7), count);
            let received: Vec<(u32, u64)> = ctx.deliver();
            let mut total = 0;
            for (l, m) in received {
                assert_eq!(ctx.frag.global(l), VId(7));
                total += m;
            }
            if total > 0 {
                vec![(VId(7), total)]
            } else {
                vec![]
            }
        });
        assert_eq!(got[7], 8, "vertex 7 collected all inner counts");
    }
}
