/root/repo/target/debug/deps/bytes-249e4ed670d78aee.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-249e4ed670d78aee.rlib: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-249e4ed670d78aee.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
