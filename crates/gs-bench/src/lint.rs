//! `gs-bench lint` — run the gs-lint workspace invariant linter and
//! print an irlint-style diagnostic table.
//!
//! The linter re-checks the stack's cross-cutting source contracts
//! (tracked sync primitives, deterministic reductions, graceful channel
//! failure, telemetry-name registry, feature-gate hygiene, injected
//! clocks) against the workspace's own sources and manifests. See
//! DESIGN.md §6g for the codes and the suppression story.

use crate::util::TablePrinter;
use gs_lint::{describe, format_registry, Level, LintConfig, ALL_CODES, REGISTRY_DUMP_FILE};
use std::path::PathBuf;

/// Walks up from the current directory to the workspace root (the
/// directory holding both `Cargo.toml` and `crates/`).
pub fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn level_str(level: Level) -> &'static str {
    match level {
        Level::Off => "off",
        Level::Warn => "warn",
        Level::Deny => "deny",
    }
}

/// Runs the workspace lint. `deny` promotes warnings to failures (the CI
/// bar); `write_registry` regenerates the machine-readable telemetry-name
/// dump from DESIGN.md before linting. Returns the process exit code.
pub fn run(deny: bool, write_registry: bool) -> i32 {
    let Some(root) = find_workspace_root() else {
        eprintln!("lint: could not locate the workspace root");
        return 2;
    };
    let cfg = LintConfig::default();

    if write_registry {
        let design = match std::fs::read_to_string(root.join("DESIGN.md")) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("lint: cannot read DESIGN.md: {e}");
                return 2;
            }
        };
        let registry = gs_lint::TelemetryRegistry::from_design_md(&design);
        let dump = format_registry(&registry);
        if let Err(e) = std::fs::write(root.join(REGISTRY_DUMP_FILE), dump) {
            eprintln!("lint: cannot write {REGISTRY_DUMP_FILE}: {e}");
            return 2;
        }
        println!("wrote {} names to {REGISTRY_DUMP_FILE}", registry.len());
    }

    let report = match gs_lint::lint_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: workspace walk failed: {e}");
            return 2;
        }
    };

    let mut table = TablePrinter::new(&["code", "level", "location", "message"]);
    for (f, level) in &report.findings {
        table.row(vec![
            f.code.to_string(),
            level_str(*level).to_string(),
            format!("{}:{}", f.file, f.line),
            f.message.clone(),
        ]);
    }
    for (file, line, msg) in &report.malformed_allows {
        table.row(vec![
            "allow".into(),
            "deny".into(),
            format!("{file}:{line}"),
            format!("malformed suppression: {msg}"),
        ]);
    }
    for (line, msg) in &report.baseline_errors {
        table.row(vec![
            "base".into(),
            "deny".into(),
            format!("{}:{line}", gs_lint::BASELINE_FILE),
            format!("malformed baseline entry: {msg}"),
        ]);
    }
    for e in &report.stale_baseline {
        table.row(vec![
            e.code.clone(),
            "deny".into(),
            format!("{}(baseline)", e.file),
            format!(
                "stale baseline entry (matches nothing): delete it — was: {}",
                e.reason
            ),
        ]);
    }
    table.print();

    println!(
        "\n{} files scanned, {} registry names; {} deny, {} warn, {} suppressed \
         ({} inline, {} baseline), {} hygiene error(s)",
        report.files_scanned,
        report.registry_size,
        report.deny_count(),
        report.warn_count(),
        report.suppressed.len(),
        report
            .suppressed
            .iter()
            .filter(|s| s.mechanism == "inline")
            .count(),
        report
            .suppressed
            .iter()
            .filter(|s| s.mechanism == "baseline")
            .count(),
        report.hygiene_errors(),
    );
    for code in ALL_CODES {
        println!(
            "  {code} [{}] {}",
            level_str(cfg.level(code)),
            describe(code)
        );
    }

    let errors = report.error_count(deny);
    if errors > 0 {
        eprintln!("\nlint: {errors} blocking finding(s)");
        1
    } else {
        println!("\nlint: clean");
        0
    }
}
