//! flexbuild — LEGO-brick component selection and deployment composition
//! (paper §3).
//!
//! Users pick numbered components (the paper's ①–㉔); flexbuild validates
//! that the selection composes into a working stack (every engine has a
//! storage backend whose capabilities satisfy the engine's requirements,
//! every interface has an engine, …) and produces a [`Deployment`]
//! manifest. The §3 examples reproduce directly: the anti-fraud engineers'
//! `①⑤⑭⑯⑳㉒` and the BI data scientist's `②④⑧⑨⑩⑬⑳㉓`.

use gs_graph::json::Json;
use gs_graph::GraphError;
use gs_graph::LayoutKind;
use gs_grin::Capabilities;
use std::collections::BTreeSet;

/// Every selectable component, numbered as in the paper's Figure 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// ① language SDKs
    Sdk = 1,
    /// ② WebSocket / RESTful APIs
    RestApi = 2,
    /// ③ Gremlin front-end
    Gremlin = 3,
    /// ④ Cypher front-end
    Cypher = 4,
    /// ⑤ built-in analytical algorithm library
    BuiltinAlgorithms = 5,
    /// ⑥ analytics SDK interfaces (Pregel/PIE/FLASH programming APIs)
    AnalyticsInterfaces = 6,
    /// ⑦ GNN model library
    GnnModels = 7,
    /// ⑧ GraphIR abstraction
    GraphIr = 8,
    /// ⑨ universal query optimizer
    Optimizer = 9,
    /// ⑩ OLAP code generator
    OlapCodegen = 10,
    /// ⑪ OLTP code generator
    OltpCodegen = 11,
    /// ⑫ HiActor engine (OLTP)
    HiActor = 12,
    /// ⑬ Gaia engine (OLAP)
    Gaia = 13,
    /// ⑭ PIE model
    Pie = 14,
    /// ⑮ FLASH model
    Flash = 15,
    /// ⑯ GRAPE analytical engine
    Grape = 16,
    /// ⑰ GraphLearn sampling
    GraphLearn = 17,
    /// ⑱ PyTorch-style training backend
    TorchBackend = 18,
    /// ⑲ TensorFlow-style training backend
    TfBackend = 19,
    /// ⑳ GRIN unified retrieval interface
    Grin = 20,
    /// ㉑ Vineyard immutable in-memory store
    Vineyard = 21,
    /// ㉒ GART dynamic MVCC store
    Gart = 22,
    /// ㉓ GraphAr archive store
    GraphAr = 23,
    /// ㉔ other/custom storage backends
    CustomStore = 24,
}

impl Component {
    /// Every component in paper numbering order (①–㉔).
    pub const ALL: [Component; 24] = [
        Component::Sdk,
        Component::RestApi,
        Component::Gremlin,
        Component::Cypher,
        Component::BuiltinAlgorithms,
        Component::AnalyticsInterfaces,
        Component::GnnModels,
        Component::GraphIr,
        Component::Optimizer,
        Component::OlapCodegen,
        Component::OltpCodegen,
        Component::HiActor,
        Component::Gaia,
        Component::Pie,
        Component::Flash,
        Component::Grape,
        Component::GraphLearn,
        Component::TorchBackend,
        Component::TfBackend,
        Component::Grin,
        Component::Vineyard,
        Component::Gart,
        Component::GraphAr,
        Component::CustomStore,
    ];

    /// The paper's component number (① = 1 … ㉔ = 24).
    pub fn number(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Component::number`].
    pub fn from_number(n: u8) -> Option<Component> {
        Component::ALL.get(n.wrapping_sub(1) as usize).copied()
    }

    /// The capabilities a storage component offers through GRIN.
    pub fn storage_capabilities(self) -> Option<Capabilities> {
        match self {
            Component::Vineyard => Some(Capabilities::of(&[
                Capabilities::VERTEX_LIST_ARRAY,
                Capabilities::VERTEX_LIST_ITER,
                Capabilities::ADJ_LIST_ARRAY,
                Capabilities::ADJ_LIST_ITER,
                Capabilities::IN_ADJACENCY,
                Capabilities::PROPERTY,
                Capabilities::INDEX_EXTERNAL_ID,
                Capabilities::INDEX_PROPERTY,
                Capabilities::PREDICATE_PUSHDOWN,
            ])),
            Component::Gart => Some(Capabilities::of(&[
                Capabilities::VERTEX_LIST_ITER,
                Capabilities::ADJ_LIST_ITER,
                Capabilities::IN_ADJACENCY,
                Capabilities::PROPERTY,
                Capabilities::INDEX_EXTERNAL_ID,
                Capabilities::MVCC,
                Capabilities::MUTABLE,
                Capabilities::TRANSACTIONS,
            ])),
            Component::GraphAr => Some(Capabilities::of(&[
                Capabilities::VERTEX_LIST_ITER,
                Capabilities::ADJ_LIST_ITER,
                Capabilities::IN_ADJACENCY,
                Capabilities::PROPERTY,
                Capabilities::INDEX_EXTERNAL_ID,
            ])),
            Component::CustomStore => Some(Capabilities::of(&[
                Capabilities::VERTEX_LIST_ITER,
                Capabilities::ADJ_LIST_ITER,
            ])),
            _ => None,
        }
    }

    /// The capabilities an engine component requires from storage.
    ///
    /// Each engine crate is the source of truth for its own contract
    /// (`REQUIRED_CAPABILITIES`, which the engine also re-validates at
    /// execution time); flexbuild only checks them earlier, at composition.
    pub fn engine_requirements(self) -> Option<Capabilities> {
        match self {
            Component::HiActor => Some(gs_hiactor::REQUIRED_CAPABILITIES),
            Component::Gaia => Some(gs_gaia::REQUIRED_CAPABILITIES),
            Component::Grape => Some(gs_grape::REQUIRED_CAPABILITIES),
            Component::GraphLearn => Some(Capabilities::of(&[
                Capabilities::VERTEX_LIST_ITER,
                Capabilities::ADJ_LIST_ITER,
            ])),
            _ => None,
        }
    }

    fn is_engine(self) -> bool {
        self.engine_requirements().is_some()
    }

    fn is_storage(self) -> bool {
        self.storage_capabilities().is_some()
    }

    /// Direct prerequisites between components (A requires B selected).
    pub fn prerequisites(self) -> &'static [Component] {
        use Component::*;
        match self {
            Gremlin | Cypher => &[GraphIr],
            GraphIr => &[Optimizer],
            OlapCodegen => &[GraphIr, Gaia],
            OltpCodegen => &[GraphIr, HiActor],
            HiActor | Gaia | Grape | GraphLearn => &[Grin],
            Pie | Flash | BuiltinAlgorithms | AnalyticsInterfaces => &[Grape],
            GnnModels => &[GraphLearn],
            TorchBackend | TfBackend => &[GraphLearn],
            Vineyard | Gart | GraphAr | CustomStore => &[Grin],
            _ => &[],
        }
    }
}

/// A validated deployment manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct Deployment {
    pub name: String,
    pub components: BTreeSet<Component>,
    /// Deployment target hint (binary vs. image; single node vs. cluster).
    pub target: DeployTarget,
    /// Topology layout the deployment's stores and analytics engine
    /// materialise (`csr` by default; `sorted_csr` / `compressed_csr`
    /// trade build time or decode cost for faster intersections or a
    /// smaller footprint). Results are identical across layouts.
    pub layout: LayoutKind,
    /// Memory budget (bytes) for static plan costing (`gs_ir::cost`):
    /// plans whose estimated peak intermediate size exceeds it are
    /// flagged `C003` and shed by a serving configuration's cost gate.
    /// `None` (the default) means the stack-wide default budget.
    pub cost_budget: Option<u64>,
    /// WAL directory for the deployment's GART store. `None` (the
    /// legacy default) composes an in-memory, non-durable store;
    /// setting it makes [`Deployment::gart_store`] open a durable store
    /// with write-ahead logging and replay-on-open crash recovery.
    pub wal_dir: Option<String>,
    /// WAL sync policy for a durable GART store — `Sync` (default)
    /// fsyncs at every commit, `Buffered` trades a machine-crash suffix
    /// for throughput. Only meaningful when `wal_dir` is set.
    pub durability: gs_gart::Durability,
}

impl Deployment {
    /// Returns the deployment with the topology-layout knob set.
    pub fn with_layout(mut self, layout: LayoutKind) -> Self {
        self.layout = layout;
        self
    }

    /// Returns the deployment with the static-cost memory budget set.
    pub fn with_cost_budget(mut self, bytes: u64) -> Self {
        self.cost_budget = Some(bytes);
        self
    }

    /// Returns the deployment with the durable-GART WAL directory set.
    pub fn with_wal_dir(mut self, dir: impl Into<String>) -> Self {
        self.wal_dir = Some(dir.into());
        self
    }

    /// Returns the deployment with the WAL sync policy set.
    pub fn with_durability(mut self, durability: gs_gart::Durability) -> Self {
        self.durability = durability;
        self
    }

    /// The GART durability configuration this deployment's knobs imply,
    /// or `None` for the legacy in-memory composition.
    pub fn durability_config(&self) -> Option<gs_gart::DurabilityConfig> {
        self.wal_dir.as_ref().map(|dir| {
            let mut cfg = gs_gart::DurabilityConfig::new(dir);
            cfg.durability = self.durability;
            cfg
        })
    }

    /// Instantiates the deployment's GART store: durable (WAL +
    /// replay-on-open) when `wal_dir` is configured, in-memory otherwise.
    pub fn gart_store(
        &self,
        schema: gs_graph::schema::GraphSchema,
    ) -> gs_graph::Result<std::sync::Arc<gs_gart::GartStore>> {
        match self.durability_config() {
            Some(cfg) => gs_gart::GartStore::open(schema, cfg),
            None => Ok(gs_gart::GartStore::new(schema)),
        }
    }

    /// The capabilities `component` offers *under this deployment's
    /// knobs*: the static [`Component::storage_capabilities`], plus
    /// `DURABLE` for the GART store when a `wal_dir` is configured.
    pub fn storage_capabilities(&self, component: Component) -> Option<Capabilities> {
        let caps = component.storage_capabilities()?;
        if component == Component::Gart && self.wal_dir.is_some() {
            Some(caps.union(Capabilities::DURABLE))
        } else {
            Some(caps)
        }
    }

    /// The deployment's plan-cost budget for `gs_ir::cost` checks —
    /// defaults everywhere except the memory ceiling, which comes from
    /// the manifest's `cost_budget` knob when set.
    pub fn plan_cost_budget(&self) -> gs_ir::cost::CostBudget {
        match self.cost_budget {
            Some(bytes) => gs_ir::cost::CostBudget::with_memory(bytes),
            None => gs_ir::cost::CostBudget::default(),
        }
    }

    /// `ANALYZE` — builds a GLogue statistics catalog over any configured
    /// GRIN store, so serving and optimization can be fed real statistics
    /// (`Optimizer::new(deployment.analyze(&store, n))`) instead of
    /// ad-hoc catalogs built inside the optimizer.
    pub fn analyze(
        &self,
        store: &dyn gs_grin::GrinGraph,
        sample_per_label: usize,
    ) -> gs_optimizer::GlogueCatalog {
        gs_optimizer::GlogueCatalog::build(store, sample_per_label)
    }

    /// Encodes the manifest as JSON (components by paper number).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", Json::str(&self.name)),
            (
                "components",
                Json::arr(self.components.iter().map(|c| Json::Int(c.number() as i64))),
            ),
            (
                "target",
                Json::str(match self.target {
                    DeployTarget::SingleMachineBinary => "single-machine-binary",
                    DeployTarget::ClusterImage => "cluster-image",
                }),
            ),
            ("layout", Json::str(self.layout.name())),
        ];
        if let Some(bytes) = self.cost_budget {
            fields.push(("cost_budget", Json::Int(bytes as i64)));
        }
        if let Some(dir) = &self.wal_dir {
            fields.push(("wal_dir", Json::str(dir)));
            fields.push((
                "durability",
                Json::str(match self.durability {
                    gs_gart::Durability::Sync => "sync",
                    gs_gart::Durability::Buffered => "buffered",
                }),
            ));
        }
        Json::obj(fields)
    }

    /// Instantiates the deployment's query engine behind the unified
    /// [`gs_ir::QueryEngine`] interface. Gaia wins when both interactive
    /// engines are selected (the OLAP engine subsumes ad-hoc plan
    /// execution); HiActor is next; a selection with neither falls back to
    /// the reference executor. `parallelism` sets Gaia's worker count or
    /// HiActor's shard count.
    pub fn query_engine(&self, parallelism: usize) -> Box<dyn gs_ir::QueryEngine> {
        self.query_engine_with_verify(parallelism, gs_ir::VerifyLevel::Deny)
    }

    /// Like [`Deployment::query_engine`] with an explicit submit-time plan
    /// verification level. Deployed engines default to
    /// [`gs_ir::VerifyLevel::Deny`]: a composed stack refuses malformed
    /// plans at the boundary rather than executing them.
    pub fn query_engine_with_verify(
        &self,
        parallelism: usize,
        verify: gs_ir::VerifyLevel,
    ) -> Box<dyn gs_ir::QueryEngine> {
        if self.components.contains(&Component::Gaia) {
            Box::new(gs_gaia::GaiaEngine::new(parallelism).with_verify(verify))
        } else if self.components.contains(&Component::HiActor) {
            Box::new(gs_hiactor::QueryService::new(parallelism).with_verify(verify))
        } else {
            Box::new(gs_ir::ReferenceEngine::with_verify(verify))
        }
    }

    /// Engine selection for a *serving* configuration: honours an explicit
    /// engine request and fails structurally when this deployment cannot
    /// satisfy it, instead of silently falling back.
    ///
    /// The error is the same [`BuildError::EngineUnsatisfied`] shape
    /// composition uses: it names the requested engine component and
    /// carries the [`GraphError::UnsupportedCapability`] listing exactly
    /// what is missing — the storage capability gap, or the engine
    /// component itself when it was never selected.
    pub fn serving_engine(
        &self,
        requested: EngineChoice,
        parallelism: usize,
        verify: gs_ir::VerifyLevel,
    ) -> Result<Box<dyn gs_ir::QueryEngine>, BuildError> {
        let component = match requested {
            EngineChoice::Auto => {
                return Ok(self.query_engine_with_verify(parallelism, verify));
            }
            // the reference executor has no storage requirements — always
            // satisfiable
            EngineChoice::Reference => {
                return Ok(Box::new(gs_ir::ReferenceEngine::with_verify(verify)));
            }
            EngineChoice::Gaia => Component::Gaia,
            EngineChoice::HiActor => Component::HiActor,
        };
        let req = component.engine_requirements().unwrap();
        let storages: Vec<Component> = self
            .components
            .iter()
            .copied()
            .filter(|c| c.is_storage())
            .collect();
        // closest selected storage's capability gap, as in compose()
        let mut best_missing: Option<Vec<String>> =
            Some(Capabilities::default().missing_names(req));
        for s in &storages {
            let missing = s.storage_capabilities().unwrap().missing_names(req);
            if missing.is_empty() {
                best_missing = None;
                break;
            }
            if best_missing
                .as_ref()
                .is_none_or(|b| missing.len() < b.len())
            {
                best_missing = Some(missing);
            }
        }
        let missing = match best_missing {
            Some(gap) => gap,
            None if !self.components.contains(&component) => {
                vec![format!("{component:?} (engine component not selected)")]
            }
            None => {
                return Ok(match component {
                    Component::Gaia => {
                        Box::new(gs_gaia::GaiaEngine::new(parallelism).with_verify(verify))
                    }
                    _ => Box::new(gs_hiactor::QueryService::new(parallelism).with_verify(verify)),
                });
            }
        };
        Err(BuildError::EngineUnsatisfied {
            engine: component,
            error: GraphError::UnsupportedCapability { missing },
        })
    }

    /// Statically verifies a physical plan against this deployment's
    /// schema, folding verifier errors into a structured
    /// [`BuildError::PlanRejected`] (warnings do not reject).
    pub fn verify_plan(
        &self,
        plan: &gs_ir::PhysicalPlan,
        schema: &gs_graph::schema::GraphSchema,
    ) -> Result<gs_ir::VerifyReport, BuildError> {
        let report = gs_ir::verify_physical(plan, schema);
        if report
            .diagnostics
            .iter()
            .any(|d| d.severity == gs_ir::Severity::Error)
        {
            return Err(BuildError::PlanRejected {
                diagnostics: report
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity == gs_ir::Severity::Error)
                    .map(|d| d.to_string())
                    .collect(),
            });
        }
        Ok(report)
    }

    /// Instantiates the deployment's analytics engine — the GRAPE
    /// counterpart of [`Deployment::query_engine`]. `None` when GRAPE is
    /// not part of the selection. `parallelism` sets the fragment/worker
    /// count.
    pub fn analytics_engine(&self, parallelism: usize) -> Option<AnalyticsEngine> {
        self.components
            .contains(&Component::Grape)
            .then_some(AnalyticsEngine {
                fragments: parallelism.max(1),
                layout: self.layout,
            })
    }

    /// Decodes a manifest written by [`Deployment::to_json`].
    pub fn from_json(doc: &Json) -> gs_graph::Result<Self> {
        let components = doc
            .field("components")?
            .as_arr()
            .ok_or_else(|| GraphError::Corrupt("deployment: components not an array".into()))?
            .iter()
            .map(|c| {
                c.as_u64()
                    .and_then(|n| Component::from_number(n as u8))
                    .ok_or_else(|| GraphError::Corrupt(format!("deployment: bad component {c:?}")))
            })
            .collect::<gs_graph::Result<BTreeSet<Component>>>()?;
        let target = match doc.field("target")?.as_str() {
            Some("single-machine-binary") => DeployTarget::SingleMachineBinary,
            Some("cluster-image") => DeployTarget::ClusterImage,
            other => {
                return Err(GraphError::Corrupt(format!(
                    "deployment: unknown target {other:?}"
                )))
            }
        };
        // manifests written before the layout knob existed default to csr
        let layout = match doc.field("layout") {
            Ok(j) => {
                let name = j
                    .as_str()
                    .ok_or_else(|| GraphError::Corrupt("deployment: layout not a string".into()))?;
                LayoutKind::from_name(name).ok_or_else(|| {
                    GraphError::Corrupt(format!("deployment: unknown layout {name:?}"))
                })?
            }
            Err(_) => LayoutKind::default(),
        };
        // manifests written before the cost knob existed have no budget
        let cost_budget = match doc.field("cost_budget") {
            Ok(j) => Some(j.as_u64().ok_or_else(|| {
                GraphError::Corrupt(format!("deployment: cost_budget not an integer: {j:?}"))
            })?),
            Err(_) => None,
        };
        // manifests written before the durability knobs existed compose
        // the legacy in-memory store
        let wal_dir = match doc.field("wal_dir") {
            Ok(j) => Some(
                j.as_str()
                    .ok_or_else(|| GraphError::Corrupt("deployment: wal_dir not a string".into()))?
                    .to_string(),
            ),
            Err(_) => None,
        };
        let durability = match doc.field("durability") {
            Ok(j) => match j.as_str() {
                Some("sync") => gs_gart::Durability::Sync,
                Some("buffered") => gs_gart::Durability::Buffered,
                other => {
                    return Err(GraphError::Corrupt(format!(
                        "deployment: unknown durability {other:?}"
                    )))
                }
            },
            Err(_) => gs_gart::Durability::Sync,
        };
        Ok(Deployment {
            name: doc
                .field("name")?
                .as_str()
                .ok_or_else(|| GraphError::Corrupt("deployment: name".into()))?
                .to_string(),
            components,
            target,
            layout,
            cost_budget,
            wal_dir,
            durability,
        })
    }
}

/// Deployment target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeployTarget {
    SingleMachineBinary,
    ClusterImage,
}

/// The deployment-selected analytical engine (GRAPE): loads fragments from
/// the deployment's GRIN store, so analytics presets actually exercise the
/// store they were composed with instead of a private edge list.
pub struct AnalyticsEngine {
    fragments: usize,
    layout: LayoutKind,
}

impl AnalyticsEngine {
    /// Engine name (matches [`gs_ir::QueryEngine::name`]'s convention).
    pub fn name(&self) -> &'static str {
        "grape"
    }

    /// Fragment (worker) count used when loading.
    pub fn fragments(&self) -> usize {
        self.fragments
    }

    /// Fragment topology layout inherited from the deployment manifest.
    pub fn layout(&self) -> LayoutKind {
        self.layout
    }

    /// Loads the projection out of `store` into a [`gs_grape::GrapeEngine`];
    /// capability validation happens inside the loader. The deployment's
    /// layout knob applies unless the projection sets its own non-default
    /// layout.
    pub fn load(
        &self,
        store: &dyn gs_grin::GrinGraph,
        proj: &gs_grape::GrinProjection,
    ) -> gs_graph::Result<(gs_grape::GrapeEngine, gs_grape::VertexSpace)> {
        let mut proj = proj.clone();
        if proj.layout == LayoutKind::default() {
            proj.layout = self.layout;
        }
        gs_grape::GrapeEngine::from_grin(store, &proj, self.fragments)
    }
}

/// An explicit engine request from a serving configuration, resolved by
/// [`Deployment::serving_engine`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EngineChoice {
    /// Take whatever the deployment composed (Gaia > HiActor > reference).
    #[default]
    Auto,
    /// Require Gaia's data-parallel dataflow engine.
    Gaia,
    /// Require HiActor's shard-actor OLTP engine.
    HiActor,
    /// Require the single-threaded reference executor.
    Reference,
}

impl EngineChoice {
    /// Parses a serving-config engine name (`auto`/`gaia`/`hiactor`/
    /// `reference`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "auto" => Some(Self::Auto),
            "gaia" => Some(Self::Gaia),
            "hiactor" => Some(Self::HiActor),
            "reference" => Some(Self::Reference),
            _ => None,
        }
    }
}

/// Composition errors reported by flexbuild.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    MissingPrerequisite {
        component: Component,
        needs: Component,
    },
    EngineWithoutStorage(Component),
    /// No selected storage satisfies the engine; `error` is the structured
    /// [`GraphError::UnsupportedCapability`] (closest storage's gap) the
    /// engine itself would raise at execution time.
    EngineUnsatisfied {
        engine: Component,
        error: GraphError,
    },
    EmptySelection,
    /// A query plan failed static verification against the deployment's
    /// schema; one rendered [`gs_ir::Diagnostic`] per entry.
    PlanRejected {
        diagnostics: Vec<String>,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::MissingPrerequisite { component, needs } => {
                write!(f, "{component:?} requires {needs:?} to be selected")
            }
            BuildError::EngineWithoutStorage(e) => {
                write!(f, "engine {e:?} has no storage backend selected")
            }
            BuildError::EngineUnsatisfied { engine, error } => {
                write!(f, "no selected storage satisfies {engine:?}: {error}")
            }
            BuildError::EmptySelection => write!(f, "no components selected"),
            BuildError::PlanRejected { diagnostics } => {
                write!(f, "plan rejected by verifier: {}", diagnostics.join("; "))
            }
        }
    }
}

/// The flexbuild composer.
pub struct FlexBuild;

impl FlexBuild {
    /// Validates a component selection and produces a deployment.
    pub fn compose(
        name: &str,
        components: &[Component],
        target: DeployTarget,
    ) -> Result<Deployment, BuildError> {
        if components.is_empty() {
            return Err(BuildError::EmptySelection);
        }
        let set: BTreeSet<Component> = components.iter().copied().collect();
        for &c in &set {
            for &need in c.prerequisites() {
                if !set.contains(&need) {
                    return Err(BuildError::MissingPrerequisite {
                        component: c,
                        needs: need,
                    });
                }
            }
        }
        // every engine must have at least one satisfying storage backend
        let storages: Vec<Component> = set.iter().copied().filter(|c| c.is_storage()).collect();
        for &c in &set {
            if c.is_engine() {
                if storages.is_empty() {
                    return Err(BuildError::EngineWithoutStorage(c));
                }
                let req = c.engine_requirements().unwrap();
                // keep the closest storage's capability gap for the error
                let mut best_missing: Option<Vec<String>> = None;
                for s in &storages {
                    let missing = s.storage_capabilities().unwrap().missing_names(req);
                    if missing.is_empty() {
                        best_missing = None;
                        break;
                    }
                    if best_missing
                        .as_ref()
                        .is_none_or(|b| missing.len() < b.len())
                    {
                        best_missing = Some(missing);
                    }
                }
                if let Some(missing) = best_missing {
                    return Err(BuildError::EngineUnsatisfied {
                        engine: c,
                        error: GraphError::UnsupportedCapability { missing },
                    });
                }
            }
        }
        Ok(Deployment {
            name: name.to_string(),
            components: set,
            target,
            layout: LayoutKind::default(),
            cost_budget: None,
            wal_dir: None,
            durability: gs_gart::Durability::Sync,
        })
    }

    /// The paper's Workload-2 (anti-fraud analytics) preset: ①⑤⑭⑯⑳㉒.
    pub fn antifraud_analytics_preset() -> Result<Deployment, BuildError> {
        use Component::*;
        Self::compose(
            "antifraud-analytics",
            &[Sdk, BuiltinAlgorithms, Pie, Grape, Grin, Gart],
            DeployTarget::ClusterImage,
        )
    }

    /// The paper's Workload-5 (single-machine BI) preset: ②④⑧⑨⑩⑬⑳㉓.
    pub fn bi_single_machine_preset() -> Result<Deployment, BuildError> {
        use Component::*;
        Self::compose(
            "bi-analysis",
            &[
                RestApi,
                Cypher,
                GraphIr,
                Optimizer,
                OlapCodegen,
                Gaia,
                Grin,
                GraphAr,
            ],
            DeployTarget::SingleMachineBinary,
        )
    }

    /// The §8 real-time fraud OLTP preset (HiActor + GART).
    pub fn fraud_oltp_preset() -> Result<Deployment, BuildError> {
        use Component::*;
        Self::compose(
            "fraud-oltp",
            &[
                Sdk,
                Cypher,
                GraphIr,
                Optimizer,
                OltpCodegen,
                HiActor,
                Grin,
                Gart,
            ],
            DeployTarget::ClusterImage,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_grin::GrinGraph;
    use Component::*;

    #[test]
    fn paper_presets_compose() {
        for d in [
            FlexBuild::antifraud_analytics_preset(),
            FlexBuild::bi_single_machine_preset(),
            FlexBuild::fraud_oltp_preset(),
        ] {
            let d = d.expect("preset must compose");
            assert!(!d.components.is_empty());
        }
    }

    #[test]
    fn missing_prerequisite_is_rejected() {
        // Cypher without GraphIR
        let err = FlexBuild::compose(
            "broken",
            &[Cypher, Gaia, Grin, Vineyard],
            DeployTarget::SingleMachineBinary,
        )
        .unwrap_err();
        assert_eq!(
            err,
            BuildError::MissingPrerequisite {
                component: Cypher,
                needs: GraphIr
            }
        );
    }

    #[test]
    fn engine_without_storage_is_rejected() {
        let err =
            FlexBuild::compose("broken", &[Grape, Grin], DeployTarget::ClusterImage).unwrap_err();
        assert_eq!(err, BuildError::EngineWithoutStorage(Grape));
    }

    #[test]
    fn hiactor_needs_external_id_index() {
        // CustomStore lacks INDEX_EXTERNAL_ID → HiActor unsatisfied
        let err = FlexBuild::compose(
            "broken",
            &[HiActor, Grin, CustomStore],
            DeployTarget::ClusterImage,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            BuildError::EngineUnsatisfied {
                engine: HiActor,
                ..
            }
        ));
        // but GRAPE is fine on a minimal store
        FlexBuild::compose(
            "ok",
            &[Grape, Grin, CustomStore],
            DeployTarget::ClusterImage,
        )
        .unwrap();
    }

    #[test]
    fn unsatisfied_engine_error_names_missing_flags() {
        let err = FlexBuild::compose(
            "broken",
            &[HiActor, Grin, CustomStore],
            DeployTarget::ClusterImage,
        )
        .unwrap_err();
        let BuildError::EngineUnsatisfied { engine, error } = &err else {
            panic!("wrong error: {err:?}");
        };
        assert_eq!(*engine, HiActor);
        // same structured shape the engine raises at execution time
        assert_eq!(
            *error,
            GraphError::UnsupportedCapability {
                missing: vec!["PROPERTY".into(), "INDEX_EXTERNAL_ID".into()]
            }
        );
        assert!(err.to_string().contains("PROPERTY|INDEX_EXTERNAL_ID"));
    }

    #[test]
    fn analytics_engine_loads_from_the_deployment_store() {
        let d = FlexBuild::antifraud_analytics_preset().unwrap();
        let engine = d.analytics_engine(2).expect("preset selects GRAPE");
        assert_eq!(engine.name(), "grape");
        assert_eq!(engine.fragments(), 2);
        // deployments without GRAPE offer no analytics engine
        let oltp = FlexBuild::fraud_oltp_preset().unwrap();
        assert!(oltp.analytics_engine(2).is_none());

        let store = gs_grin::graph::mock::MockGraph::new(4, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let (grape, space) = engine
            .load(&store, &gs_grape::GrinProjection::all())
            .unwrap();
        assert_eq!(space.total(), 4);
        assert_eq!(grape.fragments.len(), 2);
    }

    #[test]
    fn deployments_select_engines_through_one_interface() {
        let bi = FlexBuild::bi_single_machine_preset().unwrap();
        assert_eq!(bi.query_engine(2).name(), "gaia");
        let fraud = FlexBuild::fraud_oltp_preset().unwrap();
        assert_eq!(fraud.query_engine(2).name(), "hiactor");
        let analytics = FlexBuild::antifraud_analytics_preset().unwrap();
        assert_eq!(analytics.query_engine(2).name(), "reference");

        // every selected engine answers a plan through the same interface
        let g = gs_grin::graph::mock::MockGraph::new(5, &[(0, 1, 1.0)]);
        let s = gs_grin::GrinGraph::schema(&g).clone();
        let plan = gs_ir::physical::lower_naive(
            &gs_ir::PlanBuilder::new(&s).scan("a", "V").unwrap().build(),
        )
        .unwrap();
        for d in [bi, fraud, analytics] {
            let engine = d.query_engine(2);
            assert_eq!(
                engine.execute(&plan, &g).unwrap().len(),
                5,
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn serving_engine_honours_requests_and_fails_structurally() {
        let fraud = FlexBuild::fraud_oltp_preset().unwrap();
        // explicit satisfiable requests
        let e = fraud
            .serving_engine(EngineChoice::HiActor, 2, gs_ir::VerifyLevel::Deny)
            .unwrap();
        assert_eq!(e.name(), "hiactor");
        let e = fraud
            .serving_engine(EngineChoice::Reference, 1, gs_ir::VerifyLevel::Warn)
            .unwrap();
        assert_eq!(e.name(), "reference");
        // Auto defers to the composed priority order
        let e = fraud
            .serving_engine(EngineChoice::Auto, 2, gs_ir::VerifyLevel::Deny)
            .unwrap();
        assert_eq!(e.name(), "hiactor");
        // requesting an engine the deployment never selected: structured
        // error naming the component, not a bare string
        let Err(err) = fraud.serving_engine(EngineChoice::Gaia, 2, gs_ir::VerifyLevel::Deny) else {
            panic!("expected error");
        };
        let BuildError::EngineUnsatisfied { engine, error } = &err else {
            panic!("wrong error: {err:?}");
        };
        assert_eq!(*engine, Gaia);
        let GraphError::UnsupportedCapability { missing } = error else {
            panic!("wrong inner error: {error:?}");
        };
        assert!(missing[0].contains("Gaia"), "{missing:?}");
    }

    #[test]
    fn serving_engine_names_storage_capability_gap() {
        // CustomStore lacks PROPERTY/INDEX_EXTERNAL_ID, so a serving
        // config demanding HiActor over it must name that exact gap
        let d = Deployment {
            name: "gap".into(),
            components: [Component::GraphIr, Component::HiActor, CustomStore]
                .into_iter()
                .collect(),
            target: DeployTarget::ClusterImage,
            layout: LayoutKind::default(),
            cost_budget: None,
            wal_dir: None,
            durability: gs_gart::Durability::Sync,
        };
        let Err(err) = d.serving_engine(EngineChoice::HiActor, 2, gs_ir::VerifyLevel::Deny) else {
            panic!("expected error");
        };
        let BuildError::EngineUnsatisfied { engine, error } = &err else {
            panic!("wrong error: {err:?}");
        };
        assert_eq!(*engine, HiActor);
        assert_eq!(
            *error,
            GraphError::UnsupportedCapability {
                missing: vec!["PROPERTY".into(), "INDEX_EXTERNAL_ID".into()]
            }
        );
    }

    #[test]
    fn deployment_serializes() {
        let d = FlexBuild::fraud_oltp_preset().unwrap();
        let json = d.to_json().render();
        let back = Deployment::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn layout_knob_round_trips_and_defaults() {
        let d = FlexBuild::antifraud_analytics_preset()
            .unwrap()
            .with_layout(LayoutKind::SortedCsr);
        let json = d.to_json().render();
        let back = Deployment::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.layout, LayoutKind::SortedCsr);
        assert_eq!(d, back);
        // manifests written before the knob existed still parse (csr)
        let legacy = json.replace(",\"layout\":\"sorted_csr\"", "");
        assert!(!legacy.contains("layout"), "{legacy}");
        let old = Deployment::from_json(&Json::parse(&legacy).unwrap()).unwrap();
        assert_eq!(old.layout, LayoutKind::Csr);
        // unknown layout names are corrupt, not silently csr
        let bad = json.replace("sorted_csr", "btree");
        assert!(Deployment::from_json(&Json::parse(&bad).unwrap()).is_err());
    }

    #[test]
    fn cost_budget_knob_round_trips_and_defaults() {
        let d = FlexBuild::fraud_oltp_preset()
            .unwrap()
            .with_cost_budget(512 << 20);
        let json = d.to_json().render();
        let back = Deployment::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.cost_budget, Some(512 << 20));
        assert_eq!(d, back);
        assert_eq!(back.plan_cost_budget().max_memory_bytes, 512 << 20);
        // manifests without the knob parse with no budget → defaults
        let legacy = json.replace(",\"cost_budget\":536870912", "");
        assert!(!legacy.contains("cost_budget"), "{legacy}");
        let old = Deployment::from_json(&Json::parse(&legacy).unwrap()).unwrap();
        assert_eq!(old.cost_budget, None);
        assert_eq!(old.plan_cost_budget(), gs_ir::cost::CostBudget::default());
        // non-integer budgets are corrupt, not silently defaulted
        let bad = json.replace("536870912", "\"lots\"");
        assert!(Deployment::from_json(&Json::parse(&bad).unwrap()).is_err());
    }

    #[test]
    fn durability_knobs_round_trip_and_default_to_in_memory() {
        let d = FlexBuild::fraud_oltp_preset()
            .unwrap()
            .with_wal_dir("/tmp/gart-wal")
            .with_durability(gs_gart::Durability::Buffered);
        let json = d.to_json().render();
        let back = Deployment::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.wal_dir.as_deref(), Some("/tmp/gart-wal"));
        assert_eq!(back.durability, gs_gart::Durability::Buffered);
        assert_eq!(d, back);
        let cfg = back.durability_config().unwrap();
        assert_eq!(cfg.dir, std::path::Path::new("/tmp/gart-wal"));
        assert_eq!(cfg.durability, gs_gart::Durability::Buffered);
        // manifests without the knobs compose the legacy in-memory store
        let legacy = json
            .replace(",\"wal_dir\":\"/tmp/gart-wal\"", "")
            .replace("\"durability\":\"buffered\",", "");
        assert!(
            !legacy.contains("wal_dir") && !legacy.contains("durability"),
            "{legacy}"
        );
        let old = Deployment::from_json(&Json::parse(&legacy).unwrap()).unwrap();
        assert_eq!(old.wal_dir, None);
        assert_eq!(old.durability, gs_gart::Durability::Sync);
        assert!(old.durability_config().is_none());
        // unknown durability modes are corrupt, not silently sync
        let bad = json.replace("\"buffered\"", "\"eventually\"");
        assert!(Deployment::from_json(&Json::parse(&bad).unwrap()).is_err());
    }

    #[test]
    fn durable_deployment_composes_a_store_that_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("gs-flex-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut schema = gs_graph::schema::GraphSchema::new();
        let vl = schema.add_vertex_label("V", &[("x", gs_graph::ValueType::Int)]);
        let d = FlexBuild::fraud_oltp_preset()
            .unwrap()
            .with_wal_dir(dir.to_str().unwrap());
        // durable GART advertises the transactional capabilities
        let caps = d.storage_capabilities(Gart).unwrap();
        assert!(caps.supports(Capabilities::of(&[
            Capabilities::TRANSACTIONS,
            Capabilities::DURABLE,
        ])));
        // the legacy in-memory composition is transactional but not durable
        let mem = FlexBuild::fraud_oltp_preset().unwrap();
        let mem_caps = mem.storage_capabilities(Gart).unwrap();
        assert!(mem_caps.supports(Capabilities::TRANSACTIONS));
        assert!(!mem_caps.supports(Capabilities::DURABLE));
        {
            let store = d.gart_store(schema.clone()).unwrap();
            store
                .add_vertex(vl, 7, vec![gs_grin::Value::Int(7)])
                .unwrap();
            store.commit();
        }
        let store = d.gart_store(schema).unwrap();
        let snap = store.snapshot();
        assert!(
            snap.internal_id(vl, 7).is_some(),
            "commit must survive reopen"
        );
        assert!(snap.capabilities().supports(Capabilities::DURABLE));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn analyze_builds_a_catalog_over_any_store() {
        let d = FlexBuild::fraud_oltp_preset().unwrap();
        let store = gs_grin::graph::mock::MockGraph::new(
            5,
            &[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0), (3, 4, 1.0)],
        );
        let catalog = d.analyze(&store, 10);
        assert_eq!(catalog.vertex_counts, vec![5]);
        assert_eq!(catalog.edge_stats[0].count, 4);
        assert_eq!(catalog.edge_stats[0].max_out_degree, 3);
        // deterministic: ANALYZE twice → identical catalogs
        assert_eq!(catalog, d.analyze(&store, 10));
    }

    #[test]
    fn analytics_engine_inherits_the_deployment_layout() {
        let d = FlexBuild::antifraud_analytics_preset()
            .unwrap()
            .with_layout(LayoutKind::CompressedCsr);
        let engine = d.analytics_engine(2).unwrap();
        assert_eq!(engine.layout(), LayoutKind::CompressedCsr);
        let store = gs_grin::graph::mock::MockGraph::new(4, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let (grape, _) = engine
            .load(&store, &gs_grape::GrinProjection::all())
            .unwrap();
        assert_eq!(grape.layout(), LayoutKind::CompressedCsr);
        // an explicit projection layout wins over the deployment knob
        let proj = gs_grape::GrinProjection::all().with_layout(LayoutKind::SortedCsr);
        let (grape, _) = engine.load(&store, &proj).unwrap();
        assert_eq!(grape.layout(), LayoutKind::SortedCsr);
    }

    #[test]
    fn component_numbers_round_trip() {
        for (i, c) in Component::ALL.iter().enumerate() {
            assert_eq!(c.number() as usize, i + 1);
            assert_eq!(Component::from_number(c.number()), Some(*c));
        }
        assert_eq!(Component::from_number(0), None);
        assert_eq!(Component::from_number(25), None);
    }

    #[test]
    fn empty_selection_rejected() {
        assert_eq!(
            FlexBuild::compose("x", &[], DeployTarget::ClusterImage).unwrap_err(),
            BuildError::EmptySelection
        );
    }
}
