//! `gs-bench storm` — open-loop load generation against the gs-serve
//! front end.
//!
//! The harness models the §8 fraud deployment under concurrent traffic: a
//! deterministic, Zipf-skewed request schedule (point lookups, one-hop
//! expansions, and the heavy two-hop fraud check) is generated up front
//! from a seed, then *dispatched on the clock* — arrivals do not wait for
//! completions (open loop), so overload manifests as backlog instead of
//! silently slowing the generator down. Latency is measured from each
//! request's **scheduled arrival** to its completion, which keeps the
//! numbers honest under queueing (no coordinated omission).
//!
//! Three phases run back-to-back at increasing arrival rates — `baseline`
//! (the service keeps up), `surge` (2× rate, with a GART writer committing
//! orders so cached results invalidate), and `overload` (12× rate, where
//! the admission ladder must shed low-priority work rather than collapse).
//! Results go to `BENCH_storm.json`: throughput, p50/p99/p999 per phase,
//! shed/error accounting, cache hit rates, plus a prepared-vs-parse
//! comparison that quantifies the prepare/execute split's latency win.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gs_datagen::apps::{fraud_graph, FraudWorkload};
use gs_gart::GartStore;
use gs_graph::json::Json;
use gs_graph::Value;
use gs_hiactor::QueryService;
use gs_lang::Frontend;
use gs_serve::{
    AdmissionConfig, GartServeStore, Priority, ServeConfig, Server, ServerStats, TenantQuota,
};
use rand::Rng;

/// Harness knobs (all deterministic given `seed`).
#[derive(Clone, Debug)]
pub struct StormConfig {
    /// Seeds the workload graph, the Zipf account draws, the template mix
    /// and the arrival jitter.
    pub seed: u64,
    /// Scales every phase's request count (`requests = supersteps × 120`).
    pub duration_supersteps: u64,
    /// Service worker threads (= the server's admission capacity).
    pub workers: usize,
}

impl Default for StormConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            duration_supersteps: 5,
            workers: 4,
        }
    }
}

/// One scheduled request: everything about it is fixed at schedule time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Arrival offset from phase start, in nanoseconds.
    pub at_ns: u64,
    /// Index into [`templates`].
    pub template: usize,
    /// The Zipf-drawn account parameter.
    pub account: u64,
}

/// A statement template of the §8 fraud mix.
pub struct Template {
    pub name: &'static str,
    pub tenant: &'static str,
    pub priority: Priority,
}

/// The fixed §8-scenario mix: checkout point-reads dominate, analytics
/// one-hops follow, the heavy risk sweep trails (and is first to shed).
pub fn templates() -> [Template; 3] {
    [
        Template {
            name: "point",
            tenant: "checkout",
            priority: Priority::High,
        },
        Template {
            name: "hop",
            tenant: "analytics",
            priority: Priority::Normal,
        },
        Template {
            name: "fraud",
            tenant: "risk",
            priority: Priority::Low,
        },
    ]
}

fn template_text(template: usize, account: u64) -> String {
    match template {
        0 => format!("MATCH (v:Account {{id: {account}}}) RETURN v"),
        1 => format!(
            "MATCH (v:Account {{id: {account}}})-[:KNOWS]-(f:Account) \
             RETURN v, COUNT(f) AS deg"
        ),
        _ => format!(
            "MATCH (v:Account {{id: {account}}})-[b1:BUY]->(:Item)<-[b2:BUY]-(s:Account) \
             WHERE s.id IN $SEEDS AND b1.date - b2.date < 5 AND b2.date - b1.date < 5 \
             WITH v, COUNT(s) AS cnt1 \
             MATCH (v)-[:KNOWS]-(f:Account), (f)-[b3:BUY]->(:Item)<-[b4:BUY]-(s2:Account) \
             WHERE s2.id IN $SEEDS \
             WITH v, cnt1, COUNT(s2) AS cnt2 \
             WHERE 2 * cnt1 + 1 * cnt2 > 3 \
             RETURN v"
        ),
    }
}

/// Cumulative Zipf(s=1.1) distribution over `n` ranks.
fn zipf_cdf(n: usize) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf = Vec::with_capacity(n);
    for r in 1..=n {
        acc += 1.0 / (r as f64).powf(1.1);
        cdf.push(acc);
    }
    let total = acc;
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

/// The three phases: (name, requests multiplier, mean inter-arrival ns).
const PHASES: [(&str, u64, u64); 3] = [
    ("baseline", 120, 400_000),
    ("surge", 120, 200_000),
    ("overload", 120, 33_000),
];

/// Builds one phase's deterministic arrival schedule.
pub fn schedule(cfg: &StormConfig, phase: usize, accounts: usize) -> Vec<Request> {
    let (_, per_step, gap_ns) = PHASES[phase];
    let n = (cfg.duration_supersteps.max(1) * per_step) as usize;
    let mut rng = rand_pcg::Pcg64Mcg::new((cfg.seed as u128) << 8 | phase as u128);
    let cdf = zipf_cdf(accounts);
    let mut at = 0u64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // jittered open-loop arrivals around the phase's mean gap
        at += rng.gen_range(gap_ns / 2..gap_ns + gap_ns / 2);
        let mix: f64 = rng.gen_range(0.0..1.0);
        let template = if mix < 0.6 {
            0
        } else if mix < 0.9 {
            1
        } else {
            2
        };
        let z: f64 = rng.gen_range(0.0..1.0);
        let rank = cdf.partition_point(|&c| c < z).min(accounts - 1);
        out.push(Request {
            at_ns: at,
            template,
            account: rank as u64,
        });
    }
    out
}

/// FNV-1a digest of a schedule — the determinism witness stored in the
/// JSON and asserted by the determinism test.
pub fn schedule_digest(phases: &[Vec<Request>]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for phase in phases {
        for r in phase {
            eat(r.at_ns);
            eat(r.template as u64);
            eat(r.account);
        }
    }
    h
}

/// Per-phase measurements.
#[derive(Clone, Debug, Default)]
pub struct PhaseReport {
    pub name: &'static str,
    pub offered: u64,
    pub completed: u64,
    pub shed: u64,
    pub errors: u64,
    pub wall_s: f64,
    pub throughput_qps: f64,
    pub p50_us: f64,
    pub p99_us: f64,
    pub p999_us: f64,
    pub plan_hits: u64,
    pub plan_misses: u64,
    pub result_hits: u64,
    pub result_misses: u64,
    pub mix: [u64; 3],
}

/// The whole run.
#[derive(Clone, Debug)]
pub struct StormReport {
    pub seed: u64,
    pub duration_supersteps: u64,
    pub workers: usize,
    pub engine: &'static str,
    pub schedule_digest: u64,
    pub phases: Vec<PhaseReport>,
    pub data_versions_seen: u64,
    pub prepared_iterations: u64,
    pub parse_per_request_us: f64,
    pub prepared_us: f64,
    pub prepared_speedup: f64,
}

fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 * q).ceil() as usize).clamp(1, sorted_ns.len()) - 1;
    sorted_ns[idx] as f64 / 1_000.0
}

fn seeds_param(workload: &FraudWorkload) -> HashMap<String, Value> {
    let seeds: Vec<Value> = workload
        .seeds
        .iter()
        .map(|&s| Value::Int(s as i64))
        .collect();
    let mut params = HashMap::new();
    params.insert("SEEDS".to_string(), Value::List(seeds));
    params
}

/// Runs the full storm: three phases plus the prepared-vs-parse section.
pub fn run(cfg: &StormConfig) -> StormReport {
    let accounts = 200;
    let workload = fraud_graph(accounts, 80, 800, 400, cfg.seed);
    let store = GartStore::from_data(&workload.data).expect("workload loads");
    let params = seeds_param(&workload);

    let serve_cfg = ServeConfig {
        admission: AdmissionConfig {
            capacity: cfg.workers,
            default_quota: TenantQuota {
                max_inflight: cfg.workers,
            },
            ..Default::default()
        },
        ..Default::default()
    };
    let server = Arc::new(Server::new(
        Box::new(QueryService::new(2)),
        Box::new(GartServeStore::new(Arc::clone(&store))),
        serve_cfg,
    ));
    let engine = server.engine_name();

    let schedules: Vec<Vec<Request>> = (0..PHASES.len())
        .map(|p| schedule(cfg, p, accounts))
        .collect();
    let digest = schedule_digest(&schedules);

    let mut phases = Vec::new();
    let mut versions_seen = 1u64; // the loaded graph's commit
    let mut stats_before = server.stats();
    for (phase_idx, reqs) in schedules.iter().enumerate() {
        let (name, _, _) = PHASES[phase_idx];
        // surge and overload run against a moving store: a writer commits
        // orders, bumping the version and invalidating cached results
        let writer = if phase_idx > 0 {
            let store = Arc::clone(&store);
            let labels = workload.labels;
            let orders: Vec<(u64, u64, i64)> = workload
                .order_stream
                .iter()
                .skip(phase_idx * 40)
                .take(40)
                .copied()
                .collect();
            Some(std::thread::spawn(move || {
                for (a, i, d) in orders {
                    let _ = store.add_edge(labels.buy, a, i, vec![Value::Date(d)]);
                    store.commit();
                    std::thread::sleep(Duration::from_millis(2));
                }
            }))
        } else {
            None
        };
        let report = run_phase(&server, name, reqs, &params, cfg.workers);
        if let Some(w) = writer {
            versions_seen += 40;
            w.join().expect("writer thread");
        }
        let stats_after = server.stats();
        phases.push(attach_cache_delta(report, &stats_before, &stats_after));
        stats_before = stats_after;
    }

    let (iters, parse_us, prepared_us) = prepared_vs_parse(&store, &workload, &params, cfg);

    StormReport {
        seed: cfg.seed,
        duration_supersteps: cfg.duration_supersteps,
        workers: cfg.workers,
        engine,
        schedule_digest: digest,
        phases,
        data_versions_seen: versions_seen,
        prepared_iterations: iters,
        parse_per_request_us: parse_us,
        prepared_us,
        prepared_speedup: if prepared_us > 0.0 {
            parse_us / prepared_us
        } else {
            0.0
        },
    }
}

fn attach_cache_delta(
    mut report: PhaseReport,
    before: &ServerStats,
    after: &ServerStats,
) -> PhaseReport {
    report.plan_hits = after.plan_hits - before.plan_hits;
    report.plan_misses = after.plan_misses - before.plan_misses;
    report.result_hits = after.result_hits - before.result_hits;
    report.result_misses = after.result_misses - before.result_misses;
    report
}

/// Dispatches one phase's schedule on the clock through a worker pool.
fn run_phase(
    server: &Arc<Server>,
    name: &'static str,
    reqs: &[Request],
    params: &HashMap<String, Value>,
    workers: usize,
) -> PhaseReport {
    let templates = templates();
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, Instant)>();
    let completed = Arc::new(AtomicUsize::new(0));
    let shed = Arc::new(AtomicUsize::new(0));
    let errors = Arc::new(AtomicUsize::new(0));
    let latencies = Arc::new(std::sync::Mutex::new(Vec::<u64>::new()));
    let mix = Arc::new([
        AtomicUsize::new(0),
        AtomicUsize::new(0),
        AtomicUsize::new(0),
    ]);

    let start = Instant::now();
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let rx = rx.clone();
            let server = Arc::clone(server);
            let completed = Arc::clone(&completed);
            let shed = Arc::clone(&shed);
            let errors = Arc::clone(&errors);
            let latencies = Arc::clone(&latencies);
            let mix = Arc::clone(&mix);
            let params = params.clone();
            let reqs = reqs.to_vec();
            let sessions: Vec<_> = templates
                .iter()
                .map(|t| server.session(t.tenant, t.priority))
                .collect();
            std::thread::Builder::new()
                .name(format!("storm-worker-{w}"))
                .spawn(move || {
                    while let Ok((idx, arrived)) = rx.recv() {
                        let req = &reqs[idx];
                        let text = template_text(req.template, req.account);
                        let p = if req.template == 2 {
                            params.clone()
                        } else {
                            HashMap::new()
                        };
                        let session = &sessions[req.template];
                        match session.query(Frontend::Cypher, &text, &p) {
                            Ok(_) => {
                                mix[req.template].fetch_add(1, Ordering::Relaxed);
                                completed.fetch_add(1, Ordering::Relaxed);
                                latencies
                                    .lock()
                                    .unwrap()
                                    .push(arrived.elapsed().as_nanos() as u64);
                            }
                            Err(gs_graph::GraphError::Overloaded { .. })
                            | Err(gs_graph::GraphError::Unavailable(_)) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
                .expect("spawn worker")
        })
        .collect();

    // open-loop dispatcher: arrivals follow the schedule, never the
    // service — latency is measured from here
    for (idx, req) in reqs.iter().enumerate() {
        let due = start + Duration::from_nanos(req.at_ns);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        if tx.send((idx, due.max(start))).is_err() {
            // a worker died and its panic will surface at join — stop
            // dispatching instead of panicking over the closed channel
            break;
        }
    }
    drop(tx);
    for h in handles {
        h.join().expect("worker");
    }
    let wall = start.elapsed().as_secs_f64();

    let mut lat = Arc::try_unwrap(latencies)
        .map(|m| m.into_inner().unwrap_or_default())
        .unwrap_or_default();
    lat.sort_unstable();
    let completed = completed.load(Ordering::Relaxed) as u64;
    PhaseReport {
        name,
        offered: reqs.len() as u64,
        completed,
        shed: shed.load(Ordering::Relaxed) as u64,
        errors: errors.load(Ordering::Relaxed) as u64,
        wall_s: wall,
        throughput_qps: completed as f64 / wall.max(1e-9),
        p50_us: percentile_us(&lat, 0.50),
        p99_us: percentile_us(&lat, 0.99),
        p999_us: percentile_us(&lat, 0.999),
        plan_hits: 0,
        plan_misses: 0,
        result_hits: 0,
        result_misses: 0,
        mix: [
            mix[0].load(Ordering::Relaxed) as u64,
            mix[1].load(Ordering::Relaxed) as u64,
            mix[2].load(Ordering::Relaxed) as u64,
        ],
    }
}

/// Measures the prepare/execute split: the same heavy statement run with
/// full parse → optimize → verify per request vs. compiled once and
/// executed through the prepared handle. Both run with result caching off
/// so execution is actually measured.
fn prepared_vs_parse(
    store: &Arc<GartStore>,
    workload: &FraudWorkload,
    params: &HashMap<String, Value>,
    cfg: &StormConfig,
) -> (u64, f64, f64) {
    let iters = cfg.duration_supersteps.max(1) * 20;
    let account = workload.accounts / 2;
    let text = template_text(2, account as u64);

    let mk_server = |cache_plans: bool| {
        Arc::new(Server::new(
            Box::new(QueryService::new(2)),
            Box::new(GartServeStore::new(Arc::clone(store))),
            ServeConfig {
                cache_plans,
                cache_results: false,
                ..Default::default()
            },
        ))
    };

    // parse-per-request baseline: the plan cache is disabled, so every
    // query() pays the full front-end pipeline
    let parse_server = mk_server(false);
    let session = parse_server.session("risk", Priority::High);
    let t0 = Instant::now();
    for _ in 0..iters {
        session
            .query(Frontend::Cypher, &text, params)
            .expect("parse path");
    }
    let parse_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;

    // prepared path: compile once, execute the handle many times
    let prep_server = mk_server(true);
    let session = prep_server.session("risk", Priority::High);
    let stmt = session
        .prepare(Frontend::Cypher, &text, params)
        .expect("prepare");
    let t0 = Instant::now();
    for _ in 0..iters {
        session.execute(stmt).expect("prepared path");
    }
    let prepared_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;

    (iters, parse_us, prepared_us)
}

impl StormReport {
    /// Renders the report as the `BENCH_storm.json` document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("bench", Json::str("storm")),
            ("seed", Json::Int(self.seed as i64)),
            (
                "duration_supersteps",
                Json::Int(self.duration_supersteps as i64),
            ),
            ("workers", Json::Int(self.workers as i64)),
            ("engine", Json::str(self.engine)),
            ("schedule_digest", Json::Int(self.schedule_digest as i64)),
            (
                "phases",
                Json::arr(self.phases.iter().map(|p| {
                    Json::obj([
                        ("name", Json::str(p.name)),
                        ("offered", Json::Int(p.offered as i64)),
                        ("completed", Json::Int(p.completed as i64)),
                        ("shed", Json::Int(p.shed as i64)),
                        ("errors", Json::Int(p.errors as i64)),
                        ("wall_s", Json::Float(p.wall_s)),
                        ("throughput_qps", Json::Float(p.throughput_qps)),
                        ("p50_us", Json::Float(p.p50_us)),
                        ("p99_us", Json::Float(p.p99_us)),
                        ("p999_us", Json::Float(p.p999_us)),
                        ("plan_cache_hits", Json::Int(p.plan_hits as i64)),
                        ("plan_cache_misses", Json::Int(p.plan_misses as i64)),
                        ("result_cache_hits", Json::Int(p.result_hits as i64)),
                        ("result_cache_misses", Json::Int(p.result_misses as i64)),
                        ("mix", Json::arr(p.mix.iter().map(|&m| Json::Int(m as i64)))),
                    ])
                })),
            ),
            (
                "data_versions_seen",
                Json::Int(self.data_versions_seen as i64),
            ),
            (
                "prepared_vs_parse",
                Json::obj([
                    ("iterations", Json::Int(self.prepared_iterations as i64)),
                    (
                        "parse_per_request_us",
                        Json::Float(self.parse_per_request_us),
                    ),
                    ("prepared_us", Json::Float(self.prepared_us)),
                    ("speedup", Json::Float(self.prepared_speedup)),
                ]),
            ),
        ])
    }

    /// The determinism view: every field that must be identical across
    /// same-seed runs (counts and digests; no wall-clock numbers).
    pub fn determinism_view(&self) -> String {
        let mut s = format!(
            "seed={} supersteps={} workers={} digest={:#x}",
            self.seed, self.duration_supersteps, self.workers, self.schedule_digest
        );
        for p in &self.phases {
            s.push_str(&format!(" {}:{}", p.name, p.offered));
        }
        s.push_str(&format!(" iters={}", self.prepared_iterations));
        s
    }
}

/// CLI entry: runs the storm, writes `BENCH_storm.json`, prints a
/// summary. With `deny`, a non-zero baseline error count fails the run —
/// the storm-smoke CI bar.
pub fn run_cli(deny: bool, seed: u64, duration_supersteps: u64, out_path: &str) -> i32 {
    let cfg = StormConfig {
        seed,
        duration_supersteps,
        ..Default::default()
    };
    let report = run(&cfg);
    let json = report.to_json().render();
    std::fs::write(out_path, &json).expect("write BENCH_storm.json");

    let mut table = crate::util::TablePrinter::new(&[
        "phase", "offered", "done", "shed", "errors", "qps", "p50 µs", "p99 µs", "p999 µs",
    ]);
    for p in &report.phases {
        table.row(vec![
            p.name.to_string(),
            p.offered.to_string(),
            p.completed.to_string(),
            p.shed.to_string(),
            p.errors.to_string(),
            format!("{:.0}", p.throughput_qps),
            format!("{:.0}", p.p50_us),
            format!("{:.0}", p.p99_us),
            format!("{:.0}", p.p999_us),
        ]);
    }
    table.print();
    println!(
        "prepared vs parse-per-request: {:.0} µs vs {:.0} µs ({:.2}x) over {} iterations",
        report.prepared_us,
        report.parse_per_request_us,
        report.prepared_speedup,
        report.prepared_iterations
    );
    println!("wrote {out_path}");

    let baseline = &report.phases[0];
    if deny && (baseline.errors > 0 || baseline.shed > 0) {
        eprintln!(
            "storm --deny: baseline phase had {} errors, {} shed (expected 0)",
            baseline.errors, baseline.shed
        );
        return 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let cfg = StormConfig {
            seed: 7,
            duration_supersteps: 1,
            workers: 2,
        };
        let a: Vec<_> = (0..3).map(|p| schedule(&cfg, p, 100)).collect();
        let b: Vec<_> = (0..3).map(|p| schedule(&cfg, p, 100)).collect();
        assert_eq!(a, b);
        assert_eq!(schedule_digest(&a), schedule_digest(&b));
        let other = StormConfig {
            seed: 8,
            ..cfg.clone()
        };
        let c: Vec<_> = (0..3).map(|p| schedule(&other, p, 100)).collect();
        assert_ne!(schedule_digest(&a), schedule_digest(&c));
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let cfg = StormConfig {
            seed: 3,
            duration_supersteps: 2,
            workers: 2,
        };
        let reqs = schedule(&cfg, 0, 100);
        let low = reqs.iter().filter(|r| r.account < 10).count();
        assert!(
            low * 2 > reqs.len(),
            "zipf head too light: {low}/{}",
            reqs.len()
        );
    }

    #[test]
    fn percentiles_are_exact_order_statistics() {
        let v: Vec<u64> = (1..=1000).collect();
        assert_eq!(percentile_us(&v, 0.50), 0.5);
        assert_eq!(percentile_us(&v, 0.99), 0.99);
        assert_eq!(percentile_us(&v, 0.999), 0.999);
        assert_eq!(percentile_us(&[], 0.5), 0.0);
    }
}
