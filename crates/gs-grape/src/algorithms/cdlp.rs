//! Community detection by label propagation (CDLP, Graphalytics variant):
//! each round every vertex adopts the most frequent label among its
//! neighbours (ties → smallest label). Fixed round count; expects a
//! symmetrized edge list.

use crate::engine::GrapeEngine;
use crate::messages::OutBuffers;
use std::collections::HashMap;

/// CDLP labels after `rounds` iterations, indexed by global id.
pub fn cdlp(engine: &GrapeEngine, rounds: usize) -> Vec<u64> {
    engine.run(|frag, comm| {
        let inner = frag.inner_count;
        let mut label: Vec<u64> = (0..inner as u32).map(|l| frag.global(l).0).collect();
        let mut out = OutBuffers::new(comm.workers);
        for _ in 0..rounds {
            for l in 0..inner as u32 {
                let lab = label[l as usize];
                frag.for_each_out(l, |nbr, _| {
                    let g = frag.global(nbr.0 as u32);
                    out.send(frag.owner(g).index(), g, lab);
                });
            }
            let (blocks, _) = comm.exchange(&mut out);
            let mut freq: Vec<HashMap<u64, u32>> = vec![HashMap::new(); inner];
            for b in &blocks {
                b.for_each::<u64>(|g, lab| {
                    let l = frag.local(g).expect("routed") as usize;
                    *freq[l].entry(lab).or_insert(0) += 1;
                });
            }
            for l in 0..inner {
                if freq[l].is_empty() {
                    continue;
                }
                // most frequent; ties broken by smallest label
                let best = freq[l]
                    .iter()
                    .map(|(&lab, &c)| (std::cmp::Reverse(c), lab))
                    .min()
                    .map(|(_, lab)| lab)
                    .unwrap();
                label[l] = best;
            }
        }
        (0..inner as u32)
            .map(|l| (frag.global(l), label[l as usize]))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::edgelist::EdgeList;
    use gs_graph::VId;

    /// Two dense cliques joined by one bridge edge: CDLP must separate them.
    #[test]
    fn separates_two_cliques() {
        let mut el = EdgeList::new(10);
        for i in 0..5u64 {
            for j in 0..5u64 {
                if i != j {
                    el.push(VId(i), VId(j));
                }
            }
        }
        for i in 5..10u64 {
            for j in 5..10u64 {
                if i != j {
                    el.push(VId(i), VId(j));
                }
            }
        }
        el.push(VId(4), VId(5));
        el.push(VId(5), VId(4));
        for k in [1, 3] {
            let engine = GrapeEngine::from_edges(10, el.edges(), k);
            let labels = cdlp(&engine, 10);
            assert!(
                labels[..5].iter().all(|&l| l == labels[0]),
                "k={k} {labels:?}"
            );
            assert!(
                labels[5..].iter().all(|&l| l == labels[5]),
                "k={k} {labels:?}"
            );
            assert_ne!(labels[0], labels[5], "k={k} {labels:?}");
        }
    }

    #[test]
    fn partition_count_does_not_change_result() {
        use rand::Rng;
        let mut rng = rand_pcg::Pcg64Mcg::new(3);
        let mut el = EdgeList::new(60);
        for _ in 0..200 {
            el.push(VId(rng.gen_range(0..60)), VId(rng.gen_range(0..60)));
        }
        el.symmetrize();
        let one = cdlp(&GrapeEngine::from_edges(60, el.edges(), 1), 5);
        let four = cdlp(&GrapeEngine::from_edges(60, el.edges(), 4), 5);
        assert_eq!(one, four);
    }
}
