//! Edge-cut graph partitioning.
//!
//! Vineyard (and GRAPE's fragments) use edge-cut partitioning: every vertex
//! is owned by exactly one partition; edges live with their source vertex;
//! destination vertices owned elsewhere appear locally as *mirrors* (a.k.a.
//! outer vertices). The GRIN partition category exposes exactly this
//! information to engines.

use crate::ids::VId;

/// Identifier of one partition/fragment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PartitionId(pub u32);

impl PartitionId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Hash-based edge-cut partitioner over `n` vertices and `k` partitions.
///
/// Uses a multiplicative hash rather than `v % k` so that generators that
/// emit locality-correlated ids (webgraph-like datasets) still balance.
#[derive(Clone, Copy, Debug)]
pub struct EdgeCutPartitioner {
    k: u32,
}

impl EdgeCutPartitioner {
    /// Partitioner over `k` partitions (k >= 1).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one partition");
        Self { k: k as u32 }
    }

    /// Number of partitions.
    #[inline]
    pub fn partition_count(&self) -> usize {
        self.k as usize
    }

    /// Owning partition of a vertex.
    #[inline]
    pub fn owner(&self, v: VId) -> PartitionId {
        // Fibonacci hashing: spreads sequential ids uniformly.
        let h = v.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        PartitionId(((h >> 32) % self.k as u64) as u32)
    }
}

/// The vertex sets making up one fragment after partitioning:
/// `inner` vertices are owned here; `outer` vertices are mirrors referenced
/// by local edges but owned elsewhere.
#[derive(Clone, Debug, Default)]
pub struct FragmentSpec {
    pub id: PartitionId,
    pub inner: Vec<VId>,
    pub outer: Vec<VId>,
    /// Local edges: (src ∈ inner, dst ∈ inner ∪ outer).
    pub edges: Vec<(VId, VId)>,
}

impl FragmentSpec {
    /// Splits a global edge list into `k` fragment specs.
    pub fn partition(n: usize, edges: &[(VId, VId)], k: usize) -> Vec<FragmentSpec> {
        let p = EdgeCutPartitioner::new(k);
        let mut frags: Vec<FragmentSpec> = (0..k)
            .map(|i| FragmentSpec {
                id: PartitionId(i as u32),
                ..Default::default()
            })
            .collect();
        for v in 0..n as u64 {
            let vid = VId(v);
            frags[p.owner(vid).index()].inner.push(vid);
        }
        let mut outer_seen: Vec<std::collections::HashSet<VId>> =
            (0..k).map(|_| std::collections::HashSet::new()).collect();
        for &(s, d) in edges {
            let f = p.owner(s).index();
            frags[f].edges.push((s, d));
            if p.owner(d).index() != f && outer_seen[f].insert(d) {
                frags[f].outer.push(d);
            }
        }
        for f in &mut frags {
            f.outer.sort_unstable();
        }
        frags
    }

    /// Total local vertices (inner + outer mirrors).
    pub fn local_vertex_count(&self) -> usize {
        self.inner.len() + self.outer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_stable_and_in_range() {
        let p = EdgeCutPartitioner::new(4);
        for v in 0..1000u64 {
            let o = p.owner(VId(v));
            assert!(o.index() < 4);
            assert_eq!(o, p.owner(VId(v)));
        }
    }

    #[test]
    fn partitions_are_roughly_balanced() {
        let p = EdgeCutPartitioner::new(4);
        let mut counts = [0usize; 4];
        for v in 0..10_000u64 {
            counts[p.owner(VId(v)).index()] += 1;
        }
        for c in counts {
            assert!((2000..=3000).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn fragment_specs_cover_all_vertices_and_edges() {
        let edges: Vec<(VId, VId)> = (0..100u64).map(|i| (VId(i), VId((i + 1) % 100))).collect();
        let frags = FragmentSpec::partition(100, &edges, 3);
        let total_inner: usize = frags.iter().map(|f| f.inner.len()).sum();
        let total_edges: usize = frags.iter().map(|f| f.edges.len()).sum();
        assert_eq!(total_inner, 100);
        assert_eq!(total_edges, 100);
        // each edge's src must be inner in its fragment
        for f in &frags {
            let inner: std::collections::HashSet<_> = f.inner.iter().collect();
            for (s, d) in &f.edges {
                assert!(inner.contains(s));
                if !inner.contains(d) {
                    assert!(f.outer.binary_search(d).is_ok());
                }
            }
        }
    }

    #[test]
    fn single_partition_has_no_outer() {
        let edges = vec![(VId(0), VId(1)), (VId(1), VId(2))];
        let frags = FragmentSpec::partition(3, &edges, 1);
        assert_eq!(frags.len(), 1);
        assert!(frags[0].outer.is_empty());
        assert_eq!(frags[0].local_vertex_count(), 3);
    }
}
