//! Labeled-property-graph schema: vertex labels, edge labels (with endpoint
//! label constraints, LDBC-style triplets), and per-label property
//! definitions. Used by storage backends, the IR type checker, and the
//! GLogue catalog.

use crate::error::{GraphError, Result};
use crate::ids::{LabelId, PropId};
use crate::json::Json;
use crate::value::ValueType;

/// One property definition attached to a vertex or edge label.
#[derive(Clone, Debug, PartialEq)]
pub struct PropertyDef {
    pub id: PropId,
    pub name: String,
    pub value_type: ValueType,
}

/// Stable on-disk name for a [`ValueType`] (GraphAr metadata, schema.json).
pub fn value_type_name(vt: ValueType) -> &'static str {
    match vt {
        ValueType::Null => "null",
        ValueType::Bool => "bool",
        ValueType::Int => "int",
        ValueType::Float => "float",
        ValueType::Str => "str",
        ValueType::Date => "date",
        ValueType::List => "list",
        ValueType::Vertex => "vertex",
        ValueType::Edge => "edge",
        ValueType::Path => "path",
    }
}

/// Inverse of [`value_type_name`]; unknown names decode as `Null`, keeping
/// old archives readable if a type is ever retired.
pub fn value_type_from_name(name: &str) -> ValueType {
    match name {
        "bool" => ValueType::Bool,
        "int" => ValueType::Int,
        "float" => ValueType::Float,
        "str" => ValueType::Str,
        "date" => ValueType::Date,
        "list" => ValueType::List,
        "vertex" => ValueType::Vertex,
        "edge" => ValueType::Edge,
        "path" => ValueType::Path,
        _ => ValueType::Null,
    }
}

/// A vertex label (e.g. `Person`, `Item`) with its property definitions.
#[derive(Clone, Debug, PartialEq)]
pub struct VertexLabelDef {
    pub id: LabelId,
    pub name: String,
    pub properties: Vec<PropertyDef>,
}

/// An edge label (e.g. `KNOWS`) with endpoint constraints and properties.
///
/// LDBC-style schemas constrain edges to (src label, edge label, dst label)
/// triplets; `src`/`dst` record that constraint.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeLabelDef {
    pub id: LabelId,
    pub name: String,
    pub src: LabelId,
    pub dst: LabelId,
    pub properties: Vec<PropertyDef>,
}

/// Whole-graph schema: the catalog entry point for parsers and the optimizer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GraphSchema {
    vertex_labels: Vec<VertexLabelDef>,
    edge_labels: Vec<EdgeLabelDef>,
}

impl GraphSchema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a vertex label; ids are assigned densely in insertion order.
    pub fn add_vertex_label(&mut self, name: &str, properties: &[(&str, ValueType)]) -> LabelId {
        let id = LabelId(self.vertex_labels.len() as u16);
        self.vertex_labels.push(VertexLabelDef {
            id,
            name: name.to_string(),
            properties: mk_props(properties),
        });
        id
    }

    /// Adds an edge label constrained to `src -> dst` vertex labels.
    pub fn add_edge_label(
        &mut self,
        name: &str,
        src: LabelId,
        dst: LabelId,
        properties: &[(&str, ValueType)],
    ) -> LabelId {
        let id = LabelId(self.edge_labels.len() as u16);
        self.edge_labels.push(EdgeLabelDef {
            id,
            name: name.to_string(),
            src,
            dst,
            properties: mk_props(properties),
        });
        id
    }

    /// All vertex labels in id order.
    pub fn vertex_labels(&self) -> &[VertexLabelDef] {
        &self.vertex_labels
    }

    /// All edge labels in id order.
    pub fn edge_labels(&self) -> &[EdgeLabelDef] {
        &self.edge_labels
    }

    /// Vertex label definition by id.
    pub fn vertex_label(&self, id: LabelId) -> Result<&VertexLabelDef> {
        self.vertex_labels
            .get(id.index())
            .ok_or_else(|| GraphError::Schema(format!("unknown vertex label {id:?}")))
    }

    /// Edge label definition by id.
    pub fn edge_label(&self, id: LabelId) -> Result<&EdgeLabelDef> {
        self.edge_labels
            .get(id.index())
            .ok_or_else(|| GraphError::Schema(format!("unknown edge label {id:?}")))
    }

    /// Resolves a vertex label by name (case sensitive, LPG convention).
    pub fn vertex_label_by_name(&self, name: &str) -> Option<&VertexLabelDef> {
        self.vertex_labels.iter().find(|l| l.name == name)
    }

    /// Resolves an edge label by name.
    pub fn edge_label_by_name(&self, name: &str) -> Option<&EdgeLabelDef> {
        self.edge_labels.iter().find(|l| l.name == name)
    }

    /// Resolves a property on a vertex label by name.
    pub fn vertex_property(&self, label: LabelId, name: &str) -> Option<&PropertyDef> {
        self.vertex_labels
            .get(label.index())
            .and_then(|l| l.properties.iter().find(|p| p.name == name))
    }

    /// Resolves a property on an edge label by name.
    pub fn edge_property(&self, label: LabelId, name: &str) -> Option<&PropertyDef> {
        self.edge_labels
            .get(label.index())
            .and_then(|l| l.properties.iter().find(|p| p.name == name))
    }

    /// Number of vertex labels.
    pub fn vertex_label_count(&self) -> usize {
        self.vertex_labels.len()
    }

    /// Number of edge labels.
    pub fn edge_label_count(&self) -> usize {
        self.edge_labels.len()
    }

    /// Encodes the schema as a JSON document (the `schema.json` /
    /// GraphAr-metadata wire form).
    pub fn to_json(&self) -> Json {
        let props = |defs: &[PropertyDef]| {
            Json::arr(defs.iter().map(|p| {
                Json::obj([
                    ("id", Json::Int(p.id.0 as i64)),
                    ("name", Json::str(&p.name)),
                    ("type", Json::str(value_type_name(p.value_type))),
                ])
            }))
        };
        Json::obj([
            (
                "vertex_labels",
                Json::arr(self.vertex_labels.iter().map(|l| {
                    Json::obj([
                        ("id", Json::Int(l.id.0 as i64)),
                        ("name", Json::str(&l.name)),
                        ("properties", props(&l.properties)),
                    ])
                })),
            ),
            (
                "edge_labels",
                Json::arr(self.edge_labels.iter().map(|l| {
                    Json::obj([
                        ("id", Json::Int(l.id.0 as i64)),
                        ("name", Json::str(&l.name)),
                        ("src", Json::Int(l.src.0 as i64)),
                        ("dst", Json::Int(l.dst.0 as i64)),
                        ("properties", props(&l.properties)),
                    ])
                })),
            ),
        ])
    }

    /// Decodes a schema from its [`GraphSchema::to_json`] form.
    pub fn from_json(doc: &Json) -> Result<Self> {
        let label_id = |j: &Json, key: &str| -> Result<LabelId> {
            Ok(LabelId(
                j.field(key)?
                    .as_u64()
                    .ok_or_else(|| GraphError::Corrupt(format!("schema json: `{key}` not an id")))?
                    as u16,
            ))
        };
        let props = |j: &Json| -> Result<Vec<PropertyDef>> {
            j.field("properties")?
                .as_arr()
                .ok_or_else(|| GraphError::Corrupt("schema json: properties not an array".into()))?
                .iter()
                .map(|p| {
                    Ok(PropertyDef {
                        id: PropId(p.field("id")?.as_u64().unwrap_or(0) as u16),
                        name: p
                            .field("name")?
                            .as_str()
                            .ok_or_else(|| {
                                GraphError::Corrupt("schema json: property name".into())
                            })?
                            .to_string(),
                        value_type: value_type_from_name(
                            p.field("type")?.as_str().unwrap_or("null"),
                        ),
                    })
                })
                .collect()
        };
        let name = |j: &Json| -> Result<String> {
            Ok(j.field("name")?
                .as_str()
                .ok_or_else(|| GraphError::Corrupt("schema json: label name".into()))?
                .to_string())
        };
        let mut schema = GraphSchema::new();
        for l in doc
            .field("vertex_labels")?
            .as_arr()
            .ok_or_else(|| GraphError::Corrupt("schema json: vertex_labels".into()))?
        {
            schema.vertex_labels.push(VertexLabelDef {
                id: label_id(l, "id")?,
                name: name(l)?,
                properties: props(l)?,
            });
        }
        for l in doc
            .field("edge_labels")?
            .as_arr()
            .ok_or_else(|| GraphError::Corrupt("schema json: edge_labels".into()))?
        {
            schema.edge_labels.push(EdgeLabelDef {
                id: label_id(l, "id")?,
                name: name(l)?,
                src: label_id(l, "src")?,
                dst: label_id(l, "dst")?,
                properties: props(l)?,
            });
        }
        Ok(schema)
    }

    /// A single-label schema for homogeneous (simple/weighted) graphs: one
    /// vertex label `V` and one edge label `E` with an optional weight.
    pub fn homogeneous(weighted: bool) -> Self {
        let mut s = Self::new();
        let v = s.add_vertex_label("V", &[]);
        if weighted {
            s.add_edge_label("E", v, v, &[("weight", ValueType::Float)]);
        } else {
            s.add_edge_label("E", v, v, &[]);
        }
        s
    }
}

fn mk_props(props: &[(&str, ValueType)]) -> Vec<PropertyDef> {
    props
        .iter()
        .enumerate()
        .map(|(i, (name, vt))| PropertyDef {
            id: PropId(i as u16),
            name: name.to_string(),
            value_type: *vt,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GraphSchema {
        let mut s = GraphSchema::new();
        let person = s.add_vertex_label(
            "Person",
            &[("name", ValueType::Str), ("age", ValueType::Int)],
        );
        let item = s.add_vertex_label("Item", &[("price", ValueType::Float)]);
        s.add_edge_label("BUY", person, item, &[("date", ValueType::Date)]);
        s.add_edge_label("KNOWS", person, person, &[]);
        s
    }

    #[test]
    fn label_lookup_by_name_and_id() {
        let s = sample();
        let p = s.vertex_label_by_name("Person").unwrap();
        assert_eq!(p.id, LabelId(0));
        let buy = s.edge_label_by_name("BUY").unwrap();
        assert_eq!(buy.src, LabelId(0));
        assert_eq!(buy.dst, LabelId(1));
        assert!(s.vertex_label_by_name("Ghost").is_none());
    }

    #[test]
    fn property_lookup() {
        let s = sample();
        let p = s.vertex_property(LabelId(0), "age").unwrap();
        assert_eq!(p.value_type, ValueType::Int);
        assert!(s.vertex_property(LabelId(0), "none").is_none());
        let d = s.edge_property(LabelId(0), "date").unwrap();
        assert_eq!(d.value_type, ValueType::Date);
    }

    #[test]
    fn unknown_label_errors() {
        let s = sample();
        assert!(s.vertex_label(LabelId(9)).is_err());
        assert!(s.edge_label(LabelId(9)).is_err());
    }

    #[test]
    fn homogeneous_schema() {
        let s = GraphSchema::homogeneous(true);
        assert_eq!(s.vertex_label_count(), 1);
        assert_eq!(s.edge_label_count(), 1);
        assert!(s.edge_property(LabelId(0), "weight").is_some());
        let s2 = GraphSchema::homogeneous(false);
        assert!(s2.edge_property(LabelId(0), "weight").is_none());
    }

    #[test]
    fn schema_json_round_trip() {
        let s = sample();
        let json = s.to_json().render();
        let back = GraphSchema::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn value_type_names_round_trip() {
        for vt in [
            ValueType::Null,
            ValueType::Bool,
            ValueType::Int,
            ValueType::Float,
            ValueType::Str,
            ValueType::Date,
            ValueType::List,
            ValueType::Vertex,
            ValueType::Edge,
            ValueType::Path,
        ] {
            assert_eq!(value_type_from_name(value_type_name(vt)), vt);
        }
        assert_eq!(value_type_from_name("retired-type"), ValueType::Null);
    }
}
