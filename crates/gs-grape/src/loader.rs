//! GRIN→fragment loading: projects any [`GrinGraph`] into edge-cut
//! [`Fragment`]s so every GRAPE programming model runs over every storage
//! backend (paper §4: GRIN decouples *all* engines from storage, not just
//! the query side).
//!
//! The loader is capability-aware. Vertex domains come from
//! [`GrinGraph::vertex_range`] when the backend advertises
//! [`Capabilities::VERTEX_LIST_ARRAY`] and from the vertex iterator
//! otherwise; adjacency comes from [`GrinGraph::scan_adjacency`], which
//! backends with [`Capabilities::ADJ_LIST_ARRAY`] (or an equivalent pooled
//! scan) serve in bulk and everything else serves through the iterator
//! fallback. Telemetry counters record which path fed the load.

use crate::engine::GrapeEngine;
use crate::fragment::Fragment;
use gs_grin::{Capabilities, Direction, GraphError, GrinGraph, LabelId, Result, VId};
use gs_telemetry::{counter, span};

/// The GRIN capabilities GRAPE needs from a store: iterator-based vertex
/// and adjacency access. Array-like access is exploited when advertised but
/// never required — the loader falls back to iterators (mirrors
/// `gs_gaia::REQUIRED_CAPABILITIES`).
pub const REQUIRED_CAPABILITIES: Capabilities =
    Capabilities::VERTEX_LIST_ITER.union(Capabilities::ADJ_LIST_ITER);

/// What to project out of a GRIN store when building fragments.
#[derive(Clone, Debug, Default)]
pub struct GrinProjection {
    /// Vertex labels to include (`None` = every label in the schema).
    pub vertex_labels: Option<Vec<LabelId>>,
    /// Edge labels to include (`None` = every edge label whose endpoints
    /// are both selected). Explicitly listing a label whose endpoint labels
    /// are not selected is a schema error.
    pub edge_labels: Option<Vec<LabelId>>,
    /// Edge property to load as `f64` weights. Edges of labels lacking the
    /// property (or holding non-numeric values) get weight `1.0`.
    pub weight_property: Option<String>,
    /// Also insert the reverse of every edge (undirected analytics such as
    /// WCC over a directed store).
    pub symmetrize: bool,
    /// Topology layout the fragments materialise
    /// ([`gs_graph::LayoutKind::Csr`] by default). Algorithm results are
    /// identical across layouts; only speed/footprint trade-offs change.
    pub layout: gs_graph::LayoutKind,
}

impl GrinProjection {
    /// Everything: all labels, unweighted, directed.
    pub fn all() -> Self {
        Self::default()
    }

    /// All labels with `prop` loaded as edge weights.
    pub fn weighted(prop: &str) -> Self {
        Self {
            weight_property: Some(prop.to_string()),
            ..Self::default()
        }
    }

    /// Returns the projection with [`GrinProjection::symmetrize`] set.
    pub fn symmetrized(mut self) -> Self {
        self.symmetrize = true;
        self
    }

    /// Returns the projection with the fragment topology layout set.
    pub fn with_layout(mut self, layout: gs_graph::LayoutKind) -> Self {
        self.layout = layout;
        self
    }
}

/// The flat global vertex-id space a projection produced: each selected
/// vertex label occupies a contiguous block of ids (`base..base + domain`).
/// Fragments and algorithm results are indexed by these flattened ids.
#[derive(Clone, Debug, Default)]
pub struct VertexSpace {
    /// `(label, base, domain)` per selected label, in selection order.
    entries: Vec<(LabelId, u64, u64)>,
}

impl VertexSpace {
    /// Total size of the flattened id space.
    pub fn total(&self) -> usize {
        self.entries.iter().map(|&(_, _, d)| d as usize).sum()
    }

    /// Base offset of a selected label.
    pub fn base(&self, label: LabelId) -> Option<u64> {
        self.entries
            .iter()
            .find(|&&(l, _, _)| l == label)
            .map(|&(_, b, _)| b)
    }

    /// Flattened global id of a label-internal vertex id.
    pub fn global_of(&self, label: LabelId, v: VId) -> Option<VId> {
        let &(_, base, domain) = self.entries.iter().find(|&&(l, _, _)| l == label)?;
        (v.0 < domain).then_some(VId(base + v.0))
    }

    /// Reverses [`VertexSpace::global_of`]: which label and internal id a
    /// flattened global id denotes.
    pub fn label_of(&self, g: VId) -> Option<(LabelId, VId)> {
        for &(l, base, domain) in &self.entries {
            if g.0 >= base && g.0 < base + domain {
                return Some((l, VId(g.0 - base)));
            }
        }
        None
    }

    /// The selected labels with their id blocks.
    pub fn entries(&self) -> &[(LabelId, u64, u64)] {
        &self.entries
    }
}

/// Projects a GRIN store into `fragments` edge-cut fragments.
///
/// Validates [`REQUIRED_CAPABILITIES`] first (structured
/// [`GraphError::UnsupportedCapability`] on failure, like the query
/// engines), then flattens the selected vertex labels into one id space and
/// routes every selected edge through [`Fragment::partition_weighted`].
pub fn load_fragments(
    graph: &dyn GrinGraph,
    proj: &GrinProjection,
    fragments: usize,
) -> Result<(Vec<Fragment>, VertexSpace)> {
    graph.capabilities().require(REQUIRED_CAPABILITIES)?;
    let _load = span!("grape.load");
    let schema = graph.schema();
    let caps = graph.capabilities();

    // 1. vertex space: one contiguous id block per selected label
    let vlabels: Vec<LabelId> = match &proj.vertex_labels {
        Some(ls) => ls.clone(),
        None => schema.vertex_labels().iter().map(|d| d.id).collect(),
    };
    let mut space = VertexSpace::default();
    let mut base = 0u64;
    for &vl in &vlabels {
        if space.base(vl).is_some() {
            return Err(GraphError::Schema(format!(
                "vertex label {vl:?} selected twice"
            )));
        }
        let domain = match graph.vertex_range(vl) {
            Some(r) if caps.supports(Capabilities::VERTEX_LIST_ARRAY) => {
                counter!("grape.load.vertex_scans", path = "array");
                r.end
            }
            _ => {
                counter!("grape.load.vertex_scans", path = "iter");
                graph.vertices(vl).map(|v| v.0 + 1).max().unwrap_or(0)
            }
        };
        space.entries.push((vl, base, domain));
        base += domain;
    }

    // 2. edge labels: explicit selection must have selected endpoints;
    //    auto-discovery silently keeps only fully-selected labels
    let elabels: Vec<LabelId> = match &proj.edge_labels {
        Some(ls) => {
            for &el in ls {
                let def = schema.edge_label(el)?;
                if space.base(def.src).is_none() || space.base(def.dst).is_none() {
                    return Err(GraphError::Schema(format!(
                        "edge label {} selected but an endpoint label is not",
                        def.name
                    )));
                }
            }
            ls.clone()
        }
        None => schema
            .edge_labels()
            .iter()
            .filter(|d| space.base(d.src).is_some() && space.base(d.dst).is_some())
            .map(|d| d.id)
            .collect(),
    };

    // 3. scan each edge label's adjacency into the flattened edge list
    let mut edges: Vec<(VId, VId)> = Vec::new();
    let mut weights: Option<Vec<f64>> = proj.weight_property.as_ref().map(|_| Vec::new());
    for &el in &elabels {
        let def = schema.edge_label(el)?;
        let sbase = space.base(def.src).expect("validated");
        let dbase = space.base(def.dst).expect("validated");
        let wprop = proj
            .weight_property
            .as_ref()
            .and_then(|name| schema.edge_property(el, name).map(|p| p.id));
        edges.reserve(graph.edge_count(el));
        let bulk = graph.scan_adjacency(def.src, el, Direction::Out, &mut |v, nbrs, eids| {
            for (i, &nbr) in nbrs.iter().enumerate() {
                let s = VId(sbase + v.0);
                let d = VId(dbase + nbr.0);
                edges.push((s, d));
                if proj.symmetrize {
                    edges.push((d, s));
                }
                if let Some(ws) = &mut weights {
                    let w = wprop
                        .and_then(|p| graph.edge_property(el, eids[i], p).as_float())
                        .unwrap_or(1.0);
                    ws.push(w);
                    if proj.symmetrize {
                        ws.push(w);
                    }
                }
            }
        });
        counter!(
            "grape.load.adjacency_scans",
            path = if bulk { "bulk" } else { "iter" }
        );
    }
    counter!("grape.load.edges"; edges.len() as u64);

    // 4. parallel (work-stealing) fragment construction
    let frags = Fragment::partition_weighted_with_layout(
        space.total(),
        &edges,
        weights.as_deref(),
        fragments,
        proj.layout,
    );
    if gs_telemetry::enabled() {
        for f in &frags {
            counter!("grape.load.fragment_edges", frag = f.id.index(); f.edge_count() as u64);
        }
    }
    Ok((frags, space))
}

impl GrapeEngine {
    /// Builds an engine over any GRIN store — the storage-agnostic
    /// counterpart of [`GrapeEngine::from_edges`]. Returns the engine and
    /// the [`VertexSpace`] mapping algorithm outputs (indexed by flattened
    /// global id) back to `(label, internal id)`.
    pub fn from_grin(
        graph: &dyn GrinGraph,
        proj: &GrinProjection,
        fragments: usize,
    ) -> Result<(Self, VertexSpace)> {
        let (frags, space) = load_fragments(graph, proj, fragments)?;
        Ok((
            Self {
                fragments: frags,
                recovery: None,
            },
            space,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms;
    use gs_grin::graph::mock::MockGraph;

    fn diamond_edges() -> Vec<(u64, u64, f64)> {
        vec![(0, 1, 1.0), (0, 2, 2.0), (1, 3, 3.0), (2, 3, 4.0)]
    }

    #[test]
    fn capability_check_passes_for_mock() {
        let g = MockGraph::new(4, &diamond_edges());
        assert!(g.capabilities().require(REQUIRED_CAPABILITIES).is_ok());
    }

    #[test]
    fn grin_load_matches_edge_list_load() {
        let triples = diamond_edges();
        let g = MockGraph::new(4, &triples);
        for k in [1, 2, 3] {
            let (engine, space) = GrapeEngine::from_grin(&g, &GrinProjection::all(), k).unwrap();
            assert_eq!(space.total(), 4);
            let pairs: Vec<(VId, VId)> =
                triples.iter().map(|&(s, d, _)| (VId(s), VId(d))).collect();
            let baseline = GrapeEngine::from_edges(4, &pairs, k);
            let pr_grin = algorithms::pagerank(&engine, 0.85, 20);
            let pr_base = algorithms::pagerank(&baseline, 0.85, 20);
            assert_eq!(pr_grin, pr_base, "k={k}");
        }
    }

    #[test]
    fn iterator_only_store_loads_identically() {
        let triples = diamond_edges();
        let fast = MockGraph::new(4, &triples);
        let slow = MockGraph::new_iter_only(4, &triples);
        let (e1, _) = GrapeEngine::from_grin(&fast, &GrinProjection::all(), 2).unwrap();
        let (e2, _) = GrapeEngine::from_grin(&slow, &GrinProjection::all(), 2).unwrap();
        assert_eq!(
            algorithms::pagerank(&e1, 0.85, 15),
            algorithms::pagerank(&e2, 0.85, 15)
        );
    }

    #[test]
    fn weights_come_from_the_named_property() {
        let g = MockGraph::new(3, &[(0, 1, 0.5), (1, 2, 2.5)]);
        let (engine, _) =
            GrapeEngine::from_grin(&g, &GrinProjection::weighted("weight"), 1).unwrap();
        let ws = engine.fragments[0].weights.as_ref().unwrap();
        let mut sorted = ws.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sorted, vec![0.5, 2.5]);
    }

    #[test]
    fn missing_weight_property_defaults_to_one() {
        let g = MockGraph::new(3, &[(0, 1, 0.5), (1, 2, 2.5)]);
        let (engine, _) =
            GrapeEngine::from_grin(&g, &GrinProjection::weighted("no_such_prop"), 1).unwrap();
        assert_eq!(
            engine.fragments[0].weights.as_ref().unwrap(),
            &vec![1.0, 1.0]
        );
    }

    #[test]
    fn symmetrize_doubles_edges() {
        let g = MockGraph::new(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let (engine, _) =
            GrapeEngine::from_grin(&g, &GrinProjection::all().symmetrized(), 1).unwrap();
        let total: usize = engine.fragments.iter().map(|f| f.edge_count()).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn projection_layout_flows_into_fragments() {
        use gs_graph::LayoutKind;
        let g = MockGraph::new(4, &diamond_edges());
        let base = GrapeEngine::from_grin(&g, &GrinProjection::all(), 2)
            .unwrap()
            .0;
        assert_eq!(base.layout(), LayoutKind::Csr);
        for layout in [LayoutKind::SortedCsr, LayoutKind::CompressedCsr] {
            let proj = GrinProjection::all().with_layout(layout);
            let (engine, _) = GrapeEngine::from_grin(&g, &proj, 2).unwrap();
            assert_eq!(engine.layout(), layout);
            assert_eq!(
                algorithms::pagerank(&engine, 0.85, 10),
                algorithms::pagerank(&base, 0.85, 10),
                "layout {layout}"
            );
        }
    }

    #[test]
    fn vertex_space_round_trips() {
        let mut space = VertexSpace::default();
        space.entries.push((LabelId(0), 0, 3));
        space.entries.push((LabelId(2), 3, 5));
        assert_eq!(space.total(), 8);
        assert_eq!(space.global_of(LabelId(2), VId(4)), Some(VId(7)));
        assert_eq!(space.global_of(LabelId(2), VId(5)), None);
        assert_eq!(space.label_of(VId(7)), Some((LabelId(2), VId(4))));
        assert_eq!(space.label_of(VId(2)), Some((LabelId(0), VId(2))));
        assert_eq!(space.label_of(VId(8)), None);
        assert_eq!(space.base(LabelId(1)), None);
    }
}
