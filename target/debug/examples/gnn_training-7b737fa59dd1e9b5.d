/root/repo/target/debug/examples/gnn_training-7b737fa59dd1e9b5.d: examples/gnn_training.rs Cargo.toml

/root/repo/target/debug/examples/libgnn_training-7b737fa59dd1e9b5.rmeta: examples/gnn_training.rs Cargo.toml

examples/gnn_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
