//! Minimal in-tree replacement for `parking_lot`: [`Mutex`] and [`RwLock`]
//! wrappers over the std primitives with parking_lot's panic-free API
//! (no lock poisoning — a poisoned std lock is recovered transparently,
//! matching parking_lot's behaviour of simply unlocking on panic).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock; `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock; `read()`/`write()` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_recovers_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
