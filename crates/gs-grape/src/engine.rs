//! The BSP core shared by all GRAPE programming models: per-fragment worker
//! threads, all-to-all compact-buffer message exchange, and barrier-based
//! global reductions.
//!
//! Collectives and exchanges come in two flavors: the infallible methods
//! ([`CommHandle::exchange`], [`CommHandle::allreduce`]) assume a healthy
//! cluster and panic if it dies, and the `try_` variants return
//! [`ClusterAborted`] so the [`recover`](crate::recover) layer can detect
//! a lost worker or lost message, tear the attempt down, and restart from
//! the last coordinated checkpoint.

use crate::fragment::Fragment;
use crate::messages::{MessageBlock, OutBuffers, Payload};
use gs_graph::VId;
use gs_sanitizer::channel::{unbounded, RecvTimeoutError, TrackedReceiver, TrackedSender};
use gs_telemetry::counter;
use std::collections::HashMap;
// gs-lint: allow(L001 GlobalSync pairs the mutex with a Condvar, which has no tracked equivalent; the sanitizer's channel events already cover this rendezvous)
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A collective or exchange observed the cluster dying mid-operation: a
/// peer worker was killed, a message was lost, or the cluster was poisoned
/// by another worker's failure. The current attempt's results are void;
/// the recovery layer restarts from the last checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClusterAborted(pub &'static str);

impl std::fmt::Display for ClusterAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cluster aborted: {}", self.0)
    }
}

impl std::error::Error for ClusterAborted {}

/// Poll granularity for poison checks while blocked in a collective or an
/// exchange. Purely a responsiveness bound — correctness never depends on
/// the value.
const POLL: Duration = Duration::from_millis(10);

#[derive(Default)]
struct RoundEntry {
    arrived: usize,
    departed: usize,
    total_u: u64,
    /// Finalized by the round's last arrival: the f64 contributions are
    /// folded in a canonical order so the reduced value is bit-identical
    /// regardless of which worker arrived first (f64 addition is not
    /// associative; arrival order is scheduler noise).
    total_f: f64,
    contribs_f: Vec<f64>,
}

struct SyncState {
    /// Live reduction rounds, keyed by round number. An entry is created
    /// by the round's first arrival and **removed by its last departure**,
    /// so the map holds only rounds some worker is still inside — it stays
    /// bounded by the worker-skew of the moment (at most `workers` rounds),
    /// not by the length of the run.
    rounds: HashMap<u64, RoundEntry>,
    poisoned: Option<&'static str>,
}

/// Global reduction across all workers, keyed by collective round: every
/// worker contributes at round `r`; all observe the total.
///
/// Unlike a plain barrier, the round map tolerates skew (a fast worker may
/// enter round `r+1` while a slow one still sits in `r`) and failure: any
/// worker — or the engine's dead-worker detector — can [`poison`] the
/// sync, which promptly unblocks every waiter with [`ClusterAborted`]
/// instead of deadlocking on a peer that will never arrive.
///
/// [`poison`]: GlobalSync::poison
pub struct GlobalSync {
    workers: usize,
    /// `Some(d)` arms dead-worker detection: a reduction that makes no
    /// progress for `d` poisons the cluster instead of waiting forever.
    detect: Option<Duration>,
    state: Mutex<SyncState>,
    cv: Condvar,
}

impl GlobalSync {
    pub fn new(workers: usize) -> Arc<Self> {
        Self::new_with(workers, None)
    }

    /// A sync with dead-worker detection armed (used by recoverable runs).
    pub fn new_with(workers: usize, detect: Option<Duration>) -> Arc<Self> {
        Arc::new(Self {
            workers,
            detect,
            state: Mutex::new(SyncState {
                rounds: HashMap::new(),
                poisoned: None,
            }),
            cv: Condvar::new(),
        })
    }

    /// Marks the cluster dead: every blocked or future collective returns
    /// [`ClusterAborted`] immediately. Idempotent; the first cause wins.
    pub fn poison(&self, why: &'static str) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.poisoned.is_none() {
            st.poisoned = Some(why);
        }
        self.cv.notify_all();
    }

    /// The poison cause, if the cluster has been marked dead.
    pub fn poisoned(&self) -> Option<&'static str> {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .poisoned
    }

    /// How many reduction rounds currently hold state. Exposed for the
    /// boundedness regression test: after a run completes this is 0, and
    /// mid-run it never exceeds the number of workers.
    pub fn rounds_live(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .rounds
            .len()
    }

    /// The fallible core: contributes to round `round` and waits for all
    /// workers, polling for poison (and, when armed, for a dead worker).
    pub fn try_reduce(
        &self,
        round: u64,
        contribution: u64,
        contribution_f: f64,
    ) -> Result<(u64, f64), ClusterAborted> {
        let deadline = self.detect.map(|d| Instant::now() + d);
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(why) = st.poisoned {
            return Err(ClusterAborted(why));
        }
        {
            let e = st.rounds.entry(round).or_default();
            e.total_u += contribution;
            e.contribs_f.push(contribution_f);
            e.arrived += 1;
            if e.arrived == self.workers {
                // Fold the f64 contributions in a canonical order so the
                // sum every worker observes is deterministic across runs.
                e.contribs_f.sort_by(|a, b| a.total_cmp(b));
                e.total_f = e.contribs_f.iter().sum();
                self.cv.notify_all();
            }
        }
        loop {
            if let Some(why) = st.poisoned {
                return Err(ClusterAborted(why));
            }
            if st.rounds.get(&round).map_or(0, |e| e.arrived) >= self.workers {
                break;
            }
            if let Some(dl) = deadline {
                if Instant::now() >= dl {
                    st.poisoned = Some("allreduce stalled: worker lost");
                    self.cv.notify_all();
                    return Err(ClusterAborted("allreduce stalled: worker lost"));
                }
            }
            let (guard, _) = self
                .cv
                .wait_timeout(st, POLL)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
        let e = st.rounds.get_mut(&round).expect("round entry present");
        let out = (e.total_u, e.total_f);
        e.departed += 1;
        if e.departed == self.workers {
            // last one out prunes the round — the map stays bounded
            st.rounds.remove(&round);
        }
        Ok(out)
    }

    /// All-reduce sum at a given collective round. Every worker must call
    /// with the same monotonically increasing round number (see
    /// [`CommHandle::allreduce`], which manages the counter).
    pub fn sum_at(&self, round: u64, contribution: u64) -> u64 {
        self.try_reduce(round, contribution, 0.0)
            .expect("global sync aborted")
            .0
    }

    /// f64 all-reduce at a collective round (PageRank dangling mass).
    pub fn sum_f64_at(&self, round: u64, contribution: f64) -> f64 {
        self.try_reduce(round, 0, contribution)
            .expect("global sync aborted")
            .1
    }
}

/// An exchange packet: sender, the sender's exchange round, and the block.
/// The round tag is what makes the exchange robust to reordering, delay,
/// and duplication: a receiver files every packet under its declared round
/// instead of trusting per-sender FIFO arrival order.
type Packet = (usize, u64, MessageBlock);

/// Per-worker communication handle for all-to-all exchanges.
pub struct CommHandle {
    pub my_id: usize,
    pub workers: usize,
    senders: Vec<TrackedSender<Packet>>,
    receiver: TrackedReceiver<Packet>,
    pub sync: Arc<GlobalSync>,
    /// This worker's collective-round counter (each allreduce is one
    /// collective round; all workers must make the same sequence of calls).
    round: std::cell::Cell<u64>,
    /// This worker's exchange-round counter (tags outgoing packets).
    xround: std::cell::Cell<u64>,
    /// Blocks received ahead of their exchange round: `round → one slot
    /// per sender`. Consumed when this worker reaches that round.
    ahead: std::cell::RefCell<HashMap<u64, Vec<Option<MessageBlock>>>>,
    /// Blocks the fault plan deferred, tagged with their original round;
    /// flushed at this worker's next collective so a peer still waiting on
    /// that round receives them late but correctly filed.
    delayed: std::cell::RefCell<Vec<(usize, u64, MessageBlock)>>,
    /// `Some(d)` arms message-loss detection: an exchange that makes no
    /// receive progress for `d` poisons the cluster and aborts.
    detect: Option<Duration>,
}

impl CommHandle {
    /// Builds a `k`-worker cluster of connected handles.
    pub fn cluster(k: usize) -> Vec<CommHandle> {
        Self::cluster_with(k, None)
    }

    /// Builds a cluster with dead-worker / lost-message detection armed:
    /// any collective or exchange stalled past `detect` poisons the
    /// cluster and surfaces [`ClusterAborted`] on every worker.
    pub fn cluster_with(k: usize, detect: Option<Duration>) -> Vec<CommHandle> {
        let mut senders = Vec::with_capacity(k);
        let mut receivers = Vec::with_capacity(k);
        for _ in 0..k {
            let (tx, rx) = unbounded("grape.exchange");
            senders.push(tx);
            receivers.push(rx);
        }
        let sync = GlobalSync::new_with(k, detect);
        receivers
            .into_iter()
            .enumerate()
            .map(|(i, receiver)| CommHandle {
                my_id: i,
                workers: k,
                senders: senders.clone(),
                receiver,
                sync: Arc::clone(&sync),
                round: std::cell::Cell::new(0),
                xround: std::cell::Cell::new(0),
                ahead: std::cell::RefCell::new(HashMap::new()),
                delayed: std::cell::RefCell::new(Vec::new()),
                detect,
            })
            .collect()
    }

    /// Sends every fault-delayed block to its target, still tagged with
    /// the round it was originally part of. Send errors are ignored: in an
    /// aborting cluster the receiver may already be gone.
    fn flush_delayed(&self) {
        for (to, r, block) in self.delayed.borrow_mut().drain(..) {
            let _ = self.senders[to].send((self.my_id, r, block));
        }
    }

    /// Collective all-reduce sum (u64); panics if the cluster aborts.
    pub fn allreduce(&self, contribution: u64) -> u64 {
        self.try_allreduce(contribution).expect("allreduce aborted")
    }

    /// Collective all-reduce sum (f64); panics if the cluster aborts.
    pub fn allreduce_f64(&self, contribution: f64) -> f64 {
        self.try_allreduce_f64(contribution)
            .expect("allreduce aborted")
    }

    /// Fallible all-reduce sum (u64).
    pub fn try_allreduce(&self, contribution: u64) -> Result<u64, ClusterAborted> {
        self.flush_delayed();
        let r = self.round.get();
        self.round.set(r + 1);
        Ok(self.sync.try_reduce(r, contribution, 0.0)?.0)
    }

    /// Fallible all-reduce sum (f64).
    pub fn try_allreduce_f64(&self, contribution: f64) -> Result<f64, ClusterAborted> {
        self.flush_delayed();
        let r = self.round.get();
        self.round.set(r + 1);
        Ok(self.sync.try_reduce(r, 0, contribution)?.1)
    }

    /// All-to-all exchange: sends one block to every worker (including
    /// self), receives exactly one block *from* every worker for this
    /// round. Returns the received blocks (indexed by sender) and the total
    /// message count delivered to *this* worker. Panics if the cluster
    /// aborts mid-exchange.
    pub fn exchange(&self, out: &mut OutBuffers) -> (Vec<MessageBlock>, u64) {
        self.try_exchange(out).expect("exchange aborted")
    }

    /// Fallible all-to-all exchange. Under an installed fault plan the
    /// outgoing side consults [`gs_chaos::message_fault`] per block
    /// (self-delivery is exempt — a worker cannot lose a message to
    /// itself); the receiving side files packets by round tag, dropping
    /// duplicates and stale retransmits and stashing early arrivals. A
    /// dropped block manifests as no receive progress for the detection
    /// window, which poisons the cluster so every worker aborts and the
    /// recovery layer can restart from the last checkpoint.
    pub fn try_exchange(
        &self,
        out: &mut OutBuffers,
    ) -> Result<(Vec<MessageBlock>, u64), ClusterAborted> {
        let round = self.xround.get();
        self.xround.set(round + 1);
        self.flush_delayed();
        let blocks = out.take();
        if gs_telemetry::enabled() {
            counter!("grape.msgs_sent"; blocks.iter().map(|b| b.count).sum());
            counter!("grape.msg_bytes_raw"; blocks.iter().map(|b| b.raw_bytes).sum());
            counter!("grape.msg_bytes_encoded";
                blocks.iter().map(|b| b.bytes.len() as u64).sum());
        }
        for (to, block) in blocks.into_iter().enumerate() {
            if to == self.my_id {
                let _ = self.senders[to].send((self.my_id, round, block));
                continue;
            }
            match gs_chaos::message_fault(self.my_id, to) {
                gs_chaos::MessageFault::Deliver => {
                    let _ = self.senders[to].send((self.my_id, round, block));
                }
                gs_chaos::MessageFault::Drop => {}
                gs_chaos::MessageFault::Duplicate => {
                    let _ = self.senders[to].send((self.my_id, round, block.clone()));
                    let _ = self.senders[to].send((self.my_id, round, block));
                }
                gs_chaos::MessageFault::Delay => {
                    self.delayed.borrow_mut().push((to, round, block));
                }
            }
        }

        let mut incoming: Vec<Option<MessageBlock>> = self
            .ahead
            .borrow_mut()
            .remove(&round)
            .unwrap_or_else(|| (0..self.workers).map(|_| None).collect());
        let mut got = incoming.iter().filter(|b| b.is_some()).count();
        let stall_start = gs_telemetry::enabled().then(Instant::now);
        let mut deadline = self.detect.map(|d| Instant::now() + d);
        while got < self.workers {
            let packet = if self.detect.is_some() {
                if let Some(why) = self.sync.poisoned() {
                    return Err(ClusterAborted(why));
                }
                let dl = deadline.expect("deadline set with detect");
                let now = Instant::now();
                if now >= dl {
                    self.sync
                        .poison("exchange stalled: message lost or worker dead");
                    return Err(ClusterAborted(
                        "exchange stalled: message lost or worker dead",
                    ));
                }
                match self.receiver.recv_timeout(POLL.min(dl - now)) {
                    Ok(p) => p,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => {
                        self.sync.poison("exchange channel disconnected");
                        return Err(ClusterAborted("exchange channel disconnected"));
                    }
                }
            } else {
                match self.receiver.recv() {
                    Ok(p) => p,
                    Err(_) => {
                        self.sync.poison("exchange channel disconnected");
                        return Err(ClusterAborted("exchange channel disconnected"));
                    }
                }
            };
            let (from, r, block) = packet;
            // any receive is progress: push the loss-detection deadline out
            deadline = self.detect.map(|d| Instant::now() + d);
            match r.cmp(&round) {
                std::cmp::Ordering::Less => {
                    // stale retransmit of a round this worker completed
                }
                std::cmp::Ordering::Equal => {
                    if incoming[from].is_none() {
                        incoming[from] = Some(block);
                        got += 1;
                    }
                    // else: duplicate delivery — drop
                }
                std::cmp::Ordering::Greater => {
                    // a peer raced ahead; file under its declared round
                    let mut ahead = self.ahead.borrow_mut();
                    let slots = ahead
                        .entry(r)
                        .or_insert_with(|| (0..self.workers).map(|_| None).collect());
                    if slots[from].is_none() {
                        slots[from] = Some(block);
                    }
                }
            }
        }
        if let Some(t) = stall_start {
            counter!("grape.exchange_stall_ns"; t.elapsed().as_nanos() as u64);
        }
        let incoming: Vec<MessageBlock> = incoming
            .into_iter()
            .map(|b| b.expect("one per sender"))
            .collect();
        let count = incoming.iter().map(|b| b.count).sum();
        Ok((incoming, count))
    }
}

/// The GRAPE engine: owns the fragments and runs programs over them, one
/// worker thread per fragment.
pub struct GrapeEngine {
    pub fragments: Vec<Fragment>,
    /// When set, programs that support it (Pregel, PageRank) run under the
    /// [`recover`](crate::recover) layer: coordinated checkpoints every
    /// `interval` supersteps, dead-worker detection, restart from the last
    /// checkpoint instead of crashing.
    pub recovery: Option<crate::recover::RecoveryConfig>,
}

impl GrapeEngine {
    /// Partitions a global edge list into `k` fragments.
    pub fn from_edges(n: usize, edges: &[(VId, VId)], k: usize) -> Self {
        Self {
            fragments: Fragment::partition_edges(n, edges, k),
            recovery: None,
        }
    }

    /// Partitions a weighted edge list.
    pub fn from_weighted_edges(n: usize, edges: &[(VId, VId)], weights: &[f64], k: usize) -> Self {
        Self {
            fragments: Fragment::partition_weighted(n, edges, Some(weights), k),
            recovery: None,
        }
    }

    /// Partitions into `k` fragments materialised in the given topology
    /// layout ([`gs_graph::LayoutKind`]); algorithm results are identical
    /// across layouts.
    pub fn from_edges_with_layout(
        n: usize,
        edges: &[(VId, VId)],
        k: usize,
        layout: gs_graph::LayoutKind,
    ) -> Self {
        Self {
            fragments: Fragment::partition_edges_with_layout(n, edges, k, layout),
            recovery: None,
        }
    }

    /// Partitions a weighted edge list with an explicit topology layout.
    pub fn from_weighted_edges_with_layout(
        n: usize,
        edges: &[(VId, VId)],
        weights: &[f64],
        k: usize,
        layout: gs_graph::LayoutKind,
    ) -> Self {
        Self {
            fragments: Fragment::partition_weighted_with_layout(n, edges, Some(weights), k, layout),
            recovery: None,
        }
    }

    /// The topology layout the fragments were materialised in.
    pub fn layout(&self) -> gs_graph::LayoutKind {
        self.fragments
            .first()
            .map_or(gs_graph::LayoutKind::Csr, |f| f.layout())
    }

    /// Arms checkpoint/restart recovery for the programs that support it.
    pub fn with_recovery(mut self, cfg: crate::recover::RecoveryConfig) -> Self {
        self.recovery = Some(cfg);
        self
    }

    /// Global vertex count.
    pub fn global_n(&self) -> usize {
        self.fragments.first().map_or(0, |f| f.global_n)
    }

    /// Runs a per-fragment worker function in parallel and gathers each
    /// fragment's `(global id, value)` results into one global vector.
    /// The worker receives `(fragment, comm)`.
    pub fn run<T, F>(&self, worker: F) -> Vec<T>
    where
        T: Clone + Default + Send + 'static,
        F: Fn(&Fragment, &CommHandle) -> Vec<(VId, T)> + Sync,
    {
        let k = self.fragments.len();
        let comms = CommHandle::cluster(k);
        let results: Vec<Vec<(VId, T)>> = crossbeam::thread::scope(|s| {
            let worker = &worker;
            let handles: Vec<_> = self
                .fragments
                .iter()
                .zip(comms)
                .map(|(frag, comm)| s.spawn(move |_| worker(frag, &comm)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("grape worker panicked"))
                .collect()
        })
        .expect("grape scope");
        let mut global = vec![T::default(); self.global_n()];
        for part in results {
            for (g, v) in part {
                global[g.index()] = v;
            }
        }
        global
    }
}

/// A Pregel ("think like a vertex") program.
pub trait PregelProgram: Sync {
    /// Message type exchanged along edges.
    type Msg: Payload;
    /// Per-vertex state.
    type Value: Clone + Default + Send + 'static;

    /// Initial value for a vertex.
    fn init(&self, g: VId, frag: &Fragment) -> Self::Value;

    /// One superstep for one vertex. Returning `true` keeps the vertex
    /// active; `false` votes to halt (it reactivates on incoming messages).
    fn compute(
        &self,
        step: usize,
        local: u32,
        value: &mut Self::Value,
        msgs: &[Self::Msg],
        ctx: &mut PregelContext<'_, Self::Msg>,
    ) -> bool;

    /// Optional associative message combiner (applied at the receiver).
    fn combine(&self, _a: Self::Msg, _b: Self::Msg) -> Option<Self::Msg> {
        None
    }
}

/// Context passed to [`PregelProgram::compute`].
pub struct PregelContext<'a, M: Payload> {
    pub frag: &'a Fragment,
    out: &'a mut OutBuffers,
    _marker: std::marker::PhantomData<M>,
}

impl<'a, M: Payload> PregelContext<'a, M> {
    /// Sends a message to a vertex by *global* id.
    #[inline]
    pub fn send(&mut self, target: VId, msg: M) {
        let to = self.frag.owner(target).index();
        self.out.send(to, target, msg);
    }

    /// Sends to every out-neighbor of a local vertex.
    #[inline]
    pub fn send_to_out_neighbors(&mut self, local: u32, msg: M) {
        let frag = self.frag;
        let out = &mut self.out;
        frag.for_each_out(local, |nbr, _| {
            let g = frag.global(nbr.0 as u32);
            let to = frag.owner(g).index();
            out.send(to, g, msg);
        });
    }
}

/// One Pregel superstep over a fragment: compute phase, exchange, inbox
/// fill (with combining), and the global termination reduction. Shared by
/// the plain and the recoverable drivers so both execute the byte-
/// identical per-step logic. Returns `Ok(true)` to continue, `Ok(false)`
/// on global termination.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pregel_step<P: PregelProgram>(
    program: &P,
    frag: &Fragment,
    comm: &CommHandle,
    step: usize,
    values: &mut [P::Value],
    active: &mut [bool],
    inboxes: &mut [Vec<P::Msg>],
    out: &mut OutBuffers,
) -> Result<bool, ClusterAborted> {
    let n_inner = frag.inner_count;
    if comm.my_id == 0 {
        // one worker counts supersteps for the whole cluster
        counter!("grape.supersteps");
    }
    // compute phase
    let mut local_active = 0u64;
    for l in 0..n_inner {
        if !active[l] && inboxes[l].is_empty() {
            continue;
        }
        let msgs = std::mem::take(&mut inboxes[l]);
        let mut ctx = PregelContext {
            frag,
            out,
            _marker: std::marker::PhantomData,
        };
        let keep = program.compute(step, l as u32, &mut values[l], &msgs, &mut ctx);
        active[l] = keep;
        if keep {
            local_active += 1;
        }
    }
    // exchange phase
    let sent = out.total();
    let (blocks, _received) = comm.try_exchange(out)?;
    for block in &blocks {
        block.for_each::<P::Msg>(|g, m| {
            let l = frag.local(g).expect("message routed to owner") as usize;
            debug_assert!(l < n_inner);
            if let Some(last) = inboxes[l].pop() {
                match program.combine(last, m) {
                    Some(c) => inboxes[l].push(c),
                    None => {
                        inboxes[l].push(last);
                        inboxes[l].push(m);
                    }
                }
            } else {
                inboxes[l].push(m);
            }
        });
    }
    // global termination: nobody active, nothing in flight
    let global_pending = comm.try_allreduce(local_active + sent)?;
    Ok(global_pending != 0)
}

/// Runs a Pregel program to fixpoint (or `max_steps`), returning per-vertex
/// values indexed by global id. With [`GrapeEngine::with_recovery`] armed,
/// delegates to the checkpoint/restart driver in [`recover`](crate::recover).
pub fn run_pregel<P: PregelProgram>(
    engine: &GrapeEngine,
    program: &P,
    max_steps: usize,
) -> Vec<P::Value> {
    if let Some(cfg) = engine.recovery.clone() {
        let store = crate::recover::CheckpointStore::new();
        return crate::recover::run_pregel_recoverable(engine, program, max_steps, &cfg, &store);
    }
    engine.run(|frag, comm| {
        let n_inner = frag.inner_count;
        let mut values: Vec<P::Value> = (0..n_inner)
            .map(|l| program.init(frag.global(l as u32), frag))
            .collect();
        let mut active = vec![true; n_inner];
        let mut inboxes: Vec<Vec<P::Msg>> = vec![Vec::new(); n_inner];
        let mut out = OutBuffers::new(comm.workers);

        for step in 0..max_steps {
            gs_chaos::worker_kill_point(comm.my_id, step);
            let cont = pregel_step(
                program,
                frag,
                comm,
                step,
                &mut values,
                &mut active,
                &mut inboxes,
                &mut out,
            )
            .expect("pregel step aborted");
            if !cont {
                break;
            }
        }
        (0..n_inner)
            .map(|l| (frag.global(l as u32), values[l].clone()))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Max-value propagation: every vertex converges to the component max.
    struct MaxProp;
    impl PregelProgram for MaxProp {
        type Msg = u64;
        type Value = u64;
        fn init(&self, g: VId, _f: &Fragment) -> u64 {
            g.0
        }
        fn compute(
            &self,
            step: usize,
            local: u32,
            value: &mut u64,
            msgs: &[u64],
            ctx: &mut PregelContext<'_, u64>,
        ) -> bool {
            let before = *value;
            for &m in msgs {
                *value = (*value).max(m);
            }
            if step == 0 || *value > before {
                let v = *value;
                ctx.send_to_out_neighbors(local, v);
            }
            false // vote halt; reactivated by messages
        }
        fn combine(&self, a: u64, b: u64) -> Option<u64> {
            Some(a.max(b))
        }
    }

    #[test]
    fn max_propagation_on_ring() {
        let edges: Vec<(VId, VId)> = (0..40u64)
            .flat_map(|i| [(VId(i), VId((i + 1) % 40)), (VId((i + 1) % 40), VId(i))])
            .collect();
        for k in [1, 3, 4] {
            let engine = GrapeEngine::from_edges(40, &edges, k);
            let result = run_pregel(&engine, &MaxProp, 100);
            assert!(result.iter().all(|&v| v == 39), "k={k}: {result:?}");
        }
    }

    #[test]
    fn disconnected_components_get_their_own_max() {
        // two disjoint bidirectional paths: 0-1-2, 3-4
        let edges = vec![
            (VId(0), VId(1)),
            (VId(1), VId(0)),
            (VId(1), VId(2)),
            (VId(2), VId(1)),
            (VId(3), VId(4)),
            (VId(4), VId(3)),
        ];
        let engine = GrapeEngine::from_edges(5, &edges, 2);
        let result = run_pregel(&engine, &MaxProp, 50);
        assert_eq!(result, vec![2, 2, 2, 4, 4]);
    }

    #[test]
    fn global_sync_sums_across_workers() {
        let comms = CommHandle::cluster(4);
        let totals: Vec<u64> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|c| {
                    s.spawn(move |_| -> u64 {
                        (0..3).map(|_| c.allreduce(c.my_id as u64 + 1)).sum()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        // each round sums 1+2+3+4 = 10; three rounds = 30 per worker
        assert!(totals.iter().all(|&t| t == 30), "{totals:?}");
    }

    /// Regression (round-map growth): a long run must not accumulate an
    /// entry per past round — the last worker out of a round prunes it, so
    /// the map holds at most the rounds currently straddled by skew.
    #[test]
    fn global_sync_round_map_stays_bounded_over_long_runs() {
        let workers = 4;
        let sync = GlobalSync::new(workers);
        let rounds = 2_000u64;
        crossbeam::thread::scope(|s| {
            for w in 0..workers {
                let sync = Arc::clone(&sync);
                s.spawn(move |_| {
                    for r in 0..rounds {
                        let total = sync.sum_at(r, w as u64 + 1);
                        assert_eq!(total, 10);
                    }
                    // live rounds are bounded by skew, never by history
                    assert!(
                        sync.rounds_live() <= workers,
                        "round map grew to {}",
                        sync.rounds_live()
                    );
                });
            }
        })
        .unwrap();
        assert_eq!(sync.rounds_live(), 0, "all rounds pruned after the run");
    }

    /// Poisoning a sync unblocks waiting workers with `ClusterAborted`
    /// instead of deadlocking on a peer that never arrives.
    #[test]
    fn poison_unblocks_waiting_workers() {
        let sync = GlobalSync::new(2);
        let s2 = Arc::clone(&sync);
        let waiter = std::thread::spawn(move || s2.try_reduce(0, 1, 0.0));
        std::thread::sleep(Duration::from_millis(20));
        sync.poison("test kill");
        let got = waiter.join().unwrap();
        assert_eq!(got, Err(ClusterAborted("test kill")));
        assert_eq!(sync.poisoned(), Some("test kill"));
    }

    /// Dead-worker detection: with detection armed, a reduction missing a
    /// contributor aborts after the window instead of hanging forever.
    #[test]
    fn armed_sync_detects_missing_worker() {
        let sync = GlobalSync::new_with(2, Some(Duration::from_millis(50)));
        let got = sync.try_reduce(0, 1, 0.0);
        assert!(got.is_err(), "lone worker must time out");
        assert!(sync.poisoned().is_some());
    }

    /// An exchange missing one sender's block aborts the cluster via the
    /// detection window (this is how message loss surfaces).
    #[test]
    fn armed_exchange_detects_lost_block() {
        let mut comms = CommHandle::cluster_with(2, Some(Duration::from_millis(60)));
        let c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        // worker 1 never sends; worker 0's exchange must abort, not hang
        drop(c1);
        let mut out = OutBuffers::new(2);
        let got = c0.try_exchange(&mut out);
        assert!(got.is_err(), "exchange must detect the lost block");
        assert!(c0.sync.poisoned().is_some());
    }
}
