/root/repo/target/release/deps/gs_learn-491aef042b3aab20.d: crates/gs-learn/src/lib.rs crates/gs-learn/src/ncn.rs crates/gs-learn/src/pipeline.rs crates/gs-learn/src/sage.rs crates/gs-learn/src/sampler.rs crates/gs-learn/src/tensor.rs

/root/repo/target/release/deps/libgs_learn-491aef042b3aab20.rlib: crates/gs-learn/src/lib.rs crates/gs-learn/src/ncn.rs crates/gs-learn/src/pipeline.rs crates/gs-learn/src/sage.rs crates/gs-learn/src/sampler.rs crates/gs-learn/src/tensor.rs

/root/repo/target/release/deps/libgs_learn-491aef042b3aab20.rmeta: crates/gs-learn/src/lib.rs crates/gs-learn/src/ncn.rs crates/gs-learn/src/pipeline.rs crates/gs-learn/src/sage.rs crates/gs-learn/src/sampler.rs crates/gs-learn/src/tensor.rs

crates/gs-learn/src/lib.rs:
crates/gs-learn/src/ncn.rs:
crates/gs-learn/src/pipeline.rs:
crates/gs-learn/src/sage.rs:
crates/gs-learn/src/sampler.rs:
crates/gs-learn/src/tensor.rs:
