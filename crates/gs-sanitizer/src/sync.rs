//! Tracked drop-in lock wrappers: [`TrackedMutex`], [`TrackedRwLock`],
//! [`TrackedBarrier`]. Every constructor takes a `&'static str` site label
//! that identifies the lock in diagnostics and the lock-order graph.
//!
//! Without the `sanitize` feature these are inlined pass-throughs over
//! `parking_lot` / `std::sync::Barrier` with zero overhead; with it, each
//! acquire/release records an event, extends the lock-order graph, and
//! propagates vector clocks.

#[cfg(feature = "sanitize")]
use crate::state::{self, LockMode};

// =====================================================================
// sanitize: tracked implementations
// =====================================================================

/// A mutex whose acquire/release feed the lock-order and happens-before
/// analyses. API mirrors `parking_lot::Mutex` plus a site label.
#[cfg(feature = "sanitize")]
pub struct TrackedMutex<T: ?Sized> {
    id: usize,
    label: &'static str,
    inner: parking_lot::Mutex<T>,
}

#[cfg(feature = "sanitize")]
impl<T> TrackedMutex<T> {
    /// A tracked mutex labelled `label` for diagnostics.
    pub fn new(label: &'static str, value: T) -> Self {
        Self {
            id: state::register_lock(label),
            label,
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

#[cfg(feature = "sanitize")]
impl<T: ?Sized> TrackedMutex<T> {
    /// Acquires the lock, recording the acquisition.
    pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
        state::before_acquire(self.id, self.label, LockMode::Excl);
        let guard = self.inner.lock();
        state::after_acquire(self.id);
        TrackedMutexGuard { lock: self, guard }
    }
}

/// Guard for [`TrackedMutex`]; records the release on drop.
#[cfg(feature = "sanitize")]
pub struct TrackedMutexGuard<'a, T: ?Sized> {
    lock: &'a TrackedMutex<T>,
    guard: std::sync::MutexGuard<'a, T>,
}

#[cfg(feature = "sanitize")]
impl<T: ?Sized> std::ops::Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

#[cfg(feature = "sanitize")]
impl<T: ?Sized> std::ops::DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(feature = "sanitize")]
impl<T: ?Sized> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        // runs before the inner guard's drop, i.e. before the real unlock
        state::on_release(self.lock.id, self.lock.label);
    }
}

/// A reader-writer lock whose acquisitions feed the analyses; see
/// [`TrackedMutex`].
#[cfg(feature = "sanitize")]
pub struct TrackedRwLock<T: ?Sized> {
    id: usize,
    label: &'static str,
    inner: parking_lot::RwLock<T>,
}

#[cfg(feature = "sanitize")]
impl<T> TrackedRwLock<T> {
    /// A tracked rwlock labelled `label` for diagnostics.
    pub fn new(label: &'static str, value: T) -> Self {
        Self {
            id: state::register_lock(label),
            label,
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

#[cfg(feature = "sanitize")]
impl<T: ?Sized> TrackedRwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> TrackedReadGuard<'_, T> {
        state::before_acquire(self.id, self.label, LockMode::Read);
        let guard = self.inner.read();
        state::after_acquire(self.id);
        TrackedReadGuard { lock: self, guard }
    }

    /// Acquires the exclusive write guard.
    pub fn write(&self) -> TrackedWriteGuard<'_, T> {
        state::before_acquire(self.id, self.label, LockMode::Excl);
        let guard = self.inner.write();
        state::after_acquire(self.id);
        TrackedWriteGuard { lock: self, guard }
    }
}

/// Shared guard for [`TrackedRwLock`].
#[cfg(feature = "sanitize")]
pub struct TrackedReadGuard<'a, T: ?Sized> {
    lock: &'a TrackedRwLock<T>,
    guard: std::sync::RwLockReadGuard<'a, T>,
}

#[cfg(feature = "sanitize")]
impl<T: ?Sized> std::ops::Deref for TrackedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

#[cfg(feature = "sanitize")]
impl<T: ?Sized> Drop for TrackedReadGuard<'_, T> {
    fn drop(&mut self) {
        state::on_release(self.lock.id, self.lock.label);
    }
}

/// Exclusive guard for [`TrackedRwLock`].
#[cfg(feature = "sanitize")]
pub struct TrackedWriteGuard<'a, T: ?Sized> {
    lock: &'a TrackedRwLock<T>,
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

#[cfg(feature = "sanitize")]
impl<T: ?Sized> std::ops::Deref for TrackedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

#[cfg(feature = "sanitize")]
impl<T: ?Sized> std::ops::DerefMut for TrackedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(feature = "sanitize")]
impl<T: ?Sized> Drop for TrackedWriteGuard<'_, T> {
    fn drop(&mut self) {
        state::on_release(self.lock.id, self.lock.label);
    }
}

/// A barrier that, under sanitize, joins every participant's vector clock
/// on each round — the happens-before edge a BSP superstep relies on.
#[cfg(feature = "sanitize")]
pub struct TrackedBarrier {
    label: &'static str,
    n: usize,
    inner: std::sync::Barrier,
    rounds: parking_lot::Mutex<state::BarrierRounds>,
}

#[cfg(feature = "sanitize")]
impl TrackedBarrier {
    /// A tracked barrier for `n` participants.
    pub fn new(label: &'static str, n: usize) -> Self {
        Self {
            label,
            n,
            inner: std::sync::Barrier::new(n),
            rounds: parking_lot::Mutex::new(state::BarrierRounds::default()),
        }
    }

    /// Waits for all participants; exactly one call per round returns a
    /// leader result, as with `std::sync::Barrier`.
    pub fn wait(&self) -> std::sync::BarrierWaitResult {
        let round = state::barrier_arrive(&self.rounds, self.n, self.label);
        let res = self.inner.wait();
        if let Some(r) = round {
            state::barrier_depart(&self.rounds, self.n, r);
        }
        res
    }
}

// =====================================================================
// default: zero-cost pass-throughs
// =====================================================================

/// Pass-through mutex (the `sanitize` feature is off).
#[cfg(not(feature = "sanitize"))]
pub struct TrackedMutex<T: ?Sized> {
    inner: parking_lot::Mutex<T>,
}

#[cfg(not(feature = "sanitize"))]
impl<T> TrackedMutex<T> {
    /// A mutex; `label` is ignored in pass-through builds.
    #[inline]
    pub fn new(_label: &'static str, value: T) -> Self {
        Self {
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

#[cfg(not(feature = "sanitize"))]
impl<T: ?Sized> TrackedMutex<T> {
    /// Acquires the lock.
    #[inline]
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock()
    }
}

/// Pass-through rwlock (the `sanitize` feature is off).
#[cfg(not(feature = "sanitize"))]
pub struct TrackedRwLock<T: ?Sized> {
    inner: parking_lot::RwLock<T>,
}

#[cfg(not(feature = "sanitize"))]
impl<T> TrackedRwLock<T> {
    /// An rwlock; `label` is ignored in pass-through builds.
    #[inline]
    pub fn new(_label: &'static str, value: T) -> Self {
        Self {
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

#[cfg(not(feature = "sanitize"))]
impl<T: ?Sized> TrackedRwLock<T> {
    /// Acquires a shared read guard.
    #[inline]
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read()
    }

    /// Acquires the exclusive write guard.
    #[inline]
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write()
    }
}

/// Pass-through barrier (the `sanitize` feature is off).
#[cfg(not(feature = "sanitize"))]
pub struct TrackedBarrier {
    inner: std::sync::Barrier,
}

#[cfg(not(feature = "sanitize"))]
impl TrackedBarrier {
    /// A barrier for `n` participants; `label` is ignored.
    #[inline]
    pub fn new(_label: &'static str, n: usize) -> Self {
        Self {
            inner: std::sync::Barrier::new(n),
        }
    }

    /// Waits for all participants.
    #[inline]
    pub fn wait(&self) -> std::sync::BarrierWaitResult {
        self.inner.wait()
    }
}
