/root/repo/target/debug/examples/snb_analytics-17b2f616da0fad14.d: examples/snb_analytics.rs Cargo.toml

/root/repo/target/debug/examples/libsnb_analytics-17b2f616da0fad14.rmeta: examples/snb_analytics.rs Cargo.toml

examples/snb_analytics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
