/root/repo/target/debug/examples/fraud_detection-26de2c3d5154bc57.d: examples/fraud_detection.rs

/root/repo/target/debug/examples/fraud_detection-26de2c3d5154bc57: examples/fraud_detection.rs

examples/fraud_detection.rs:
