//! Timing and table-formatting helpers shared by all experiments.

use std::time::{Duration, Instant};

/// Times a closure: one warm-up run, then the median of `runs` timed runs.
pub fn time_it<T>(runs: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut result = f(); // warm-up
    let mut times = Vec::with_capacity(runs.max(1));
    for _ in 0..runs.max(1) {
        let t0 = Instant::now();
        result = f();
        times.push(t0.elapsed());
    }
    times.sort();
    (times[times.len() / 2], result)
}

/// One output row.
pub type Row = Vec<String>;

/// Fixed-width console table printer.
pub struct TablePrinter {
    headers: Vec<String>,
    rows: Vec<Row>,
}

impl TablePrinter {
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Renders to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(&widths) {
                s.push_str(&format!(" {c:<w$} |"));
            }
            s
        };
        let sep: String = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        println!("{sep}");
        println!("{}", line(&self.headers));
        println!("{sep}");
        for row in &self.rows {
            println!("{}", line(row));
        }
        println!("{sep}");
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.3}s", us as f64 / 1_000_000.0)
    }
}

/// Formats a speedup factor.
pub fn fmt_speedup(baseline: Duration, ours: Duration) -> String {
    if ours.as_nanos() == 0 {
        return "∞".to_string();
    }
    format!("{:.2}×", baseline.as_secs_f64() / ours.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_it_returns_result() {
        let (d, v) = time_it(3, || 21 * 2);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn table_prints_without_panicking() {
        let mut t = TablePrinter::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print();
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5µs");
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with('s'));
        assert_eq!(
            fmt_speedup(Duration::from_secs(2), Duration::from_secs(1)),
            "2.00×"
        );
    }
}
