//! Social relation prediction (paper §8, Exp-7): NCN link prediction over
//! a social graph, with the learning stack's decoupled sampling/training
//! workers.

use gs_datagen::powerlaw;
use gs_graph::data::PropertyGraphData;
use gs_graph::{LabelId, Result};
use gs_learn::ncn::{build_examples, LinkExample, NcnModel};
use gs_learn::sampler::Sampler;
use gs_vineyard::VineyardGraph;
use std::time::{Duration, Instant};

/// Configuration for a social-prediction training run.
#[derive(Clone, Debug)]
pub struct SocialConfig {
    pub vertices: usize,
    pub avg_degree: usize,
    pub train_pairs: usize,
    pub epochs: usize,
    pub hidden: usize,
    pub feature_dim: usize,
    pub lr: f32,
    pub batch: usize,
    pub seed: u64,
}

impl Default for SocialConfig {
    fn default() -> Self {
        Self {
            vertices: 2_000,
            avg_degree: 8,
            train_pairs: 400,
            epochs: 3,
            hidden: 32,
            feature_dim: 16,
            lr: 0.01,
            batch: 64,
            seed: 1,
        }
    }
}

/// Per-epoch measurements.
#[derive(Clone, Debug)]
pub struct SocialEpoch {
    pub duration: Duration,
    pub mean_loss: f32,
}

/// Outcome of a training run.
pub struct SocialRun {
    pub epochs: Vec<SocialEpoch>,
    /// Mean predicted probability on held-out positives minus negatives
    /// (separation score; > 0 means the model learned something).
    pub separation: f32,
}

/// Builds the social graph (Vineyard immutable store — "the original social
/// relation graph remains unchanged and will be frequently accessed during
/// training", §8).
pub fn build_social_graph(cfg: &SocialConfig) -> Result<VineyardGraph> {
    let el = powerlaw::preferential_attachment(cfg.vertices, cfg.avg_degree / 2, cfg.seed);
    let mut sym = el.clone();
    sym.symmetrize();
    let pairs: Vec<(u64, u64)> = sym.edges().iter().map(|&(s, d)| (s.0, d.0)).collect();
    let data = PropertyGraphData::from_edge_list(cfg.vertices, &pairs);
    VineyardGraph::build(&data)
}

/// Trains NCN on the social graph; returns per-epoch stats and the final
/// separation score on a held-out split.
pub fn train_social(cfg: &SocialConfig) -> Result<SocialRun> {
    let graph = build_social_graph(cfg)?;
    let vl = LabelId(0);
    let el = LabelId(0);
    let sampler = Sampler::new(&graph, vl, el, vec![5], cfg.feature_dim);
    let all = build_examples(&graph, vl, el, cfg.train_pairs, cfg.seed);
    let holdout = all.len() / 5;
    let (test, train) = all.split_at(holdout);
    let mut model = NcnModel::new(cfg.feature_dim, cfg.hidden, cfg.seed);
    let mut epochs = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        let t0 = Instant::now();
        let mut losses = Vec::new();
        for chunk in train.chunks(cfg.batch) {
            losses.push(model.train_batch(&sampler, chunk, cfg.lr));
        }
        epochs.push(SocialEpoch {
            duration: t0.elapsed(),
            mean_loss: losses.iter().sum::<f32>() / losses.len().max(1) as f32,
        });
    }
    let separation = separation_score(&mut model, &sampler, test);
    Ok(SocialRun { epochs, separation })
}

fn separation_score(model: &mut NcnModel, sampler: &Sampler<'_>, test: &[LinkExample]) -> f32 {
    if test.is_empty() {
        return 0.0;
    }
    let probs = model.predict(sampler, test);
    let (mut ps, mut pn, mut ns, mut nn) = (0.0f32, 0usize, 0.0f32, 0usize);
    for (p, ex) in probs.iter().zip(test) {
        if ex.label == 1.0 {
            ps += p;
            pn += 1;
        } else {
            ns += p;
            nn += 1;
        }
    }
    ps / pn.max(1) as f32 - ns / nn.max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_runs_and_separates() {
        let cfg = SocialConfig {
            vertices: 400,
            train_pairs: 150,
            epochs: 6,
            ..Default::default()
        };
        let run = train_social(&cfg).unwrap();
        assert_eq!(run.epochs.len(), 6);
        let first = run.epochs.first().unwrap().mean_loss;
        let last = run.epochs.last().unwrap().mean_loss;
        assert!(last < first, "loss should fall: {first} → {last}");
        assert!(
            run.separation > 0.05,
            "positives should score above negatives: {}",
            run.separation
        );
    }

    #[test]
    fn social_graph_is_symmetric() {
        let cfg = SocialConfig {
            vertices: 200,
            ..Default::default()
        };
        let g = build_social_graph(&cfg).unwrap();
        use gs_grin::{Direction, GrinGraph};
        let l = LabelId(0);
        for v in 0..50u64 {
            let out: Vec<_> = g
                .adjacent(gs_graph::VId(v), l, l, Direction::Out)
                .map(|a| a.nbr)
                .collect();
            for w in out {
                assert!(g
                    .adjacent(w, l, l, Direction::Out)
                    .any(|a| a.nbr == gs_graph::VId(v)));
            }
        }
    }
}
