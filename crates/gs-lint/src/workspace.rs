//! Workspace discovery: which files and manifests get linted.
//!
//! The walker mirrors the cargo layout: the root package plus every
//! crate under `crates/`, each contributing `src/` (production code) and
//! `tests/`, `benches/`, `examples/` (test-ish code, exempt from most
//! lints). `vendor/` sources are external API shims and are never linted,
//! but their manifests are still parsed so feature-forwarding checks know
//! which vendored crates declare `sanitize`/`chaos`.

use crate::manifest::{self, Manifest};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One `.rs` file to lint.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    pub abs_path: PathBuf,
    /// Owning crate's package name.
    pub crate_name: String,
    /// Under `tests/`, `benches/`, or `examples/`.
    pub is_test_file: bool,
}

/// One workspace crate (root package included).
#[derive(Debug)]
pub struct CrateInfo {
    pub name: String,
    /// Workspace-relative Cargo.toml path.
    pub manifest_rel: String,
    pub manifest: Manifest,
    /// 1-based line of the `[features]` header (1 if absent).
    pub features_line: u32,
}

/// Everything discovery found.
#[derive(Debug, Default)]
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub crates: Vec<CrateInfo>,
    /// Manifests of vendored crates (sources are not linted).
    pub vendor: Vec<Manifest>,
}

impl Workspace {
    /// feature name → set of package names (workspace + vendor) that
    /// declare it in `[features]`.
    pub fn feature_declarers(&self) -> BTreeMap<String, BTreeSet<String>> {
        let mut map: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let all = self
            .crates
            .iter()
            .map(|c| &c.manifest)
            .chain(self.vendor.iter());
        for m in all {
            if let Some(name) = &m.package_name {
                for feature in m.features.keys() {
                    map.entry(feature.clone()).or_default().insert(name.clone());
                }
            }
        }
        map
    }
}

fn features_line_of(text: &str) -> u32 {
    text.lines()
        .position(|l| l.trim() == "[features]")
        .map(|i| i as u32 + 1)
        .unwrap_or(1)
}

fn collect_rs(dir: &Path, rel: &str, crate_name: &str, testish: bool, out: &mut Vec<SourceFile>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()).map(String::from) else {
            continue;
        };
        let child_rel = format!("{rel}/{name}");
        if path.is_dir() {
            collect_rs(&path, &child_rel, crate_name, testish, out);
        } else if name.ends_with(".rs") {
            out.push(SourceFile {
                rel_path: child_rel,
                abs_path: path,
                crate_name: crate_name.to_string(),
                is_test_file: testish,
            });
        }
    }
}

/// (dir name, is test-ish) pairs scanned inside each crate.
const CRATE_DIRS: [(&str, bool); 4] = [
    ("src", false),
    ("tests", true),
    ("benches", true),
    ("examples", true),
];

fn load_crate(root: &Path, dir_rel: &str, out: &mut Workspace) -> io::Result<()> {
    let dir = if dir_rel.is_empty() {
        root.to_path_buf()
    } else {
        root.join(dir_rel)
    };
    let manifest_path = dir.join("Cargo.toml");
    let Ok(text) = fs::read_to_string(&manifest_path) else {
        return Ok(());
    };
    let m = manifest::parse(&text);
    let Some(name) = m.package_name.clone() else {
        return Ok(()); // virtual manifest without a package
    };
    let manifest_rel = if dir_rel.is_empty() {
        "Cargo.toml".to_string()
    } else {
        format!("{dir_rel}/Cargo.toml")
    };
    for (sub, testish) in CRATE_DIRS {
        let sub_rel = if dir_rel.is_empty() {
            sub.to_string()
        } else {
            format!("{dir_rel}/{sub}")
        };
        collect_rs(&dir.join(sub), &sub_rel, &name, testish, &mut out.files);
    }
    out.crates.push(CrateInfo {
        name,
        manifest_rel,
        manifest: m,
        features_line: features_line_of(&text),
    });
    Ok(())
}

/// Walks the workspace at `root`: root package, `crates/*`, and vendor
/// manifests. Files are returned sorted by path for deterministic output.
pub fn discover(root: &Path) -> io::Result<Workspace> {
    let mut ws = Workspace::default();
    load_crate(root, "", &mut ws)?;
    for sub in ["crates", "vendor"] {
        let Ok(entries) = fs::read_dir(root.join(sub)) else {
            continue;
        };
        let mut names: Vec<String> = entries
            .flatten()
            .filter(|e| e.path().is_dir())
            .filter_map(|e| e.file_name().to_str().map(String::from))
            .collect();
        names.sort();
        for name in names {
            if sub == "crates" {
                load_crate(root, &format!("crates/{name}"), &mut ws)?;
            } else {
                let path = root.join(sub).join(&name).join("Cargo.toml");
                if let Ok(text) = fs::read_to_string(&path) {
                    ws.vendor.push(manifest::parse(&text));
                }
            }
        }
    }
    ws.files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(ws)
}
