//! Crash/restart equivalence run over the durable-GART kill corpus.
//!
//! ```text
//! durability            run the corpus; always exit 0
//! durability --deny     fail on any equivalence violation (the CI bar)
//! durability --seed N   pin the fault plan and workload shape (default 42)
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let deny = args.iter().any(|a| a == "--deny");
    let mut seed = 42u64;
    for w in args.windows(2) {
        if w[0] == "--seed" {
            seed = w[1].parse().expect("--seed takes an integer");
        }
    }
    std::process::exit(gs_bench::durability::run(deny, seed));
}
