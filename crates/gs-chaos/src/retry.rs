//! Retry with exponential backoff and deterministic jitter.
//!
//! The schedule is a pure function of the policy (seed included), so tests
//! assert exact attempt timing without a clock, and two processes with the
//! same policy but different seeds decorrelate their retries (the point of
//! jitter) while each stays reproducible.

use crate::fault::unit;
use std::time::Duration;

/// Backoff policy: `max_attempts` total tries, delay
/// `base * factor^(n-1)` before the `n+1`-th, capped at `max_delay`, then
/// scaled by a deterministic jitter factor in `[1 - jitter, 1 + jitter]`.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = never retry).
    pub max_attempts: u32,
    /// Delay before the second attempt.
    pub base: Duration,
    /// Multiplier applied per further attempt.
    pub factor: f64,
    /// Ceiling on the nominal (pre-jitter) delay.
    pub max_delay: Duration,
    /// Jitter fraction in `[0, 1)`.
    pub jitter: f64,
    /// Seeds the jitter sequence.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries at all.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base: Duration::ZERO,
            factor: 1.0,
            max_delay: Duration::ZERO,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// A sensible default: exponential doubling from `base`, capped at one
    /// second, 20% jitter.
    pub fn new(max_attempts: u32, base: Duration) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
            base,
            factor: 2.0,
            max_delay: Duration::from_secs(1),
            jitter: 0.2,
            seed: 0x5eed,
        }
    }

    /// The nominal (pre-jitter) delay before retry `attempt` (1-based:
    /// `nominal_delay(1)` precedes the second attempt).
    pub fn nominal_delay(&self, attempt: u32) -> Duration {
        let exp = self.base.as_secs_f64() * self.factor.powi(attempt.saturating_sub(1) as i32);
        Duration::from_secs_f64(exp.min(self.max_delay.as_secs_f64()))
    }

    /// The actual delay before retry `attempt`: nominal scaled by the
    /// deterministic jitter factor for `(seed, attempt)`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let nominal = self.nominal_delay(attempt).as_secs_f64();
        let u = unit(self.seed, &[u64::from(attempt)]);
        let scale = 1.0 - self.jitter + 2.0 * self.jitter * u;
        Duration::from_secs_f64((nominal * scale).max(0.0))
    }

    /// The full backoff schedule: one delay per retry the policy allows.
    pub fn schedule(&self) -> Vec<Duration> {
        (1..self.max_attempts).map(|a| self.delay(a)).collect()
    }
}

/// Runs `op` under `policy`. `op` receives the 1-based attempt number.
/// Retries only when the operation is `idempotent`, the error satisfies
/// `retryable`, and attempts remain; `sleep` receives each backoff delay
/// (inject a recording closure for deterministic-clock tests, or
/// `std::thread::sleep` in production).
pub fn with_retries<T, E>(
    policy: &RetryPolicy,
    idempotent: bool,
    mut sleep: impl FnMut(Duration),
    retryable: impl Fn(&E) -> bool,
    mut op: impl FnMut(u32) -> Result<T, E>,
) -> Result<T, E> {
    let budget = if idempotent {
        policy.max_attempts.max(1)
    } else {
        1
    };
    let mut attempt = 1;
    loop {
        match op(attempt) {
            Ok(v) => return Ok(v),
            Err(e) => {
                if attempt >= budget || !retryable(&e) {
                    return Err(e);
                }
                sleep(policy.delay(attempt));
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(10),
            factor: 2.0,
            max_delay: Duration::from_millis(60),
            jitter: 0.25,
            seed: 99,
        }
    }

    /// Satellite: deterministic clock — the recorded sleep sequence equals
    /// the policy's published schedule, and each delay sits inside the
    /// jitter envelope around its nominal value (with the cap applied).
    #[test]
    fn attempt_timing_sequence_is_deterministic_and_jitter_bounded() {
        let p = policy();
        let mut slept: Vec<Duration> = Vec::new();
        let out: Result<(), &str> = with_retries(
            &p,
            true,
            |d| slept.push(d),
            |_| true,
            |_attempt| Err("transient"),
        );
        assert!(out.is_err());
        assert_eq!(slept.len(), 4, "5 attempts → 4 backoffs");
        assert_eq!(slept, p.schedule(), "executor must follow the schedule");
        // nominal doubling with cap: 10, 20, 40, 60(capped) ms
        let nominal: Vec<u64> = (1..5)
            .map(|a| p.nominal_delay(a).as_millis() as u64)
            .collect();
        assert_eq!(nominal, vec![10, 20, 40, 60]);
        for (a, d) in slept.iter().enumerate() {
            let n = p.nominal_delay(a as u32 + 1).as_secs_f64();
            let lo = n * (1.0 - p.jitter) - 1e-9;
            let hi = n * (1.0 + p.jitter) + 1e-9;
            let got = d.as_secs_f64();
            assert!(
                (lo..=hi).contains(&got),
                "retry {} slept {got}s outside [{lo}, {hi}]",
                a + 1
            );
        }
        // reproducible: a second run yields the identical sequence
        let mut again = Vec::new();
        let _: Result<(), &str> =
            with_retries(&p, true, |d| again.push(d), |_| true, |_| Err("transient"));
        assert_eq!(slept, again);
    }

    /// Satellite: non-idempotent operations are never retried, whatever
    /// the policy allows.
    #[test]
    fn non_idempotent_is_never_retried() {
        let mut calls = 0;
        let mut slept = 0;
        let out: Result<(), &str> = with_retries(
            &policy(),
            false,
            |_| slept += 1,
            |_| true,
            |attempt| {
                calls += 1;
                assert_eq!(attempt, 1);
                Err("boom")
            },
        );
        assert!(out.is_err());
        assert_eq!(calls, 1);
        assert_eq!(slept, 0);
    }

    #[test]
    fn non_retryable_errors_stop_immediately() {
        let mut calls = 0;
        let out: Result<(), i32> = with_retries(
            &policy(),
            true,
            |_| {},
            |&e| e != 7,
            |_| {
                calls += 1;
                Err(7)
            },
        );
        assert_eq!(out, Err(7));
        assert_eq!(calls, 1);
    }

    #[test]
    fn success_after_transient_failures() {
        let mut calls = 0;
        let out: Result<u32, &str> = with_retries(
            &policy(),
            true,
            |_| {},
            |_| true,
            |attempt| {
                calls += 1;
                if attempt < 3 {
                    Err("transient")
                } else {
                    Ok(attempt)
                }
            },
        );
        assert_eq!(out, Ok(3));
        assert_eq!(calls, 3);
    }

    #[test]
    fn different_seeds_decorrelate_jitter() {
        let a = policy();
        let b = RetryPolicy {
            seed: 100,
            ..a.clone()
        };
        assert_ne!(a.schedule(), b.schedule());
    }
}
