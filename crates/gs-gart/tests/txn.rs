//! Snapshot-isolation transaction semantics: own-write visibility,
//! abort/undo, first-writer-wins conflicts, vertex deletion, and
//! endpoint validation — all through the public `GartStore` API.

use gs_gart::{GartSnapshot, GartStore};
use gs_graph::schema::GraphSchema;
use gs_graph::ValueType;
use gs_grin::{Direction, GraphError, GrinGraph, LabelId, PropId, Value};
use std::sync::{Arc, Barrier};

fn schema() -> (GraphSchema, LabelId, LabelId) {
    let mut s = GraphSchema::new();
    let v = s.add_vertex_label("V", &[("x", ValueType::Int)]);
    let e = s.add_edge_label("E", v, v, &[("w", ValueType::Float)]);
    (s, v, e)
}

/// A 3-vertex path 1 → 2 → 3, committed at version 1.
fn seeded() -> (Arc<GartStore>, LabelId, LabelId) {
    let (s, vl, el) = schema();
    let store = GartStore::new(s);
    for i in 1..=3 {
        store
            .add_vertex(vl, i, vec![Value::Int(i as i64 * 10)])
            .unwrap();
    }
    store.add_edge(el, 1, 2, vec![Value::Float(1.2)]).unwrap();
    store.add_edge(el, 2, 3, vec![Value::Float(2.3)]).unwrap();
    store.commit();
    (store, vl, el)
}

fn out_degree(snap: &GartSnapshot, vl: LabelId, el: LabelId, ext: u64) -> usize {
    match snap.internal_id(vl, ext) {
        Some(v) => snap.adjacent(v, vl, el, Direction::Out).count(),
        None => 0,
    }
}

fn in_degree(snap: &GartSnapshot, vl: LabelId, el: LabelId, ext: u64) -> usize {
    match snap.internal_id(vl, ext) {
        Some(v) => snap.adjacent(v, vl, el, Direction::In).count(),
        None => 0,
    }
}

#[test]
fn txn_sees_own_writes_before_commit_others_after() {
    let (store, vl, el) = seeded();
    let mut t = store.begin();
    t.add_vertex(vl, 9, vec![Value::Int(90)]).unwrap();
    t.add_edge(el, 3, 9, vec![Value::Float(3.9)]).unwrap();
    // the transaction reads its own staged writes...
    t.with_view(|view| {
        let v9 = view.internal_id(vl, 9).expect("own vertex visible");
        assert_eq!(view.vertex_property(vl, v9, PropId(0)), Value::Int(90));
        let v3 = view.internal_id(vl, 3).unwrap();
        let mut nbrs = Vec::new();
        view.for_each_adjacent(v3, el, Direction::Out, &mut |n, _| nbrs.push(n));
        assert_eq!(nbrs, vec![v9]);
    });
    // ...while a concurrent snapshot sees none of them
    let snap = store.snapshot();
    assert_eq!(snap.vertex_count(vl), 3);
    assert_eq!(snap.internal_id(vl, 9), None);
    assert_eq!(out_degree(&snap, vl, el, 3), 0);
    let v = t.commit().unwrap();
    assert_eq!(store.committed_version(), v);
    let after = store.snapshot();
    assert_eq!(after.vertex_count(vl), 4);
    assert_eq!(out_degree(&after, vl, el, 3), 1);
    // the pre-commit snapshot stays pinned
    assert_eq!(snap.vertex_count(vl), 3);
}

#[test]
fn read_only_txn_commits_without_consuming_a_version() {
    let (store, vl, _el) = seeded();
    let before = store.committed_version();
    let t = store.begin();
    let n = t.with_view(|view| view.internal_id(vl, 1).is_some());
    assert!(n);
    assert_eq!(t.commit().unwrap(), before);
    assert_eq!(store.committed_version(), before);
}

#[test]
fn abort_unstages_everything_physically() {
    let (store, vl, el) = seeded();
    let mut t = store.begin();
    t.add_vertex(vl, 9, vec![Value::Int(90)]).unwrap();
    t.add_edge(el, 1, 9, vec![Value::Float(1.9)]).unwrap();
    assert!(t.delete_edge(el, 1, 2).unwrap());
    assert!(t.delete_vertex(vl, 3).unwrap());
    t.abort();
    let snap = store.snapshot();
    assert_eq!(snap.vertex_count(vl), 3);
    assert_eq!(snap.edge_count(el), 2);
    assert_eq!(out_degree(&snap, vl, el, 1), 1);
    // the aborted external id is free again
    let mut t2 = store.begin();
    t2.add_vertex(vl, 9, vec![Value::Int(91)]).unwrap();
    t2.commit().unwrap();
    let snap = store.snapshot();
    let v9 = snap.internal_id(vl, 9).unwrap();
    assert_eq!(snap.vertex_property(vl, v9, PropId(0)), Value::Int(91));
}

#[test]
fn dropping_a_txn_aborts_it() {
    let (store, vl, _el) = seeded();
    {
        let mut t = store.begin();
        t.add_vertex(vl, 42, vec![Value::Int(0)]).unwrap();
        // dropped without commit
    }
    assert_eq!(store.snapshot().internal_id(vl, 42), None);
    // and the store is not wedged: later writes commit fine
    store.add_vertex(vl, 42, vec![Value::Int(1)]).unwrap();
    store.commit();
    assert!(store.snapshot().internal_id(vl, 42).is_some());
}

#[test]
fn first_writer_wins_on_the_same_edge() {
    let (store, _vl, el) = seeded();
    let mut t1 = store.begin();
    let mut t2 = store.begin();
    assert!(t1.delete_edge(el, 1, 2).unwrap());
    let err = t2.delete_edge(el, 1, 2).unwrap_err();
    assert!(
        matches!(err, GraphError::TxnConflict(_)),
        "loser gets a structured conflict, got {err:?}"
    );
    // the loser aborts cleanly and the winner's delete lands
    t2.abort();
    t1.commit().unwrap();
    assert_eq!(store.snapshot().edge_count(el), 1);
    // retrying after the winner finds the edge already gone
    let mut t3 = store.begin();
    assert!(!t3.delete_edge(el, 1, 2).unwrap());
    t3.abort();
}

#[test]
fn committed_writer_conflicts_with_stale_snapshot() {
    let (store, _vl, el) = seeded();
    // t1's snapshot predates t2's commit on the same key
    let mut t1 = store.begin();
    let mut t2 = store.begin();
    assert!(t2.delete_edge(el, 2, 3).unwrap());
    t2.commit().unwrap();
    let err = t1.delete_edge(el, 2, 3).unwrap_err();
    assert!(matches!(err, GraphError::TxnConflict(_)), "got {err:?}");
    t1.abort();
}

#[test]
fn concurrent_vertex_insert_same_external_id_conflicts() {
    let (store, vl, _el) = seeded();
    let mut t1 = store.begin();
    let mut t2 = store.begin();
    t1.add_vertex(vl, 50, vec![Value::Int(1)]).unwrap();
    let err = t2.add_vertex(vl, 50, vec![Value::Int(2)]).unwrap_err();
    assert!(matches!(err, GraphError::TxnConflict(_)), "got {err:?}");
    t2.abort();
    t1.commit().unwrap();
    let snap = store.snapshot();
    let v = snap.internal_id(vl, 50).unwrap();
    assert_eq!(snap.vertex_property(vl, v, PropId(0)), Value::Int(1));
}

/// Two real threads race on one edge: exactly one wins, the loser sees
/// a structured conflict and aborts cleanly (run under
/// `--features sanitize` to put the interleaving under the tracker).
#[test]
fn threaded_writers_race_first_writer_wins() {
    let (store, _vl, el) = seeded();
    let barrier = Arc::new(Barrier::new(2));
    let outcomes: Vec<Result<bool, GraphError>> = [0u8, 1]
        .map(|_| {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut t = store.begin();
                barrier.wait();
                match t.delete_edge(el, 1, 2) {
                    Ok(hit) => {
                        t.commit().unwrap();
                        Ok(hit)
                    }
                    Err(e) => {
                        t.abort();
                        Err(e)
                    }
                }
            })
        })
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();
    let winners = outcomes.iter().filter(|o| matches!(o, Ok(true))).count();
    let conflicts = outcomes
        .iter()
        .filter(|o| matches!(o, Err(GraphError::TxnConflict(_))))
        .count();
    assert_eq!(
        (winners, conflicts),
        (1, 1),
        "exactly one winner and one structured conflict: {outcomes:?}"
    );
    assert_eq!(store.snapshot().edge_count(el), 1);
}

#[test]
fn delete_vertex_filters_vertex_and_both_adjacency_directions() {
    let (store, vl, el) = seeded();
    let old = store.snapshot();
    assert!(store.delete_vertex(vl, 2).unwrap());
    store.commit();
    let new = store.snapshot();
    // the old snapshot keeps the vertex and every edge touching it
    assert_eq!(old.vertex_count(vl), 3);
    assert_eq!(old.edge_count(el), 2);
    assert_eq!(out_degree(&old, vl, el, 1), 1);
    assert_eq!(in_degree(&old, vl, el, 3), 1);
    // the new snapshot sees neither the vertex nor its adjacency, from
    // either endpoint's side
    assert_eq!(new.vertex_count(vl), 2);
    assert_eq!(new.internal_id(vl, 2), None);
    assert_eq!(new.edge_count(el), 0);
    assert_eq!(out_degree(&new, vl, el, 1), 0);
    assert_eq!(in_degree(&new, vl, el, 3), 0);
    // bulk scan agrees with per-vertex iteration after the deletion
    let mut scanned = 0;
    store.scan_edges(el, new.version(), &mut |_, _, _| scanned += 1);
    assert_eq!(scanned, 0);
    // deleting again finds nothing
    assert!(!store.delete_vertex(vl, 2).unwrap());
    // and an unknown external id reports false, not an error
    assert!(!store.delete_vertex(vl, 77).unwrap());
}

#[test]
fn deleted_external_id_can_be_readded() {
    let (store, vl, el) = seeded();
    assert!(store.delete_vertex(vl, 2).unwrap());
    store.commit();
    let deleted_at = store.snapshot();
    store.add_vertex(vl, 2, vec![Value::Int(222)]).unwrap();
    store.add_edge(el, 1, 2, vec![Value::Float(9.9)]).unwrap();
    store.commit();
    let readded = store.snapshot();
    assert_eq!(deleted_at.internal_id(vl, 2), None);
    let v2 = readded.internal_id(vl, 2).unwrap();
    assert_eq!(readded.vertex_property(vl, v2, PropId(0)), Value::Int(222));
    assert_eq!(out_degree(&readded, vl, el, 1), 1);
    // the pre-delete snapshot still resolves the *old* slot and value
    let old = store.snapshot();
    drop(old);
    let genesis = store.snapshot();
    drop(genesis);
    // (resolution through the shadow chain happens at the old version)
    let at_v1 = {
        let s = Arc::clone(&store);
        s.snapshot_at(1)
    };
    let old_v2 = at_v1
        .internal_id(vl, 2)
        .expect("old snapshot resolves old slot");
    assert_ne!(old_v2, v2, "re-add allocates a fresh slot");
    assert_eq!(at_v1.vertex_property(vl, old_v2, PropId(0)), Value::Int(20));
}

#[test]
fn edges_to_missing_or_deleted_endpoints_are_rejected_structurally() {
    let (store, vl, el) = seeded();
    // unknown endpoint
    let err = store
        .add_edge(el, 1, 99, vec![Value::Float(0.0)])
        .unwrap_err();
    assert!(matches!(err, GraphError::NotFound(_)), "got {err:?}");
    // deleted endpoint — invisible at the write version even though the
    // slot still physically exists
    assert!(store.delete_vertex(vl, 3).unwrap());
    store.commit();
    let err = store
        .add_edge(el, 2, 3, vec![Value::Float(0.0)])
        .unwrap_err();
    assert!(matches!(err, GraphError::NotFound(_)), "got {err:?}");
    // same inside one transaction: the txn's own delete makes the
    // endpoint invalid for its own later insert
    let mut t = store.begin();
    assert!(t.delete_vertex(vl, 2).unwrap());
    let err = t.add_edge(el, 1, 2, vec![Value::Float(0.0)]).unwrap_err();
    assert!(matches!(err, GraphError::NotFound(_)), "got {err:?}");
    t.abort();
}

#[test]
fn edge_batch_with_invalid_endpoint_rolls_back_atomically() {
    let (store, vl, el) = seeded();
    let batch = vec![
        (1u64, 3u64, vec![Value::Float(1.0)]),
        (3, 1, vec![Value::Float(2.0)]),
        (1, 404, vec![Value::Float(3.0)]), // invalid
        (2, 1, vec![Value::Float(4.0)]),
    ];
    let err = store.add_edges(el, &batch).unwrap_err();
    assert!(matches!(err, GraphError::NotFound(_)), "got {err:?}");
    store.commit();
    let snap = store.snapshot();
    assert_eq!(snap.edge_count(el), 2, "no edge of the failed batch landed");
    assert_eq!(
        out_degree(&snap, vl, el, 3),
        0,
        "the staged 3→1 edge was rolled back"
    );
    // a clean batch then lands whole
    let ok = vec![
        (1u64, 3u64, vec![Value::Float(1.0)]),
        (3, 1, vec![Value::Float(2.0)]),
    ];
    assert_eq!(store.add_edges(el, &ok).unwrap(), 2);
    store.commit();
    assert_eq!(store.snapshot().edge_count(el), 4);
}

#[test]
fn lazy_stamping_resolves_visibility_through_the_status_table() {
    let (s, vl, el) = schema();
    let store = GartStore::new(s);
    store.set_lazy_stamping(true);
    for i in 1..=3 {
        store.add_vertex(vl, i, vec![Value::Int(i as i64)]).unwrap();
    }
    store.add_edge(el, 1, 2, vec![Value::Float(1.0)]).unwrap();
    store.commit();
    let v1 = store.snapshot();
    store.add_edge(el, 2, 3, vec![Value::Float(2.0)]).unwrap();
    assert!(store.delete_edge(el, 1, 2).unwrap());
    assert!(store.delete_vertex(vl, 3).unwrap());
    // with stamping disabled every mark stays tagged; reads must agree
    // with the stamped world anyway
    store.commit();
    let v2 = store.snapshot();
    assert_eq!(v1.vertex_count(vl), 3);
    assert_eq!(v1.edge_count(el), 1);
    assert_eq!(v2.vertex_count(vl), 2);
    assert_eq!(
        v2.edge_count(el),
        0,
        "2→3 died with vertex 3, 1→2 tombstoned"
    );
    // explicit transactions resolve the same way
    let mut t = store.begin();
    t.add_vertex(vl, 9, vec![Value::Int(9)]).unwrap();
    t.commit().unwrap();
    assert_eq!(store.snapshot().vertex_count(vl), 3);
}

#[test]
fn snapshot_capabilities_advertise_transactions() {
    let (s, _vl, _el) = schema();
    let store = GartStore::new(s);
    let caps = store.snapshot().capabilities();
    assert!(caps.supports(gs_grin::Capabilities::TRANSACTIONS));
    assert!(
        !caps.supports(gs_grin::Capabilities::DURABLE),
        "an in-memory store is not durable"
    );
}
