/root/repo/target/debug/deps/gs_vineyard-397102cc9281d6ed.d: crates/gs-vineyard/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgs_vineyard-397102cc9281d6ed.rmeta: crates/gs-vineyard/src/lib.rs Cargo.toml

crates/gs-vineyard/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
