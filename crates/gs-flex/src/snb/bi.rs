//! LDBC SNB Business Intelligence workload (lite): 20 analytical queries
//! over the SNB-lite schema, built as GraphIR logical plans and executed by
//! the Gaia engine after full optimization (Fig. 7g).
//!
//! The baseline side of Fig. 7(g) runs the *same* plans unoptimized and
//! single-threaded, modelling a non-IR, non-data-parallel execution (the
//! audited TigerGraph numbers are not reproducible without the product;
//! see DESIGN.md's substitution table).

use gs_datagen::snb::SnbSchema;
use gs_graph::schema::GraphSchema;
use gs_graph::{Result, Value};
use gs_ir::expr::{AggFunc, BinOp};
use gs_ir::logical::ProjectItem;
use gs_ir::{Expr, LogicalPlan, Pattern, PlanBuilder};

/// Parameters shared by the parameterised BI queries.
#[derive(Clone, Debug)]
pub struct BiParams {
    pub tag_name: String,
    pub date: i64,
    pub min_likes: i64,
}

impl Default for BiParams {
    fn default() -> Self {
        Self {
            tag_name: "rock".to_string(),
            date: 15300,
            min_likes: 3,
        }
    }
}

/// Number of BI queries.
pub const BI_COUNT: usize = 20;

/// Builds BI query `1..=20` as a logical plan.
pub fn bi_plan(
    n: usize,
    schema: &GraphSchema,
    labels: &SnbSchema,
    params: &BiParams,
) -> Result<LogicalPlan> {
    let b = PlanBuilder::new(schema);
    let l = labels;
    match n {
        // BI1: posting summary — posts per content-length bucket.
        1 => {
            let b = b.scan("po", "Post")?;
            let bucket = Expr::bin(
                BinOp::Div,
                b.prop("po", "length")?,
                Expr::Const(Value::Int(50)),
            );
            Ok(b.project(vec![
                (ProjectItem::Expr(bucket), "bucket"),
                (ProjectItem::Agg(AggFunc::Count, Expr::Column(0)), "posts"),
            ])?
            .order(vec![(Expr::Column(0), true)], None)
            .build())
        }
        // BI2: tag usage ranking.
        2 => {
            let mut p = Pattern::new();
            let po = p.add_vertex("po", l.post);
            let t = p.add_vertex("t", l.tag);
            p.add_edge(None, l.has_tag_post, po, t);
            let b = b.match_pattern(p)?;
            let name = b.prop("t", "name")?;
            Ok(b.project(vec![
                (ProjectItem::Expr(name), "tag"),
                (ProjectItem::Agg(AggFunc::Count, Expr::Column(0)), "uses"),
            ])?
            .order(
                vec![(Expr::Column(1), false), (Expr::Column(0), true)],
                Some(10),
            )
            .build())
        }
        // BI3: most active posters.
        3 => {
            let mut p = Pattern::new();
            let po = p.add_vertex("po", l.post);
            let a = p.add_vertex("a", l.person);
            p.add_edge(None, l.has_creator_post, po, a);
            let b = b.match_pattern(p)?;
            let person = b.col("a")?;
            Ok(b.project(vec![
                (ProjectItem::Expr(person), "person"),
                (ProjectItem::Agg(AggFunc::Count, Expr::Column(0)), "posts"),
            ])?
            .order(
                vec![(Expr::Column(1), false), (Expr::Column(0), true)],
                Some(10),
            )
            .build())
        }
        // BI4: top forums by post count.
        4 => {
            let mut p = Pattern::new();
            let f = p.add_vertex("f", l.forum);
            let po = p.add_vertex("po", l.post);
            p.add_edge(None, l.container_of, f, po);
            let b = b.match_pattern(p)?;
            let title = b.prop("f", "title")?;
            Ok(b.project(vec![
                (ProjectItem::Expr(title), "forum"),
                (ProjectItem::Agg(AggFunc::Count, Expr::Column(1)), "posts"),
            ])?
            .order(
                vec![(Expr::Column(1), false), (Expr::Column(0), true)],
                Some(10),
            )
            .build())
        }
        // BI5: members posting in their own forum (cyclic pattern — the CBO
        // showcase).
        5 => {
            let mut p = Pattern::new();
            let f = p.add_vertex("f", l.forum);
            let po = p.add_vertex("po", l.post);
            let a = p.add_vertex("a", l.person);
            p.add_edge(None, l.container_of, f, po);
            p.add_edge(None, l.has_creator_post, po, a);
            p.add_edge(None, l.has_member, f, a);
            let b = b.match_pattern(p)?;
            let forum = b.col("f")?;
            Ok(b.project(vec![
                (ProjectItem::Expr(forum), "forum"),
                (ProjectItem::Agg(AggFunc::Count, Expr::Column(1)), "inposts"),
            ])?
            .order(
                vec![(Expr::Column(1), false), (Expr::Column(0), true)],
                Some(10),
            )
            .build())
        }
        // BI6: authoritative users — likes received.
        6 => {
            let mut p = Pattern::new();
            let liker = p.add_vertex("liker", l.person);
            let po = p.add_vertex("po", l.post);
            let a = p.add_vertex("a", l.person);
            p.add_edge(None, l.likes_post, liker, po);
            p.add_edge(None, l.has_creator_post, po, a);
            let b = b.match_pattern(p)?;
            let author = b.col("a")?;
            Ok(b.project(vec![
                (ProjectItem::Expr(author), "person"),
                (ProjectItem::Agg(AggFunc::Count, Expr::Column(0)), "likes"),
            ])?
            .order(
                vec![(Expr::Column(1), false), (Expr::Column(0), true)],
                Some(10),
            )
            .build())
        }
        // BI7: replies under each tag.
        7 => {
            let mut p = Pattern::new();
            let c = p.add_vertex("c", l.comment);
            let po = p.add_vertex("po", l.post);
            let t = p.add_vertex("t", l.tag);
            p.add_edge(None, l.reply_of, c, po);
            p.add_edge(None, l.has_tag_post, po, t);
            let b = b.match_pattern(p)?;
            let name = b.prop("t", "name")?;
            Ok(b.project(vec![
                (ProjectItem::Expr(name), "tag"),
                (ProjectItem::Agg(AggFunc::Count, Expr::Column(0)), "replies"),
            ])?
            .order(
                vec![(Expr::Column(1), false), (Expr::Column(0), true)],
                None,
            )
            .build())
        }
        // BI8: interest popularity per tag.
        8 => {
            let mut p = Pattern::new();
            let a = p.add_vertex("a", l.person);
            let t = p.add_vertex("t", l.tag);
            p.add_edge(None, l.has_interest, a, t);
            let b = b.match_pattern(p)?;
            let name = b.prop("t", "name")?;
            Ok(b.project(vec![
                (ProjectItem::Expr(name), "tag"),
                (ProjectItem::Agg(AggFunc::Count, Expr::Column(0)), "fans"),
            ])?
            .order(
                vec![(Expr::Column(1), false), (Expr::Column(0), true)],
                None,
            )
            .build())
        }
        // BI9: top commenters.
        9 => {
            let mut p = Pattern::new();
            let c = p.add_vertex("c", l.comment);
            let a = p.add_vertex("a", l.person);
            p.add_edge(None, l.has_creator_comment, c, a);
            let b = b.match_pattern(p)?;
            let person = b.col("a")?;
            Ok(b.project(vec![
                (ProjectItem::Expr(person), "person"),
                (
                    ProjectItem::Agg(AggFunc::Count, Expr::Column(0)),
                    "comments",
                ),
            ])?
            .order(
                vec![(Expr::Column(1), false), (Expr::Column(0), true)],
                Some(10),
            )
            .build())
        }
        // BI10: experts on one tag (parameterised selection → pushdown
        // showcase).
        10 => {
            let mut p = Pattern::new();
            let po = p.add_vertex("po", l.post);
            let t = p.add_vertex("t", l.tag);
            let a = p.add_vertex("a", l.person);
            p.add_edge(None, l.has_tag_post, po, t);
            p.add_edge(None, l.has_creator_post, po, a);
            let b = b.match_pattern(p)?;
            let name_eq = Expr::bin(
                BinOp::Eq,
                b.prop("t", "name")?,
                Expr::Const(Value::Str(params.tag_name.clone())),
            );
            let person = b.col("a")?;
            Ok(b.select(name_eq)
                .project(vec![
                    (ProjectItem::Expr(person), "person"),
                    (ProjectItem::Agg(AggFunc::Count, Expr::Column(0)), "posts"),
                ])?
                .order(
                    vec![(Expr::Column(1), false), (Expr::Column(0), true)],
                    Some(10),
                )
                .build())
        }
        // BI11: verbose repliers — replies longer than the post they answer.
        11 => {
            let mut p = Pattern::new();
            let c = p.add_vertex("c", l.comment);
            let po = p.add_vertex("po", l.post);
            let a = p.add_vertex("a", l.person);
            p.add_edge(None, l.reply_of, c, po);
            p.add_edge(None, l.has_creator_comment, c, a);
            let b = b.match_pattern(p)?;
            let longer = Expr::bin(BinOp::Gt, b.prop("c", "length")?, b.prop("po", "length")?);
            let person = b.col("a")?;
            Ok(b.select(longer)
                .project(vec![
                    (ProjectItem::Expr(person), "person"),
                    (
                        ProjectItem::Agg(AggFunc::Count, Expr::Column(0)),
                        "longreplies",
                    ),
                ])?
                .order(
                    vec![(Expr::Column(1), false), (Expr::Column(0), true)],
                    Some(10),
                )
                .build())
        }
        // BI12: trending posts — at least `min_likes` likes.
        12 => {
            let mut p = Pattern::new();
            let liker = p.add_vertex("liker", l.person);
            let po = p.add_vertex("po", l.post);
            p.add_edge(None, l.likes_post, liker, po);
            let b = b.match_pattern(p)?;
            let post = b.col("po")?;
            let b = b.project(vec![
                (ProjectItem::Expr(post), "post"),
                (ProjectItem::Agg(AggFunc::Count, Expr::Column(0)), "likes"),
            ])?;
            let popular = Expr::bin(
                BinOp::Ge,
                b.col("likes")?,
                Expr::Const(Value::Int(params.min_likes)),
            );
            Ok(b.select(popular)
                .order(
                    vec![(Expr::Column(1), false), (Expr::Column(0), true)],
                    Some(20),
                )
                .build())
        }
        // BI13: low-activity newcomers — persons created after `date` with
        // few posts.
        13 => {
            let mut p = Pattern::new();
            let po = p.add_vertex("po", l.post);
            let a = p.add_vertex("a", l.person);
            p.add_edge(None, l.has_creator_post, po, a);
            let b = b.match_pattern(p)?;
            let newcomer = Expr::bin(
                BinOp::Gt,
                b.prop("a", "creationDate")?,
                Expr::Const(Value::Date(params.date)),
            );
            let person = b.col("a")?;
            let b = b.select(newcomer).project(vec![
                (ProjectItem::Expr(person), "person"),
                (ProjectItem::Agg(AggFunc::Count, Expr::Column(0)), "posts"),
            ])?;
            let few = Expr::bin(BinOp::Le, b.col("posts")?, Expr::Const(Value::Int(2)));
            Ok(b.select(few)
                .order(vec![(Expr::Column(0), true)], None)
                .build())
        }
        // BI14: dialog pairs — who replies to whom most.
        14 => {
            let mut p = Pattern::new();
            let c = p.add_vertex("c", l.comment);
            let a = p.add_vertex("a", l.person);
            let po = p.add_vertex("po", l.post);
            let bb = p.add_vertex("b", l.person);
            p.add_edge(None, l.has_creator_comment, c, a);
            p.add_edge(None, l.reply_of, c, po);
            p.add_edge(None, l.has_creator_post, po, bb);
            let builder = b.match_pattern(p)?;
            let replier = builder.col("a")?;
            let author = builder.col("b")?;
            Ok(builder
                .project(vec![
                    (ProjectItem::Expr(replier), "replier"),
                    (ProjectItem::Expr(author), "author"),
                    (ProjectItem::Agg(AggFunc::Count, Expr::Column(0)), "dialogs"),
                ])?
                .order(
                    vec![
                        (Expr::Column(2), false),
                        (Expr::Column(0), true),
                        (Expr::Column(1), true),
                    ],
                    Some(20),
                )
                .build())
        }
        // BI15: average friend count (two-level aggregation).
        15 => {
            let mut p = Pattern::new();
            let a = p.add_vertex("a", l.person);
            let f = p.add_vertex("f", l.person);
            p.add_edge(None, l.knows, a, f);
            let b = b.match_pattern(p)?;
            let person = b.col("a")?;
            let b = b.project(vec![
                (ProjectItem::Expr(person), "person"),
                (ProjectItem::Agg(AggFunc::Count, Expr::Column(1)), "friends"),
            ])?;
            let friends = b.col("friends")?;
            Ok(b.project(vec![(
                ProjectItem::Agg(AggFunc::Avg, friends),
                "avgFriends",
            )])?
            .build())
        }
        // BI16: demographics by browser.
        16 => {
            let b = b.scan("a", "Person")?;
            let browser = b.prop("a", "browserUsed")?;
            Ok(b.project(vec![
                (ProjectItem::Expr(browser), "browser"),
                (ProjectItem::Agg(AggFunc::Count, Expr::Column(0)), "users"),
            ])?
            .order(
                vec![(Expr::Column(1), false), (Expr::Column(0), true)],
                None,
            )
            .build())
        }
        // BI17: like volume per 100-day bucket (edge-property aggregation).
        17 => {
            let mut p = Pattern::new();
            let liker = p.add_vertex("liker", l.person);
            let po = p.add_vertex("po", l.post);
            p.add_edge(Some("e"), l.likes_post, liker, po);
            let b = b.match_pattern(p)?;
            let bucket = Expr::bin(
                BinOp::Div,
                b.prop("e", "creationDate")?,
                Expr::Const(Value::Int(100)),
            );
            Ok(b.project(vec![
                (ProjectItem::Expr(bucket), "bucket"),
                (ProjectItem::Agg(AggFunc::Count, Expr::Column(0)), "likes"),
            ])?
            .order(vec![(Expr::Column(0), true)], None)
            .build())
        }
        // BI18: forum membership growth per 100-day bucket.
        18 => {
            let mut p = Pattern::new();
            let f = p.add_vertex("f", l.forum);
            let a = p.add_vertex("a", l.person);
            p.add_edge(Some("m"), l.has_member, f, a);
            let b = b.match_pattern(p)?;
            let bucket = Expr::bin(
                BinOp::Div,
                b.prop("m", "joinDate")?,
                Expr::Const(Value::Int(100)),
            );
            Ok(b.project(vec![
                (ProjectItem::Expr(bucket), "bucket"),
                (ProjectItem::Agg(AggFunc::Count, Expr::Column(0)), "joins"),
            ])?
            .order(vec![(Expr::Column(0), true)], None)
            .build())
        }
        // BI19: tag co-occurrence pairs.
        19 => {
            let mut p = Pattern::new();
            let t1 = p.add_vertex("t1", l.tag);
            let po = p.add_vertex("po", l.post);
            let t2 = p.add_vertex("t2", l.tag);
            p.add_edge(None, l.has_tag_post, po, t1);
            p.add_edge(None, l.has_tag_post, po, t2);
            let b = b.match_pattern(p)?;
            let lt = Expr::bin(BinOp::Lt, b.prop("t1", "name")?, b.prop("t2", "name")?);
            let n1 = b.prop("t1", "name")?;
            let n2 = b.prop("t2", "name")?;
            Ok(b.select(lt)
                .project(vec![
                    (ProjectItem::Expr(n1), "tagA"),
                    (ProjectItem::Expr(n2), "tagB"),
                    (ProjectItem::Agg(AggFunc::Count, Expr::Column(1)), "posts"),
                ])?
                .order(
                    vec![
                        (Expr::Column(2), false),
                        (Expr::Column(0), true),
                        (Expr::Column(1), true),
                    ],
                    Some(20),
                )
                .build())
        }
        // BI20: discussion volume per forum (replies reached through posts).
        20 => {
            let mut p = Pattern::new();
            let f = p.add_vertex("f", l.forum);
            let po = p.add_vertex("po", l.post);
            let c = p.add_vertex("c", l.comment);
            p.add_edge(None, l.container_of, f, po);
            p.add_edge(None, l.reply_of, c, po);
            let b = b.match_pattern(p)?;
            let title = b.prop("f", "title")?;
            Ok(b.project(vec![
                (ProjectItem::Expr(title), "forum"),
                (ProjectItem::Agg(AggFunc::Count, Expr::Column(2)), "replies"),
            ])?
            .order(
                vec![(Expr::Column(1), false), (Expr::Column(0), true)],
                Some(10),
            )
            .build())
        }
        other => Err(gs_graph::GraphError::Query(format!(
            "no BI query {other} (1..=20)"
        ))),
    }
}
