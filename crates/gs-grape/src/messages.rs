//! The GRAPE message manager.
//!
//! The paper: GRAPE "aggregates fragmented, randomly distributed small
//! messages in memory into a continuous compact buffer before dispatching
//! them all at once, thus enhancing bandwidth utilization. Furthermore, it
//! employs varint encoding ... to reduce peak memory usage."
//!
//! [`OutBuffers`] is exactly that: one byte buffer per destination
//! fragment; messages append as `(varint Δgid, payload)` with
//! delta-compressed vertex ids (senders emit in ascending local order, so
//! deltas are small). The whole buffer moves through one channel send.
//! Contrast with the PowerGraph replica in `gs-baselines`, which sends one
//! heap-allocated message object per edge.

use gs_graph::varint;
use gs_graph::VId;

/// Message payload codec. Payloads are fixed-meaning per algorithm.
pub trait Payload: Copy + Send + 'static {
    /// Size of the payload in a naive fixed-width wire format, used to
    /// report "message volume before aggregation" in telemetry.
    const RAW_SIZE: usize = 8;
    fn write(&self, buf: &mut Vec<u8>);
    fn read(buf: &[u8]) -> Option<(Self, usize)>;
}

impl Payload for f64 {
    #[inline]
    fn write(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    #[inline]
    fn read(buf: &[u8]) -> Option<(Self, usize)> {
        if buf.len() < 8 {
            return None;
        }
        Some((f64::from_le_bytes(buf[..8].try_into().unwrap()), 8))
    }
}

impl Payload for u64 {
    #[inline]
    fn write(&self, buf: &mut Vec<u8>) {
        varint::encode_u64(*self, buf);
    }
    #[inline]
    fn read(buf: &[u8]) -> Option<(Self, usize)> {
        varint::decode_u64(buf)
    }
}

impl Payload for u32 {
    const RAW_SIZE: usize = 4;
    #[inline]
    fn write(&self, buf: &mut Vec<u8>) {
        varint::encode_u64(*self as u64, buf);
    }
    #[inline]
    fn read(buf: &[u8]) -> Option<(Self, usize)> {
        varint::decode_u64(buf).map(|(v, n)| (v as u32, n))
    }
}

impl Payload for () {
    const RAW_SIZE: usize = 0;
    #[inline]
    fn write(&self, _buf: &mut Vec<u8>) {}
    #[inline]
    fn read(_buf: &[u8]) -> Option<(Self, usize)> {
        Some(((), 0))
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    const RAW_SIZE: usize = A::RAW_SIZE + B::RAW_SIZE;
    #[inline]
    fn write(&self, buf: &mut Vec<u8>) {
        self.0.write(buf);
        self.1.write(buf);
    }
    #[inline]
    fn read(buf: &[u8]) -> Option<(Self, usize)> {
        let (a, n) = A::read(buf)?;
        let (b, m) = B::read(&buf[n..])?;
        Some(((a, b), n + m))
    }
}

/// Per-destination aggregated message buffers.
pub struct OutBuffers {
    bufs: Vec<Vec<u8>>,
    last_gid: Vec<u64>,
    counts: Vec<u64>,
    raw_bytes: Vec<u64>,
}

impl OutBuffers {
    /// Buffers for `k` destination fragments.
    pub fn new(k: usize) -> Self {
        Self {
            bufs: vec![Vec::new(); k],
            last_gid: vec![0; k],
            counts: vec![0; k],
            raw_bytes: vec![0; k],
        }
    }

    /// Appends a message for global vertex `target` owned by fragment `to`.
    #[inline]
    pub fn send<P: Payload>(&mut self, to: usize, target: VId, payload: P) {
        let buf = &mut self.bufs[to];
        // delta-encode the target id against the previous one in this buffer
        let delta = target.0.wrapping_sub(self.last_gid[to]) as i64;
        varint::encode_i64(delta, buf);
        self.last_gid[to] = target.0;
        payload.write(buf);
        self.counts[to] += 1;
        // what the naive format would cost: full 8-byte gid + fixed payload
        self.raw_bytes[to] += 8 + P::RAW_SIZE as u64;
    }

    /// Total messages across all buffers.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total encoded bytes buffered across destinations.
    pub fn encoded_bytes(&self) -> u64 {
        self.bufs.iter().map(|b| b.len() as u64).sum()
    }

    /// Total bytes the buffered messages would occupy without varint/delta
    /// aggregation (8-byte gid + fixed-width payload each).
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes.iter().sum()
    }

    /// Takes the finished buffers (with message counts), resetting self.
    pub fn take(&mut self) -> Vec<MessageBlock> {
        let k = self.bufs.len();
        let mut out = Vec::with_capacity(k);
        for i in 0..k {
            out.push(MessageBlock {
                bytes: std::mem::take(&mut self.bufs[i]),
                count: std::mem::replace(&mut self.counts[i], 0),
                raw_bytes: std::mem::replace(&mut self.raw_bytes[i], 0),
            });
            self.last_gid[i] = 0;
        }
        out
    }
}

/// One compact buffer of messages for a single destination fragment.
#[derive(Clone, Debug, Default)]
pub struct MessageBlock {
    pub bytes: Vec<u8>,
    pub count: u64,
    /// Size of these messages in the naive fixed-width format (telemetry).
    pub raw_bytes: u64,
}

impl MessageBlock {
    /// Decodes all `(target, payload)` messages.
    pub fn decode<P: Payload>(&self) -> Vec<(VId, P)> {
        let mut out = Vec::with_capacity(self.count as usize);
        let mut pos = 0usize;
        let mut last: u64 = 0;
        for _ in 0..self.count {
            let Some((delta, n)) = varint::decode_i64(&self.bytes[pos..]) else {
                break;
            };
            pos += n;
            last = last.wrapping_add(delta as u64);
            let Some((p, m)) = P::read(&self.bytes[pos..]) else {
                break;
            };
            pos += m;
            out.push((VId(last), p));
        }
        out
    }

    /// Visits messages without materialising a Vec.
    pub fn for_each<P: Payload>(&self, mut f: impl FnMut(VId, P)) {
        let mut pos = 0usize;
        let mut last: u64 = 0;
        for _ in 0..self.count {
            let Some((delta, n)) = varint::decode_i64(&self.bytes[pos..]) else {
                break;
            };
            pos += n;
            last = last.wrapping_add(delta as u64);
            let Some((p, m)) = P::read(&self.bytes[pos..]) else {
                break;
            };
            pos += m;
            f(VId(last), p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_f64_messages() {
        let mut out = OutBuffers::new(2);
        out.send(0, VId(10), 1.5f64);
        out.send(0, VId(11), 2.5f64);
        out.send(1, VId(999), -1.0f64);
        assert_eq!(out.total(), 3);
        let blocks = out.take();
        assert_eq!(
            blocks[0].decode::<f64>(),
            vec![(VId(10), 1.5), (VId(11), 2.5)]
        );
        assert_eq!(blocks[1].decode::<f64>(), vec![(VId(999), -1.0)]);
        assert_eq!(out.total(), 0, "take resets");
    }

    #[test]
    fn delta_encoding_is_compact_for_ascending_targets() {
        let mut out = OutBuffers::new(1);
        for i in 0..1000u64 {
            out.send(0, VId(1_000_000 + i), ());
        }
        let blocks = out.take();
        // first id costs a few bytes; the rest are 1-byte deltas
        assert!(blocks[0].bytes.len() < 1100, "{}", blocks[0].bytes.len());
        assert_eq!(blocks[0].decode::<()>().len(), 1000);
    }

    #[test]
    fn tuple_payloads() {
        let mut out = OutBuffers::new(1);
        out.send(0, VId(5), (7u64, 0.5f64));
        let blocks = out.take();
        assert_eq!(blocks[0].decode::<(u64, f64)>(), vec![(VId(5), (7, 0.5))]);
    }

    #[test]
    fn unordered_targets_still_round_trip() {
        let mut out = OutBuffers::new(1);
        out.send(0, VId(100), 1u64);
        out.send(0, VId(3), 2u64);
        out.send(0, VId(50), 3u64);
        let blocks = out.take();
        assert_eq!(
            blocks[0].decode::<u64>(),
            vec![(VId(100), 1), (VId(3), 2), (VId(50), 3)]
        );
    }

    #[test]
    fn for_each_matches_decode() {
        let mut out = OutBuffers::new(1);
        for i in 0..50u64 {
            out.send(0, VId(i * 3), i);
        }
        let blocks = out.take();
        let mut collected = Vec::new();
        blocks[0].for_each::<u64>(|v, p| collected.push((v, p)));
        assert_eq!(collected, blocks[0].decode::<u64>());
    }
}
