/root/repo/target/debug/deps/analytics-5663e2b943117bc4.d: crates/gs-bench/benches/analytics.rs Cargo.toml

/root/repo/target/debug/deps/libanalytics-5663e2b943117bc4.rmeta: crates/gs-bench/benches/analytics.rs Cargo.toml

crates/gs-bench/benches/analytics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
