//! Pass-through guarantee: without `--features chaos`, every fault hook
//! compiles to an inlined no-op — no plan can be armed, no fault can
//! fire, and running code under `with_chaos` changes nothing. This is the
//! default build the benchmarks and production paths use, so the chaos
//! layer must be invisible here.

#![cfg(not(feature = "chaos"))]

use graphscope_flex::gs_chaos;
use std::time::Duration;

#[test]
#[allow(clippy::assertions_on_constants)]
fn default_build_compiles_chaos_out() {
    assert!(
        !gs_chaos::COMPILED,
        "the default build must not carry injection code"
    );
}

#[test]
fn hooks_are_noops_even_under_an_armed_plan() {
    let plan = gs_chaos::FaultPlan::new(7)
        .kill_worker(0, 0)
        .message_faults(1.0, 1.0, 1.0)
        .storage_faults(1.0, 8)
        .slow_shard(0, Duration::from_secs(1))
        .dead_shard(0, 1);
    let (value, stats) = gs_chaos::with_chaos(plan, || {
        // a plan demanding every fault at probability 1.0 still does
        // nothing: the hooks are no-ops
        gs_chaos::worker_kill_point(0, 0);
        gs_chaos::storage_fault_point("passthrough");
        assert!(matches!(
            gs_chaos::message_fault(0, 1),
            gs_chaos::MessageFault::Deliver
        ));
        assert_eq!(gs_chaos::shard_delay(0), None);
        assert!(!gs_chaos::shard_should_die(0, 1));
        1234
    });
    assert_eq!(value, 1234, "with_chaos must run the closure unchanged");
    assert_eq!(stats.total(), 0, "nothing can fire in a pass-through build");
}

#[test]
fn recovery_utilities_are_always_available() {
    // retries, breakers, and checkpointing are plain library code — they
    // work (and are testable) without the chaos feature
    let policy = gs_chaos::RetryPolicy::new(3, Duration::from_millis(5));
    let mut calls = 0;
    let out: Result<u32, &str> = gs_chaos::with_retries(
        &policy,
        true,
        |_| {},
        |_| true,
        |attempt| {
            calls += 1;
            if attempt < 2 {
                Err("transient")
            } else {
                Ok(attempt)
            }
        },
    );
    assert_eq!(out, Ok(2));
    assert_eq!(calls, 2);
}
