/root/repo/target/release/deps/rand-37e7cc215150ba69.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-37e7cc215150ba69.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-37e7cc215150ba69.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
