//! Checkpoint/restart recovery for GRAPE's BSP runs.
//!
//! The paper's GRAPE deployments survive worker loss by coordinated
//! superstep checkpointing; this module reproduces that protocol on the
//! simulated cluster. Every `interval` supersteps each worker **stages** a
//! snapshot of its fragment state into the shared [`CheckpointStore`], the
//! cluster passes a commit barrier, and worker 0 **promotes** the staged
//! set to the committed checkpoint — so the committed checkpoint is always
//! a globally consistent cut at a superstep boundary.
//!
//! When an attempt dies — a worker panic (including injected
//! [`gs_chaos`] kills), a lost message, or a stalled peer — the failure
//! poisons the cluster's [`GlobalSync`](crate::engine::GlobalSync), every
//! surviving worker promptly aborts with
//! [`ClusterAborted`], and the driver tears
//! the attempt down and restarts **all** workers from the last committed
//! checkpoint. Because the per-step logic is deterministic, a restarted
//! run replays the exact arithmetic of an uninterrupted one: WCC/BFS
//! results are byte-identical and PageRank agrees to floating-point noise
//! (the global dangling-mass reduction sums in worker-arrival order).
//!
//! Genuine bugs still crash: a panic whose payload is not
//! [`gs_chaos::ChaosUnwind`] is re-raised on the driver thread after the
//! attempt unwinds, never silently retried.

use crate::engine::{pregel_step, ClusterAborted, CommHandle, GrapeEngine, PregelProgram};
use crate::fragment::Fragment;
use crate::messages::OutBuffers;
use gs_graph::VId;
use gs_sanitizer::TrackedMutex;
use gs_telemetry::counter;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Tuning for recoverable runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Checkpoint every `interval` supersteps (0 disables checkpointing;
    /// restarts then replay from the beginning).
    pub interval: usize,
    /// Give up (panic) after this many restarts — a backstop so an
    /// unrecoverable cluster fails loudly instead of looping.
    pub max_restarts: usize,
    /// No-progress window after which a collective or exchange declares a
    /// worker dead / a message lost and aborts the attempt.
    pub detect_timeout: Duration,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            interval: 4,
            max_restarts: 16,
            detect_timeout: Duration::from_millis(400),
        }
    }
}

impl RecoveryConfig {
    /// Sets the checkpoint interval.
    pub fn interval(mut self, every: usize) -> Self {
        self.interval = every;
        self
    }

    /// Sets the restart budget.
    pub fn max_restarts(mut self, n: usize) -> Self {
        self.max_restarts = n;
        self
    }

    /// Sets the dead-worker / lost-message detection window.
    pub fn detect_timeout(mut self, d: Duration) -> Self {
        self.detect_timeout = d;
        self
    }
}

struct StoreInner<S> {
    /// Per-fragment snapshots staged for the in-flight checkpoint,
    /// `fragment → (superstep, state)`.
    staged: HashMap<usize, (usize, S)>,
    /// The last committed (globally consistent) checkpoint.
    committed: Option<(usize, HashMap<usize, S>)>,
}

/// Shared store for coordinated checkpoints: workers stage per-fragment
/// snapshots, worker 0 promotes a complete staged set to committed, and a
/// restarted attempt restores from committed. The store outlives attempts,
/// which is the whole point — it may also outlive the engine (see the
/// restore-into-a-fresh-engine test), modelling a checkpoint that survives
/// a full process replacement.
pub struct CheckpointStore<S> {
    inner: TrackedMutex<StoreInner<S>>,
}

impl<S> Default for CheckpointStore<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> CheckpointStore<S> {
    pub fn new() -> Self {
        Self {
            inner: TrackedMutex::new(
                "grape.recover.checkpoint_store",
                StoreInner {
                    staged: HashMap::new(),
                    committed: None,
                },
            ),
        }
    }

    fn lock(&self) -> impl std::ops::DerefMut<Target = StoreInner<S>> + '_ {
        // the tracked mutex is non-poisoning: a chaos-killed worker may die
        // holding it, and staged state is overwritten wholesale so the data
        // stays valid across that
        self.inner.lock()
    }

    /// Stages fragment `frag`'s snapshot for the checkpoint at `step`.
    pub fn stage(&self, frag: usize, step: usize, snapshot: S) {
        self.lock().staged.insert(frag, (step, snapshot));
    }

    /// Promotes the staged set to committed if every one of `fragments`
    /// fragments staged at exactly `step`. Returns whether it committed.
    pub fn commit(&self, step: usize, fragments: usize) -> bool {
        let mut st = self.lock();
        let complete = st.staged.len() == fragments && st.staged.values().all(|(s, _)| *s == step);
        if !complete {
            return false;
        }
        let snaps = std::mem::take(&mut st.staged)
            .into_iter()
            .map(|(frag, (_, snap))| (frag, snap))
            .collect();
        st.committed = Some((step, snaps));
        counter!("grape.recovery.checkpoints");
        true
    }

    /// The superstep of the last committed checkpoint, if any.
    pub fn committed_step(&self) -> Option<usize> {
        self.lock().committed.as_ref().map(|(s, _)| *s)
    }
}

impl<S: Clone> CheckpointStore<S> {
    /// Fragment `frag`'s state from the last committed checkpoint.
    pub fn restore(&self, frag: usize) -> Option<(usize, S)> {
        let st = self.lock();
        let (step, snaps) = st.committed.as_ref()?;
        snaps.get(&frag).map(|s| (*step, s.clone()))
    }
}

/// The coordinated-checkpoint collective: stage, barrier (everyone has
/// staged), promote on worker 0, barrier (the commit is durable before
/// anyone computes past it). Every worker must call it at the same
/// superstep — the callers gate it on globally agreed values only.
pub fn checkpoint<S>(
    comm: &CommHandle,
    store: &CheckpointStore<S>,
    frag: usize,
    step: usize,
    snapshot: S,
) -> Result<(), ClusterAborted> {
    store.stage(frag, step, snapshot);
    comm.try_allreduce(0)?;
    if comm.my_id == 0 {
        let committed = store.commit(step, comm.workers);
        debug_assert!(committed, "all workers staged before the barrier");
    }
    comm.try_allreduce(0)?;
    Ok(())
}

/// How one worker's attempt ended.
enum AttemptResult<T> {
    /// Clean completion with this fragment's results.
    Done(Vec<(VId, T)>),
    /// The attempt died recoverably: an injected fault or a cluster abort.
    Aborted,
    /// A genuine (non-chaos) panic; re-raised by the driver.
    Crashed(Box<dyn std::any::Any + Send>),
}

/// Runs `worker` over every fragment with dead-worker detection, retrying
/// whole attempts from scratch (the worker restores its own state from a
/// [`CheckpointStore`]) until one completes on every fragment. Injected
/// fault panics and [`ClusterAborted`] trigger a restart; any other panic
/// is re-raised — recovery must never swallow a real bug.
pub fn run_recoverable<T, F>(engine: &GrapeEngine, cfg: &RecoveryConfig, worker: F) -> Vec<T>
where
    T: Clone + Default + Send + 'static,
    F: Fn(&Fragment, &CommHandle, usize) -> Result<Vec<(VId, T)>, ClusterAborted> + Sync,
{
    gs_chaos::silence_chaos_panics();
    let k = engine.fragments.len();
    for attempt in 0..=cfg.max_restarts {
        let comms = CommHandle::cluster_with(k, Some(cfg.detect_timeout));
        let results: Vec<AttemptResult<T>> = crossbeam::thread::scope(|s| {
            let worker = &worker;
            let handles: Vec<_> = engine
                .fragments
                .iter()
                .zip(comms)
                .map(|(frag, comm)| {
                    s.spawn(move |_| {
                        let sync = Arc::clone(&comm.sync);
                        match catch_unwind(AssertUnwindSafe(|| worker(frag, &comm, attempt))) {
                            Ok(Ok(part)) => AttemptResult::Done(part),
                            Ok(Err(_aborted)) => AttemptResult::Aborted,
                            Err(payload) => {
                                // unblock the peers before this thread exits
                                sync.poison("peer worker panicked");
                                if gs_chaos::is_chaos_unwind(payload.as_ref()) {
                                    AttemptResult::Aborted
                                } else {
                                    AttemptResult::Crashed(payload)
                                }
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("recovery wrapper must not panic"))
                .collect()
        })
        .expect("grape scope");

        let mut parts = Vec::with_capacity(k);
        let mut aborted = false;
        for r in results {
            match r {
                AttemptResult::Done(p) => parts.push(p),
                AttemptResult::Aborted => aborted = true,
                AttemptResult::Crashed(payload) => resume_unwind(payload),
            }
        }
        if !aborted {
            let mut global = vec![T::default(); engine.global_n()];
            for part in parts {
                for (g, v) in part {
                    global[g.index()] = v;
                }
            }
            return global;
        }
        counter!("grape.recovery.restarts");
    }
    panic!(
        "grape recovery: attempt budget exhausted after {} restarts",
        cfg.max_restarts
    );
}

/// A consistent per-fragment cut of a Pregel run at a superstep boundary.
#[derive(Clone)]
pub struct PregelState<M, V> {
    pub values: Vec<V>,
    pub active: Vec<bool>,
    pub inboxes: Vec<Vec<M>>,
}

/// The checkpoint/restart Pregel driver: identical per-step semantics to
/// [`run_pregel`](crate::engine::run_pregel) (both delegate to the same
/// step function), plus a coordinated checkpoint every
/// `cfg.interval` supersteps and restart-from-checkpoint on failure.
pub fn run_pregel_recoverable<P: PregelProgram>(
    engine: &GrapeEngine,
    program: &P,
    max_steps: usize,
    cfg: &RecoveryConfig,
    store: &CheckpointStore<PregelState<P::Msg, P::Value>>,
) -> Vec<P::Value> {
    run_recoverable(engine, cfg, |frag, comm, _attempt| {
        let n_inner = frag.inner_count;
        let idx = frag.id.index();
        let (start, mut values, mut active, mut inboxes) = match store.restore(idx) {
            Some((step, st)) => (step + 1, st.values, st.active, st.inboxes),
            None => (
                0,
                (0..n_inner)
                    .map(|l| program.init(frag.global(l as u32), frag))
                    .collect(),
                vec![true; n_inner],
                vec![Vec::new(); n_inner],
            ),
        };
        let mut out = OutBuffers::new(comm.workers);
        for step in start..max_steps {
            gs_chaos::worker_kill_point(comm.my_id, step);
            let cont = pregel_step(
                program,
                frag,
                comm,
                step,
                &mut values,
                &mut active,
                &mut inboxes,
                &mut out,
            )?;
            if !cont {
                break;
            }
            // gate on globally agreed values only, so every worker makes
            // the identical collective sequence
            if cfg.interval > 0 && (step + 1) % cfg.interval == 0 && step + 1 < max_steps {
                checkpoint(
                    comm,
                    store,
                    idx,
                    step,
                    PregelState {
                        values: values.clone(),
                        active: active.clone(),
                        inboxes: inboxes.clone(),
                    },
                )?;
            }
        }
        Ok((0..n_inner)
            .map(|l| (frag.global(l as u32), values[l].clone()))
            .collect())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::wcc;

    fn ring_edges(n: u64) -> Vec<(VId, VId)> {
        (0..n)
            .flat_map(|i| [(VId(i), VId((i + 1) % n)), (VId((i + 1) % n), VId(i))])
            .collect()
    }

    /// An armed engine produces the same results as a plain one when
    /// nothing faults (the recoverable driver is semantics-preserving).
    #[test]
    fn recoverable_pregel_matches_plain_run_without_faults() {
        let edges = ring_edges(48);
        let plain = wcc(&GrapeEngine::from_edges(48, &edges, 3));
        let armed = wcc(&GrapeEngine::from_edges(48, &edges, 3)
            .with_recovery(RecoveryConfig::default().interval(3)));
        assert_eq!(plain, armed);
    }

    #[test]
    fn checkpoint_store_commits_only_complete_consistent_sets() {
        let store: CheckpointStore<Vec<u64>> = CheckpointStore::new();
        assert_eq!(store.committed_step(), None);
        store.stage(0, 4, vec![1]);
        assert!(!store.commit(4, 2), "fragment 1 missing");
        store.stage(1, 3, vec![2]);
        assert!(!store.commit(4, 2), "fragment 1 staged a different step");
        store.stage(1, 4, vec![2]);
        assert!(store.commit(4, 2));
        assert_eq!(store.committed_step(), Some(4));
        assert_eq!(store.restore(0), Some((4, vec![1])));
        assert_eq!(store.restore(1), Some((4, vec![2])));
        // staged set was consumed; the committed cut survives
        assert!(!store.commit(4, 2));
        assert_eq!(store.restore(0), Some((4, vec![1])));
    }

    /// A genuine (non-chaos) worker panic must not be retried — it
    /// resurfaces on the driver thread.
    #[test]
    fn real_panics_are_reraised_not_retried() {
        let edges = ring_edges(8);
        let engine = GrapeEngine::from_edges(8, &edges, 2);
        let attempts = std::sync::atomic::AtomicUsize::new(0);
        let got = catch_unwind(AssertUnwindSafe(|| {
            run_recoverable::<u64, _>(&engine, &RecoveryConfig::default(), |_frag, _comm, _a| {
                attempts.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                panic!("genuine bug");
            })
        }));
        assert!(got.is_err());
        assert!(
            attempts.load(std::sync::atomic::Ordering::SeqCst) <= 2,
            "a real panic must not burn the restart budget"
        );
    }

    /// Satellite: checkpoint/restore round-trip. Run PageRank far enough
    /// to commit a mid-run checkpoint, then restore that checkpoint into a
    /// **fresh** engine and finish: the final ranks must match an
    /// uninterrupted run bit-for-bit.
    #[test]
    fn checkpoint_restores_into_fresh_engine_with_identical_ranks() {
        use crate::algorithms::pagerank::pagerank_recoverable;
        let edges = ring_edges(30);
        let cfg = RecoveryConfig::default().interval(5);

        let full_engine = GrapeEngine::from_edges(30, &edges, 3);
        let store = CheckpointStore::new();
        let uninterrupted = pagerank_recoverable(&full_engine, 0.85, 10, &cfg, &store);
        // interval 5 over 10 iterations commits after step 4 (step 9 is
        // final, so no checkpoint there)
        assert_eq!(store.committed_step(), Some(4));
        drop(full_engine);

        // a brand-new engine resumes from the surviving checkpoint
        let fresh = GrapeEngine::from_edges(30, &edges, 3);
        let resumed = pagerank_recoverable(&fresh, 0.85, 10, &cfg, &store);
        assert_eq!(
            uninterrupted.len(),
            resumed.len(),
            "same vertex set after restore"
        );
        for (i, (a, b)) in uninterrupted.iter().zip(&resumed).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "rank {i} diverged after restore: {a} vs {b}"
            );
        }
    }

    /// Chaos: scheduled worker kills at different supersteps; the run
    /// restarts from checkpoints and converges to the fault-free result.
    #[cfg(feature = "chaos")]
    #[test]
    fn wcc_survives_worker_kills_byte_identically() {
        let edges = ring_edges(40);
        let plain = wcc(&GrapeEngine::from_edges(40, &edges, 3));
        let plan = gs_chaos::FaultPlan::new(77)
            .kill_worker(1, 3)
            .kill_worker(2, 7);
        let (survived, stats) = gs_chaos::with_chaos(plan, || {
            wcc(&GrapeEngine::from_edges(40, &edges, 3)
                .with_recovery(RecoveryConfig::default().interval(2)))
        });
        assert_eq!(stats.worker_kills, 2, "both scheduled kills fired");
        assert_eq!(plain, survived, "WCC under kills must be byte-identical");
    }

    /// Chaos: message drop/duplication/delay on the exchange; duplicates
    /// and delays are absorbed in-round, drops abort the attempt and the
    /// restart converges to the exact fault-free answer.
    #[cfg(feature = "chaos")]
    #[test]
    fn pregel_survives_message_faults() {
        let edges = ring_edges(32);
        let plain = wcc(&GrapeEngine::from_edges(32, &edges, 4));
        let plan = gs_chaos::FaultPlan::new(1234)
            .message_faults(0.05, 0.05, 0.05)
            .budget(12);
        let (survived, stats) = gs_chaos::with_chaos(plan, || {
            wcc(&GrapeEngine::from_edges(32, &edges, 4).with_recovery(
                RecoveryConfig::default()
                    .interval(2)
                    .detect_timeout(Duration::from_millis(150)),
            ))
        });
        assert!(stats.total() > 0, "plan must actually inject");
        assert_eq!(plain, survived);
    }

    /// Plain runs are untouched by the recoverable machinery: run_pregel
    /// without `with_recovery` takes the direct path (and still computes
    /// the same answer as an armed engine, tested above).
    #[test]
    fn unarmed_engine_does_not_checkpoint() {
        let edges = ring_edges(16);
        let engine = GrapeEngine::from_edges(16, &edges, 2);
        assert!(engine.recovery.is_none());
        let labels = wcc(&engine);
        assert!(labels.iter().all(|&c| c == 0), "one ring, one component");
    }
}
