/root/repo/target/debug/deps/gs_graph-bf2340256e5e77bd.d: crates/gs-graph/src/lib.rs crates/gs-graph/src/csr.rs crates/gs-graph/src/data.rs crates/gs-graph/src/edgelist.rs crates/gs-graph/src/error.rs crates/gs-graph/src/ids.rs crates/gs-graph/src/json.rs crates/gs-graph/src/partition.rs crates/gs-graph/src/props.rs crates/gs-graph/src/schema.rs crates/gs-graph/src/value.rs crates/gs-graph/src/varint.rs

/root/repo/target/debug/deps/libgs_graph-bf2340256e5e77bd.rlib: crates/gs-graph/src/lib.rs crates/gs-graph/src/csr.rs crates/gs-graph/src/data.rs crates/gs-graph/src/edgelist.rs crates/gs-graph/src/error.rs crates/gs-graph/src/ids.rs crates/gs-graph/src/json.rs crates/gs-graph/src/partition.rs crates/gs-graph/src/props.rs crates/gs-graph/src/schema.rs crates/gs-graph/src/value.rs crates/gs-graph/src/varint.rs

/root/repo/target/debug/deps/libgs_graph-bf2340256e5e77bd.rmeta: crates/gs-graph/src/lib.rs crates/gs-graph/src/csr.rs crates/gs-graph/src/data.rs crates/gs-graph/src/edgelist.rs crates/gs-graph/src/error.rs crates/gs-graph/src/ids.rs crates/gs-graph/src/json.rs crates/gs-graph/src/partition.rs crates/gs-graph/src/props.rs crates/gs-graph/src/schema.rs crates/gs-graph/src/value.rs crates/gs-graph/src/varint.rs

crates/gs-graph/src/lib.rs:
crates/gs-graph/src/csr.rs:
crates/gs-graph/src/data.rs:
crates/gs-graph/src/edgelist.rs:
crates/gs-graph/src/error.rs:
crates/gs-graph/src/ids.rs:
crates/gs-graph/src/json.rs:
crates/gs-graph/src/partition.rs:
crates/gs-graph/src/props.rs:
crates/gs-graph/src/schema.rs:
crates/gs-graph/src/value.rs:
crates/gs-graph/src/varint.rs:
