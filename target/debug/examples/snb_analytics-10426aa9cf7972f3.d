/root/repo/target/debug/examples/snb_analytics-10426aa9cf7972f3.d: examples/snb_analytics.rs

/root/repo/target/debug/examples/snb_analytics-10426aa9cf7972f3: examples/snb_analytics.rs

examples/snb_analytics.rs:
