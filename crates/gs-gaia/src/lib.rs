//! # gs-gaia — Gaia, the dataflow OLAP engine
//!
//! Gaia (paper §5, [NSDI'21]) executes physical plans as data-parallel
//! dataflows: the source scan is partitioned across workers, per-record
//! operators (expand / select / stateless project) run pipelined on each
//! worker's partition, and *stateful* operators (grouped aggregation,
//! order, dedup, limit) form exchange barriers — grouped aggregation uses
//! per-worker partial aggregation followed by a merge (the classic
//! two-phase reduction), the rest gather.
//!
//! Operator *semantics* are shared with the reference executor in
//! `gs_ir::exec`; this crate contributes the parallel runtime, which is
//! what makes Gaia suited to "fairly intricate queries on large graphs"
//! (OLAP) rather than high-QPS point queries (HiActor's domain).

use gs_graph::value::GroupKey;
use gs_grin::{Capabilities, GrinGraph};
use gs_ir::exec::{apply, AggState};
use gs_ir::logical::ProjectItem;
use gs_ir::physical::{PhysicalOp, PhysicalPlan};
use gs_ir::record::Record;
use gs_ir::{GraphError, Result, Value};
use gs_telemetry::{counter, observe, span};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Storage capabilities Gaia needs (mirrors flexbuild's requirements for
/// the Gaia component).
pub const REQUIRED_CAPABILITIES: Capabilities = Capabilities::VERTEX_LIST_ITER
    .union(Capabilities::ADJ_LIST_ITER)
    .union(Capabilities::PROPERTY);

/// The data-parallel dataflow engine.
#[derive(Clone)]
pub struct GaiaEngine {
    workers: usize,
    verify: gs_ir::VerifyLevel,
}

impl GaiaEngine {
    /// Engine over `workers` parallel workers (threads).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            verify: gs_ir::VerifyLevel::default(),
        }
    }

    /// Sets the submit-time plan verification level.
    pub fn with_verify(mut self, verify: gs_ir::VerifyLevel) -> Self {
        self.verify = verify;
        self
    }

    /// Number of configured workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes a physical plan with data parallelism.
    pub fn execute(&self, plan: &PhysicalPlan, graph: &dyn GrinGraph) -> Result<Vec<Record>> {
        graph.capabilities().require(REQUIRED_CAPABILITIES)?;
        gs_ir::verify::verify_on_submit(plan, graph.schema(), self.verify, "gaia")?;
        let _query_span = span!("gaia.query", workers = self.workers);
        // Split the plan into pipeline segments at stateful barriers.
        let mut segments: Vec<(Vec<PhysicalOp>, Option<PhysicalOp>)> = Vec::new();
        let mut current: Vec<PhysicalOp> = Vec::new();
        for op in &plan.ops {
            if is_stateful(op) {
                segments.push((std::mem::take(&mut current), Some(op.clone())));
            } else {
                current.push(op.clone());
            }
        }
        segments.push((current, None));

        // Partitioned record sets: one Vec<Record> per worker.
        let mut partitions: Vec<Vec<Record>> = vec![Vec::new(); self.workers];
        partitions[0].push(Record::new()); // the source record
        let mut first_scan_pending = true;

        for (seg, (pipeline, barrier)) in segments.into_iter().enumerate() {
            // run the stateless pipeline on each partition in parallel
            {
                let _seg_span = span!("gaia.segment", idx = seg);
                partitions = self.run_pipeline(&pipeline, partitions, graph, first_scan_pending)?;
            }
            if pipeline
                .iter()
                .any(|op| matches!(op, PhysicalOp::Scan { .. }))
            {
                first_scan_pending = false;
            }
            if let Some(op) = barrier {
                let _barrier_span = span!("gaia.barrier", op = op_name(&op));
                partitions = self.run_barrier(&op, partitions, graph)?;
            }
        }
        Ok(partitions.into_iter().flatten().collect())
    }

    /// Runs stateless ops over every partition concurrently. When the
    /// pipeline contains the plan's *first* scan, that scan is partitioned
    /// by striding the vertex set across workers.
    fn run_pipeline(
        &self,
        ops: &[PhysicalOp],
        partitions: Vec<Vec<Record>>,
        graph: &dyn GrinGraph,
        partition_first_scan: bool,
    ) -> Result<Vec<Vec<Record>>> {
        if ops.is_empty() {
            return Ok(partitions);
        }
        // find the first scan index if we must partition it
        let scan_idx = if partition_first_scan {
            ops.iter()
                .position(|op| matches!(op, PhysicalOp::Scan { .. }))
        } else {
            None
        };
        let n = self.workers;
        let wall_start = Instant::now();
        // total busy nanoseconds across workers; segment wall × n minus
        // this is the time workers spent stalled at the implicit exchange
        // barrier waiting for their slowest sibling
        let busy_ns = AtomicU64::new(0);
        let results: Vec<Result<Vec<Record>>> = crossbeam::thread::scope(|s| {
            let mut handles = Vec::with_capacity(n);
            for (w, part) in partitions.into_iter().enumerate() {
                let ops = &ops;
                let busy_ns = &busy_ns;
                let handle = s.spawn(move |_| -> Result<Vec<Record>> {
                    let worker_start = Instant::now();
                    // seed: worker 0 holds the source record before the
                    // first scan; all workers run the partitioned scan
                    let mut records = if scan_idx.is_some() {
                        vec![Record::new()]
                    } else {
                        part
                    };
                    for (i, op) in ops.iter().enumerate() {
                        let op_start = gs_telemetry::enabled().then(Instant::now);
                        if Some(i) == scan_idx {
                            records = scan_partitioned(op, &records, graph, w, n)?;
                        } else {
                            records = apply(op, records, graph)?;
                        }
                        if let Some(t) = op_start {
                            observe!("gaia.op_ns", op = op_name(op); t.elapsed().as_nanos() as u64);
                            counter!("gaia.records", op = op_name(op); records.len() as u64);
                        }
                    }
                    busy_ns.fetch_add(worker_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    Ok(records)
                });
                handles.push(handle);
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("gaia worker panicked"))
                .collect()
        })
        .expect("gaia scope");
        let wall = wall_start.elapsed().as_nanos() as u64;
        let stall = (wall * n as u64).saturating_sub(busy_ns.load(Ordering::Relaxed));
        counter!("gaia.exchange_stall_ns"; stall);
        results.into_iter().collect()
    }

    /// Executes a stateful barrier op, producing fresh partitions.
    fn run_barrier(
        &self,
        op: &PhysicalOp,
        partitions: Vec<Vec<Record>>,
        graph: &dyn GrinGraph,
    ) -> Result<Vec<Vec<Record>>> {
        match op {
            PhysicalOp::Project { items }
                if items
                    .iter()
                    .any(|(it, _)| matches!(it, ProjectItem::Agg(..))) =>
            {
                self.parallel_group_by(items, partitions, graph)
            }
            // order / dedup / limit / plain stateful: gather then apply
            _ => {
                let gathered: Vec<Record> = partitions.into_iter().flatten().collect();
                let out = apply(op, gathered, graph)?;
                Ok(self.scatter(out))
            }
        }
    }

    /// Two-phase grouped aggregation: per-worker partials, then merge.
    fn parallel_group_by(
        &self,
        items: &[(ProjectItem, String)],
        partitions: Vec<Vec<Record>>,
        graph: &dyn GrinGraph,
    ) -> Result<Vec<Vec<Record>>> {
        type Partial = HashMap<Vec<GroupKey>, (Vec<Value>, Vec<AggState>)>;
        let partials: Vec<Result<Partial>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = partitions
                .into_iter()
                .map(|part| {
                    s.spawn(move |_| -> Result<Partial> {
                        let mut m: Partial = HashMap::new();
                        for rec in part {
                            let mut key = Vec::new();
                            let mut key_vals = Vec::new();
                            for (it, _) in items {
                                if let ProjectItem::Expr(e) = it {
                                    let v = e.eval(&rec, graph)?;
                                    key.push(GroupKey(v.clone()));
                                    key_vals.push(v);
                                }
                            }
                            let entry = m.entry(key).or_insert_with(|| {
                                (
                                    key_vals,
                                    items
                                        .iter()
                                        .filter_map(|(it, _)| match it {
                                            ProjectItem::Agg(f, _) => Some(AggState::new(f)),
                                            _ => None,
                                        })
                                        .collect(),
                                )
                            });
                            let mut ai = 0;
                            for (it, _) in items {
                                if let ProjectItem::Agg(_, e) = it {
                                    entry.1[ai].update(e.eval(&rec, graph)?);
                                    ai += 1;
                                }
                            }
                        }
                        Ok(m)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("gaia agg worker panicked"))
                .collect()
        })
        .expect("gaia scope");

        // merge phase
        let mut merged: Partial = HashMap::new();
        for p in partials {
            for (k, (kv, states)) in p? {
                match merged.entry(k) {
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert((kv, states));
                    }
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        for (a, b) in o.get_mut().1.iter_mut().zip(states) {
                            a.merge(b);
                        }
                    }
                }
            }
        }
        // keyless aggregate over empty input → identity row
        if merged.is_empty()
            && items
                .iter()
                .all(|(it, _)| matches!(it, ProjectItem::Agg(..)))
        {
            let row: Record = items
                .iter()
                .map(|(it, _)| match it {
                    ProjectItem::Agg(f, _) => AggState::new(f).finish(),
                    _ => unreachable!(),
                })
                .collect();
            return Ok(self.scatter(vec![row]));
        }
        let mut out = Vec::with_capacity(merged.len());
        for (_, (key_vals, states)) in merged {
            let mut r = Record::with_capacity(items.len());
            let mut kv = key_vals.into_iter();
            let mut st = states.into_iter();
            for (it, _) in items {
                match it {
                    ProjectItem::Expr(_) => r.push(kv.next().expect("key")),
                    ProjectItem::Agg(..) => r.push(st.next().expect("state").finish()),
                }
            }
            out.push(r);
        }
        Ok(self.scatter(out))
    }

    fn scatter(&self, records: Vec<Record>) -> Vec<Vec<Record>> {
        let mut parts: Vec<Vec<Record>> = vec![Vec::new(); self.workers];
        for (i, r) in records.into_iter().enumerate() {
            parts[i % self.workers].push(r);
        }
        parts
    }
}

impl gs_ir::QueryEngine for GaiaEngine {
    fn execute(&self, plan: &PhysicalPlan, graph: &dyn GrinGraph) -> Result<Vec<Record>> {
        GaiaEngine::execute(self, plan, graph)
    }

    fn name(&self) -> &'static str {
        "gaia"
    }

    /// Prepared Gaia handle: verification runs once (on the first
    /// execute, when a schema is in scope); every call after that goes
    /// straight into the dataflow pipeline.
    fn prepare(&self, plan: &PhysicalPlan) -> Result<Box<dyn gs_ir::PreparedQuery>> {
        struct GaiaPrepared {
            // verification is handled by `once`, so the inner engine runs
            // with submit-time checks disabled
            engine: GaiaEngine,
            plan: PhysicalPlan,
            once: gs_ir::VerifyOnce,
        }
        impl gs_ir::PreparedQuery for GaiaPrepared {
            fn execute(&self, graph: &dyn GrinGraph) -> Result<Vec<Record>> {
                self.once.check(&self.plan, graph.schema(), "gaia")?;
                GaiaEngine::execute(&self.engine, &self.plan, graph)
            }

            fn plan(&self) -> &PhysicalPlan {
                &self.plan
            }

            fn engine_name(&self) -> &'static str {
                "gaia"
            }
        }
        Ok(Box::new(GaiaPrepared {
            engine: self.clone().with_verify(gs_ir::VerifyLevel::Off),
            plan: plan.clone(),
            once: gs_ir::VerifyOnce::new(self.verify),
        }))
    }
}

/// Short operator name for metric keys.
fn op_name(op: &PhysicalOp) -> &'static str {
    match op {
        PhysicalOp::Scan { .. } => "Scan",
        PhysicalOp::Expand { .. } => "Expand",
        PhysicalOp::GetVertex { .. } => "GetVertex",
        PhysicalOp::ExpandIntersect { .. } => "ExpandIntersect",
        PhysicalOp::Select { .. } => "Select",
        PhysicalOp::Project { .. } => "Project",
        PhysicalOp::Order { .. } => "Order",
        PhysicalOp::Dedup { .. } => "Dedup",
        PhysicalOp::Limit { .. } => "Limit",
    }
}

/// Is this op an exchange barrier?
fn is_stateful(op: &PhysicalOp) -> bool {
    match op {
        PhysicalOp::Order { .. } | PhysicalOp::Dedup { .. } | PhysicalOp::Limit { .. } => true,
        PhysicalOp::Project { items } => items
            .iter()
            .any(|(it, _)| matches!(it, ProjectItem::Agg(..))),
        _ => false,
    }
}

/// Strided parallel scan: worker `w` of `n` takes vertices at positions
/// `w, w+n, w+2n, ...` of the (index-ordered) vertex/lookup set.
fn scan_partitioned(
    op: &PhysicalOp,
    input: &[Record],
    graph: &dyn GrinGraph,
    w: usize,
    n: usize,
) -> Result<Vec<Record>> {
    let PhysicalOp::Scan {
        label,
        predicate,
        index_lookup,
    } = op
    else {
        return Err(GraphError::Query("scan_partitioned on non-scan".into()));
    };
    let mut vertices: Vec<Value> = Vec::new();
    if let Some((prop, val)) = index_lookup {
        for (i, v) in graph
            .vertices_by_property(*label, *prop, val)
            .into_iter()
            .enumerate()
        {
            if i % n == w {
                vertices.push(Value::Vertex(v, *label));
            }
        }
    } else {
        for (i, v) in graph.vertices(*label).enumerate() {
            if i % n == w {
                vertices.push(Value::Vertex(v, *label));
            }
        }
    }
    let mut out = Vec::new();
    for val in vertices {
        if let Some(p) = predicate {
            if !p.eval_bool(std::slice::from_ref(&val), graph)? {
                continue;
            }
        }
        for rec in input {
            let mut r = rec.clone();
            r.push(val.clone());
            out.push(r);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_grin::graph::mock::MockGraph;
    use gs_ir::exec::execute as ref_execute;
    use gs_ir::expr::{AggFunc, BinOp, Expr};
    use gs_ir::physical::lower_naive;
    use gs_ir::{PlanBuilder, Value};
    use rand::Rng;

    fn random_graph(n: usize, m: usize, seed: u64) -> MockGraph {
        let mut rng = rand_pcg::Pcg64Mcg::new(seed as u128);
        let edges: Vec<(u64, u64, f64)> = (0..m)
            .map(|_| {
                (
                    rng.gen_range(0..n as u64),
                    rng.gen_range(0..n as u64),
                    rng.gen::<f64>(),
                )
            })
            .collect();
        let mut g = MockGraph::new(n, &edges);
        for v in 0..n {
            g.set_tag(gs_graph::VId(v as u64), (v % 7) as i64);
        }
        g
    }

    fn canon(mut v: Vec<Record>) -> Vec<Record> {
        v.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        v
    }

    /// Differential test: Gaia with 1..8 workers matches the reference
    /// executor on a two-hop + filter + group + order query.
    #[test]
    fn gaia_matches_reference_executor() {
        let g = random_graph(200, 800, 42);
        let s = g.schema().clone();
        let builder = PlanBuilder::new(&s)
            .scan("a", "V")
            .unwrap()
            .expand_edge("a", "E", gs_grin::Direction::Out, "e1")
            .unwrap()
            .get_vertex("e1", "b")
            .unwrap();
        let pred = Expr::bin(
            BinOp::Gt,
            builder.prop("b", "tag").unwrap(),
            Expr::Const(Value::Int(2)),
        );
        let plan = builder
            .select(pred)
            .project(vec![
                (gs_ir::logical::ProjectItem::Expr(Expr::Column(0)), "src"),
                (
                    gs_ir::logical::ProjectItem::Agg(AggFunc::Count, Expr::Column(2)),
                    "cnt",
                ),
            ])
            .unwrap()
            .order(
                vec![(Expr::Column(1), false), (Expr::Column(0), true)],
                Some(20),
            )
            .build();
        let phys = lower_naive(&plan).unwrap();
        let expected = ref_execute(&phys, &g).unwrap();
        for workers in [1, 2, 4, 8] {
            let got = GaiaEngine::new(workers).execute(&phys, &g).unwrap();
            // order may differ within equal keys; compare canonically
            assert_eq!(canon(got), canon(expected.clone()), "workers={workers}");
        }
    }

    #[test]
    fn keyless_count_on_empty_result() {
        let g = random_graph(50, 100, 7);
        let s = g.schema().clone();
        let builder = PlanBuilder::new(&s).scan("a", "V").unwrap();
        let pred = Expr::bin(
            BinOp::Gt,
            builder.prop("a", "tag").unwrap(),
            Expr::Const(Value::Int(99)),
        );
        let plan = builder
            .select(pred)
            .project(vec![(
                gs_ir::logical::ProjectItem::Agg(AggFunc::Count, Expr::Column(0)),
                "cnt",
            )])
            .unwrap()
            .build();
        let phys = lower_naive(&plan).unwrap();
        let got = GaiaEngine::new(4).execute(&phys, &g).unwrap();
        assert_eq!(got, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn dedup_and_limit_barriers() {
        let g = random_graph(100, 500, 9);
        let s = g.schema().clone();
        let plan = PlanBuilder::new(&s)
            .scan("a", "V")
            .unwrap()
            .expand_edge("a", "E", gs_grin::Direction::Out, "e")
            .unwrap()
            .get_vertex("e", "b")
            .unwrap()
            .project(vec![(
                gs_ir::logical::ProjectItem::Expr(Expr::Column(2)),
                "b",
            )])
            .unwrap()
            .dedup(&["b"])
            .unwrap()
            .build();
        let phys = lower_naive(&plan).unwrap();
        let expected = ref_execute(&phys, &g).unwrap();
        let got = GaiaEngine::new(4).execute(&phys, &g).unwrap();
        assert_eq!(canon(got), canon(expected));
    }

    #[test]
    fn single_worker_equals_multi_worker() {
        let g = random_graph(100, 400, 11);
        let s = g.schema().clone();
        let plan = PlanBuilder::new(&s)
            .scan("a", "V")
            .unwrap()
            .expand_edge("a", "E", gs_grin::Direction::Out, "e")
            .unwrap()
            .get_vertex("e", "b")
            .unwrap()
            .build();
        let phys = lower_naive(&plan).unwrap();
        let one = GaiaEngine::new(1).execute(&phys, &g).unwrap();
        let eight = GaiaEngine::new(8).execute(&phys, &g).unwrap();
        assert_eq!(canon(one), canon(eight));
    }
}
