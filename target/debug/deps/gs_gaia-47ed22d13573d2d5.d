/root/repo/target/debug/deps/gs_gaia-47ed22d13573d2d5.d: crates/gs-gaia/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgs_gaia-47ed22d13573d2d5.rmeta: crates/gs-gaia/src/lib.rs Cargo.toml

crates/gs-gaia/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
