//! Open-loop serving storm over gs-serve (§8 fraud mix).
//!
//! ```text
//! storm                           full run, writes BENCH_storm.json
//! storm --deny                    fail if the baseline phase sheds or errors
//! storm --seed N                  pin the schedule (default 42)
//! storm --duration-supersteps K   scale phase length (default 5)
//! storm --out PATH                output path (default BENCH_storm.json)
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let deny = args.iter().any(|a| a == "--deny");
    let mut seed = 42u64;
    let mut supersteps = 5u64;
    let mut out = "BENCH_storm.json".to_string();
    for w in args.windows(2) {
        match w[0].as_str() {
            "--seed" => seed = w[1].parse().expect("--seed takes an integer"),
            "--duration-supersteps" => {
                supersteps = w[1]
                    .parse()
                    .expect("--duration-supersteps takes an integer")
            }
            "--out" => out = w[1].clone(),
            _ => {}
        }
    }
    std::process::exit(gs_bench::storm::run_cli(deny, seed, supersteps, &out));
}
