//! Graph-analytics experiments: Figures 7(h)–7(k) — PageRank and BFS on
//! GRAPE vs the CPU baselines (PowerGraph, Gemini) and the simulated-GPU
//! baselines (Groute, Gunrock).

use crate::util::{fmt_duration, time_it, TablePrinter};
use gs_baselines::{GeminiEngine, GrouteEngine, GunrockEngine, PowerGraphEngine};
use gs_datagen::catalog::Dataset;
use gs_grape::{algorithms, bfs_gpu, pagerank_gpu, GpuCluster, GrapeEngine, GrinProjection};
use gs_graph::csr::Csr;
use gs_graph::VId;

const DATASETS: &[&str] = &["FB0", "G500", "UK", "TW", "CF"];
const PR_ITERS: usize = 10;

fn load(abbr: &str, scale: f64) -> (usize, Vec<(VId, VId)>) {
    let el = Dataset::by_abbr(abbr).unwrap().edges(0.1 * scale);
    (el.vertex_count(), el.edges().to_vec())
}

/// Builds GRAPE the way a Flex deployment does: seal the edge list into an
/// in-process Vineyard store and load the fragments through GRIN (bulk
/// adjacency scan), instead of handing GRAPE a private edge list.
fn grin_engine(n: usize, edges: &[(VId, VId)], k: usize) -> GrapeEngine {
    let pairs: Vec<(u64, u64)> = edges.iter().map(|&(s, d)| (s.0, d.0)).collect();
    let data = gs_graph::data::PropertyGraphData::from_edge_list(n, &pairs);
    let store = gs_vineyard::VineyardGraph::build(&data).expect("seal edge list into vineyard");
    let (engine, _space) = GrapeEngine::from_grin(&store, &GrinProjection::default(), k)
        .expect("GRIN load from vineyard");
    engine
}

fn workers() -> usize {
    std::thread::available_parallelism()
        .map(|x| x.get().min(8))
        .unwrap_or(4)
}

/// Fig. 7(h): PageRank, CPU systems.
pub fn fig7h(scale: f64) {
    println!("== Fig 7(h): PageRank (CPU) — GRAPE vs PowerGraph vs Gemini ==");
    println!("paper shape: GRAPE ≈25× PowerGraph (avg), ≈2.3× Gemini\n");
    let k = workers();
    let mut t = TablePrinter::new(&["dataset", "GRAPE", "PowerGraph", "Gemini"]);
    for abbr in DATASETS {
        let (n, edges) = load(abbr, scale);
        let grape = grin_engine(n, &edges, k);
        let (tg, rg) = time_it(3, || algorithms::pagerank(&grape, 0.85, PR_ITERS));
        let pg = PowerGraphEngine::new(n, &edges, k);
        let (tp, rp) = time_it(1, || pg.pagerank(0.85, PR_ITERS));
        let gm = GeminiEngine::new(n, &edges, k);
        let (tm, rm) = time_it(3, || gm.pagerank(0.85, PR_ITERS));
        // all three engines agree
        for ((a, b), c) in rg.iter().zip(&rp).zip(&rm) {
            assert!((a - b).abs() < 1e-9 && (a - c).abs() < 1e-9);
        }
        t.row(vec![
            abbr.to_string(),
            fmt_duration(tg),
            fmt_duration(tp),
            fmt_duration(tm),
        ]);
    }
    t.print();
}

/// Fig. 7(i): BFS, CPU systems.
pub fn fig7i(scale: f64) {
    println!("== Fig 7(i): BFS (CPU) — GRAPE vs PowerGraph vs Gemini ==");
    println!("paper shape: GRAPE fastest, up to 55.7× over PowerGraph\n");
    let k = workers();
    let mut t = TablePrinter::new(&["dataset", "GRAPE", "PowerGraph", "Gemini"]);
    for abbr in DATASETS {
        let (n, edges) = load(abbr, scale);
        let src = VId(0);
        let grape = grin_engine(n, &edges, k);
        let (tg, rg) = time_it(3, || algorithms::bfs(&grape, src));
        let pg = PowerGraphEngine::new(n, &edges, k);
        let (tp, rp) = time_it(1, || pg.bfs(src));
        let gm = GeminiEngine::new(n, &edges, k);
        let (tm, rm) = time_it(3, || gm.bfs(src));
        assert_eq!(rg, rp);
        assert_eq!(rg, rm);
        t.row(vec![
            abbr.to_string(),
            fmt_duration(tg),
            fmt_duration(tp),
            fmt_duration(tm),
        ]);
    }
    t.print();
}

/// Fig. 7(j): PageRank, simulated-GPU systems.
pub fn fig7j(scale: f64) {
    println!("== Fig 7(j): PageRank (GPU-sim) — GRAPE-GPU vs Groute vs Gunrock ==");
    println!("paper shape: GRAPE ≈3.3× both on average (≤9.5×/9.9×)\n");
    let devices = 2;
    let lanes = workers() / 2;
    let mut t = TablePrinter::new(&["dataset", "GRAPE-GPU", "Groute", "Gunrock"]);
    for abbr in DATASETS {
        let (n, edges) = load(abbr, scale);
        let csr = Csr::from_edges(n, &edges);
        let cluster = GpuCluster::new(devices, lanes);
        let (tg, rg) = time_it(3, || pagerank_gpu(&cluster, n, &csr, 0.85, PR_ITERS));
        let groute = GrouteEngine::new(devices, lanes);
        let (tr, _) = time_it(3, || groute.pagerank(n, &csr, 0.85, 1e-10));
        let gunrock = GunrockEngine::new(devices, lanes);
        let (tk, rk) = time_it(3, || gunrock.pagerank(n, &csr, 0.85, PR_ITERS));
        for (a, b) in rg.iter().zip(&rk) {
            assert!((a - b).abs() < 1e-9);
        }
        t.row(vec![
            abbr.to_string(),
            fmt_duration(tg),
            fmt_duration(tr),
            fmt_duration(tk),
        ]);
    }
    t.print();
}

/// Fig. 7(k): BFS, simulated-GPU systems.
pub fn fig7k(scale: f64) {
    println!("== Fig 7(k): BFS (GPU-sim) — GRAPE-GPU vs Groute vs Gunrock ==");
    println!("paper shape: GRAPE fastest via edge-balanced mapping + stealing\n");
    let devices = 2;
    let lanes = workers() / 2;
    let mut t = TablePrinter::new(&["dataset", "GRAPE-GPU", "Groute", "Gunrock"]);
    for abbr in DATASETS {
        let (n, edges) = load(abbr, scale);
        let csr = Csr::from_edges(n, &edges);
        let src = VId(0);
        let cluster = GpuCluster::new(devices, lanes);
        let (tg, rg) = time_it(3, || bfs_gpu(&cluster, n, &csr, src));
        let groute = GrouteEngine::new(devices, lanes);
        let (tr, rr) = time_it(3, || groute.bfs(n, &csr, src));
        let gunrock = GunrockEngine::new(devices, lanes);
        let (tk, rk) = time_it(3, || gunrock.bfs(n, &csr, src));
        assert_eq!(rg, rr);
        assert_eq!(rg, rk);
        t.row(vec![
            abbr.to_string(),
            fmt_duration(tg),
            fmt_duration(tr),
            fmt_duration(tk),
        ]);
    }
    t.print();
}
