/root/repo/target/debug/deps/gs_vineyard-452dfe6c3f43b54d.d: crates/gs-vineyard/src/lib.rs

/root/repo/target/debug/deps/gs_vineyard-452dfe6c3f43b54d: crates/gs-vineyard/src/lib.rs

crates/gs-vineyard/src/lib.rs:
