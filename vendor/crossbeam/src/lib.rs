//! Minimal in-tree replacement for the `crossbeam` facade crate.
//!
//! Provides the three pieces the workspace uses:
//!
//! * [`thread::scope`] — scoped threads, backed by `std::thread::scope`.
//!   Spawn closures receive a placeholder argument (crossbeam passes the
//!   scope for nested spawns; the workspace never uses it).
//! * [`channel`] — MPMC channels (`bounded`/`unbounded`) with cloneable
//!   senders *and* receivers, built on a mutex + condvar queue.
//! * [`deque`] — the [`deque::Injector`] FIFO with a [`deque::Steal`]
//!   result, used by the simulated-GPU work-stealing schedulers.

pub mod channel;
pub mod deque;
pub mod thread;
