//! Tracked MPMC channels with crossbeam semantics. [`unbounded`] /
//! [`bounded`] mirror `crossbeam::channel`, adding a site label. Under
//! `sanitize` every message carries the sender's vector clock (the
//! happens-before edge a channel provides) and the wrappers maintain the
//! liveness counters behind `S003`–`S005` and `W201`; without it they are
//! inlined pass-throughs.

pub use crossbeam::channel::{RecvError, RecvTimeoutError, SendError, TryRecvError};

// =====================================================================
// sanitize: tracked implementation
// =====================================================================

#[cfg(feature = "sanitize")]
mod imp {
    use super::{RecvError, RecvTimeoutError, SendError, TryRecvError};
    use crate::state::{self, ChanInfo};
    use std::sync::atomic::Ordering;
    use std::sync::Arc;
    use std::time::Duration;

    /// A message plus the sender's clock snapshot.
    pub(super) struct Env<T> {
        v: T,
        vc: state::Vc,
    }

    /// The sending half of a tracked channel; cloneable.
    pub struct TrackedSender<T> {
        inner: crossbeam::channel::Sender<Env<T>>,
        info: Arc<ChanInfo>,
        site: &'static str,
    }

    /// The receiving half of a tracked channel; cloneable (MPMC).
    pub struct TrackedReceiver<T> {
        inner: crossbeam::channel::Receiver<Env<T>>,
        info: Arc<ChanInfo>,
        site: &'static str,
    }

    fn make<T>(site: &'static str, cap: Option<usize>) -> (TrackedSender<T>, TrackedReceiver<T>) {
        let (tx, rx) = match cap {
            Some(c) => crossbeam::channel::bounded(c),
            None => crossbeam::channel::unbounded(),
        };
        let info = Arc::new(ChanInfo {
            label: site,
            bounded: cap,
            len: 0.into(),
            hwm: 0.into(),
            receivers: 1.into(),
            receiving: 0.into(),
        });
        state::register_channel(&info);
        (
            TrackedSender {
                inner: tx,
                info: Arc::clone(&info),
                site,
            },
            TrackedReceiver {
                inner: rx,
                info,
                site,
            },
        )
    }

    /// An unbounded tracked channel labelled `site`.
    pub fn unbounded<T>(site: &'static str) -> (TrackedSender<T>, TrackedReceiver<T>) {
        make(site, None)
    }

    /// A bounded tracked channel labelled `site` (capacity ≥ 1).
    pub fn bounded<T>(site: &'static str, cap: usize) -> (TrackedSender<T>, TrackedReceiver<T>) {
        make(site, Some(cap.max(1)))
    }

    impl<T> TrackedSender<T> {
        /// Sends a message, blocking under back-pressure. A send on a
        /// disconnected channel records `S003` and returns the error.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let vc = state::on_send(self.site);
            match self.inner.send(Env { v: value, vc }) {
                Ok(()) => {
                    let len = self.info.len.fetch_add(1, Ordering::SeqCst) + 1;
                    self.info.hwm.fetch_max(len.max(0) as u64, Ordering::SeqCst);
                    Ok(())
                }
                Err(SendError(env)) => {
                    state::on_send_disconnected(self.site);
                    Err(SendError(env.v))
                }
            }
        }
    }

    impl<T> Clone for TrackedSender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
                info: Arc::clone(&self.info),
                site: self.site,
            }
        }
    }

    impl<T> TrackedReceiver<T> {
        /// Blocks until a message arrives, joining the sender's clock.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.info.receiving.fetch_add(1, Ordering::SeqCst);
            let r = self.inner.recv();
            self.info.receiving.fetch_sub(1, Ordering::SeqCst);
            match r {
                Ok(env) => {
                    self.info.len.fetch_sub(1, Ordering::SeqCst);
                    state::on_recv(&env.vc, self.site);
                    Ok(env.v)
                }
                Err(e) => Err(e),
            }
        }

        /// Blocks until a message arrives or `timeout` elapses, joining the
        /// sender's clock on delivery.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.info.receiving.fetch_add(1, Ordering::SeqCst);
            let r = self.inner.recv_timeout(timeout);
            self.info.receiving.fetch_sub(1, Ordering::SeqCst);
            match r {
                Ok(env) => {
                    self.info.len.fetch_sub(1, Ordering::SeqCst);
                    state::on_recv(&env.vc, self.site);
                    Ok(env.v)
                }
                Err(e) => Err(e),
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            match self.inner.try_recv() {
                Ok(env) => {
                    self.info.len.fetch_sub(1, Ordering::SeqCst);
                    state::on_recv(&env.vc, self.site);
                    Ok(env.v)
                }
                Err(e) => Err(e),
            }
        }

        /// Messages queued right now (as tracked by the wrappers).
        pub fn len(&self) -> usize {
            self.info.len.load(Ordering::SeqCst).max(0) as usize
        }

        /// Whether the queue is empty right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator that ends on disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for TrackedReceiver<T> {
        fn clone(&self) -> Self {
            self.info.receivers.fetch_add(1, Ordering::SeqCst);
            Self {
                inner: self.inner.clone(),
                info: Arc::clone(&self.info),
                site: self.site,
            }
        }
    }

    impl<T> Drop for TrackedReceiver<T> {
        fn drop(&mut self) {
            if self.info.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                let queued = self.info.len.load(Ordering::SeqCst);
                let hwm = self.info.hwm.load(Ordering::SeqCst);
                state::on_receiver_gone(self.site, queued, hwm, self.info.bounded.is_some());
            }
        }
    }

    /// Borrowing blocking iterator.
    pub struct Iter<'a, T> {
        rx: &'a TrackedReceiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Owning blocking iterator.
    pub struct IntoIter<T> {
        rx: TrackedReceiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for TrackedReceiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a TrackedReceiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

// =====================================================================
// default: zero-cost pass-throughs
// =====================================================================

#[cfg(not(feature = "sanitize"))]
mod imp {
    use super::{RecvError, RecvTimeoutError, SendError, TryRecvError};
    use std::time::Duration;

    /// Pass-through sending half (the `sanitize` feature is off).
    pub struct TrackedSender<T> {
        inner: crossbeam::channel::Sender<T>,
    }

    /// Pass-through receiving half (the `sanitize` feature is off).
    pub struct TrackedReceiver<T> {
        inner: crossbeam::channel::Receiver<T>,
    }

    /// An unbounded channel; `site` is ignored in pass-through builds.
    #[inline]
    pub fn unbounded<T>(_site: &'static str) -> (TrackedSender<T>, TrackedReceiver<T>) {
        let (tx, rx) = crossbeam::channel::unbounded();
        (TrackedSender { inner: tx }, TrackedReceiver { inner: rx })
    }

    /// A bounded channel; `site` is ignored in pass-through builds.
    #[inline]
    pub fn bounded<T>(_site: &'static str, cap: usize) -> (TrackedSender<T>, TrackedReceiver<T>) {
        let (tx, rx) = crossbeam::channel::bounded(cap);
        (TrackedSender { inner: tx }, TrackedReceiver { inner: rx })
    }

    impl<T> TrackedSender<T> {
        /// Sends a message, blocking under back-pressure.
        #[inline]
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    impl<T> Clone for TrackedSender<T> {
        #[inline]
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> TrackedReceiver<T> {
        /// Blocks until a message arrives or the channel disconnects.
        #[inline]
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Blocks until a message arrives or `timeout` elapses.
        #[inline]
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        #[inline]
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Messages queued right now.
        #[inline]
        pub fn len(&self) -> usize {
            self.inner.len()
        }

        /// Whether the queue is empty right now.
        #[inline]
        pub fn is_empty(&self) -> bool {
            self.inner.is_empty()
        }

        /// Blocking iterator that ends on disconnect.
        #[inline]
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for TrackedReceiver<T> {
        #[inline]
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    /// Borrowing blocking iterator.
    pub struct Iter<'a, T> {
        rx: &'a TrackedReceiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Owning blocking iterator.
    pub struct IntoIter<T> {
        rx: TrackedReceiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for TrackedReceiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a TrackedReceiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

pub use imp::{bounded, unbounded, IntoIter, Iter, TrackedReceiver, TrackedSender};
