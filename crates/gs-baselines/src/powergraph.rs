//! PowerGraph design replica (Fig. 7h/7i CPU comparator).
//!
//! PowerGraph [OSDI'12]: vertex-cut partitioning (edges assigned to
//! workers; vertices replicated as mirrors wherever their edges live) and
//! the Gather-Apply-Scatter abstraction. The performance-relevant design
//! choices reproduced here, which GRAPE's aggregated buffers avoid:
//!
//! * per-edge gather results travel as *individual heap-allocated message
//!   values* through channels (no buffer aggregation, no varint packing);
//! * every superstep synchronises mirrors with the master — one message per
//!   (vertex, replica) pair in each direction;
//! * mirror state lives in hash maps rather than dense arrays.

use crossbeam::channel::{unbounded, Receiver, Sender};
use gs_graph::VId;
use std::collections::HashMap;

/// A gather/scatter message (boxed payload mimics the per-message
/// allocation of the original's serialized RPC objects).
enum GasMsg {
    /// Partial gather value for a master vertex.
    Gather(VId, Box<f64>),
    /// New vertex value broadcast to a mirror. The payload is never read —
    /// the message exists to charge the design's mirror-sync traffic.
    #[allow(dead_code)]
    Sync(VId, Box<f64>),
    /// End-of-phase marker from one worker.
    Done,
}

/// The vertex-cut GAS engine.
pub struct PowerGraphEngine {
    n: usize,
    workers: usize,
    /// Per-worker edge sets (vertex-cut: edges hashed to workers).
    worker_edges: Vec<Vec<(VId, VId)>>,
    /// Master assignment of each vertex.
    master_of: Vec<usize>,
}

impl PowerGraphEngine {
    /// Partitions by random vertex-cut across `workers`.
    pub fn new(n: usize, edges: &[(VId, VId)], workers: usize) -> Self {
        let workers = workers.max(1);
        let mut worker_edges: Vec<Vec<(VId, VId)>> = vec![Vec::new(); workers];
        for &(s, d) in edges {
            let h = (s.0.wrapping_mul(0x9E37_79B9).wrapping_add(d.0)) as usize % workers;
            worker_edges[h].push((s, d));
        }
        let master_of = (0..n).map(|v| (v.wrapping_mul(31)) % workers).collect();
        Self {
            n,
            workers,
            worker_edges,
            master_of,
        }
    }

    /// GAS PageRank.
    pub fn pagerank(&self, damping: f64, iters: usize) -> Vec<f64> {
        let n = self.n;
        // out-degrees (global, replicated — PowerGraph keeps degree at all
        // replicas)
        let mut degree = vec![0u64; n];
        for we in &self.worker_edges {
            for &(s, _) in we {
                degree[s.index()] += 1;
            }
        }
        let mut rank = vec![1.0 / n as f64; n];
        let channels: Vec<(Sender<GasMsg>, Receiver<GasMsg>)> =
            (0..self.workers).map(|_| unbounded()).collect();
        let senders: Vec<Sender<GasMsg>> = channels.iter().map(|(s, _)| s.clone()).collect();

        for _ in 0..iters {
            // ---- gather phase: per-edge messages to the master's worker
            let mut acc: Vec<HashMap<VId, f64>> =
                (0..self.workers).map(|_| HashMap::new()).collect();
            crossbeam::thread::scope(|s| {
                // workers emit one Gather message per edge
                for w in 0..self.workers {
                    let edges = &self.worker_edges[w];
                    let senders = senders.clone();
                    let rank = &rank;
                    let degree = &degree;
                    let master_of = &self.master_of;
                    s.spawn(move |_| {
                        for &(src, dst) in edges {
                            let share = if degree[src.index()] > 0 {
                                rank[src.index()] / degree[src.index()] as f64
                            } else {
                                0.0
                            };
                            let m = master_of[dst.index()];
                            // a closed channel means an accumulator died and
                            // the scope is unwinding — exit, the join surfaces
                            // the real panic
                            if senders[m]
                                .send(GasMsg::Gather(dst, Box::new(share)))
                                .is_err()
                            {
                                return;
                            }
                        }
                        for tx in &senders {
                            let _ = tx.send(GasMsg::Done);
                        }
                    });
                }
                // masters accumulate
                for (w, slot) in acc.iter_mut().enumerate() {
                    let rx = &channels[w].1;
                    let workers = self.workers;
                    s.spawn(move |_| {
                        let mut done = 0;
                        while done < workers {
                            // disconnect = every sender died; stop instead of
                            // panicking on top of their panic
                            let Ok(msg) = rx.recv() else { break };
                            match msg {
                                GasMsg::Gather(v, share) => {
                                    *slot.entry(v).or_insert(0.0) += *share;
                                }
                                GasMsg::Done => done += 1,
                                GasMsg::Sync(..) => unreachable!("no syncs in gather"),
                            }
                        }
                    });
                }
            })
            .expect("powergraph gather scope");

            // ---- apply phase (masters) + dangling handling
            let mut dangling = 0.0;
            for v in 0..n {
                if degree[v] == 0 {
                    dangling += rank[v];
                }
            }
            let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
            let mut next = vec![base; n];
            for (w, slot) in acc.into_iter().enumerate() {
                let _ = w;
                for (v, sum) in slot {
                    next[v.index()] += damping * sum;
                }
            }
            // ---- scatter/sync phase: one message per (vertex, mirror)
            // (simulated: masters write the shared array, mirrors "receive"
            // sync messages whose cost we pay by sending them)
            crossbeam::thread::scope(|s| {
                for w in 0..self.workers {
                    let edges = &self.worker_edges[w];
                    let senders = senders.clone();
                    let master_of = &self.master_of;
                    s.spawn(move |_| {
                        let mut mirrored: std::collections::HashSet<VId> =
                            std::collections::HashSet::new();
                        for &(s_, d) in edges {
                            for v in [s_, d] {
                                if master_of[v.index()] != w
                                    && mirrored.insert(v)
                                    && senders[w].send(GasMsg::Sync(v, Box::new(0.0))).is_err()
                                {
                                    return;
                                }
                            }
                        }
                        let _ = senders[w].send(GasMsg::Done);
                    });
                }
                for (_, rx) in &channels {
                    s.spawn(move |_| {
                        let mut done = 0;
                        while done < 1 {
                            match rx.recv() {
                                Ok(GasMsg::Done) => done += 1,
                                Ok(_) => {}
                                Err(_) => break,
                            }
                        }
                    });
                }
            })
            .expect("powergraph sync scope");
            rank = next;
        }
        rank
    }

    /// GAS BFS (min-depth gather).
    pub fn bfs(&self, src: VId) -> Vec<u64> {
        let n = self.n;
        let mut depth = vec![u64::MAX; n];
        depth[src.index()] = 0;
        let mut frontier: Vec<VId> = vec![src];
        let mut level = 0u64;
        while !frontier.is_empty() {
            // scatter per edge through per-message channel sends
            let (tx, rx) = unbounded::<(VId, Box<u64>)>();
            crossbeam::thread::scope(|s| {
                for w in 0..self.workers {
                    let edges = &self.worker_edges[w];
                    let tx = tx.clone();
                    let frontier: std::collections::HashSet<VId> =
                        frontier.iter().copied().collect();
                    s.spawn(move |_| {
                        for &(src_, dst) in edges {
                            if frontier.contains(&src_)
                                && tx.send((dst, Box::new(level + 1))).is_err()
                            {
                                return;
                            }
                        }
                    });
                }
                drop(tx);
            })
            .expect("powergraph bfs scope");
            let mut next = Vec::new();
            for (v, d) in rx {
                if depth[v.index()] == u64::MAX {
                    depth[v.index()] = *d;
                    next.push(v);
                }
            }
            frontier = next;
            level += 1;
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_edges(n: u64, m: usize, seed: u64) -> Vec<(VId, VId)> {
        use rand::Rng;
        let mut rng = rand_pcg::Pcg64Mcg::new(seed as u128);
        (0..m)
            .map(|_| (VId(rng.gen_range(0..n)), VId(rng.gen_range(0..n))))
            .collect()
    }

    #[test]
    fn pagerank_matches_reference() {
        let edges = random_edges(100, 400, 1);
        let pg = PowerGraphEngine::new(100, &edges, 3);
        let got = pg.pagerank(0.85, 15);
        let want = reference_pagerank(100, &edges, 0.85, 15);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn bfs_matches_reference() {
        let edges = random_edges(150, 500, 2);
        let pg = PowerGraphEngine::new(150, &edges, 4);
        assert_eq!(pg.bfs(VId(0)), reference_bfs(150, &edges, VId(0)));
    }

    // local reference copies (keep the baseline crate self-contained)
    fn reference_pagerank(n: usize, edges: &[(VId, VId)], d: f64, iters: usize) -> Vec<f64> {
        let g = gs_graph::Csr::from_edges(n, edges);
        let mut rank = vec![1.0 / n as f64; n];
        for _ in 0..iters {
            let mut next = vec![0.0; n];
            let mut dangling = 0.0;
            for (v, &rv) in rank.iter().enumerate() {
                let deg = g.degree(VId(v as u64));
                if deg == 0 {
                    dangling += rv;
                    continue;
                }
                let share = rv / deg as f64;
                for &w in g.neighbors(VId(v as u64)) {
                    next[w.index()] += share;
                }
            }
            let base = (1.0 - d) / n as f64 + d * dangling / n as f64;
            for x in next.iter_mut() {
                *x = base + d * *x;
            }
            rank = next;
        }
        rank
    }

    fn reference_bfs(n: usize, edges: &[(VId, VId)], src: VId) -> Vec<u64> {
        let g = gs_graph::Csr::from_edges(n, edges);
        let mut depth = vec![u64::MAX; n];
        let mut q = std::collections::VecDeque::new();
        depth[src.index()] = 0;
        q.push_back(src);
        while let Some(v) = q.pop_front() {
            for &w in g.neighbors(v) {
                if depth[w.index()] == u64::MAX {
                    depth[w.index()] = depth[v.index()] + 1;
                    q.push_back(w);
                }
            }
        }
        depth
    }
}
