//! Per-procedure circuit breaker: Closed → Open on consecutive transport
//! failures, Open → HalfOpen after a cooldown, HalfOpen → Closed on the
//! first success (or straight back to Open on failure).
//!
//! Time is passed in explicitly (`Instant` arguments) so the state machine
//! is unit-testable with a synthetic clock; callers in the serving path
//! just pass `Instant::now()`.

use std::time::{Duration, Instant};

/// Breaker tuning: how many consecutive failures open the circuit and how
/// long it stays open before probing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    pub failure_threshold: u32,
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 5,
            cooldown: Duration::from_millis(250),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Closed,
    Open { until: Instant },
    HalfOpen,
}

/// The breaker state machine for one procedure.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: State,
    consecutive_failures: u32,
}

impl CircuitBreaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            state: State::Closed,
            consecutive_failures: 0,
        }
    }

    /// Whether a call may proceed at `now`. An expired Open circuit flips
    /// to HalfOpen and admits the probe.
    pub fn allow(&mut self, now: Instant) -> bool {
        match self.state {
            State::Closed | State::HalfOpen => true,
            State::Open { until } => {
                if now >= until {
                    self.state = State::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful call: closes the circuit.
    pub fn on_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = State::Closed;
    }

    /// Records a transport-level failure at `now`. A HalfOpen probe
    /// failure reopens immediately; otherwise the circuit opens once the
    /// consecutive-failure threshold is reached.
    pub fn on_failure(&mut self, now: Instant) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let reopen = matches!(self.state, State::HalfOpen)
            || self.consecutive_failures >= self.cfg.failure_threshold;
        if reopen {
            self.state = State::Open {
                until: now + self.cfg.cooldown,
            };
            self.consecutive_failures = 0;
        }
    }

    /// Whether the circuit is open (rejecting calls) at `now`.
    pub fn is_open(&self, now: Instant) -> bool {
        matches!(self.state, State::Open { until } if now < until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(100),
        }
    }

    #[test]
    fn opens_after_threshold_and_recovers_via_half_open() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(cfg());
        assert!(b.allow(t0));
        b.on_failure(t0);
        b.on_failure(t0);
        assert!(b.allow(t0), "below threshold stays closed");
        b.on_failure(t0);
        assert!(b.is_open(t0), "third consecutive failure opens");
        assert!(!b.allow(t0));
        // still open mid-cooldown
        assert!(!b.allow(t0 + Duration::from_millis(50)));
        // cooldown elapsed: half-open probe admitted
        let t1 = t0 + Duration::from_millis(100);
        assert!(b.allow(t1));
        b.on_success();
        assert!(b.allow(t1), "success closes the circuit");
        assert!(!b.is_open(t1));
    }

    #[test]
    fn half_open_probe_failure_reopens_immediately() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let t1 = t0 + Duration::from_millis(100);
        assert!(b.allow(t1), "probe admitted");
        b.on_failure(t1);
        assert!(b.is_open(t1), "one probe failure reopens");
        assert!(!b.allow(t1 + Duration::from_millis(99)));
        assert!(b.allow(t1 + Duration::from_millis(100)));
    }

    #[test]
    fn successes_reset_the_failure_streak() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(cfg());
        b.on_failure(t0);
        b.on_failure(t0);
        b.on_success();
        b.on_failure(t0);
        b.on_failure(t0);
        assert!(b.allow(t0), "streak was reset; circuit stays closed");
    }
}
