/root/repo/target/release/deps/gs_baselines-49cd9a6018a637d8.d: crates/gs-baselines/src/lib.rs crates/gs-baselines/src/gemini.rs crates/gs-baselines/src/gpu_baselines.rs crates/gs-baselines/src/livegraph.rs crates/gs-baselines/src/powergraph.rs crates/gs-baselines/src/sqlengine.rs crates/gs-baselines/src/tugraph.rs

/root/repo/target/release/deps/libgs_baselines-49cd9a6018a637d8.rlib: crates/gs-baselines/src/lib.rs crates/gs-baselines/src/gemini.rs crates/gs-baselines/src/gpu_baselines.rs crates/gs-baselines/src/livegraph.rs crates/gs-baselines/src/powergraph.rs crates/gs-baselines/src/sqlengine.rs crates/gs-baselines/src/tugraph.rs

/root/repo/target/release/deps/libgs_baselines-49cd9a6018a637d8.rmeta: crates/gs-baselines/src/lib.rs crates/gs-baselines/src/gemini.rs crates/gs-baselines/src/gpu_baselines.rs crates/gs-baselines/src/livegraph.rs crates/gs-baselines/src/powergraph.rs crates/gs-baselines/src/sqlengine.rs crates/gs-baselines/src/tugraph.rs

crates/gs-baselines/src/lib.rs:
crates/gs-baselines/src/gemini.rs:
crates/gs-baselines/src/gpu_baselines.rs:
crates/gs-baselines/src/livegraph.rs:
crates/gs-baselines/src/powergraph.rs:
crates/gs-baselines/src/sqlengine.rs:
crates/gs-baselines/src/tugraph.rs:
