//! Shared tokenizer for the Gremlin and Cypher front-ends.

use gs_graph::{GraphError, Result};

/// One token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Identifier or keyword (case preserved; Cypher keywords matched
    /// case-insensitively by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single- or double-quoted string literal (quotes stripped).
    Str(String),
    /// A `$name` parameter reference.
    Param(String),
    // punctuation
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Dot,
    Colon,
    Semicolon,
    Plus,
    Minus,
    Star,
    Slash,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    /// `<>` (Cypher not-equals).
    Ne,
    /// `->`
    ArrowRight,
    /// `<-`
    ArrowLeft,
    /// `=~` is unsupported; kept out intentionally.
    Eof,
}

/// Tokenizes an input string. `//`-comments and `/* */` are stripped.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let b: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                i += 2;
                while i + 1 < b.len() && !(b[i] == '*' && b[i + 1] == '/') {
                    i += 1;
                }
                i = (i + 2).min(b.len());
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            '{' => {
                out.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Token::RBrace);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            ':' => {
                out.push(Token::Colon);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '-' => {
                if b.get(i + 1) == Some(&'>') {
                    out.push(Token::ArrowRight);
                    i += 2;
                } else {
                    out.push(Token::Minus);
                    i += 1;
                }
            }
            '<' => match b.get(i + 1) {
                Some('=') => {
                    out.push(Token::Le);
                    i += 2;
                }
                Some('>') => {
                    out.push(Token::Ne);
                    i += 2;
                }
                Some('-') => {
                    out.push(Token::ArrowLeft);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if b.get(i + 1) == Some(&'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '=' => {
                if b.get(i + 1) == Some(&'=') {
                    // tolerate `==`
                    out.push(Token::Eq);
                    i += 2;
                } else {
                    out.push(Token::Eq);
                    i += 1;
                }
            }
            '!' if b.get(i + 1) == Some(&'=') => {
                out.push(Token::Ne);
                i += 2;
            }
            '$' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                if j == start {
                    return Err(GraphError::Query("empty parameter name".into()));
                }
                out.push(Token::Param(b[start..j].iter().collect()));
                i = j;
            }
            '\'' | '"' => {
                let quote = c;
                let mut j = i + 1;
                let mut s = String::new();
                while j < b.len() && b[j] != quote {
                    if b[j] == '\\' && j + 1 < b.len() {
                        s.push(b[j + 1]);
                        j += 2;
                    } else {
                        s.push(b[j]);
                        j += 1;
                    }
                }
                if j >= b.len() {
                    return Err(GraphError::Query("unterminated string literal".into()));
                }
                out.push(Token::Str(s));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                let mut is_float = false;
                while j < b.len() && (b[j].is_ascii_digit() || b[j] == '.' || b[j] == '_') {
                    // a `.` only belongs to the number if a digit follows
                    if b[j] == '.' {
                        if j + 1 < b.len() && b[j + 1].is_ascii_digit() && !is_float {
                            is_float = true;
                        } else {
                            break;
                        }
                    }
                    j += 1;
                }
                let text: String = b[start..j].iter().filter(|&&c| c != '_').collect();
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| {
                        GraphError::Query(format!("bad float literal {text}"))
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| {
                        GraphError::Query(format!("bad int literal {text}"))
                    })?));
                }
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                out.push(Token::Ident(b[start..j].iter().collect()));
                i = j;
            }
            other => return Err(GraphError::Query(format!("unexpected character `{other}`"))),
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

/// Cursor over a token stream with the helpers both parsers use.
pub struct Cursor {
    tokens: Vec<Token>,
    pos: usize,
}

impl Cursor {
    pub fn new(tokens: Vec<Token>) -> Self {
        Self { tokens, pos: 0 }
    }

    pub fn peek(&self) -> &Token {
        self.tokens.get(self.pos).unwrap_or(&Token::Eof)
    }

    pub fn peek2(&self) -> &Token {
        self.tokens.get(self.pos + 1).unwrap_or(&Token::Eof)
    }

    // not an Iterator: yields Token::Eof forever instead of None, which is
    // what the recursive-descent parser wants at end of input
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Token {
        let t = self.peek().clone();
        self.pos += 1;
        t
    }

    pub fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    pub fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(GraphError::Query(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    /// Consumes an identifier (any case).
    pub fn ident(&mut self) -> Result<String> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            other => Err(GraphError::Query(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    /// Matches a case-insensitive keyword without consuming on failure.
    pub fn eat_kw(&mut self, kw: &str) -> bool {
        if let Token::Ident(s) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// Whether the next token is the given keyword.
    pub fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    pub fn at_eof(&self) -> bool {
        matches!(self.peek(), Token::Eof)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_cypher_fragment() {
        let toks =
            tokenize("MATCH (v:Account{id:1})-[b:BUY]->(i) WHERE v.x <> 5 RETURN v").unwrap();
        assert!(toks.contains(&Token::Ident("MATCH".into())));
        assert!(toks.contains(&Token::ArrowRight));
        assert!(toks.contains(&Token::Ne));
        assert_eq!(*toks.last().unwrap(), Token::Eof);
    }

    #[test]
    fn numbers_and_strings() {
        let toks = tokenize("1 2.5 'a b' \"c\\\"d\" 1_000").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(1),
                Token::Float(2.5),
                Token::Str("a b".into()),
                Token::Str("c\"d".into()),
                Token::Int(1000),
                Token::Eof
            ]
        );
    }

    #[test]
    fn dot_after_int_is_method_call_not_float() {
        // Gremlin: limit(1).count() — the `.` must not glue to the 1
        let toks = tokenize("g.V().limit(1).count()").unwrap();
        assert!(toks.contains(&Token::Int(1)));
        assert!(!toks.iter().any(|t| matches!(t, Token::Float(_))));
    }

    #[test]
    fn comments_stripped() {
        let toks = tokenize("a // line\n b /* block */ c").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Ident("c".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn params_and_errors() {
        let toks = tokenize("$seeds").unwrap();
        assert_eq!(toks[0], Token::Param("seeds".into()));
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("§").is_err());
    }

    #[test]
    fn cursor_keywords_case_insensitive() {
        let mut c = Cursor::new(tokenize("match RETURN").unwrap());
        assert!(c.eat_kw("MATCH"));
        assert!(c.peek_kw("return"));
    }
}
