//! The telemetry-name registry, extracted from DESIGN.md's tables.
//!
//! DESIGN.md documents every metric key the stack emits in markdown
//! tables (the "What each layer reports" matrix and the per-subsystem
//! rows added by later PRs). This module parses those tables into a
//! machine-readable registry so L004 and the docs can never drift: a
//! name used in code but absent from DESIGN.md is a lint error, and the
//! registry is re-derived from the document on every run rather than
//! committed as a second copy that could rot.
//!
//! Extraction rule: from every markdown table row (a line starting with
//! `|`), take each `` `backticked` `` span that looks like a metric key —
//! lowercase dotted segments, optionally with a `{field}` template suffix
//! (`gaia.records{op}`) marking keys that carry dynamic fields.

use std::collections::BTreeMap;

/// One documented metric name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegistryEntry {
    /// Base name without any `{...}` template (`gaia.records`).
    pub base: String,
    /// True if the docs show a `{field}` template (dynamic fields).
    pub templated: bool,
}

/// The set of documented names, keyed by base name.
#[derive(Clone, Debug, Default)]
pub struct TelemetryRegistry {
    entries: BTreeMap<String, RegistryEntry>,
}

impl TelemetryRegistry {
    /// Extracts the registry from DESIGN.md markdown text.
    pub fn from_design_md(text: &str) -> Self {
        let mut entries = BTreeMap::new();
        for line in text.lines() {
            let trimmed = line.trim_start();
            if !trimmed.starts_with('|') {
                continue;
            }
            for span in backtick_spans(trimmed) {
                if let Some(entry) = parse_metric_name(span) {
                    entries
                        .entry(entry.base.clone())
                        .and_modify(|e: &mut RegistryEntry| e.templated |= entry.templated)
                        .or_insert(entry);
                }
            }
        }
        Self { entries }
    }

    /// Is `base` a documented name? (Template fields are matched by base.)
    pub fn contains(&self, base: &str) -> bool {
        self.entries.contains_key(base)
    }

    /// Documented entry for `base`, if any.
    pub fn get(&self, base: &str) -> Option<&RegistryEntry> {
        self.entries.get(base)
    }

    /// Number of documented names.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no names were extracted (a broken DESIGN.md — callers
    /// should treat this as a configuration error, not "all clean").
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All base names, sorted (for the machine-readable dump).
    pub fn names(&self) -> impl Iterator<Item = &RegistryEntry> {
        self.entries.values()
    }
}

/// Yields the contents of `` `...` `` spans in a line.
fn backtick_spans(line: &str) -> impl Iterator<Item = &str> {
    let mut rest = line;
    std::iter::from_fn(move || {
        let start = rest.find('`')?;
        let tail = &rest[start + 1..];
        let end = tail.find('`')?;
        let span = &tail[..end];
        rest = &tail[end + 1..];
        Some(span)
    })
}

/// `layer.noun[.verb...]` with optional `{fields}` → entry; else None.
fn parse_metric_name(span: &str) -> Option<RegistryEntry> {
    let (base, templated) = match span.find('{') {
        Some(i) => {
            if !span.ends_with('}') {
                return None;
            }
            (&span[..i], true)
        }
        None => (span, false),
    };
    if !is_metric_base(base) {
        return None;
    }
    Some(RegistryEntry {
        base: base.to_string(),
        templated,
    })
}

/// Validates the `layer.noun[.verb]` convention: 2–4 lowercase
/// `[a-z][a-z0-9_]*` segments joined by dots.
pub fn is_metric_base(base: &str) -> bool {
    let segs: Vec<&str> = base.split('.').collect();
    if !(2..=4).contains(&segs.len()) {
        return false;
    }
    segs.iter().all(|s| {
        let mut chars = s.chars();
        matches!(chars.next(), Some(c) if c.is_ascii_lowercase())
            && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "\
Some prose mentioning `not.in.a.table.too.long` outside tables.\n\
| Layer | Spans | Counters |\n\
|---|---|---|\n\
| Gaia | `gaia.query` / `gaia.segment{idx}` | `gaia.records{op}`, `gaia.exchange_stall_ns` |\n\
| GRAPE | — | `grape.msg_bytes_raw` / `grape.msg_bytes_encoded` |\n\
| misc | `NotAMetric`, `gs-flex::fraud`, `snake_only` | `hiactor.proc_ns{name}` |\n";

    #[test]
    fn extracts_only_table_metric_names() {
        let r = TelemetryRegistry::from_design_md(DOC);
        assert!(r.contains("gaia.query"));
        assert!(r.contains("gaia.records"));
        assert!(r.get("gaia.records").unwrap().templated);
        assert!(!r.get("gaia.query").unwrap().templated);
        assert!(r.contains("grape.msg_bytes_raw"));
        assert!(r.contains("hiactor.proc_ns"));
        assert!(!r.contains("NotAMetric"));
        assert!(!r.contains("snake_only"));
        assert!(!r.contains("gs-flex::fraud"));
        // prose (non-table) lines are ignored even when they look dotted
        assert!(!r.contains("not.in.a.table.too.long"));
    }

    #[test]
    fn convention_check() {
        assert!(is_metric_base("gaia.records"));
        assert!(is_metric_base("serve.plan_cache.hit"));
        assert!(is_metric_base("grape.recovery.checkpoints"));
        assert!(!is_metric_base("single"));
        assert!(!is_metric_base("Has.Upper"));
        assert!(!is_metric_base("a.b.c.d.e"));
        assert!(!is_metric_base("trailing."));
        assert!(!is_metric_base(".leading"));
    }
}
