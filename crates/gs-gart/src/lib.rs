//! # gs-gart — dynamic in-memory graph store with MVCC
//!
//! GART (paper §4.2) accommodates dynamic graphs: "GART always provides
//! consistent snapshots of graph data (identified by a version), and it
//! updates the graph with the version number write_version. ... GART employs
//! an efficient and mutable CSR-like data structure."
//!
//! The CSR-like structure here is a **pooled adjacency with version
//! fences**: each edge label keeps one large entry array; every vertex owns
//! a contiguous `(start, len, cap)` region that relocates with doubled
//! capacity when full (amortised O(1) appends). A region records the
//! maximum creation version it contains, so a snapshot whose version
//! dominates the fence scans the raw entries with *no per-edge version
//! checks* — that near-CSR layout plus the fence fast path is what closes
//! most of the gap to static CSR (the 73.5% in Fig. 7c), while the
//! LiveGraph baseline in `gs-baselines` pays per-entry version checks and
//! block pointer chasing.
//!
//! Concurrency model: single writer / many readers. Writers stage mutations
//! at `committed_version + 1` and publish with [`GartStore::commit`];
//! readers obtain a [`GartSnapshot`] pinned to a committed version and are
//! never blocked by the writer for more than a segment append.

use gs_graph::csr::Csr;
use gs_graph::data::PropertyGraphData;
use gs_graph::ids::IdMap;
use gs_graph::layout::{LayoutKind, TopologyLayout};
use gs_graph::props::PropertyTable;
use gs_grin::{
    AdjEntry, Capabilities, Direction, GraphError, GraphSchema, GrinGraph, LabelId, PropId, Result,
    VId, Value,
};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A snapshot version number.
pub type Version = u64;

/// One adjacency entry (24 bytes).
#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    nbr: VId,
    eid: gs_grin::EId,
    created: Version,
}

/// Per-vertex region descriptor into the shared entry pool.
#[derive(Clone, Copy, Debug, Default)]
struct VertexMeta {
    start: u32,
    len: u32,
    cap: u32,
    /// Version fence: every entry in the region was created at or before
    /// this version.
    max_created: Version,
    has_tombstone: bool,
}

/// GART's mutable CSR-like adjacency: one large entry pool per edge label
/// with per-vertex `(start, len, cap)` regions. Appends fill the region's
/// spare capacity; a full region relocates to the pool's end with doubled
/// capacity (amortised O(1); vacated space is reclaimed by offline
/// compaction). Scans read near-contiguous memory, which is what keeps GART
/// close to static CSR (Fig. 7c) while staying writable — the LiveGraph
/// baseline pays per-entry version checks and block pointer chasing instead.
#[derive(Clone, Debug, Default)]
struct AdjPool {
    entries: Vec<Entry>,
    meta: Vec<VertexMeta>,
    /// Tombstones: vertex -> (edge id, deletion version). Rare; fenced scans
    /// skip the lookup entirely for tombstone-free vertices.
    tombstones: std::collections::HashMap<u32, Vec<(gs_grin::EId, Version)>>,
}

impl AdjPool {
    fn ensure(&mut self, v: usize) {
        if self.meta.len() <= v {
            self.meta.resize(v + 1, VertexMeta::default());
        }
    }

    /// Grows a vertex's region to exactly `cap` slots (bulk loading and
    /// copy-on-grow share this relocation).
    fn reserve_exact(&mut self, v: usize, cap: u32) {
        self.ensure(v);
        let m = self.meta[v];
        if m.cap >= cap {
            return;
        }
        let new_start = self.entries.len() as u32;
        let (start, len) = (m.start as usize, m.len as usize);
        self.entries.extend_from_within(start..start + len);
        self.entries
            .resize(new_start as usize + cap as usize, Entry::default());
        let m = &mut self.meta[v];
        m.start = new_start;
        m.cap = cap;
    }

    fn push(&mut self, v: usize, nbr: VId, eid: gs_grin::EId, version: Version) {
        self.ensure(v);
        let m = self.meta[v];
        if m.len == m.cap {
            self.reserve_exact(v, (m.cap * 2).max(4));
        }
        let m = &mut self.meta[v];
        self.entries[(m.start + m.len) as usize] = Entry {
            nbr,
            eid,
            created: version,
        };
        m.len += 1;
        m.max_created = m.max_created.max(version);
    }

    fn add_tombstone(&mut self, v: usize, eid: gs_grin::EId, version: Version) {
        self.ensure(v);
        self.meta[v].has_tombstone = true;
        self.tombstones
            .entry(v as u32)
            .or_default()
            .push((eid, version));
    }

    /// Visits live entries of `v` at `version`; the version fence lets
    /// fully-old, tombstone-free regions scan raw.
    #[inline]
    fn for_each<F: FnMut(VId, gs_grin::EId)>(&self, v: usize, version: Version, f: &mut F) {
        // cached telemetry handles: this runs once per vertex in every scan,
        // so the enabled-check must stay one relaxed load
        static FENCE_SKIPS: gs_telemetry::StaticCounter =
            gs_telemetry::StaticCounter::new("gart.fence_skips");
        static VERSION_CHECK_SCANS: gs_telemetry::StaticCounter =
            gs_telemetry::StaticCounter::new("gart.version_check_scans");
        static TOMBSTONE_SCANS: gs_telemetry::StaticCounter =
            gs_telemetry::StaticCounter::new("gart.tombstone_scans");
        let Some(&m) = self.meta.get(v) else { return };
        let slice = &self.entries[m.start as usize..(m.start + m.len) as usize];
        if !m.has_tombstone {
            if m.max_created <= version {
                // every entry predates the snapshot: no per-edge check
                FENCE_SKIPS.add(1);
                for e in slice {
                    f(e.nbr, e.eid);
                }
            } else {
                VERSION_CHECK_SCANS.add(1);
                for e in slice {
                    if e.created <= version {
                        f(e.nbr, e.eid);
                    }
                }
            }
        } else {
            TOMBSTONE_SCANS.add(1);
            let tombs = self.tombstones.get(&(v as u32));
            for e in slice {
                let deleted = tombs
                    .map(|t| t.iter().any(|&(te, tv)| te == e.eid && tv <= version))
                    .unwrap_or(false);
                if e.created <= version && !deleted {
                    f(e.nbr, e.eid);
                }
            }
        }
    }

    fn vertex_count(&self) -> usize {
        self.meta.len()
    }
}

#[derive(Default)]
struct Inner {
    /// Per vertex label.
    id_maps: Vec<IdMap>,
    vprops: Vec<PropertyTable>,
    vertex_created: Vec<Vec<Version>>,
    /// Per edge label: pooled out-/in-adjacency.
    adj_out: Vec<AdjPool>,
    adj_in: Vec<AdjPool>,
    eprops: Vec<PropertyTable>,
    edge_counts: Vec<u64>,
}

/// The dynamic MVCC graph store.
pub struct GartStore {
    schema: GraphSchema,
    inner: RwLock<Inner>,
    committed: AtomicU64,
}

impl GartStore {
    /// Creates an empty store over a schema.
    pub fn new(schema: GraphSchema) -> Arc<Self> {
        let nvl = schema.vertex_label_count();
        let nel = schema.edge_label_count();
        let mut inner = Inner::default();
        for l in schema.vertex_labels() {
            let defs: Vec<(String, _)> = l
                .properties
                .iter()
                .map(|p| (p.name.clone(), p.value_type))
                .collect();
            inner.vprops.push(PropertyTable::new(&defs).unwrap());
        }
        inner.id_maps = (0..nvl).map(|_| IdMap::new()).collect();
        inner.vertex_created = (0..nvl).map(|_| Vec::new()).collect();
        for l in schema.edge_labels() {
            let defs: Vec<(String, _)> = l
                .properties
                .iter()
                .map(|p| (p.name.clone(), p.value_type))
                .collect();
            inner.eprops.push(PropertyTable::new(&defs).unwrap());
        }
        inner.adj_out = (0..nel).map(|_| AdjPool::default()).collect();
        inner.adj_in = (0..nel).map(|_| AdjPool::default()).collect();
        inner.edge_counts = vec![0; nel];
        Arc::new(Self {
            schema,
            inner: RwLock::new(inner),
            committed: AtomicU64::new(0),
        })
    }

    /// Builds a store pre-loaded from an interchange payload, committed at
    /// version 1.
    pub fn from_data(data: &PropertyGraphData) -> Result<Arc<Self>> {
        data.validate()?;
        let store = Self::new(data.schema.clone());
        for batch in &data.vertices {
            for (ext, props) in batch.external_ids.iter().zip(&batch.properties) {
                store.add_vertex(batch.label, *ext, props.clone())?;
            }
        }
        // Bulk load: pre-size every vertex's region exactly so the pooled
        // adjacency comes out contiguous in vertex order (the layout scans
        // want), then insert.
        {
            let mut g = store.inner.write();
            for (li, batch) in data.edges.iter().enumerate() {
                let ldef = data.schema.edge_label(batch.label)?;
                let mut out_deg: std::collections::HashMap<u32, u32> = Default::default();
                let mut in_deg: std::collections::HashMap<u32, u32> = Default::default();
                for &(s, d) in &batch.endpoints {
                    let si = g.id_maps[ldef.src.index()]
                        .internal(s)
                        .ok_or_else(|| GraphError::NotFound(format!("edge src {s}")))?;
                    let di = g.id_maps[ldef.dst.index()]
                        .internal(d)
                        .ok_or_else(|| GraphError::NotFound(format!("edge dst {d}")))?;
                    *out_deg.entry(si.0 as u32).or_insert(0) += 1;
                    *in_deg.entry(di.0 as u32).or_insert(0) += 1;
                }
                let src_n = g.id_maps[ldef.src.index()].len();
                let dst_n = g.id_maps[ldef.dst.index()].len();
                g.adj_out[li].ensure(src_n.saturating_sub(1));
                g.adj_in[li].ensure(dst_n.saturating_sub(1));
                for v in 0..src_n {
                    if let Some(&c) = out_deg.get(&(v as u32)) {
                        g.adj_out[li].reserve_exact(v, c);
                    }
                }
                for v in 0..dst_n {
                    if let Some(&c) = in_deg.get(&(v as u32)) {
                        g.adj_in[li].reserve_exact(v, c);
                    }
                }
            }
        }
        for batch in &data.edges {
            for (&(s, d), props) in batch.endpoints.iter().zip(&batch.properties) {
                store.add_edge(batch.label, s, d, props.clone())?;
            }
        }
        store.commit();
        Ok(store)
    }

    /// The latest committed version.
    /// The fixed schema this store was created over.
    pub fn schema(&self) -> &GraphSchema {
        &self.schema
    }

    pub fn committed_version(&self) -> Version {
        self.committed.load(Ordering::Acquire)
    }

    /// The version at which staged (uncommitted) writes will become visible.
    pub fn write_version(&self) -> Version {
        self.committed_version() + 1
    }

    /// Publishes all staged writes; returns the new committed version.
    pub fn commit(&self) -> Version {
        self.committed.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Stages a vertex insertion (visible after the next [`GartStore::commit`]).
    pub fn add_vertex(&self, label: LabelId, external: u64, props: Vec<Value>) -> Result<VId> {
        let wv = self.write_version();
        let mut g = self.inner.write();
        if g.id_maps[label.index()].internal(external).is_some() {
            return Err(GraphError::Schema(format!(
                "vertex {external} already exists in label {label:?}"
            )));
        }
        let v = g.id_maps[label.index()].get_or_insert(external);
        g.vprops[label.index()].push_row(&props)?;
        g.vertex_created[label.index()].push(wv);
        Ok(v)
    }

    /// Stages an edge insertion between existing vertices (by external id).
    pub fn add_edge(
        &self,
        label: LabelId,
        src_ext: u64,
        dst_ext: u64,
        props: Vec<Value>,
    ) -> Result<gs_grin::EId> {
        let wv = self.write_version();
        let ldef = self.schema.edge_label(label)?.clone();
        let mut g = self.inner.write();
        let s = g.id_maps[ldef.src.index()]
            .internal(src_ext)
            .ok_or_else(|| GraphError::NotFound(format!("edge src {src_ext}")))?;
        let d = g.id_maps[ldef.dst.index()]
            .internal(dst_ext)
            .ok_or_else(|| GraphError::NotFound(format!("edge dst {dst_ext}")))?;
        let eid = gs_grin::EId(g.edge_counts[label.index()]);
        g.edge_counts[label.index()] += 1;
        g.eprops[label.index()].push_row(&props)?;
        g.adj_out[label.index()].push(s.index(), d, eid, wv);
        g.adj_in[label.index()].push(d.index(), s, eid, wv);
        Ok(eid)
    }

    /// Stages a batch of edge insertions under a single write-lock
    /// acquisition (group commit — the ingestion pattern real deployments
    /// use to keep writers from convoying with readers). Returns how many
    /// edges were staged; unknown endpoints abort the batch.
    pub fn add_edges(&self, label: LabelId, edges: &[(u64, u64, Vec<Value>)]) -> Result<usize> {
        let wv = self.write_version();
        let ldef = self.schema.edge_label(label)?.clone();
        let mut g = self.inner.write();
        for (src_ext, dst_ext, props) in edges {
            let s = g.id_maps[ldef.src.index()]
                .internal(*src_ext)
                .ok_or_else(|| GraphError::NotFound(format!("edge src {src_ext}")))?;
            let d = g.id_maps[ldef.dst.index()]
                .internal(*dst_ext)
                .ok_or_else(|| GraphError::NotFound(format!("edge dst {dst_ext}")))?;
            let eid = gs_grin::EId(g.edge_counts[label.index()]);
            g.edge_counts[label.index()] += 1;
            g.eprops[label.index()].push_row(props)?;
            g.adj_out[label.index()].push(s.index(), d, eid, wv);
            g.adj_in[label.index()].push(d.index(), s, eid, wv);
        }
        Ok(edges.len())
    }

    /// Stages an edge deletion (tombstone) by endpoint external ids; removes
    /// the first live matching edge. Returns whether an edge was found.
    pub fn delete_edge(&self, label: LabelId, src_ext: u64, dst_ext: u64) -> Result<bool> {
        let wv = self.write_version();
        let snapshot_v = self.committed_version();
        let ldef = self.schema.edge_label(label)?.clone();
        let mut g = self.inner.write();
        let (Some(s), Some(d)) = (
            g.id_maps[ldef.src.index()].internal(src_ext),
            g.id_maps[ldef.dst.index()].internal(dst_ext),
        ) else {
            return Ok(false);
        };
        let mut victim = None;
        g.adj_out[label.index()].for_each(s.index(), snapshot_v, &mut |nbr, eid| {
            if nbr == d && victim.is_none() {
                victim = Some(eid);
            }
        });
        let Some(eid) = victim else {
            return Ok(false);
        };
        g.adj_out[label.index()].add_tombstone(s.index(), eid, wv);
        g.adj_in[label.index()].add_tombstone(d.index(), eid, wv);
        Ok(true)
    }

    /// Runs a closure under a single read guard with a [`GartView`] —
    /// the stored-procedure fast path: one lock acquisition per procedure
    /// instead of one per traversal step.
    pub fn with_view<R>(&self, version: Version, f: impl FnOnce(&GartView<'_>) -> R) -> R {
        let g = self.inner.read();
        f(&GartView { inner: &g, version })
    }

    /// A consistent read snapshot at the latest committed version.
    pub fn snapshot(self: &Arc<Self>) -> GartSnapshot {
        self.snapshot_at(self.committed_version())
    }

    /// A consistent read snapshot at a specific version.
    pub fn snapshot_at(self: &Arc<Self>, version: Version) -> GartSnapshot {
        GartSnapshot {
            store: Arc::clone(self),
            version,
        }
    }

    /// Native whole-label edge scan at `version`: visits every live
    /// `(src, dst, eid)` under a single read-lock acquisition. This is the
    /// fast path the Fig. 7(c) edge-scan throughput benchmark measures.
    pub fn scan_edges<F: FnMut(VId, VId, gs_grin::EId)>(
        &self,
        label: LabelId,
        version: Version,
        f: &mut F,
    ) {
        let g = self.inner.read();
        let pool = &g.adj_out[label.index()];
        for s in 0..pool.vertex_count() {
            let src = VId(s as u64);
            pool.for_each(s, version, &mut |nbr, eid| f(src, nbr, eid));
        }
    }
}

/// A borrowed, single-lock read view used by stored procedures (see
/// [`GartStore::with_view`]).
pub struct GartView<'a> {
    inner: &'a Inner,
    version: Version,
}

impl<'a> GartView<'a> {
    /// Internal id of an external vertex id (if visible at this version).
    pub fn internal_id(&self, label: LabelId, external: u64) -> Option<VId> {
        let v = self.inner.id_maps[label.index()].internal(external)?;
        (self.inner.vertex_created[label.index()][v.index()] <= self.version).then_some(v)
    }

    /// External id of an internal vertex.
    pub fn external_id(&self, label: LabelId, v: VId) -> Option<u64> {
        let created = &self.inner.vertex_created[label.index()];
        if v.index() < created.len() && created[v.index()] <= self.version {
            self.inner.id_maps[label.index()].external(v)
        } else {
            None
        }
    }

    /// Visits live out-/in-neighbours of `v` under one already-held guard.
    pub fn for_each_adjacent<F: FnMut(VId, gs_grin::EId)>(
        &self,
        v: VId,
        elabel: LabelId,
        dir: Direction,
        f: &mut F,
    ) {
        match dir {
            Direction::Out => {
                self.inner.adj_out[elabel.index()].for_each(v.index(), self.version, f)
            }
            Direction::In => self.inner.adj_in[elabel.index()].for_each(v.index(), self.version, f),
            Direction::Both => {
                self.inner.adj_out[elabel.index()].for_each(v.index(), self.version, f);
                self.inner.adj_in[elabel.index()].for_each(v.index(), self.version, f);
            }
        }
    }

    /// Edge property by id.
    pub fn edge_property(&self, label: LabelId, e: gs_grin::EId, prop: PropId) -> Value {
        let t = &self.inner.eprops[label.index()];
        if e.index() < t.row_count() {
            t.get(e.index(), prop)
        } else {
            Value::Null
        }
    }

    /// Vertex property (Null when invisible at this version).
    pub fn vertex_property(&self, label: LabelId, v: VId, prop: PropId) -> Value {
        let created = &self.inner.vertex_created[label.index()];
        if v.index() < created.len() && created[v.index()] <= self.version {
            self.inner.vprops[label.index()].get(v.index(), prop)
        } else {
            Value::Null
        }
    }
}

/// A consistent read view of a [`GartStore`] at a fixed version; implements
/// [`GrinGraph`] so engines can run unchanged on dynamic graphs.
#[derive(Clone)]
pub struct GartSnapshot {
    store: Arc<GartStore>,
    version: Version,
}

impl GartSnapshot {
    /// The pinned version.
    pub fn version(&self) -> Version {
        self.version
    }

    fn collect_adj(&self, v: VId, elabel: LabelId, dir: Direction) -> Vec<AdjEntry> {
        let g = self.store.inner.read();
        let mut out = Vec::new();
        let mut push = |nbr: VId, edge: gs_grin::EId| out.push(AdjEntry { nbr, edge });
        match dir {
            Direction::Out => {
                g.adj_out[elabel.index()].for_each(v.index(), self.version, &mut push);
            }
            Direction::In => {
                g.adj_in[elabel.index()].for_each(v.index(), self.version, &mut push);
            }
            Direction::Both => {
                g.adj_out[elabel.index()].for_each(v.index(), self.version, &mut push);
                g.adj_in[elabel.index()].for_each(v.index(), self.version, &mut push);
            }
        }
        out
    }

    /// Freezes this snapshot's topology into an immutable, layout-backed
    /// [`FrozenGart`]: each edge label's live adjacency at the pinned
    /// version is materialised as a [`TopologyLayout`] (plain, sorted, or
    /// compressed CSR). Analytics over a fixed version then run on the
    /// same zero-version-check fast path static stores enjoy, while
    /// properties and id maps keep reading through the store at this
    /// version. The writer may keep committing; the freeze never sees it.
    pub fn freeze(&self, layout: LayoutKind) -> FrozenGart {
        let g = self.store.inner.read();
        let nel = self.store.schema.edge_label_count();
        let mut out_topo = Vec::with_capacity(nel);
        let mut in_topo = Vec::with_capacity(nel);
        for (li, ldef) in self.store.schema.edge_labels().iter().enumerate() {
            // Domains span the label's full internal-id space; vertices
            // created after this version simply freeze with degree 0.
            let src_n = g.vertex_created[ldef.src.index()].len();
            let dst_n = g.vertex_created[ldef.dst.index()].len();
            out_topo.push(TopologyLayout::build(
                layout,
                freeze_pool(&g.adj_out[li], src_n, self.version),
            ));
            in_topo.push(TopologyLayout::build(
                layout,
                freeze_pool(&g.adj_in[li], dst_n, self.version),
            ));
        }
        FrozenGart {
            store: Arc::clone(&self.store),
            version: self.version,
            layout,
            out_topo,
            in_topo,
        }
    }
}

/// Materialises the live entries of a pooled adjacency at `version` as a
/// static CSR, preserving edge ids.
fn freeze_pool(pool: &AdjPool, n: usize, version: Version) -> Csr {
    let scanned = n.min(pool.vertex_count());
    let mut offsets = vec![0u64; n + 1];
    for v in 0..scanned {
        let mut d = 0u64;
        pool.for_each(v, version, &mut |_, _| d += 1);
        offsets[v + 1] = d;
    }
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    let m = offsets[n] as usize;
    let mut targets = Vec::with_capacity(m);
    let mut eids = Vec::with_capacity(m);
    for v in 0..scanned {
        pool.for_each(v, version, &mut |nbr, eid| {
            targets.push(nbr);
            eids.push(eid);
        });
    }
    Csr::from_parts(offsets, targets, eids)
}

/// An immutable freeze of a [`GartSnapshot`]: layout-backed topology (see
/// [`GartSnapshot::freeze`]) plus version-checked property/id access
/// through the owning store. Implements [`GrinGraph`] with the
/// array/sorted/compressed capabilities of its layout — unlike the live
/// snapshot, which only offers iterators.
pub struct FrozenGart {
    store: Arc<GartStore>,
    version: Version,
    layout: LayoutKind,
    out_topo: Vec<TopologyLayout>,
    in_topo: Vec<TopologyLayout>,
}

impl FrozenGart {
    /// The version the topology was frozen at.
    pub fn version(&self) -> Version {
        self.version
    }

    /// The layout the topology is materialised in.
    pub fn layout(&self) -> LayoutKind {
        self.layout
    }

    /// Heap footprint of the frozen topology (both directions, all labels).
    pub fn topology_bytes(&self) -> usize {
        self.out_topo
            .iter()
            .chain(&self.in_topo)
            .map(|t| t.heap_bytes())
            .sum()
    }
}

impl GrinGraph for FrozenGart {
    fn capabilities(&self) -> Capabilities {
        let base = Capabilities::of(&[
            Capabilities::VERTEX_LIST_ITER,
            Capabilities::ADJ_LIST_ARRAY,
            Capabilities::ADJ_LIST_ITER,
            Capabilities::IN_ADJACENCY,
            Capabilities::PROPERTY,
            Capabilities::INDEX_EXTERNAL_ID,
            Capabilities::INDEX_INTERNAL_ID,
            Capabilities::MVCC,
        ]);
        let (add, remove) = Capabilities::layout_masks(self.layout);
        base.union(add).difference(remove)
    }

    fn topology_layout(&self) -> LayoutKind {
        self.layout
    }

    fn schema(&self) -> &GraphSchema {
        &self.store.schema
    }

    fn vertex_count(&self, label: LabelId) -> usize {
        let g = self.store.inner.read();
        g.vertex_created[label.index()]
            .iter()
            .filter(|&&cv| cv <= self.version)
            .count()
    }

    fn edge_count(&self, label: LabelId) -> usize {
        self.out_topo[label.index()].edge_count()
    }

    fn vertices(&self, label: LabelId) -> Box<dyn Iterator<Item = VId> + '_> {
        let g = self.store.inner.read();
        let v: Vec<VId> = g.vertex_created[label.index()]
            .iter()
            .enumerate()
            .filter(|(_, &cv)| cv <= self.version)
            .map(|(i, _)| VId(i as u64))
            .collect();
        Box::new(v.into_iter())
    }

    fn adjacent(
        &self,
        v: VId,
        _vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
    ) -> Box<dyn Iterator<Item = AdjEntry> + '_> {
        let out = &self.out_topo[elabel.index()];
        let inn = &self.in_topo[elabel.index()];
        match dir {
            Direction::Out => frozen_adj(out, v),
            Direction::In => frozen_adj(inn, v),
            Direction::Both => Box::new(frozen_adj(out, v).chain(frozen_adj(inn, v))),
        }
    }

    fn for_each_adjacent(
        &self,
        v: VId,
        _vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
        f: &mut dyn FnMut(AdjEntry),
    ) {
        let mut visit = |topo: &TopologyLayout| {
            if v.index() < topo.vertex_count() {
                topo.for_each_adj(v, |nbr, edge| f(AdjEntry { nbr, edge }));
            }
        };
        match dir {
            Direction::Out => visit(&self.out_topo[elabel.index()]),
            Direction::In => visit(&self.in_topo[elabel.index()]),
            Direction::Both => {
                visit(&self.out_topo[elabel.index()]);
                visit(&self.in_topo[elabel.index()]);
            }
        }
    }

    fn adjacent_slice(
        &self,
        v: VId,
        _vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
    ) -> Option<(&[VId], &[gs_grin::EId])> {
        let topo = match dir {
            Direction::Out => &self.out_topo[elabel.index()],
            Direction::In => &self.in_topo[elabel.index()],
            Direction::Both => return None,
        };
        if v.index() >= topo.vertex_count() {
            return Some((&[], &[]));
        }
        topo.adj_slices(v)
    }

    fn degree(&self, v: VId, _vl: LabelId, elabel: LabelId, dir: Direction) -> usize {
        let deg = |t: &TopologyLayout| {
            if v.index() < t.vertex_count() {
                t.degree(v)
            } else {
                0
            }
        };
        match dir {
            Direction::Out => deg(&self.out_topo[elabel.index()]),
            Direction::In => deg(&self.in_topo[elabel.index()]),
            Direction::Both => {
                deg(&self.out_topo[elabel.index()]) + deg(&self.in_topo[elabel.index()])
            }
        }
    }

    fn scan_adjacency(
        &self,
        vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
        f: &mut gs_grin::AdjScanFn<'_>,
    ) -> bool {
        let topo = match dir {
            Direction::Out => &self.out_topo[elabel.index()],
            Direction::In => &self.in_topo[elabel.index()],
            Direction::Both => return gs_grin::scan_via_iterators(self, vlabel, elabel, dir, f),
        };
        let visible: Vec<bool> = {
            let g = self.store.inner.read();
            g.vertex_created[vlabel.index()]
                .iter()
                .map(|&cv| cv <= self.version)
                .collect()
        };
        let mut nbrs = Vec::new();
        let mut eids = Vec::new();
        for (i, vis) in visible.iter().enumerate() {
            if !vis {
                continue;
            }
            let v = VId(i as u64);
            if v.index() >= topo.vertex_count() {
                f(v, &[], &[]);
            } else if let Some((ns, es)) = topo.adj_slices(v) {
                f(v, ns, es);
            } else {
                topo.as_layout().copy_adj(v, &mut nbrs, &mut eids);
                f(v, &nbrs, &eids);
            }
        }
        true
    }

    fn vertex_property(&self, label: LabelId, v: VId, prop: PropId) -> Value {
        self.store
            .with_view(self.version, |view| view.vertex_property(label, v, prop))
    }

    fn edge_property(&self, label: LabelId, e: gs_grin::EId, prop: PropId) -> Value {
        self.store
            .with_view(self.version, |view| view.edge_property(label, e, prop))
    }

    fn internal_id(&self, label: LabelId, external: u64) -> Option<VId> {
        self.store
            .with_view(self.version, |view| view.internal_id(label, external))
    }

    fn external_id(&self, label: LabelId, v: VId) -> Option<u64> {
        self.store
            .with_view(self.version, |view| view.external_id(label, v))
    }
}

/// Boxed adjacency iteration over a frozen topology (zero-copy for
/// slice-backed layouts, buffered decode for compressed ones).
fn frozen_adj(topo: &TopologyLayout, v: VId) -> Box<dyn Iterator<Item = AdjEntry> + '_> {
    if v.index() >= topo.vertex_count() {
        return Box::new(std::iter::empty());
    }
    if let Some((nbrs, eids)) = topo.adj_slices(v) {
        Box::new(
            nbrs.iter()
                .zip(eids)
                .map(|(&nbr, &edge)| AdjEntry { nbr, edge }),
        )
    } else {
        let mut entries = Vec::with_capacity(topo.degree(v));
        topo.for_each_adj(v, |nbr, edge| entries.push(AdjEntry { nbr, edge }));
        Box::new(entries.into_iter())
    }
}

impl GrinGraph for GartSnapshot {
    fn capabilities(&self) -> Capabilities {
        Capabilities::of(&[
            Capabilities::VERTEX_LIST_ITER,
            Capabilities::ADJ_LIST_ITER,
            Capabilities::IN_ADJACENCY,
            Capabilities::PROPERTY,
            Capabilities::INDEX_EXTERNAL_ID,
            Capabilities::INDEX_INTERNAL_ID,
            Capabilities::MVCC,
            Capabilities::MUTABLE,
        ])
    }

    fn schema(&self) -> &GraphSchema {
        &self.store.schema
    }

    fn vertex_count(&self, label: LabelId) -> usize {
        let g = self.store.inner.read();
        g.vertex_created[label.index()]
            .iter()
            .filter(|&&cv| cv <= self.version)
            .count()
    }

    fn edge_count(&self, label: LabelId) -> usize {
        // counts live edges at this version
        let mut n = 0usize;
        self.store
            .scan_edges(label, self.version, &mut |_, _, _| n += 1);
        n
    }

    fn vertices(&self, label: LabelId) -> Box<dyn Iterator<Item = VId> + '_> {
        let g = self.store.inner.read();
        let v: Vec<VId> = g.vertex_created[label.index()]
            .iter()
            .enumerate()
            .filter(|(_, &cv)| cv <= self.version)
            .map(|(i, _)| VId(i as u64))
            .collect();
        Box::new(v.into_iter())
    }

    fn adjacent(
        &self,
        v: VId,
        _vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
    ) -> Box<dyn Iterator<Item = AdjEntry> + '_> {
        Box::new(self.collect_adj(v, elabel, dir).into_iter())
    }

    fn for_each_adjacent(
        &self,
        v: VId,
        _vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
        f: &mut dyn FnMut(AdjEntry),
    ) {
        let g = self.store.inner.read();
        let mut push = |nbr: VId, edge: gs_grin::EId| f(AdjEntry { nbr, edge });
        match dir {
            Direction::Out => {
                g.adj_out[elabel.index()].for_each(v.index(), self.version, &mut push)
            }
            Direction::In => g.adj_in[elabel.index()].for_each(v.index(), self.version, &mut push),
            Direction::Both => {
                g.adj_out[elabel.index()].for_each(v.index(), self.version, &mut push);
                g.adj_in[elabel.index()].for_each(v.index(), self.version, &mut push);
            }
        }
    }

    fn scan_adjacency(
        &self,
        vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
        f: &mut gs_grin::AdjScanFn<'_>,
    ) -> bool {
        // GART's bulk path: one read-lock acquisition for the whole label
        // scan over the pooled near-CSR regions, instead of one lock (and
        // one Vec allocation) per vertex through the iterator fallback.
        let g = self.store.inner.read();
        let mut nbrs: Vec<VId> = Vec::new();
        let mut eids: Vec<gs_grin::EId> = Vec::new();
        for (i, &cv) in g.vertex_created[vlabel.index()].iter().enumerate() {
            if cv > self.version {
                continue;
            }
            nbrs.clear();
            eids.clear();
            {
                let mut push = |nbr: VId, eid: gs_grin::EId| {
                    nbrs.push(nbr);
                    eids.push(eid);
                };
                match dir {
                    Direction::Out => {
                        g.adj_out[elabel.index()].for_each(i, self.version, &mut push)
                    }
                    Direction::In => g.adj_in[elabel.index()].for_each(i, self.version, &mut push),
                    Direction::Both => {
                        g.adj_out[elabel.index()].for_each(i, self.version, &mut push);
                        g.adj_in[elabel.index()].for_each(i, self.version, &mut push);
                    }
                }
            }
            f(VId(i as u64), &nbrs, &eids);
        }
        true
    }

    fn vertex_property(&self, label: LabelId, v: VId, prop: PropId) -> Value {
        let g = self.store.inner.read();
        let created = &g.vertex_created[label.index()];
        if v.index() < created.len() && created[v.index()] <= self.version {
            g.vprops[label.index()].get(v.index(), prop)
        } else {
            Value::Null
        }
    }

    fn edge_property(&self, label: LabelId, e: gs_grin::EId, prop: PropId) -> Value {
        let g = self.store.inner.read();
        if e.index() < g.eprops[label.index()].row_count() {
            g.eprops[label.index()].get(e.index(), prop)
        } else {
            Value::Null
        }
    }

    fn internal_id(&self, label: LabelId, external: u64) -> Option<VId> {
        let g = self.store.inner.read();
        let v = g.id_maps[label.index()].internal(external)?;
        (g.vertex_created[label.index()][v.index()] <= self.version).then_some(v)
    }

    fn external_id(&self, label: LabelId, v: VId) -> Option<u64> {
        let g = self.store.inner.read();
        let created = &g.vertex_created[label.index()];
        if v.index() < created.len() && created[v.index()] <= self.version {
            g.id_maps[label.index()].external(v)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::schema::GraphSchema as Schema;
    use gs_graph::ValueType;

    fn schema() -> (Schema, LabelId, LabelId) {
        let mut s = Schema::new();
        let v = s.add_vertex_label("V", &[("x", ValueType::Int)]);
        let e = s.add_edge_label("E", v, v, &[("w", ValueType::Float)]);
        (s, v, e)
    }

    #[test]
    fn staged_writes_invisible_until_commit() {
        let (s, vl, el) = schema();
        let store = GartStore::new(s);
        store.add_vertex(vl, 1, vec![Value::Int(10)]).unwrap();
        store.add_vertex(vl, 2, vec![Value::Int(20)]).unwrap();
        store.add_edge(el, 1, 2, vec![Value::Float(0.5)]).unwrap();
        let snap0 = store.snapshot();
        assert_eq!(snap0.vertex_count(vl), 0);
        assert_eq!(snap0.edge_count(el), 0);
        store.commit();
        let snap1 = store.snapshot();
        assert_eq!(snap1.vertex_count(vl), 2);
        assert_eq!(snap1.edge_count(el), 1);
        // the old snapshot still sees nothing (MVCC isolation)
        assert_eq!(snap0.vertex_count(vl), 0);
    }

    #[test]
    fn snapshot_versions_are_stable_across_later_writes() {
        let (s, vl, el) = schema();
        let store = GartStore::new(s);
        for i in 0..10 {
            store.add_vertex(vl, i, vec![Value::Int(i as i64)]).unwrap();
        }
        store.commit();
        let snap1 = store.snapshot();
        for i in 0..9 {
            store
                .add_edge(el, i, i + 1, vec![Value::Float(1.0)])
                .unwrap();
        }
        store.commit();
        let snap2 = store.snapshot();
        assert_eq!(snap1.edge_count(el), 0);
        assert_eq!(snap2.edge_count(el), 9);
        let v0 = snap2.internal_id(vl, 0).unwrap();
        assert_eq!(snap1.adjacent(v0, vl, el, Direction::Out).count(), 0);
        assert_eq!(snap2.adjacent(v0, vl, el, Direction::Out).count(), 1);
    }

    #[test]
    fn delete_edge_tombstones() {
        let (s, vl, el) = schema();
        let store = GartStore::new(s);
        store.add_vertex(vl, 1, vec![Value::Int(0)]).unwrap();
        store.add_vertex(vl, 2, vec![Value::Int(0)]).unwrap();
        store.add_edge(el, 1, 2, vec![Value::Float(1.0)]).unwrap();
        store.commit();
        let before = store.snapshot();
        assert!(store.delete_edge(el, 1, 2).unwrap());
        store.commit();
        let after = store.snapshot();
        assert_eq!(before.edge_count(el), 1, "old snapshot keeps the edge");
        assert_eq!(after.edge_count(el), 0);
        // deleting again finds nothing
        assert!(!store.delete_edge(el, 1, 2).unwrap());
    }

    #[test]
    fn in_adjacency_tracks_out() {
        let (s, vl, el) = schema();
        let store = GartStore::new(s);
        for i in 0..5 {
            store.add_vertex(vl, i, vec![Value::Int(0)]).unwrap();
        }
        for i in 1..5 {
            store
                .add_edge(el, i, 0, vec![Value::Float(i as f64)])
                .unwrap();
        }
        store.commit();
        let snap = store.snapshot();
        let v0 = snap.internal_id(vl, 0).unwrap();
        let ins: Vec<_> = snap.adjacent(v0, vl, el, Direction::In).collect();
        assert_eq!(ins.len(), 4);
        // edge property reachable through in-edges
        for e in ins {
            let w = snap.edge_property(el, e.edge, PropId(0));
            assert!(w.as_float().unwrap() >= 1.0);
        }
    }

    #[test]
    fn duplicate_vertex_external_id_rejected() {
        let (s, vl, _) = schema();
        let store = GartStore::new(s);
        store.add_vertex(vl, 7, vec![Value::Int(0)]).unwrap();
        assert!(store.add_vertex(vl, 7, vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn edge_to_missing_vertex_rejected() {
        let (s, vl, el) = schema();
        let store = GartStore::new(s);
        store.add_vertex(vl, 1, vec![Value::Int(0)]).unwrap();
        assert!(store.add_edge(el, 1, 99, vec![Value::Float(0.0)]).is_err());
    }

    #[test]
    fn from_data_round_trip() {
        let data = PropertyGraphData::from_edge_list(4, &[(0, 1), (1, 2), (2, 3)]);
        let store = GartStore::from_data(&data).unwrap();
        let snap = store.snapshot();
        assert_eq!(snap.vertex_count(LabelId(0)), 4);
        assert_eq!(snap.edge_count(LabelId(0)), 3);
    }

    #[test]
    fn regions_relocate_and_grow() {
        let (s, vl, el) = schema();
        let store = GartStore::new(s);
        store.add_vertex(vl, 0, vec![Value::Int(0)]).unwrap();
        store.add_vertex(vl, 1, vec![Value::Int(0)]).unwrap();
        // enough edges to fill several segments
        for _ in 0..200 {
            store.add_edge(el, 0, 1, vec![Value::Float(1.0)]).unwrap();
        }
        store.commit();
        let snap = store.snapshot();
        let v0 = snap.internal_id(vl, 0).unwrap();
        assert_eq!(snap.adjacent(v0, vl, el, Direction::Out).count(), 200);
    }

    #[test]
    fn scan_edges_matches_per_vertex_iteration() {
        let data = PropertyGraphData::from_edge_list(
            50,
            &(0..200u64)
                .map(|i| (i % 50, (i * 7 + 1) % 50))
                .collect::<Vec<_>>(),
        );
        let store = GartStore::from_data(&data).unwrap();
        let snap = store.snapshot();
        let mut scanned = 0;
        store.scan_edges(LabelId(0), snap.version(), &mut |_, _, _| scanned += 1);
        let mut iterated = 0;
        for v in snap.vertices(LabelId(0)) {
            iterated += snap
                .adjacent(v, LabelId(0), LabelId(0), Direction::Out)
                .count();
        }
        assert_eq!(scanned, iterated);
        assert_eq!(scanned, 200);
    }

    #[test]
    fn scan_adjacency_respects_snapshot_version() {
        let (s, vl, el) = schema();
        let store = GartStore::new(s);
        for i in 0..6 {
            store.add_vertex(vl, i, vec![Value::Int(0)]).unwrap();
        }
        for i in 0..5 {
            store
                .add_edge(el, i, i + 1, vec![Value::Float(1.0)])
                .unwrap();
        }
        store.commit();
        let old = store.snapshot();
        store.add_vertex(vl, 6, vec![Value::Int(0)]).unwrap();
        store.add_edge(el, 6, 0, vec![Value::Float(9.0)]).unwrap();
        store.commit();
        let new = store.snapshot();

        let collect = |snap: &GartSnapshot, dir| {
            let mut rows = Vec::new();
            let bulk = snap.scan_adjacency(vl, el, dir, &mut |v, nbrs, eids| {
                rows.push((v, nbrs.to_vec(), eids.to_vec()));
            });
            assert!(bulk, "GART snapshot must run the pooled single-lock scan");
            rows
        };
        // old snapshot: 6 vertices, 5 edges; new: 7 vertices, 6 edges
        let old_rows = collect(&old, Direction::Out);
        assert_eq!(old_rows.len(), 6);
        assert_eq!(old_rows.iter().map(|(_, n, _)| n.len()).sum::<usize>(), 5);
        let new_rows = collect(&new, Direction::Out);
        assert_eq!(new_rows.len(), 7);
        assert_eq!(new_rows.iter().map(|(_, n, _)| n.len()).sum::<usize>(), 6);
        // per-vertex agreement with the iterator API, all directions
        for dir in [Direction::Out, Direction::In, Direction::Both] {
            for (v, nbrs, eids) in collect(&new, dir) {
                let expect: Vec<AdjEntry> = new.adjacent(v, vl, el, dir).collect();
                assert_eq!(nbrs, expect.iter().map(|a| a.nbr).collect::<Vec<_>>());
                assert_eq!(eids, expect.iter().map(|a| a.edge).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn freeze_matches_snapshot_across_layouts() {
        let data = PropertyGraphData::from_edge_list(
            40,
            &(0..160u64)
                .map(|i| (i % 40, (i * 11 + 3) % 40))
                .collect::<Vec<_>>(),
        );
        let store = GartStore::from_data(&data).unwrap();
        let snap = store.snapshot();
        let (vl, el) = (LabelId(0), LabelId(0));
        for layout in LayoutKind::ALL {
            let frozen = snap.freeze(layout);
            assert_eq!(frozen.topology_layout(), layout);
            assert_eq!(frozen.version(), snap.version());
            assert_eq!(frozen.vertex_count(vl), snap.vertex_count(vl));
            assert_eq!(frozen.edge_count(el), snap.edge_count(el));
            assert!(frozen.topology_bytes() > 0);
            for v in snap.vertices(vl) {
                for dir in [Direction::Out, Direction::In, Direction::Both] {
                    let mut want: Vec<AdjEntry> = snap.adjacent(v, vl, el, dir).collect();
                    let mut got: Vec<AdjEntry> = frozen.adjacent(v, vl, el, dir).collect();
                    want.sort_by_key(|a| (a.nbr, a.edge));
                    got.sort_by_key(|a| (a.nbr, a.edge));
                    assert_eq!(got, want, "{layout} {dir:?} v{v:?}");
                    assert_eq!(frozen.degree(v, vl, el, dir), want.len());
                }
            }
            // bulk scan agrees with the live snapshot's
            let mut frozen_rows = Vec::new();
            assert!(
                frozen.scan_adjacency(vl, el, Direction::Out, &mut |v, ns, es| {
                    frozen_rows.push((v, ns.to_vec(), es.to_vec()));
                })
            );
            let mut live_rows = Vec::new();
            snap.scan_adjacency(vl, el, Direction::Out, &mut |v, ns, es| {
                live_rows.push((v, ns.to_vec(), es.to_vec()));
            });
            assert_eq!(frozen_rows, live_rows, "{layout}");
        }
    }

    #[test]
    fn freeze_is_isolated_from_later_commits_and_reports_capabilities() {
        let (s, vl, el) = schema();
        let store = GartStore::new(s);
        for i in 0..4 {
            store.add_vertex(vl, i, vec![Value::Int(0)]).unwrap();
        }
        store.add_edge(el, 0, 1, vec![Value::Float(1.0)]).unwrap();
        store.commit();
        let frozen = store.snapshot().freeze(LayoutKind::CompressedCsr);
        // writer keeps going; the freeze must not move
        store.add_edge(el, 1, 2, vec![Value::Float(2.0)]).unwrap();
        store.commit();
        assert_eq!(frozen.edge_count(el), 1);
        assert_eq!(store.snapshot().edge_count(el), 2);
        let caps = frozen.capabilities();
        assert!(caps.supports(Capabilities::COMPRESSED_TOPOLOGY | Capabilities::MVCC));
        assert!(!caps.supports(Capabilities::ADJ_LIST_ARRAY));
        assert!(
            !caps.supports(Capabilities::MUTABLE),
            "a freeze is immutable"
        );
        let sorted = store.snapshot().freeze(LayoutKind::SortedCsr);
        assert!(sorted
            .capabilities()
            .supports(Capabilities::ADJ_LIST_ARRAY | Capabilities::SORTED_ADJACENCY));
        // frozen topology drops tombstoned edges like the snapshot does
        assert!(store.delete_edge(el, 0, 1).unwrap());
        store.commit();
        let after = store.snapshot().freeze(LayoutKind::SortedCsr);
        assert_eq!(after.edge_count(el), 1);
        let v0 = after.internal_id(vl, 0).unwrap();
        assert_eq!(after.degree(v0, vl, el, Direction::Out), 0);
    }

    #[test]
    fn concurrent_reads_during_writes() {
        let (s, vl, el) = schema();
        let store = GartStore::new(s);
        for i in 0..100 {
            store.add_vertex(vl, i, vec![Value::Int(0)]).unwrap();
        }
        store.commit();
        let snap = store.snapshot();
        let writer = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 0..99 {
                    store
                        .add_edge(el, i, i + 1, vec![Value::Float(1.0)])
                        .unwrap();
                    store.commit();
                }
            })
        };
        // reader never sees partial state beyond its version
        for _ in 0..50 {
            assert_eq!(snap.edge_count(el), 0);
        }
        writer.join().unwrap();
        assert_eq!(store.snapshot().edge_count(el), 99);
    }
}
