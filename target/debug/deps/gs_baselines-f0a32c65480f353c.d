/root/repo/target/debug/deps/gs_baselines-f0a32c65480f353c.d: crates/gs-baselines/src/lib.rs crates/gs-baselines/src/gemini.rs crates/gs-baselines/src/gpu_baselines.rs crates/gs-baselines/src/livegraph.rs crates/gs-baselines/src/powergraph.rs crates/gs-baselines/src/sqlengine.rs crates/gs-baselines/src/tugraph.rs Cargo.toml

/root/repo/target/debug/deps/libgs_baselines-f0a32c65480f353c.rmeta: crates/gs-baselines/src/lib.rs crates/gs-baselines/src/gemini.rs crates/gs-baselines/src/gpu_baselines.rs crates/gs-baselines/src/livegraph.rs crates/gs-baselines/src/powergraph.rs crates/gs-baselines/src/sqlengine.rs crates/gs-baselines/src/tugraph.rs Cargo.toml

crates/gs-baselines/src/lib.rs:
crates/gs-baselines/src/gemini.rs:
crates/gs-baselines/src/gpu_baselines.rs:
crates/gs-baselines/src/livegraph.rs:
crates/gs-baselines/src/powergraph.rs:
crates/gs-baselines/src/sqlengine.rs:
crates/gs-baselines/src/tugraph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
