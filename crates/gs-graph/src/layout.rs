//! Pluggable topology layouts.
//!
//! Flex's thesis is that storage and engine bricks are swappable, but until
//! this module the *shape of the brick itself* — adjacency topology — was a
//! single concrete struct ([`Csr`]). [`GraphLayout`] makes topology a trait
//! with three interchangeable implementations:
//!
//! * [`Csr`] — the existing plain compressed-sparse-row arrays; zero-copy
//!   slice access, the default.
//! * [`SortedCsr`] — CSR with *enforced* neighbor sortedness: O(log d)
//!   binary-search [`GraphLayout::has_edge`] (with a linear fallback below
//!   [`HAS_EDGE_BINARY_THRESHOLD`]) and galloping intersection for triangle
//!   counting / LCC / pattern matching.
//! * [`CompressedCsr`] — delta-varint encoded adjacency (reusing
//!   [`crate::varint`]) for memory-bound scans; trades slice access for a
//!   2–4× smaller footprint on sorted neighbor runs.
//!
//! Engines that need static dispatch on the hot path use the
//! [`TopologyLayout`] enum; dynamic composition (flexbuild) goes through the
//! object-safe [`GraphLayout`] trait. Every layout is observationally
//! identical: same vertices, same `(neighbor, edge-id)` sequences in the same
//! order, so algorithms produce bit-identical results regardless of layout.

use crate::csr::Csr;
use crate::ids::{EId, VId};
use crate::varint;

/// Adjacency lists shorter than this are scanned linearly even on sorted
/// layouts: for tiny lists the branch-free linear pass beats binary search.
pub const HAS_EDGE_BINARY_THRESHOLD: usize = 16;

/// When one sorted list is at least this many times longer than the other,
/// intersection switches from linear merge to galloping search.
pub const GALLOP_RATIO: usize = 8;

/// Which topology layout a store/fragment materialises. Selected through
/// flexbuild's `Deployment` knob and reported via GRIN capabilities.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LayoutKind {
    /// Plain CSR arrays (offsets/targets/edge-ids), zero-copy slices.
    #[default]
    Csr,
    /// CSR with enforced neighbor sortedness: binary-search membership and
    /// galloping intersection.
    SortedCsr,
    /// Delta-varint compressed adjacency streams: smallest footprint,
    /// decode-on-scan.
    CompressedCsr,
}

impl LayoutKind {
    /// All layouts, in benchmark/equivalence-sweep order.
    pub const ALL: [LayoutKind; 3] = [
        LayoutKind::Csr,
        LayoutKind::SortedCsr,
        LayoutKind::CompressedCsr,
    ];

    /// Stable name used in deployment manifests and bench reports.
    pub fn name(self) -> &'static str {
        match self {
            LayoutKind::Csr => "csr",
            LayoutKind::SortedCsr => "sorted_csr",
            LayoutKind::CompressedCsr => "compressed_csr",
        }
    }

    /// Parses a manifest name; `None` for unknown layouts.
    pub fn from_name(s: &str) -> Option<LayoutKind> {
        match s {
            "csr" => Some(LayoutKind::Csr),
            "sorted_csr" => Some(LayoutKind::SortedCsr),
            "compressed_csr" => Some(LayoutKind::CompressedCsr),
            _ => None,
        }
    }

    /// Whether this layout guarantees sorted neighbor order (unlocking
    /// binary-search membership and galloping intersection).
    pub fn is_sorted(self) -> bool {
        matches!(self, LayoutKind::SortedCsr | LayoutKind::CompressedCsr)
    }

    /// Whether adjacency is available as zero-copy slices.
    pub fn has_slices(self) -> bool {
        !matches!(self, LayoutKind::CompressedCsr)
    }
}

impl std::fmt::Display for LayoutKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Object-safe topology abstraction. All implementations expose the same
/// `(neighbor, edge-id)` sequences in the same order, so algorithm results
/// are layout-independent bit-for-bit.
pub trait GraphLayout: Send + Sync {
    /// Which concrete layout this is.
    fn kind(&self) -> LayoutKind;

    /// Number of vertices.
    fn vertex_count(&self) -> usize;

    /// Number of edges.
    fn edge_count(&self) -> usize;

    /// Out-degree of `v`.
    fn degree(&self, v: VId) -> usize;

    /// Visits every `(neighbor, edge_id)` of `v` in layout order.
    fn for_each_adj(&self, v: VId, f: &mut dyn FnMut(VId, EId));

    /// Zero-copy adjacency slices, if the layout stores raw arrays.
    /// Compressed layouts return `None`; callers fall back to
    /// [`GraphLayout::copy_adj`] or [`GraphLayout::for_each_adj`].
    fn adj_slices(&self, v: VId) -> Option<(&[VId], &[EId])>;

    /// Decodes the adjacency of `v` into the provided buffers (cleared
    /// first). Works on every layout; the slice-backed ones just copy.
    fn copy_adj(&self, v: VId, nbrs: &mut Vec<VId>, eids: &mut Vec<EId>) {
        nbrs.clear();
        eids.clear();
        self.for_each_adj(v, &mut |w, e| {
            nbrs.push(w);
            eids.push(e);
        });
    }

    /// Visits neighbors of `v` (no edge ids) until `f` returns `false` —
    /// the early-exit primitive pull-mode BFS relies on (a destination
    /// stops scanning its in-list at the first visited source).
    fn scan_targets(&self, v: VId, f: &mut dyn FnMut(VId) -> bool);

    /// Membership test for edge `v -> w`.
    fn has_edge(&self, v: VId, w: VId) -> bool;

    /// Size of the intersection of the two adjacency lists — the inner loop
    /// of triangle counting and clustering-coefficient kernels.
    fn intersection_count(&self, a: VId, b: VId) -> usize;

    /// Whether neighbor lists are guaranteed sorted.
    fn is_sorted(&self) -> bool {
        self.kind().is_sorted()
    }

    /// Approximate heap footprint in bytes (topology only), for the bench
    /// memory column.
    fn heap_bytes(&self) -> usize;
}

/// Counts common elements of two sorted slices by linear merge.
pub fn merge_intersection_count(a: &[VId], b: &[VId]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Counts common elements when `small` is much shorter than `large`:
/// for each element of `small`, gallop (exponential then binary search)
/// through `large`. O(|small| · log |large|) instead of O(|small| + |large|).
pub fn galloping_intersection_count(small: &[VId], large: &[VId]) -> usize {
    let mut lo = 0usize;
    let mut n = 0usize;
    for &x in small {
        // exponential probe from the last match position
        let mut step = 1usize;
        let mut hi = lo;
        while hi < large.len() && large[hi] < x {
            lo = hi;
            hi += step;
            step <<= 1;
        }
        // include the probe's stopping index (where large[hi] >= x)
        let hi = if hi < large.len() {
            hi + 1
        } else {
            large.len()
        };
        match large[lo..hi].binary_search(&x) {
            Ok(k) => {
                n += 1;
                lo += k + 1;
            }
            Err(k) => lo += k,
        }
        if lo >= large.len() {
            break;
        }
    }
    n
}

/// Intersection of two sorted slices, picking merge vs gallop by the size
/// ratio ([`GALLOP_RATIO`]).
pub fn sorted_intersection_count(a: &[VId], b: &[VId]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return 0;
    }
    if large.len() / small.len() >= GALLOP_RATIO {
        galloping_intersection_count(small, large)
    } else {
        merge_intersection_count(small, large)
    }
}

/// Sorted-slice membership with the tiny-list linear fallback.
#[inline]
pub fn sorted_contains(list: &[VId], w: VId) -> bool {
    if list.len() < HAS_EDGE_BINARY_THRESHOLD {
        list.contains(&w)
    } else {
        list.binary_search(&w).is_ok()
    }
}

// ---------------------------------------------------------------------------
// Plain CSR
// ---------------------------------------------------------------------------

impl GraphLayout for Csr {
    fn kind(&self) -> LayoutKind {
        LayoutKind::Csr
    }

    fn vertex_count(&self) -> usize {
        Csr::vertex_count(self)
    }

    fn edge_count(&self) -> usize {
        Csr::edge_count(self)
    }

    fn degree(&self, v: VId) -> usize {
        Csr::degree(self, v)
    }

    fn for_each_adj(&self, v: VId, f: &mut dyn FnMut(VId, EId)) {
        for (w, e) in self.adj(v) {
            f(w, e);
        }
    }

    fn adj_slices(&self, v: VId) -> Option<(&[VId], &[EId])> {
        Some((self.neighbors(v), self.edge_ids(v)))
    }

    fn scan_targets(&self, v: VId, f: &mut dyn FnMut(VId) -> bool) {
        for &w in self.neighbors(v) {
            if !f(w) {
                return;
            }
        }
    }

    fn has_edge(&self, v: VId, w: VId) -> bool {
        Csr::has_edge(self, v, w)
    }

    fn intersection_count(&self, a: VId, b: VId) -> usize {
        // builder-produced CSRs happen to be sorted, but the plain layout
        // does not *guarantee* it, so it conservatively merges; SortedCsr's
        // enforced order is what unlocks the galloping strategy
        merge_intersection_count(self.neighbors(a), self.neighbors(b))
    }

    fn heap_bytes(&self) -> usize {
        self.offsets().len() * 8 + self.targets().len() * 8 + self.edge_count() * 8
    }
}

// ---------------------------------------------------------------------------
// Sorted CSR
// ---------------------------------------------------------------------------

/// CSR with *enforced* neighbor sortedness. [`Csr::from_parts`] leaves
/// sortedness to the caller; this wrapper re-sorts on construction if any
/// list is out of order, so binary-search membership and galloping
/// intersection are always valid.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SortedCsr {
    csr: Csr,
}

impl SortedCsr {
    /// Wraps a CSR, sorting any out-of-order adjacency list (edge ids stay
    /// aligned with their neighbors).
    pub fn new(csr: Csr) -> SortedCsr {
        let mut csr = csr;
        let needs_sort = (0..csr.vertex_count()).any(|v| !csr.neighbors(VId(v as u64)).is_sorted());
        if needs_sort {
            let n = csr.vertex_count();
            let mut edges = Vec::with_capacity(csr.edge_count());
            let mut pairs: Vec<Vec<(VId, EId)>> = Vec::with_capacity(n);
            for v in 0..n {
                let mut adj: Vec<(VId, EId)> = csr.adj(VId(v as u64)).collect();
                adj.sort_unstable_by_key(|p| p.0);
                for &(w, _) in &adj {
                    edges.push((VId(v as u64), w));
                }
                pairs.push(adj);
            }
            let mut offsets = vec![0u64; n + 1];
            let mut targets = Vec::with_capacity(edges.len());
            let mut edge_ids = Vec::with_capacity(edges.len());
            for (v, adj) in pairs.into_iter().enumerate() {
                offsets[v + 1] = offsets[v] + adj.len() as u64;
                for (w, e) in adj {
                    targets.push(w);
                    edge_ids.push(e);
                }
            }
            csr = Csr::from_parts(offsets, targets, edge_ids);
        }
        SortedCsr { csr }
    }

    /// The underlying (sorted) CSR.
    #[inline]
    pub fn as_csr(&self) -> &Csr {
        &self.csr
    }

    /// Unwraps into the underlying CSR.
    pub fn into_csr(self) -> Csr {
        self.csr
    }

    /// Sorted neighbor slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: VId) -> &[VId] {
        self.csr.neighbors(v)
    }
}

impl GraphLayout for SortedCsr {
    fn kind(&self) -> LayoutKind {
        LayoutKind::SortedCsr
    }

    fn vertex_count(&self) -> usize {
        self.csr.vertex_count()
    }

    fn edge_count(&self) -> usize {
        self.csr.edge_count()
    }

    fn degree(&self, v: VId) -> usize {
        self.csr.degree(v)
    }

    fn for_each_adj(&self, v: VId, f: &mut dyn FnMut(VId, EId)) {
        for (w, e) in self.csr.adj(v) {
            f(w, e);
        }
    }

    fn adj_slices(&self, v: VId) -> Option<(&[VId], &[EId])> {
        Some((self.csr.neighbors(v), self.csr.edge_ids(v)))
    }

    fn scan_targets(&self, v: VId, f: &mut dyn FnMut(VId) -> bool) {
        for &w in self.csr.neighbors(v) {
            if !f(w) {
                return;
            }
        }
    }

    fn has_edge(&self, v: VId, w: VId) -> bool {
        sorted_contains(self.csr.neighbors(v), w)
    }

    fn intersection_count(&self, a: VId, b: VId) -> usize {
        sorted_intersection_count(self.csr.neighbors(a), self.csr.neighbors(b))
    }

    fn heap_bytes(&self) -> usize {
        GraphLayout::heap_bytes(&self.csr)
    }
}

// ---------------------------------------------------------------------------
// Compressed CSR
// ---------------------------------------------------------------------------

/// Delta-varint compressed adjacency. Per vertex the byte stream holds the
/// degree, then neighbors delta-encoded (first absolute, rest zigzag deltas
/// — sorted lists give dense 1-byte deltas), then edge ids zigzag
/// delta-encoded against their predecessor. Decode-on-scan: no slice
/// access, but the smallest footprint of the three layouts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CompressedCsr {
    starts: Vec<u64>,
    bytes: Vec<u8>,
    edge_count: usize,
}

impl CompressedCsr {
    /// Compresses a CSR; neighbor lists are sorted first so deltas are
    /// non-negative and dense.
    pub fn from_csr(csr: &Csr) -> CompressedCsr {
        let sorted = SortedCsr::new(csr.clone());
        let csr = sorted.as_csr();
        let n = csr.vertex_count();
        let mut starts = Vec::with_capacity(n + 1);
        let mut bytes = Vec::new();
        starts.push(0u64);
        for v in 0..n {
            let vid = VId(v as u64);
            let nbrs = csr.neighbors(vid);
            let eids = csr.edge_ids(vid);
            varint::encode_u64(nbrs.len() as u64, &mut bytes);
            let mut prev = 0u64;
            for (i, &w) in nbrs.iter().enumerate() {
                if i == 0 {
                    varint::encode_u64(w.0, &mut bytes);
                } else {
                    varint::encode_i64(w.0.wrapping_sub(prev) as i64, &mut bytes);
                }
                prev = w.0;
            }
            let mut prev_e = 0u64;
            for (i, &e) in eids.iter().enumerate() {
                if i == 0 {
                    varint::encode_u64(e.0, &mut bytes);
                } else {
                    varint::encode_i64(e.0.wrapping_sub(prev_e) as i64, &mut bytes);
                }
                prev_e = e.0;
            }
            starts.push(bytes.len() as u64);
        }
        CompressedCsr {
            starts,
            bytes,
            edge_count: csr.edge_count(),
        }
    }

    /// Decompresses back into a plain (sorted) CSR.
    pub fn to_csr(&self) -> Csr {
        let n = self.vertex_count();
        let mut offsets = vec![0u64; n + 1];
        let mut targets = Vec::with_capacity(self.edge_count);
        let mut edge_ids = Vec::with_capacity(self.edge_count);
        for v in 0..n {
            self.for_each_adj(VId(v as u64), &mut |w, e| {
                targets.push(w);
                edge_ids.push(e);
            });
            offsets[v + 1] = targets.len() as u64;
        }
        Csr::from_parts(offsets, targets, edge_ids)
    }

    /// Byte stream of vertex `v`.
    #[inline]
    fn stream(&self, v: VId) -> &[u8] {
        &self.bytes[self.starts[v.index()] as usize..self.starts[v.index() + 1] as usize]
    }

    /// Decodes only the degree header of `v`.
    #[inline]
    fn decode_degree(&self, v: VId) -> (usize, usize) {
        let s = self.stream(v);
        if s.is_empty() {
            return (0, 0);
        }
        let (d, n) = varint::decode_u64(s).expect("valid degree header");
        (d as usize, n)
    }

    /// Visits neighbors only (no edge ids), with early exit when `f`
    /// returns `false`. Sorted order makes this the membership fast path.
    fn scan_neighbors(&self, v: VId, f: &mut dyn FnMut(VId) -> bool) {
        let s = self.stream(v);
        let (d, mut pos) = self.decode_degree(v);
        let mut prev = 0u64;
        for i in 0..d {
            let w = if i == 0 {
                let (w, n) = varint::decode_u64(&s[pos..]).expect("neighbor");
                pos += n;
                w
            } else {
                let (delta, n) = varint::decode_i64(&s[pos..]).expect("delta");
                pos += n;
                prev.wrapping_add(delta as u64)
            };
            prev = w;
            if !f(VId(w)) {
                return;
            }
        }
    }
}

impl GraphLayout for CompressedCsr {
    fn kind(&self) -> LayoutKind {
        LayoutKind::CompressedCsr
    }

    fn vertex_count(&self) -> usize {
        self.starts.len().saturating_sub(1)
    }

    fn edge_count(&self) -> usize {
        self.edge_count
    }

    fn degree(&self, v: VId) -> usize {
        self.decode_degree(v).0
    }

    fn for_each_adj(&self, v: VId, f: &mut dyn FnMut(VId, EId)) {
        let s = self.stream(v);
        let (d, mut pos) = self.decode_degree(v);
        if d == 0 {
            return;
        }
        let mut nbrs = [0u64; 64];
        let mut spill: Vec<u64>;
        let nbr_buf: &mut [u64] = if d <= 64 {
            &mut nbrs[..d]
        } else {
            spill = vec![0u64; d];
            &mut spill
        };
        let mut prev = 0u64;
        for (i, slot) in nbr_buf.iter_mut().enumerate() {
            let w = if i == 0 {
                let (w, n) = varint::decode_u64(&s[pos..]).expect("neighbor");
                pos += n;
                w
            } else {
                let (delta, n) = varint::decode_i64(&s[pos..]).expect("delta");
                pos += n;
                prev.wrapping_add(delta as u64)
            };
            prev = w;
            *slot = w;
        }
        let mut prev_e = 0u64;
        for (i, &w) in nbr_buf.iter().enumerate() {
            let e = if i == 0 {
                let (e, n) = varint::decode_u64(&s[pos..]).expect("edge id");
                pos += n;
                e
            } else {
                let (delta, n) = varint::decode_i64(&s[pos..]).expect("edge delta");
                pos += n;
                prev_e.wrapping_add(delta as u64)
            };
            prev_e = e;
            f(VId(w), EId(e));
        }
    }

    fn adj_slices(&self, _v: VId) -> Option<(&[VId], &[EId])> {
        None
    }

    fn scan_targets(&self, v: VId, f: &mut dyn FnMut(VId) -> bool) {
        self.scan_neighbors(v, f);
    }

    fn has_edge(&self, v: VId, w: VId) -> bool {
        let mut found = false;
        self.scan_neighbors(v, &mut |x| {
            if x == w {
                found = true;
                false
            } else {
                // sorted stream: stop once we've passed w
                x < w
            }
        });
        found
    }

    fn intersection_count(&self, a: VId, b: VId) -> usize {
        let mut av = Vec::with_capacity(self.degree(a));
        let mut bv = Vec::with_capacity(self.degree(b));
        self.scan_neighbors(a, &mut |w| {
            av.push(w);
            true
        });
        self.scan_neighbors(b, &mut |w| {
            bv.push(w);
            true
        });
        sorted_intersection_count(&av, &bv)
    }

    fn heap_bytes(&self) -> usize {
        self.starts.len() * 8 + self.bytes.len()
    }
}

// ---------------------------------------------------------------------------
// Static-dispatch wrapper
// ---------------------------------------------------------------------------

/// Enum over the three layouts for hot paths that want static dispatch
/// (GRAPE fragments, Vineyard label CSRs). Everything delegates; the match
/// compiles away under inlining.
#[derive(Clone, Debug, PartialEq)]
pub enum TopologyLayout {
    Csr(Csr),
    Sorted(SortedCsr),
    Compressed(CompressedCsr),
}

impl Default for TopologyLayout {
    fn default() -> Self {
        TopologyLayout::Csr(Csr::default())
    }
}

impl TopologyLayout {
    /// Materialises `csr` in the requested layout.
    pub fn build(kind: LayoutKind, csr: Csr) -> TopologyLayout {
        match kind {
            LayoutKind::Csr => TopologyLayout::Csr(csr),
            LayoutKind::SortedCsr => TopologyLayout::Sorted(SortedCsr::new(csr)),
            LayoutKind::CompressedCsr => TopologyLayout::Compressed(CompressedCsr::from_csr(&csr)),
        }
    }

    /// Which layout this is.
    #[inline]
    pub fn kind(&self) -> LayoutKind {
        match self {
            TopologyLayout::Csr(_) => LayoutKind::Csr,
            TopologyLayout::Sorted(_) => LayoutKind::SortedCsr,
            TopologyLayout::Compressed(_) => LayoutKind::CompressedCsr,
        }
    }

    /// The trait object view (for capability-style composition).
    #[inline]
    pub fn as_layout(&self) -> &dyn GraphLayout {
        match self {
            TopologyLayout::Csr(c) => c,
            TopologyLayout::Sorted(s) => s,
            TopologyLayout::Compressed(c) => c,
        }
    }

    /// Borrow the raw CSR when the layout stores one (`None` for
    /// compressed).
    #[inline]
    pub fn as_csr(&self) -> Option<&Csr> {
        match self {
            TopologyLayout::Csr(c) => Some(c),
            TopologyLayout::Sorted(s) => Some(s.as_csr()),
            TopologyLayout::Compressed(_) => None,
        }
    }

    /// Materialises a plain CSR regardless of layout (decompressing if
    /// needed) — used for transposes and re-layout.
    pub fn to_csr(&self) -> Csr {
        match self {
            TopologyLayout::Csr(c) => c.clone(),
            TopologyLayout::Sorted(s) => s.as_csr().clone(),
            TopologyLayout::Compressed(c) => c.to_csr(),
        }
    }

    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.as_layout().vertex_count()
    }

    #[inline]
    pub fn edge_count(&self) -> usize {
        self.as_layout().edge_count()
    }

    #[inline]
    pub fn degree(&self, v: VId) -> usize {
        match self {
            TopologyLayout::Csr(c) => c.degree(v),
            TopologyLayout::Sorted(s) => s.as_csr().degree(v),
            TopologyLayout::Compressed(c) => GraphLayout::degree(c, v),
        }
    }

    /// Visits every `(neighbor, edge_id)` of `v` in layout order. Statically
    /// dispatched; the closure is monomorphised per call site.
    #[inline]
    pub fn for_each_adj<F: FnMut(VId, EId)>(&self, v: VId, mut f: F) {
        match self {
            TopologyLayout::Csr(c) => {
                for (w, e) in c.adj(v) {
                    f(w, e);
                }
            }
            TopologyLayout::Sorted(s) => {
                for (w, e) in s.as_csr().adj(v) {
                    f(w, e);
                }
            }
            TopologyLayout::Compressed(c) => GraphLayout::for_each_adj(c, v, &mut f),
        }
    }

    #[inline]
    pub fn adj_slices(&self, v: VId) -> Option<(&[VId], &[EId])> {
        self.as_layout().adj_slices(v)
    }

    /// Visits neighbors of `v` until `f` returns `false` (early exit).
    #[inline]
    pub fn scan_targets<F: FnMut(VId) -> bool>(&self, v: VId, mut f: F) {
        self.as_layout().scan_targets(v, &mut f)
    }

    #[inline]
    pub fn has_edge(&self, v: VId, w: VId) -> bool {
        self.as_layout().has_edge(v, w)
    }

    #[inline]
    pub fn intersection_count(&self, a: VId, b: VId) -> usize {
        self.as_layout().intersection_count(a, b)
    }

    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.as_layout().heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_csr() -> Csr {
        Csr::from_edges(
            5,
            &[
                (VId(0), VId(2)),
                (VId(0), VId(1)),
                (VId(0), VId(4)),
                (VId(1), VId(2)),
                (VId(2), VId(0)),
                (VId(2), VId(4)),
                (VId(4), VId(0)),
            ],
        )
    }

    fn collect_adj(l: &dyn GraphLayout, v: VId) -> Vec<(VId, EId)> {
        let mut out = Vec::new();
        l.for_each_adj(v, &mut |w, e| out.push((w, e)));
        out
    }

    #[test]
    fn all_layouts_agree_with_plain_csr() {
        let csr = sample_csr();
        for kind in LayoutKind::ALL {
            let layout = TopologyLayout::build(kind, csr.clone());
            assert_eq!(layout.kind(), kind);
            assert_eq!(layout.vertex_count(), csr.vertex_count());
            assert_eq!(layout.edge_count(), csr.edge_count());
            for v in 0..csr.vertex_count() {
                let vid = VId(v as u64);
                assert_eq!(layout.degree(vid), csr.degree(vid), "{kind} deg {v}");
                let want: Vec<(VId, EId)> = csr.adj(vid).collect();
                assert_eq!(collect_adj(layout.as_layout(), vid), want, "{kind} adj {v}");
                for w in 0..csr.vertex_count() {
                    let wid = VId(w as u64);
                    assert_eq!(
                        layout.has_edge(vid, wid),
                        csr.has_edge(vid, wid),
                        "{kind} has_edge {v}->{w}"
                    );
                }
            }
        }
    }

    #[test]
    fn compressed_round_trips() {
        let csr = sample_csr();
        let comp = CompressedCsr::from_csr(&csr);
        assert_eq!(comp.to_csr(), csr);
        assert!(
            GraphLayout::heap_bytes(&comp) < GraphLayout::heap_bytes(&csr),
            "compressed should be smaller: {} vs {}",
            GraphLayout::heap_bytes(&comp),
            GraphLayout::heap_bytes(&csr)
        );
    }

    #[test]
    fn sorted_csr_repairs_unsorted_parts() {
        // from_parts with deliberately unsorted adjacency
        let raw = Csr::from_parts(
            vec![0, 3, 3],
            vec![VId(9), VId(3), VId(7)],
            vec![EId(0), EId(1), EId(2)],
        );
        let sorted = SortedCsr::new(raw);
        assert_eq!(sorted.neighbors(VId(0)), &[VId(3), VId(7), VId(9)]);
        // edge ids followed their neighbors
        assert_eq!(sorted.as_csr().edge_ids(VId(0)), &[EId(1), EId(2), EId(0)]);
        assert!(GraphLayout::has_edge(&sorted, VId(0), VId(7)));
        assert!(!GraphLayout::has_edge(&sorted, VId(0), VId(8)));
    }

    #[test]
    fn intersection_strategies_agree() {
        let a: Vec<VId> = [1u64, 4, 9, 11, 30, 31, 77]
            .iter()
            .map(|&x| VId(x))
            .collect();
        let b: Vec<VId> = (0..200).map(|x| VId(x * 3)).collect();
        let want = merge_intersection_count(&a, &b);
        assert_eq!(galloping_intersection_count(&a, &b), want);
        assert_eq!(sorted_intersection_count(&a, &b), want);
        assert_eq!(sorted_intersection_count(&b, &a), want);
        assert_eq!(sorted_intersection_count(&a, &[]), 0);
        assert_eq!(sorted_intersection_count(&[], &b), 0);
    }

    #[test]
    fn galloping_handles_duplicates_and_bounds() {
        let a = [VId(5), VId(5), VId(6)];
        let b = [VId(4), VId(5), VId(5), VId(6), VId(10)];
        // duplicate-aware: each small element consumes at most one match
        assert_eq!(galloping_intersection_count(&a, &b), 3);
        let tail = [VId(100)];
        assert_eq!(galloping_intersection_count(&tail, &b), 0);
    }

    #[test]
    fn layout_kind_names_round_trip() {
        for kind in LayoutKind::ALL {
            assert_eq!(LayoutKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(LayoutKind::from_name("btree"), None);
        assert!(LayoutKind::SortedCsr.is_sorted());
        assert!(!LayoutKind::Csr.is_sorted());
        assert!(!LayoutKind::CompressedCsr.has_slices());
    }

    #[test]
    fn empty_and_isolated_vertices() {
        let csr = Csr::from_edges(3, &[]);
        for kind in LayoutKind::ALL {
            let l = TopologyLayout::build(kind, csr.clone());
            assert_eq!(l.vertex_count(), 3);
            assert_eq!(l.edge_count(), 0);
            assert_eq!(l.degree(VId(1)), 0);
            assert!(!l.has_edge(VId(0), VId(1)));
            assert_eq!(l.intersection_count(VId(0), VId(2)), 0);
        }
    }
}
