//! Fragments: the per-worker piece of an edge-cut-partitioned graph.
//!
//! A fragment owns its *inner* vertices and all edges sourced at them;
//! destination vertices owned elsewhere appear as *outer* mirrors. Local
//! dense ids place inner vertices first (`0..inner_count`) and outer
//! mirrors after, so per-vertex state is a flat array — the layout GRAPE's
//! "highly optimized core operators for fragment management" rely on.
//!
//! Topology is held as a [`TopologyLayout`] (plain, sorted, or compressed
//! CSR — see [`gs_graph::layout`]); algorithms traverse through the
//! layout-agnostic [`Fragment::for_each_out`] / [`Fragment::for_each_in`]
//! so every layout produces bit-identical results. The parallel
//! per-fragment build uses a work-stealing task queue: with more fragments
//! than cores (or skewed fragment sizes), idle workers steal pending
//! builds instead of waiting on stragglers.

use gs_graph::csr::Csr;
use gs_graph::layout::{LayoutKind, TopologyLayout};
use gs_graph::partition::{EdgeCutPartitioner, PartitionId};
use gs_graph::{EId, VId};
use gs_sanitizer::TrackedMutex;
use gs_telemetry::counter;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One fragment of a partitioned (optionally weighted) graph.
pub struct Fragment {
    pub id: PartitionId,
    pub total_fragments: usize,
    /// Total vertex count of the global graph.
    pub global_n: usize,
    /// Partitioner used to route messages to owners.
    pub router: EdgeCutPartitioner,
    /// local id → global id (inner first, then outer).
    pub l2g: Vec<VId>,
    /// global id → local id.
    g2l: HashMap<VId, u32>,
    /// Number of inner (owned) vertices.
    pub inner_count: usize,
    /// Local adjacency over local ids (edges sourced at inner vertices),
    /// in the fragment's chosen layout.
    pub out: TopologyLayout,
    /// Local reverse adjacency (in-edges of local vertices, from local
    /// sources) — the CSC transpose used by pull-mode traversal.
    pub inn: TopologyLayout,
    /// Optional edge weights parallel to `out` edge ids.
    pub weights: Option<Vec<f64>>,
}

impl Fragment {
    /// Partitions a global edge list into `k` fragments (plain CSR layout).
    pub fn partition_edges(n: usize, edges: &[(VId, VId)], k: usize) -> Vec<Fragment> {
        Self::partition_weighted(n, edges, None, k)
    }

    /// Partitions with optional per-edge weights (plain CSR layout).
    pub fn partition_weighted(
        n: usize,
        edges: &[(VId, VId)],
        weights: Option<&[f64]>,
        k: usize,
    ) -> Vec<Fragment> {
        Self::partition_weighted_with_layout(n, edges, weights, k, LayoutKind::Csr)
    }

    /// Partitions into `k` fragments materialised in the given layout.
    pub fn partition_edges_with_layout(
        n: usize,
        edges: &[(VId, VId)],
        k: usize,
        layout: LayoutKind,
    ) -> Vec<Fragment> {
        Self::partition_weighted_with_layout(n, edges, None, k, layout)
    }

    /// Partitions with optional per-edge weights (parallel to `edges`),
    /// materialising topology in `layout`.
    ///
    /// Routing is a single sequential pass (inner vertices in ascending
    /// global order, edges and their weights in global order, keyed by the
    /// source's owner); the per-fragment CSR/CSC construction then runs on
    /// a work-stealing pool of `min(k, cores)` threads — fragments are
    /// tasks, so a straggler fragment no longer serialises the tail.
    pub fn partition_weighted_with_layout(
        n: usize,
        edges: &[(VId, VId)],
        weights: Option<&[f64]>,
        k: usize,
        layout: LayoutKind,
    ) -> Vec<Fragment> {
        let router = EdgeCutPartitioner::new(k);
        let mut inner: Vec<Vec<VId>> = vec![Vec::new(); k];
        for v in 0..n as u64 {
            inner[router.owner(VId(v)).index()].push(VId(v));
        }
        let mut frag_edges: Vec<Vec<(VId, VId)>> = vec![Vec::new(); k];
        let mut frag_weights: Vec<Vec<f64>> = vec![Vec::new(); k];
        for (i, &(s, d)) in edges.iter().enumerate() {
            let f = router.owner(s).index();
            frag_edges[f].push((s, d));
            if let Some(ws) = weights {
                frag_weights[f].push(ws[i]);
            }
        }
        // one fragment's routed share: (index, owned vertices, edges, weights)
        type RoutedShare = (usize, Vec<VId>, Vec<(VId, VId)>, Option<Vec<f64>>);
        let parts: Vec<TrackedMutex<Option<RoutedShare>>> = inner
            .into_iter()
            .zip(frag_edges)
            .zip(frag_weights)
            .enumerate()
            .map(|(i, ((inn, e), w))| {
                TrackedMutex::new(
                    "grape.fragment.part",
                    Some((i, inn, e, weights.is_some().then_some(w))),
                )
            })
            .collect();
        let slots: Vec<TrackedMutex<Option<Fragment>>> = (0..k)
            .map(|_| TrackedMutex::new("grape.fragment.slot", None))
            .collect();
        let next = AtomicUsize::new(0);
        let threads = k.min(
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        );
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads.max(1) {
                let parts = &parts;
                let slots = &slots;
                let next = &next;
                scope.spawn(move |_| {
                    let mut claimed = 0usize;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= k {
                            break;
                        }
                        // beyond the first claim this thread is stealing
                        // work another (busy) worker would otherwise own
                        claimed += 1;
                        if claimed > 1 {
                            counter!("grape.steal.build_stolen");
                        }
                        let (idx, inn, e, w) = parts[i].lock().take().expect("task claimed once");
                        let frag =
                            Self::build(PartitionId(idx as u32), router, n, inn, &e, w, layout);
                        *slots[idx].lock() = Some(frag);
                    }
                });
            }
        })
        .expect("fragment build scope");
        counter!("grape.steal.build_tasks"; k as u64);
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("fragment built"))
            .collect()
    }

    /// Builds one fragment from its routed share: owned vertices (ascending
    /// global order), edges sourced at them (global order), and weights
    /// parallel to those edges.
    #[allow(clippy::too_many_arguments)]
    fn build(
        id: PartitionId,
        router: EdgeCutPartitioner,
        n: usize,
        inner: Vec<VId>,
        edges: &[(VId, VId)],
        weights: Option<Vec<f64>>,
        layout: LayoutKind,
    ) -> Fragment {
        let mut outer: Vec<VId> = Vec::new();
        {
            let mut seen = std::collections::HashSet::new();
            for &(_, d) in edges {
                if router.owner(d) != id && seen.insert(d) {
                    outer.push(d);
                }
            }
        }
        outer.sort_unstable();
        let inner_count = inner.len();
        let mut l2g = inner;
        l2g.extend(outer);
        let g2l: HashMap<VId, u32> = l2g
            .iter()
            .enumerate()
            .map(|(i, &g)| (g, i as u32))
            .collect();
        let local_edges: Vec<(VId, VId)> = edges
            .iter()
            .map(|&(s, d)| (VId(g2l[&s] as u64), VId(g2l[&d] as u64)))
            .collect();
        // Csr::from_edges assigns edge id i to the i-th pushed pair, so the
        // routed weight vector is already in edge-id order.
        let out_csr = Csr::from_edges(l2g.len(), &local_edges);
        let inn_csr = out_csr.transpose();
        Fragment {
            id,
            total_fragments: router.partition_count(),
            global_n: n,
            router,
            l2g,
            g2l,
            inner_count,
            out: TopologyLayout::build(layout, out_csr),
            inn: TopologyLayout::build(layout, inn_csr),
            weights,
        }
    }

    /// Which topology layout this fragment materialised.
    #[inline]
    pub fn layout(&self) -> LayoutKind {
        self.out.kind()
    }

    /// Local id of a global vertex, if present on this fragment.
    #[inline]
    pub fn local(&self, g: VId) -> Option<u32> {
        self.g2l.get(&g).copied()
    }

    /// Global id of a local vertex.
    #[inline]
    pub fn global(&self, l: u32) -> VId {
        self.l2g[l as usize]
    }

    /// Whether a local id is an inner (owned) vertex.
    #[inline]
    pub fn is_inner(&self, l: u32) -> bool {
        (l as usize) < self.inner_count
    }

    /// Owner fragment of a global vertex.
    #[inline]
    pub fn owner(&self, g: VId) -> PartitionId {
        self.router.owner(g)
    }

    /// Local vertex count (inner + outer).
    #[inline]
    pub fn local_count(&self) -> usize {
        self.l2g.len()
    }

    /// Out-degree of a local vertex (works on every layout).
    #[inline]
    pub fn out_degree(&self, l: u32) -> usize {
        self.out.degree(VId(l as u64))
    }

    /// In-degree of a local vertex, counting in-edges from local sources.
    #[inline]
    pub fn in_degree(&self, l: u32) -> usize {
        self.inn.degree(VId(l as u64))
    }

    /// Visits every out-edge `(neighbor local id, edge id)` of a local
    /// vertex. This is the layout-agnostic traversal primitive: identical
    /// visit order on every layout, so algorithm results are
    /// layout-independent.
    #[inline]
    pub fn for_each_out<F: FnMut(VId, EId)>(&self, l: u32, f: F) {
        self.out.for_each_adj(VId(l as u64), f);
    }

    /// Visits every in-edge `(source local id, edge id)` of a local vertex
    /// (sources are local; in-edges from remote fragments live on those
    /// fragments). Pull-mode traversal scans this.
    #[inline]
    pub fn for_each_in<F: FnMut(VId, EId)>(&self, l: u32, f: F) {
        self.inn.for_each_adj(VId(l as u64), f);
    }

    /// Visits the in-edge *sources* (local ids, no edge ids) of a local
    /// vertex until `f` returns `false` — pull-mode BFS's early-exit scan.
    #[inline]
    pub fn for_each_in_until<F: FnMut(VId) -> bool>(&self, l: u32, f: F) {
        self.inn.scan_targets(VId(l as u64), f);
    }

    /// Out-neighbors (local ids) of a local vertex, as a zero-copy slice.
    ///
    /// Only available on slice-backed layouts; compressed fragments must
    /// use [`Fragment::for_each_out`].
    #[inline]
    pub fn out_neighbors(&self, l: u32) -> &[VId] {
        self.out
            .adj_slices(VId(l as u64))
            .expect("out_neighbors: compressed layout has no slices; use for_each_out")
            .0
    }

    /// Edge ids parallel to [`Fragment::out_neighbors`] (index `weights`).
    #[inline]
    pub fn out_edge_ids(&self, l: u32) -> &[EId] {
        self.out
            .adj_slices(VId(l as u64))
            .expect("out_edge_ids: compressed layout has no slices; use for_each_out")
            .1
    }

    /// Local edge count.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out.edge_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Vec<(VId, VId)> {
        (0..n as u64)
            .map(|i| (VId(i), VId((i + 1) % n as u64)))
            .collect()
    }

    #[test]
    fn fragments_cover_graph() {
        let edges = ring(100);
        let frags = Fragment::partition_edges(100, &edges, 4);
        let inner_total: usize = frags.iter().map(|f| f.inner_count).sum();
        let edge_total: usize = frags.iter().map(|f| f.edge_count()).sum();
        assert_eq!(inner_total, 100);
        assert_eq!(edge_total, 100);
    }

    #[test]
    fn local_global_round_trip() {
        let edges = ring(50);
        let frags = Fragment::partition_edges(50, &edges, 3);
        for f in &frags {
            for l in 0..f.local_count() as u32 {
                let g = f.global(l);
                assert_eq!(f.local(g), Some(l));
                if f.is_inner(l) {
                    assert_eq!(f.owner(g), f.id);
                }
            }
        }
    }

    #[test]
    fn edges_point_to_valid_locals() {
        let edges = ring(64);
        let frags = Fragment::partition_edges(64, &edges, 4);
        for f in &frags {
            for l in 0..f.inner_count as u32 {
                for &nbr in f.out_neighbors(l) {
                    assert!((nbr.index()) < f.local_count());
                }
            }
        }
    }

    #[test]
    fn weights_follow_edges() {
        let edges = vec![(VId(0), VId(1)), (VId(1), VId(2)), (VId(2), VId(0))];
        let weights = vec![0.1, 0.2, 0.3];
        let frags = Fragment::partition_weighted(3, &edges, Some(&weights), 2);
        let mut seen: Vec<f64> = Vec::new();
        for f in &frags {
            if let Some(ws) = &f.weights {
                for l in 0..f.inner_count as u32 {
                    for (&nbr, &eid) in f.out_neighbors(l).iter().zip(f.out_edge_ids(l)) {
                        let _ = nbr;
                        seen.push(ws[eid.index()]);
                    }
                }
            }
        }
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(seen, weights);
    }

    #[test]
    fn weights_align_exactly_even_with_parallel_edges() {
        // duplicate (0,1) edges with distinct weights: alignment must follow
        // the global edge order, not a multiset match
        let edges = vec![
            (VId(0), VId(1)),
            (VId(0), VId(1)),
            (VId(1), VId(0)),
            (VId(2), VId(1)),
        ];
        let weights = vec![10.0, 20.0, 30.0, 40.0];
        let frags = Fragment::partition_weighted(3, &edges, Some(&weights), 2);
        let mut recovered: Vec<(u64, u64, f64)> = Vec::new();
        for f in &frags {
            let ws = f.weights.as_ref().unwrap();
            for l in 0..f.inner_count as u32 {
                for (&nbr, &eid) in f.out_neighbors(l).iter().zip(f.out_edge_ids(l)) {
                    recovered.push((f.global(l).0, f.global(nbr.0 as u32).0, ws[eid.index()]));
                }
            }
        }
        recovered.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(
            recovered,
            vec![(0, 1, 10.0), (0, 1, 20.0), (1, 0, 30.0), (2, 1, 40.0)]
        );
    }

    #[test]
    fn single_fragment_has_everything_inner() {
        let edges = ring(10);
        let frags = Fragment::partition_edges(10, &edges, 1);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].inner_count, 10);
        assert_eq!(frags[0].local_count(), 10);
    }

    #[test]
    fn layouts_produce_identical_fragments() {
        let edges = ring(40);
        let base = Fragment::partition_edges(40, &edges, 3);
        for layout in [LayoutKind::SortedCsr, LayoutKind::CompressedCsr] {
            let frags = Fragment::partition_edges_with_layout(40, &edges, 3, layout);
            for (a, b) in base.iter().zip(&frags) {
                assert_eq!(b.layout(), layout);
                assert_eq!(a.inner_count, b.inner_count);
                assert_eq!(a.l2g, b.l2g);
                for l in 0..a.local_count() as u32 {
                    assert_eq!(a.out_degree(l), b.out_degree(l));
                    let mut want = Vec::new();
                    a.for_each_out(l, |w, e| want.push((w, e)));
                    let mut got = Vec::new();
                    b.for_each_out(l, |w, e| got.push((w, e)));
                    assert_eq!(want, got, "layout {layout} out-adj of {l}");
                    let mut want_in = Vec::new();
                    a.for_each_in(l, |w, e| want_in.push((w, e)));
                    let mut got_in = Vec::new();
                    b.for_each_in(l, |w, e| got_in.push((w, e)));
                    assert_eq!(want_in, got_in, "layout {layout} in-adj of {l}");
                }
            }
        }
    }

    #[test]
    fn many_fragments_on_few_threads_steal_work() {
        // more fragments than any realistic core count: exercises the
        // work-stealing claim loop
        let edges = ring(256);
        let frags = Fragment::partition_edges(256, &edges, 64);
        assert_eq!(frags.len(), 64);
        let inner_total: usize = frags.iter().map(|f| f.inner_count).sum();
        assert_eq!(inner_total, 256);
        for (i, f) in frags.iter().enumerate() {
            assert_eq!(f.id.index(), i);
        }
    }
}
