/root/repo/target/release/deps/gs_ir-027712ae38a7eea8.d: crates/gs-ir/src/lib.rs crates/gs-ir/src/builder.rs crates/gs-ir/src/engine.rs crates/gs-ir/src/exec.rs crates/gs-ir/src/expr.rs crates/gs-ir/src/logical.rs crates/gs-ir/src/pattern.rs crates/gs-ir/src/physical.rs crates/gs-ir/src/record.rs

/root/repo/target/release/deps/libgs_ir-027712ae38a7eea8.rlib: crates/gs-ir/src/lib.rs crates/gs-ir/src/builder.rs crates/gs-ir/src/engine.rs crates/gs-ir/src/exec.rs crates/gs-ir/src/expr.rs crates/gs-ir/src/logical.rs crates/gs-ir/src/pattern.rs crates/gs-ir/src/physical.rs crates/gs-ir/src/record.rs

/root/repo/target/release/deps/libgs_ir-027712ae38a7eea8.rmeta: crates/gs-ir/src/lib.rs crates/gs-ir/src/builder.rs crates/gs-ir/src/engine.rs crates/gs-ir/src/exec.rs crates/gs-ir/src/expr.rs crates/gs-ir/src/logical.rs crates/gs-ir/src/pattern.rs crates/gs-ir/src/physical.rs crates/gs-ir/src/record.rs

crates/gs-ir/src/lib.rs:
crates/gs-ir/src/builder.rs:
crates/gs-ir/src/engine.rs:
crates/gs-ir/src/exec.rs:
crates/gs-ir/src/expr.rs:
crates/gs-ir/src/logical.rs:
crates/gs-ir/src/pattern.rs:
crates/gs-ir/src/physical.rs:
crates/gs-ir/src/record.rs:
