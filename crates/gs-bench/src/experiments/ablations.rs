//! Ablations: isolate the design choices DESIGN.md credits for each
//! system's performance profile.

use crate::util::{fmt_duration, fmt_speedup, time_it, TablePrinter};
use gs_datagen::catalog::Dataset;
use gs_gart::GartStore;
use gs_grape::{IncrementalPageRank, OutBuffers};
use gs_graph::{LabelId, PropertyGraphData, VId, Value};
use gs_vineyard::VineyardGraph;

/// GART's version fence: scan a snapshot that dominates every region fence
/// (raw slice iteration) vs one that forces per-entry version checks.
pub fn ablation_fence(scale: f64) {
    println!("== Ablation: GART version-fence fast path ==");
    println!("claim: fenced regions scan without per-edge version checks\n");
    let el = Dataset::by_abbr("TW").unwrap().edges(0.05 * scale);
    let n = el.vertex_count();
    // ingest in many small commits so creation versions spread out
    let schema = gs_graph::GraphSchema::homogeneous(false);
    let store = GartStore::new(schema);
    for v in 0..n as u64 {
        store.add_vertex(LabelId(0), v, vec![]).unwrap();
    }
    store.commit();
    for chunk in el.edges().chunks(1024) {
        let batch: Vec<(u64, u64, Vec<Value>)> =
            chunk.iter().map(|&(s, d)| (s.0, d.0, vec![])).collect();
        store.add_edges(LabelId(0), &batch).unwrap();
        store.commit();
    }
    let latest = store.committed_version();
    let mid = latest / 2; // forces per-entry checks on ~half the regions
    let scan = |version| {
        let mut acc = 0u64;
        store.scan_edges(LabelId(0), version, &mut |_, d, _| {
            acc = acc.wrapping_add(d.0);
        });
        acc
    };
    let (t_fenced, _) = time_it(5, || scan(latest));
    let (t_checked, _) = time_it(5, || scan(mid));
    let mut t = TablePrinter::new(&["snapshot", "scan time", "relative"]);
    t.row(vec![
        "latest (all fences pass)".into(),
        fmt_duration(t_fenced),
        "1.00×".into(),
    ]);
    t.row(vec![
        "historical (per-entry checks)".into(),
        fmt_duration(t_checked),
        format!(
            "{:.2}× slower",
            t_checked.as_secs_f64() / t_fenced.as_secs_f64()
        ),
    ]);
    t.print();
}

/// GRAPE's message manager: aggregated delta-varint buffers vs plain
/// `(u64, f64)` tuple vectors (what the Gemini replica ships) vs per-message
/// boxed channel sends (what the PowerGraph replica pays).
pub fn ablation_messages(scale: f64) {
    println!("== Ablation: GRAPE message aggregation + varint encoding ==");
    println!("claim: compact buffers beat tuple vectors beat per-message sends\n");
    let m = (500_000.0 * scale) as u64;
    let targets: Vec<VId> = (0..m).map(|i| VId(i % 10_000)).collect();

    // 1. aggregated varint buffers (GRAPE)
    let (t_grape, grape_bytes) = time_it(3, || {
        let mut out = OutBuffers::new(4);
        for (i, &v) in targets.iter().enumerate() {
            out.send(i % 4, v, 0.5f64);
        }
        let blocks = out.take();
        let bytes: usize = blocks.iter().map(|b| b.bytes.len()).sum();
        let mut acc = 0.0;
        for b in &blocks {
            b.for_each::<f64>(|_, x| acc += x);
        }
        bytes
    });
    // 2. plain tuple vectors (Gemini-style)
    let (t_tuple, tuple_bytes) = time_it(3, || {
        let mut bufs: Vec<Vec<(u64, f64)>> = vec![Vec::new(); 4];
        for (i, &v) in targets.iter().enumerate() {
            bufs[i % 4].push((v.0, 0.5));
        }
        let bytes: usize = bufs.iter().map(|b| b.len() * 16).sum();
        let mut acc = 0.0;
        for b in &bufs {
            for &(_, x) in b {
                acc += x;
            }
        }
        std::hint::black_box(acc);
        bytes
    });
    // 3. per-message boxed channel sends (PowerGraph-style)
    let (t_boxed, _) = time_it(1, || {
        let (tx, rx) = crossbeam::channel::unbounded::<(u64, Box<f64>)>();
        for &v in targets.iter() {
            // gs-lint: allow(L003 single-threaded micro-benchmark; rx is held in this scope so the send cannot fail)
            tx.send((v.0, Box::new(0.5))).unwrap();
        }
        drop(tx);
        let mut acc = 0.0;
        for (_, x) in rx {
            acc += *x;
        }
        acc as usize
    });

    let mut t = TablePrinter::new(&["transport", "time (send+drain)", "wire bytes", "vs GRAPE"]);
    t.row(vec![
        "GRAPE compact varint buffers".into(),
        fmt_duration(t_grape),
        grape_bytes.to_string(),
        "1.00×".into(),
    ]);
    t.row(vec![
        "tuple vectors (Gemini-like)".into(),
        fmt_duration(t_tuple),
        tuple_bytes.to_string(),
        fmt_speedup(t_tuple, t_grape),
    ]);
    t.row(vec![
        "boxed per-message sends (PowerGraph-like)".into(),
        fmt_duration(t_boxed),
        format!("{}", m * 24),
        fmt_speedup(t_boxed, t_grape),
    ]);
    t.print();
    println!(
        "wire-size ratio: varint buffers use {:.0}% of tuple-vector bytes",
        100.0 * grape_bytes as f64 / tuple_bytes as f64
    );
}

/// Vineyard's property hash index vs full scans for point lookups (the
/// index GRIN advertises through `INDEX_PROPERTY`).
pub fn ablation_index(scale: f64) {
    println!("== Ablation: Vineyard property index vs full scan ==");
    println!("claim: indexed vertices_by_property is O(1) per lookup\n");
    use gs_grin::GrinGraph;
    let n = (100_000.0 * scale) as usize;
    let mut schema = gs_graph::GraphSchema::new();
    let v = schema.add_vertex_label("V", &[("tag", gs_graph::ValueType::Int)]);
    schema.add_edge_label("E", v, v, &[]);
    let mut data = PropertyGraphData::new(schema);
    for i in 0..n as u64 {
        data.add_vertex(v, i, vec![Value::Int((i % 1000) as i64)]);
    }
    data.add_edge(LabelId(0), 0, 1, vec![]);
    let mut store = VineyardGraph::build(&data).unwrap();
    let lookups: Vec<Value> = (0..200).map(|i| Value::Int(i * 3 % 1000)).collect();
    let (t_scan, hits_scan) = time_it(3, || {
        lookups
            .iter()
            .map(|val| {
                store
                    .vertices_by_property(v, gs_graph::PropId(0), val)
                    .len()
            })
            .sum::<usize>()
    });
    store.build_property_index(v, gs_graph::PropId(0));
    let (t_index, hits_index) = time_it(3, || {
        lookups
            .iter()
            .map(|val| {
                store
                    .vertices_by_property(v, gs_graph::PropId(0), val)
                    .len()
            })
            .sum::<usize>()
    });
    assert_eq!(hits_scan, hits_index);
    let mut t = TablePrinter::new(&["access path", "200 lookups", "speedup"]);
    t.row(vec!["full scan".into(), fmt_duration(t_scan), "—".into()]);
    t.row(vec![
        "hash index".into(),
        fmt_duration(t_index),
        fmt_speedup(t_scan, t_index),
    ]);
    t.print();
}

/// Ingress auto-incrementalization: incremental PageRank maintenance vs
/// recomputation from scratch as the graph receives updates.
pub fn ablation_ingress(scale: f64) {
    println!("== Ablation: Ingress incremental PageRank vs recompute ==");
    println!("claim: memoized deltas touch only the affected region\n");
    let el = Dataset::by_abbr("PD").unwrap().edges(0.05 * scale);
    let n = el.vertex_count();
    let mut inc = IncrementalPageRank::new(n, el.edges(), 0.85, 1e-10);
    use rand::Rng;
    let mut rng = rand_pcg::Pcg64Mcg::new(3);
    let updates: Vec<(VId, VId)> = (0..20)
        .map(|_| {
            (
                VId(rng.gen_range(0..n as u64)),
                VId(rng.gen_range(0..n as u64)),
            )
        })
        .collect();
    let t0 = std::time::Instant::now();
    let mut touched_total = 0usize;
    for &(s, d) in &updates {
        touched_total += inc.insert_edge(s, d);
    }
    let t_inc = t0.elapsed();
    let (t_full, _) = time_it(1, || inc.recompute_from_scratch());
    let mut t = TablePrinter::new(&["strategy", "20 updates", "notes"]);
    t.row(vec![
        "incremental (Ingress)".into(),
        fmt_duration(t_inc),
        format!(
            "avg {} vertices touched/update",
            touched_total / updates.len()
        ),
    ]);
    t.row(vec![
        "recompute from scratch".into(),
        fmt_duration(t_full * 20),
        format!("{} vertices every time (×20 shown)", n),
    ]);
    t.print();
    println!("incremental advantage: {}", fmt_speedup(t_full * 20, t_inc));
}
