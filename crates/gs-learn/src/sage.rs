//! GraphSAGE with hand-written backprop over sampled mini-batches.
//!
//! `h^l(v) = ReLU(W_l · [h^{l-1}(v) ‖ mean_{w∈S(v)} h^{l-1}(w)])`, followed
//! by a linear classifier over the seed representations. This is the model
//! the Fig. 7(l)/(m) scaling experiments train (3 layers, fan-out
//! [15, 10, 5], batch 1024).

use crate::sampler::SampledBatch;
use crate::tensor::{softmax_cross_entropy, Linear, Matrix};

/// A GraphSAGE classifier.
pub struct GraphSage {
    /// One aggregation layer per hop: `Linear(2·d_in → d_out)`.
    pub layers: Vec<Linear>,
    /// Classification head `hidden → classes`.
    pub head: Linear,
    pub feature_dim: usize,
    pub hidden: usize,
    pub classes: usize,
}

impl GraphSage {
    /// `depth`-layer model (depth must equal the sampler's fan-out count).
    pub fn new(depth: usize, feature_dim: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        let mut layers = Vec::with_capacity(depth);
        let mut din = feature_dim;
        for l in 0..depth {
            layers.push(Linear::new(
                2 * din,
                hidden,
                seed.wrapping_add(l as u64 + 1),
            ));
            din = hidden;
        }
        Self {
            layers,
            head: Linear::new(hidden, classes, seed.wrapping_add(99)),
            feature_dim,
            hidden,
            classes,
        }
    }

    /// Forward pass; returns seed logits plus the intermediates backprop
    /// needs.
    pub fn forward(&self, batch: &SampledBatch) -> SageActivations {
        let depth = self.layers.len();
        assert_eq!(batch.hops.len(), depth, "batch depth != model depth");
        // h[k] = representations of layer-k vertices (start: raw features)
        let mut h: Vec<Matrix> = batch
            .features
            .iter()
            .map(|rows| Matrix::from_rows(rows.iter().map(|r| r.to_vec()).collect()))
            .collect();
        let mut saved: Vec<Vec<SageStep>> = Vec::with_capacity(depth);
        for l in 0..depth {
            // after step l, positions 0..depth-l have depth-(l+1)-hop reps
            let positions = depth - l;
            let mut next_h: Vec<Matrix> = Vec::with_capacity(positions);
            let mut steps: Vec<SageStep> = Vec::with_capacity(positions);
            for k in 0..positions {
                let (x, counts) = concat_with_mean(&h[k], &h[k + 1], &batch.hops[k]);
                let mut z = self.layers[l].forward(&x);
                let mask = z.relu_inplace();
                steps.push(SageStep {
                    x,
                    mask,
                    mean_counts: counts,
                });
                next_h.push(z);
            }
            saved.push(steps);
            h = next_h;
        }
        let seed_repr = h.into_iter().next().expect("seed representations");
        let logits = self.head.forward(&seed_repr);
        SageActivations {
            logits,
            seed_repr,
            steps: saved,
        }
    }

    /// Forward + loss + backward; accumulates gradients, returns the loss.
    pub fn forward_backward(&mut self, batch: &SampledBatch, labels: &[usize]) -> f32 {
        let acts = self.forward(batch);
        let (loss, dlogits) = softmax_cross_entropy(&acts.logits, labels);
        let dseed = self.head.backward(&acts.seed_repr, &dlogits);
        // backprop through sage layers, deepest first
        let depth = self.layers.len();
        let mut grads: Vec<Matrix> = vec![dseed];
        for l in (0..depth).rev() {
            let steps = &acts.steps[l];
            let positions = steps.len();
            // gradient tensors for the layer-(l) inputs: positions+1 of them
            let rows_below: Vec<usize> = (0..=positions)
                .map(|k| {
                    if k < positions {
                        steps[k].x.rows
                    } else {
                        steps[positions - 1].mean_counts.len_source()
                    }
                })
                .collect();
            let _ = rows_below;
            let mut below: Vec<Option<Matrix>> = (0..=positions).map(|_| None).collect();
            for k in (0..positions).rev() {
                let step = &steps[k];
                let mut dz = grads[k].clone();
                // relu mask
                for (v, &m) in dz.data.iter_mut().zip(&step.mask) {
                    if !m {
                        *v = 0.0;
                    }
                }
                let dx = self.layers[l].backward(&step.x, &dz);
                // split dx into self part and mean part
                let din = dx.cols / 2;
                let mut dself = Matrix::zeros(dx.rows, din);
                for r in 0..dx.rows {
                    dself.data[r * din..(r + 1) * din].copy_from_slice(&dx.row(r)[..din]);
                }
                add_assign(&mut below[k], dself);
                // scatter mean gradients to neighbour rows
                let nrows = step.mean_counts.neighbor_rows;
                let mut dnbr = Matrix::zeros(nrows, din);
                for (r, nbrs) in step.mean_counts.hops.iter().enumerate() {
                    if nbrs.is_empty() {
                        continue;
                    }
                    let scale = 1.0 / nbrs.len() as f32;
                    for &i in nbrs {
                        for c in 0..din {
                            *dnbr.at_mut(i, c) += dx.at(r, din + c) * scale;
                        }
                    }
                }
                add_assign(&mut below[k + 1], dnbr);
            }
            grads = below
                .into_iter()
                .map(|g| g.expect("gradient for every position"))
                .collect();
        }
        loss
    }

    /// Applies one Adam step on all parameters.
    pub fn step(&mut self, lr: f32) {
        for l in &mut self.layers {
            l.adam_step(lr);
        }
        self.head.adam_step(lr);
    }

    /// Predicted classes for a batch's seeds.
    pub fn predict(&self, batch: &SampledBatch) -> Vec<usize> {
        let acts = self.forward(batch);
        (0..acts.logits.rows)
            .map(|r| {
                acts.logits
                    .row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap()
            })
            .collect()
    }

    /// Copies parameters from another instance (replica sync).
    pub fn copy_params_from(&mut self, other: &GraphSage) {
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.copy_params_from(b);
        }
        self.head.copy_params_from(&other.head);
    }

    /// Averages parameters across replicas into `self` (local-SGD sync).
    pub fn average_from(&mut self, others: &[&GraphSage]) {
        let k = (others.len() + 1) as f32;
        for li in 0..self.layers.len() {
            for i in 0..self.layers[li].w.data.len() {
                let mut sum = self.layers[li].w.data[i];
                for o in others {
                    sum += o.layers[li].w.data[i];
                }
                self.layers[li].w.data[i] = sum / k;
            }
            for i in 0..self.layers[li].b.len() {
                let mut sum = self.layers[li].b[i];
                for o in others {
                    sum += o.layers[li].b[i];
                }
                self.layers[li].b[i] = sum / k;
            }
        }
        for i in 0..self.head.w.data.len() {
            let mut sum = self.head.w.data[i];
            for o in others {
                sum += o.head.w.data[i];
            }
            self.head.w.data[i] = sum / k;
        }
        for i in 0..self.head.b.len() {
            let mut sum = self.head.b[i];
            for o in others {
                sum += o.head.b[i];
            }
            self.head.b[i] = sum / k;
        }
    }
}

/// Saved per-step intermediates for backprop.
pub struct SageStep {
    x: Matrix,
    mask: Vec<bool>,
    mean_counts: MeanInfo,
}

struct MeanInfo {
    hops: Vec<Vec<usize>>,
    neighbor_rows: usize,
}

impl MeanInfo {
    fn len_source(&self) -> usize {
        self.neighbor_rows
    }
}

/// Forward-pass products of one batch.
pub struct SageActivations {
    pub logits: Matrix,
    seed_repr: Matrix,
    steps: Vec<Vec<SageStep>>,
}

fn concat_with_mean(h_self: &Matrix, h_nbr: &Matrix, hops: &[Vec<usize>]) -> (Matrix, MeanInfo) {
    let din = h_self.cols;
    let mut mean = Matrix::zeros(h_self.rows, din);
    for (r, nbrs) in hops.iter().enumerate() {
        if nbrs.is_empty() {
            continue;
        }
        let scale = 1.0 / nbrs.len() as f32;
        for &i in nbrs {
            for c in 0..din {
                *mean.at_mut(r, c) += h_nbr.at(i, c) * scale;
            }
        }
    }
    (
        h_self.hconcat(&mean),
        MeanInfo {
            hops: hops.to_vec(),
            neighbor_rows: h_nbr.rows,
        },
    )
}

fn add_assign(slot: &mut Option<Matrix>, m: Matrix) {
    match slot {
        None => *slot = Some(m),
        Some(acc) => {
            for (a, b) in acc.data.iter_mut().zip(&m.data) {
                *a += b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::Sampler;
    use gs_graph::{LabelId, VId};
    use gs_grin::graph::mock::MockGraph;

    fn setup() -> (MockGraph, Vec<usize>) {
        let mut edges = Vec::new();
        for i in 0..60u64 {
            for j in 1..=6u64 {
                edges.push((i, (i + j) % 60, 1.0));
            }
        }
        (MockGraph::new(60, &edges), vec![])
    }

    #[test]
    fn forward_shapes() {
        let (g, _) = setup();
        let s = Sampler::new(&g, LabelId(0), LabelId(0), vec![4, 3], 8);
        let batch = s.sample(&[VId(0), VId(1), VId(2)], 5);
        let model = GraphSage::new(2, 8, 16, 5, 1);
        let acts = model.forward(&batch);
        assert_eq!(acts.logits.rows, 3);
        assert_eq!(acts.logits.cols, 5);
    }

    #[test]
    fn training_reduces_loss() {
        let (g, _) = setup();
        let s = Sampler::new(&g, LabelId(0), LabelId(0), vec![4, 3], 8);
        let seeds: Vec<VId> = (0..16u64).map(VId).collect();
        let batch = s.sample(&seeds, 9);
        let labels: Vec<usize> = seeds.iter().map(|&v| s.label_of(v, 4)).collect();
        let mut model = GraphSage::new(2, 8, 16, 4, 3);
        let first = model.forward_backward(&batch, &labels);
        model.step(0.01);
        let mut last = first;
        for _ in 0..60 {
            last = model.forward_backward(&batch, &labels);
            model.step(0.01);
        }
        assert!(
            last < first * 0.5,
            "loss did not drop: first {first} last {last}"
        );
    }

    #[test]
    fn can_overfit_single_batch_to_high_accuracy() {
        let (g, _) = setup();
        let s = Sampler::new(&g, LabelId(0), LabelId(0), vec![5, 4], 8);
        let seeds: Vec<VId> = (0..12u64).map(VId).collect();
        let batch = s.sample(&seeds, 2);
        let labels: Vec<usize> = seeds.iter().map(|&v| s.label_of(v, 3)).collect();
        let mut model = GraphSage::new(2, 8, 24, 3, 7);
        for _ in 0..200 {
            model.forward_backward(&batch, &labels);
            model.step(0.02);
        }
        let pred = model.predict(&batch);
        let correct = pred.iter().zip(&labels).filter(|(a, b)| a == b).count();
        assert!(
            correct >= 10,
            "{correct}/12 correct; labels {labels:?} pred {pred:?}"
        );
    }

    #[test]
    fn replica_averaging_preserves_shapes() {
        let a = GraphSage::new(2, 8, 16, 3, 1);
        let b = GraphSage::new(2, 8, 16, 3, 2);
        let mut avg = GraphSage::new(2, 8, 16, 3, 1);
        avg.copy_params_from(&a);
        avg.average_from(&[&b]);
        // averaged params are the midpoint
        let mid = (a.head.w.data[0] + b.head.w.data[0]) / 2.0;
        assert!((avg.head.w.data[0] - mid).abs() < 1e-6);
    }
}
