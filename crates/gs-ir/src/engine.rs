//! The unified execution interface over GraphIR physical plans.
//!
//! The Flex stack has three ways to run a [`PhysicalPlan`] — the
//! single-threaded reference [`exec`](crate::exec)utor, Gaia's
//! data-parallel dataflow runtime, and HiActor's shard-actor OLTP
//! runtime. [`QueryEngine`] is the one interface all three implement, so
//! engine choice becomes a value-level decision (`&dyn QueryEngine`)
//! instead of a call-site decision: differential tests iterate over a
//! slice of engines, and `gs-flex`'s builder hands back whichever engine
//! the deployment descriptor selected.

use crate::physical::PhysicalPlan;
use crate::record::Record;
use crate::verify::{verify_on_submit, VerifyLevel};
use crate::Result;
use gs_grin::GrinGraph;

/// A compiled, engine-resident query handle: the *execute-many* half of
/// the prepare/execute split.
///
/// Preparation runs the submit-time work — plan verification, and any
/// per-plan state the engine wants to cache (stage partitioning, shard
/// affinity) — exactly once; each [`PreparedQuery::execute`] then runs the
/// plan over a graph without repeating it. Handles are `Send + Sync` so a
/// serving layer can share one prepared statement across sessions.
pub trait PreparedQuery: Send + Sync {
    /// Runs the prepared plan to completion over `graph`.
    ///
    /// Same contract as [`QueryEngine::execute`]: the batch is fully
    /// materialised on return and no reference to `graph` is retained.
    fn execute(&self, graph: &dyn GrinGraph) -> Result<Vec<Record>>;

    /// The physical plan this handle was prepared from.
    fn plan(&self) -> &PhysicalPlan;

    /// Name of the engine that prepared this handle.
    fn engine_name(&self) -> &'static str;
}

/// The engine-agnostic fallback handle returned by the default
/// [`QueryEngine::prepare`]: execution delegates to the reference
/// executor — semantically identical for any conforming engine (all
/// engines must agree with [`crate::exec::execute`]), just without the
/// engine's own scheduling.
struct DefaultPrepared {
    plan: PhysicalPlan,
    engine: &'static str,
}

impl PreparedQuery for DefaultPrepared {
    fn execute(&self, graph: &dyn GrinGraph) -> Result<Vec<Record>> {
        crate::exec::execute(&self.plan, graph)
    }

    fn plan(&self) -> &PhysicalPlan {
        &self.plan
    }

    fn engine_name(&self) -> &'static str {
        self.engine
    }
}

/// A query-execution engine: runs a physical plan over a GRIN graph to a
/// materialised record batch.
///
/// All implementations must agree with the reference executor's operator
/// semantics ([`crate::exec::apply`]); they differ only in *how* the work
/// is scheduled (single thread, data-parallel workers, shard actors).
///
/// Engines are `Send + Sync`: a deployment hands one engine to many
/// serving sessions, and prepared handles may outlive the call that
/// created them on another thread.
pub trait QueryEngine: Send + Sync {
    /// Runs `plan` to completion and returns every output record.
    ///
    /// Implementations may parallelise internally but must not return
    /// until the batch is fully materialised, and must not retain any
    /// reference to `graph` afterwards.
    fn execute(&self, plan: &PhysicalPlan, graph: &dyn GrinGraph) -> Result<Vec<Record>>;

    /// Short engine identifier for diagnostics and telemetry labels.
    fn name(&self) -> &'static str;

    /// Prepares `plan` for repeated execution: parse → lower → optimize →
    /// verify happen *once* upstream, and the returned handle executes
    /// many times without re-verifying.
    ///
    /// The default implementation wraps execution with reference semantics
    /// — identical results for any conforming engine, just without its
    /// scheduling. Engines with their own runtimes override this to
    /// schedule through that runtime, verify once against their submit
    /// policy, and cache per-plan state.
    fn prepare(&self, plan: &PhysicalPlan) -> Result<Box<dyn PreparedQuery>> {
        Ok(Box::new(DefaultPrepared {
            plan: plan.clone(),
            engine: self.name(),
        }))
    }
}

/// The definitional engine: single-threaded, materialised intermediates,
/// delegating straight to [`crate::exec::execute`]. Every other engine is
/// differential-tested against this one.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReferenceEngine {
    /// Submit-time plan verification policy (defaults to
    /// [`VerifyLevel::Warn`]: verify and count, never reject).
    pub verify: VerifyLevel,
}

impl ReferenceEngine {
    /// Engine with an explicit submit-time verification level.
    pub fn with_verify(verify: VerifyLevel) -> Self {
        Self { verify }
    }
}

impl QueryEngine for ReferenceEngine {
    fn execute(&self, plan: &PhysicalPlan, graph: &dyn GrinGraph) -> Result<Vec<Record>> {
        verify_on_submit(plan, graph.schema(), self.verify, self.name())?;
        crate::exec::execute(plan, graph)
    }

    fn name(&self) -> &'static str {
        "reference"
    }

    fn prepare(&self, plan: &PhysicalPlan) -> Result<Box<dyn PreparedQuery>> {
        Ok(Box::new(VerifyOncePrepared::new(
            plan.clone(),
            self.verify,
            "reference",
        )))
    }
}

/// Shared verify-once state for engine-specific prepared handles: the
/// first execute runs submit-time verification against the graph's schema
/// (prepare itself has no schema in scope); subsequent executes skip it.
pub struct VerifyOnce {
    verify: VerifyLevel,
    done: std::sync::atomic::AtomicBool,
}

impl VerifyOnce {
    /// A fresh guard for the given submit-time level.
    pub fn new(verify: VerifyLevel) -> Self {
        Self {
            verify,
            done: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Verifies on the first call (per the handle's level), no-ops after a
    /// success. A concurrent first call may verify twice — harmless, the
    /// verifier is pure.
    pub fn check(
        &self,
        plan: &PhysicalPlan,
        schema: &gs_graph::schema::GraphSchema,
        context: &str,
    ) -> Result<()> {
        use std::sync::atomic::Ordering;
        if self.done.load(Ordering::Acquire) {
            return Ok(());
        }
        verify_on_submit(plan, schema, self.verify, context)?;
        self.done.store(true, Ordering::Release);
        Ok(())
    }
}

/// [`ReferenceEngine`]'s prepared handle: verify once, then straight to
/// the reference executor on every call.
struct VerifyOncePrepared {
    plan: PhysicalPlan,
    once: VerifyOnce,
    engine: &'static str,
}

impl VerifyOncePrepared {
    fn new(plan: PhysicalPlan, verify: VerifyLevel, engine: &'static str) -> Self {
        Self {
            plan,
            once: VerifyOnce::new(verify),
            engine,
        }
    }
}

impl PreparedQuery for VerifyOncePrepared {
    fn execute(&self, graph: &dyn GrinGraph) -> Result<Vec<Record>> {
        self.once.check(&self.plan, graph.schema(), self.engine)?;
        crate::exec::execute(&self.plan, graph)
    }

    fn plan(&self) -> &PhysicalPlan {
        &self.plan
    }

    fn engine_name(&self) -> &'static str {
        self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::lower_naive;
    use crate::PlanBuilder;
    use gs_grin::graph::mock::MockGraph;

    #[test]
    fn reference_engine_matches_exec() {
        let g = MockGraph::new(20, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
        let s = g.schema().clone();
        let plan = lower_naive(&PlanBuilder::new(&s).scan("a", "V").unwrap().build()).unwrap();
        let engine: &dyn QueryEngine = &ReferenceEngine::default();
        assert_eq!(engine.name(), "reference");
        let rows = engine.execute(&plan, &g).unwrap();
        assert_eq!(rows, crate::exec::execute(&plan, &g).unwrap());
        assert_eq!(rows.len(), 20);
    }

    #[test]
    fn prepared_handle_matches_direct_execution() {
        let g = MockGraph::new(12, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let s = g.schema().clone();
        let plan = lower_naive(&PlanBuilder::new(&s).scan("a", "V").unwrap().build()).unwrap();
        let engine: &dyn QueryEngine = &ReferenceEngine::default();
        let prepared = engine.prepare(&plan).unwrap();
        assert_eq!(prepared.engine_name(), "reference");
        assert_eq!(prepared.plan().ops.len(), plan.ops.len());
        // execute-many: repeated calls keep answering
        for _ in 0..3 {
            assert_eq!(
                prepared.execute(&g).unwrap(),
                engine.execute(&plan, &g).unwrap()
            );
        }
    }

    #[test]
    fn prepared_deny_handle_rejects_bad_plan() {
        use crate::physical::PhysicalOp;
        use crate::record::Layout;
        let g = MockGraph::new(4, &[(0, 1, 1.0)]);
        let bad = PhysicalPlan {
            ops: vec![PhysicalOp::Scan {
                label: crate::LabelId(42),
                predicate: None,
                index_lookup: None,
            }],
            layout: Layout::new(),
        };
        let deny = ReferenceEngine::with_verify(VerifyLevel::Deny);
        let prepared = QueryEngine::prepare(&deny, &bad).unwrap();
        let err = prepared.execute(&g).unwrap_err();
        assert!(err.to_string().contains("E001"), "{err}");
    }

    #[test]
    fn deny_level_rejects_bad_plan_on_submit() {
        use crate::physical::PhysicalOp;
        use crate::record::Layout;
        use crate::verify::VerifyLevel;
        let g = MockGraph::new(4, &[(0, 1, 1.0)]);
        let bad = PhysicalPlan {
            ops: vec![PhysicalOp::Scan {
                label: crate::LabelId(42),
                predicate: None,
                index_lookup: None,
            }],
            layout: Layout::new(),
        };
        let deny = ReferenceEngine::with_verify(VerifyLevel::Deny);
        let err = deny.execute(&bad, &g).unwrap_err();
        assert!(err.to_string().contains("E001"), "{err}");
        // Off never raises the verifier's diagnostic (whatever exec does).
        let off = ReferenceEngine::with_verify(VerifyLevel::Off);
        if let Err(e) = off.execute(&bad, &g) {
            assert!(!e.to_string().contains("E001"), "{e}");
        }
    }
}
