//! Backend-agnostic property-graph payload.
//!
//! Dataset generators and file loaders produce a [`PropertyGraphData`];
//! every storage backend (Vineyard, GART, GraphAr) can be *built from* one,
//! and GraphAr can dump back to one. This is the interchange point that lets
//! the same dataset flow into any LEGO-brick storage configuration.

use crate::error::{GraphError, Result};
use crate::ids::LabelId;
use crate::schema::GraphSchema;
use crate::value::Value;

/// All vertices of one label: external ids plus property rows (in PropId
/// order, parallel to `external_ids`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VertexBatch {
    pub label: LabelId,
    pub external_ids: Vec<u64>,
    pub properties: Vec<Vec<Value>>,
}

/// All edges of one label: endpoint *external* ids plus property rows.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EdgeBatch {
    pub label: LabelId,
    /// (src external id, dst external id) pairs.
    pub endpoints: Vec<(u64, u64)>,
    pub properties: Vec<Vec<Value>>,
}

/// A complete labeled property graph in interchange form.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PropertyGraphData {
    pub schema: GraphSchema,
    pub vertices: Vec<VertexBatch>,
    pub edges: Vec<EdgeBatch>,
}

impl PropertyGraphData {
    /// Empty payload over a schema, with one batch slot per label.
    pub fn new(schema: GraphSchema) -> Self {
        let vertices = schema
            .vertex_labels()
            .iter()
            .map(|l| VertexBatch {
                label: l.id,
                ..Default::default()
            })
            .collect();
        let edges = schema
            .edge_labels()
            .iter()
            .map(|l| EdgeBatch {
                label: l.id,
                ..Default::default()
            })
            .collect();
        Self {
            schema,
            vertices,
            edges,
        }
    }

    /// Appends a vertex with its properties (PropId order).
    pub fn add_vertex(&mut self, label: LabelId, external_id: u64, props: Vec<Value>) {
        let b = &mut self.vertices[label.index()];
        b.external_ids.push(external_id);
        b.properties.push(props);
    }

    /// Appends an edge with its properties (PropId order).
    pub fn add_edge(&mut self, label: LabelId, src: u64, dst: u64, props: Vec<Value>) {
        let b = &mut self.edges[label.index()];
        b.endpoints.push((src, dst));
        b.properties.push(props);
    }

    /// Total vertex count across labels.
    pub fn vertex_count(&self) -> usize {
        self.vertices.iter().map(|b| b.external_ids.len()).sum()
    }

    /// Total edge count across labels.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(|b| b.endpoints.len()).sum()
    }

    /// Validates internal consistency: property arity matches schema, batch
    /// slots match label ids, property rows parallel id arrays.
    pub fn validate(&self) -> Result<()> {
        for (i, b) in self.vertices.iter().enumerate() {
            if b.label.index() != i {
                return Err(GraphError::Schema("vertex batch out of order".into()));
            }
            if b.external_ids.len() != b.properties.len() {
                return Err(GraphError::Schema("vertex ids/props length skew".into()));
            }
            let arity = self.schema.vertex_label(b.label)?.properties.len();
            if let Some(row) = b.properties.iter().find(|r| r.len() != arity) {
                return Err(GraphError::Schema(format!(
                    "vertex property arity {} != schema arity {arity}",
                    row.len()
                )));
            }
        }
        for (i, b) in self.edges.iter().enumerate() {
            if b.label.index() != i {
                return Err(GraphError::Schema("edge batch out of order".into()));
            }
            if b.endpoints.len() != b.properties.len() {
                return Err(GraphError::Schema("edge ids/props length skew".into()));
            }
            let arity = self.schema.edge_label(b.label)?.properties.len();
            if let Some(row) = b.properties.iter().find(|r| r.len() != arity) {
                return Err(GraphError::Schema(format!(
                    "edge property arity {} != schema arity {arity}",
                    row.len()
                )));
            }
        }
        Ok(())
    }

    /// Builds a homogeneous payload from a plain edge list (simple graphs
    /// used by the Graphalytics workloads). Vertex external ids are 0..n.
    pub fn from_edge_list(n: usize, edges: &[(u64, u64)]) -> Self {
        let schema = GraphSchema::homogeneous(false);
        let mut g = Self::new(schema);
        for v in 0..n as u64 {
            g.add_vertex(LabelId(0), v, vec![]);
        }
        for &(s, d) in edges {
            g.add_edge(LabelId(0), s, d, vec![]);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueType;

    #[test]
    fn from_edge_list_counts() {
        let g = PropertyGraphData::from_edge_list(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn validate_catches_arity_skew() {
        let mut schema = GraphSchema::new();
        let v = schema.add_vertex_label("V", &[("x", ValueType::Int)]);
        schema.add_edge_label("E", v, v, &[]);
        let mut g = PropertyGraphData::new(schema);
        g.add_vertex(v, 0, vec![]); // missing the "x" property
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_ok_for_proper_payload() {
        let mut schema = GraphSchema::new();
        let v = schema.add_vertex_label("V", &[("x", ValueType::Int)]);
        schema.add_edge_label("E", v, v, &[("w", ValueType::Float)]);
        let mut g = PropertyGraphData::new(schema);
        g.add_vertex(v, 10, vec![Value::Int(1)]);
        g.add_vertex(v, 20, vec![Value::Int(2)]);
        g.add_edge(LabelId(0), 10, 20, vec![Value::Float(0.5)]);
        g.validate().unwrap();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }
}
