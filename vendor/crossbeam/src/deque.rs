//! A minimal work-stealing injector queue (FIFO) with crossbeam's
//! `Steal` result type.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// A task was stolen.
    Success(T),
    /// The queue was empty.
    Empty,
    /// Lost a race; try again.
    Retry,
}

/// A shared FIFO task injector that any thread can push to or steal from.
#[derive(Debug, Default)]
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    pub fn new() -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    pub fn push(&self, task: T) {
        self.queue.lock().unwrap().push_back(task);
    }

    pub fn steal(&self) -> Steal<T> {
        match self.queue.try_lock() {
            Ok(mut q) => match q.pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            },
            Err(std::sync::TryLockError::WouldBlock) => Steal::Retry,
            Err(std::sync::TryLockError::Poisoned(p)) => match p.into_inner().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            },
        }
    }

    pub fn is_empty(&self) -> bool {
        self.queue.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_then_steal_is_fifo() {
        let inj = Injector::new();
        inj.push(1);
        inj.push(2);
        assert_eq!(inj.steal(), Steal::Success(1));
        assert_eq!(inj.steal(), Steal::Success(2));
        assert_eq!(inj.steal(), Steal::Empty);
    }

    #[test]
    fn concurrent_stealers_drain_everything() {
        let inj = std::sync::Arc::new(Injector::new());
        for i in 0..10_000u64 {
            inj.push(i);
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let inj = inj.clone();
            handles.push(std::thread::spawn(move || {
                let mut n = 0usize;
                loop {
                    match inj.steal() {
                        Steal::Success(_) => n += 1,
                        Steal::Empty => break,
                        Steal::Retry => {}
                    }
                }
                n
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 10_000);
    }
}
