/root/repo/target/release/deps/gs_gaia-b34d27eacc71f570.d: crates/gs-gaia/src/lib.rs

/root/repo/target/release/deps/libgs_gaia-b34d27eacc71f570.rlib: crates/gs-gaia/src/lib.rs

/root/repo/target/release/deps/libgs_gaia-b34d27eacc71f570.rmeta: crates/gs-gaia/src/lib.rs

crates/gs-gaia/src/lib.rs:
