/root/repo/target/debug/deps/gs_gaia-c9f52b7385c8dc85.d: crates/gs-gaia/src/lib.rs

/root/repo/target/debug/deps/libgs_gaia-c9f52b7385c8dc85.rlib: crates/gs-gaia/src/lib.rs

/root/repo/target/debug/deps/libgs_gaia-c9f52b7385c8dc85.rmeta: crates/gs-gaia/src/lib.rs

crates/gs-gaia/src/lib.rs:
