//! GRIN directly over the archive: chunk-granular lazy loading.
//!
//! "GraphAr ... can be directly used as a data source for applications by
//! integrating GRIN" (paper §4.2). [`GraphArStore`] implements [`GrinGraph`]
//! without materialising the whole graph: adjacency and property reads load
//! (and cache) only the chunk containing the requested vertex/edge. It is
//! deliberately the *slowest* backend (Fig. 7a) — every cold access pays
//! decode + I/O — but the only one whose memory footprint is O(working set).

use crate::codec;
use crate::format::{read_metadata, Metadata};
use gs_graph::csr::Csr;
use gs_graph::layout::{LayoutKind, TopologyLayout};
use gs_grin::{
    AdjEntry, Capabilities, Direction, GraphError, GraphSchema, GrinGraph, LabelId, PropId, Result,
    VId, Value,
};
use gs_sanitizer::TrackedMutex;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Cache key: file-relative chunk path.
type ChunkKey = (String, usize);

enum Chunk {
    U64(Vec<u64>),
    Col(Vec<Value>),
}

/// Lazily-loading GRIN view of a GraphAr archive.
pub struct GraphArStore {
    dir: PathBuf,
    meta: Metadata,
    cache: TrackedMutex<HashMap<ChunkKey, Arc<Chunk>>>,
    /// Requested topology layout. `Csr` keeps the chunk-lazy default;
    /// other layouts pin each edge label's topology in memory on first
    /// touch (see [`GraphArStore::open_with_layout`]).
    layout: LayoutKind,
    /// Pinned per-(edge label, direction) topologies, built lazily.
    topo: TrackedMutex<HashMap<(LabelId, bool), Arc<TopologyLayout>>>,
}

impl GraphArStore {
    /// Opens an archive directory with the default chunk-lazy layout.
    pub fn open(dir: &Path) -> Result<Self> {
        Self::open_with_layout(dir, LayoutKind::Csr)
    }

    /// Opens an archive with an explicit topology layout. The default
    /// (`Csr`) keeps GraphAr's O(working set) chunk-lazy adjacency; the
    /// sorted/compressed layouts pin a [`TopologyLayout`] per edge label
    /// in memory on first touch — trading footprint for the in-memory
    /// fast path when an archive is used as a live analytics source.
    pub fn open_with_layout(dir: &Path, layout: LayoutKind) -> Result<Self> {
        let meta = read_metadata(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            meta,
            cache: TrackedMutex::new("graphar.chunk_cache", HashMap::new()),
            layout,
            topo: TrackedMutex::new("graphar.topo_cache", HashMap::new()),
        })
    }

    /// The layout this store was opened with.
    pub fn layout(&self) -> LayoutKind {
        self.layout
    }

    /// Archive metadata.
    pub fn metadata(&self) -> &Metadata {
        &self.meta
    }

    /// Number of chunks currently cached (test/diagnostics hook).
    pub fn cached_chunks(&self) -> usize {
        self.cache.lock().len()
    }

    fn load_u64(&self, rel: String, k: usize) -> Result<Arc<Chunk>> {
        if let Some(c) = self.cache.lock().get(&(rel.clone(), k)) {
            return Ok(Arc::clone(c));
        }
        let path = self.dir.join(format!("{rel}.{k}"));
        let bytes =
            std::fs::read(&path).map_err(|e| GraphError::Io(format!("{}: {e}", path.display())))?;
        let chunk = Arc::new(Chunk::U64(codec::decode_u64_chunk(&bytes)?));
        self.cache.lock().insert((rel, k), Arc::clone(&chunk));
        Ok(chunk)
    }

    fn load_col(&self, rel: String, k: usize) -> Result<Arc<Chunk>> {
        if let Some(c) = self.cache.lock().get(&(rel.clone(), k)) {
            return Ok(Arc::clone(c));
        }
        let path = self.dir.join(format!("{rel}.{k}"));
        let bytes =
            std::fs::read(&path).map_err(|e| GraphError::Io(format!("{}: {e}", path.display())))?;
        let chunk = Arc::new(Chunk::Col(codec::decode_column(&bytes)?));
        self.cache.lock().insert((rel, k), Arc::clone(&chunk));
        Ok(chunk)
    }

    fn u64s(&self, rel: String, k: usize) -> Vec<u64> {
        match self.load_u64(rel, k) {
            Ok(c) => match &*c {
                Chunk::U64(v) => v.clone(),
                Chunk::Col(_) => Vec::new(),
            },
            Err(_) => Vec::new(),
        }
    }

    fn adjacency(&self, v: VId, elabel: LabelId, prefix: &str) -> Vec<AdjEntry> {
        let k = v.index() / self.meta.vertex_chunk;
        let local = v.index() % self.meta.vertex_chunk;
        let base = format!("edge/l{}/{prefix}", elabel.index());
        let offs = self.u64s(format!("{base}_offsets"), k);
        if local + 1 >= offs.len() {
            return Vec::new();
        }
        let lo = offs[local] as usize;
        let hi = offs[local + 1] as usize;
        let tgts = self.u64s(format!("{base}_targets"), k);
        let eids = self.u64s(format!("{base}_eids"), k);
        (lo..hi)
            .map(|i| AdjEntry {
                nbr: VId(tgts[i]),
                edge: gs_grin::EId(eids[i]),
            })
            .collect()
    }

    /// Builds (or fetches) the pinned topology for one edge label and
    /// direction by decoding every adjacency chunk once. Only used when the
    /// store was opened with a non-default layout.
    fn pinned_topology(&self, elabel: LabelId, out: bool) -> Arc<TopologyLayout> {
        if let Some(t) = self.topo.lock().get(&(elabel, out)) {
            return Arc::clone(t);
        }
        let ldef = &self.meta.schema.edge_labels()[elabel.index()];
        let vlabel = if out { ldef.src } else { ldef.dst };
        let n = self.vertex_count(vlabel);
        let prefix = if out { "out" } else { "in" };
        let base = format!("edge/l{}/{prefix}", elabel.index());
        let mut offsets = vec![0u64; n + 1];
        let mut targets: Vec<VId> = Vec::new();
        let mut eids: Vec<gs_grin::EId> = Vec::new();
        let nchunks = n.div_ceil(self.meta.vertex_chunk).max(1);
        for k in 0..nchunks {
            let offs = self.u64s(format!("{base}_offsets"), k);
            let tgts = self.u64s(format!("{base}_targets"), k);
            let ids = self.u64s(format!("{base}_eids"), k);
            for local in 0..self.meta.vertex_chunk {
                let v = k * self.meta.vertex_chunk + local;
                if v >= n {
                    break;
                }
                if local + 1 < offs.len() {
                    let hi = (offs[local + 1] as usize).min(tgts.len()).min(ids.len());
                    let lo = (offs[local] as usize).min(hi);
                    targets.extend(tgts[lo..hi].iter().map(|&t| VId(t)));
                    eids.extend(ids[lo..hi].iter().map(|&e| gs_grin::EId(e)));
                }
                offsets[v + 1] = targets.len() as u64;
            }
        }
        let topo = Arc::new(TopologyLayout::build(
            self.layout,
            Csr::from_parts(offsets, targets, eids),
        ));
        self.topo
            .lock()
            .entry((elabel, out))
            .or_insert(topo)
            .clone()
    }

    /// Adjacency through the pinned topology (non-default layouts only).
    fn pinned_adjacency(&self, v: VId, elabel: LabelId, out: bool) -> Vec<AdjEntry> {
        let topo = self.pinned_topology(elabel, out);
        if v.index() >= topo.vertex_count() {
            return Vec::new();
        }
        let mut entries = Vec::with_capacity(topo.degree(v));
        topo.for_each_adj(v, |nbr, edge| entries.push(AdjEntry { nbr, edge }));
        entries
    }
}

impl GrinGraph for GraphArStore {
    fn capabilities(&self) -> Capabilities {
        let base = Capabilities::of(&[
            Capabilities::VERTEX_LIST_ITER,
            Capabilities::ADJ_LIST_ITER,
            Capabilities::IN_ADJACENCY,
            Capabilities::PROPERTY,
            Capabilities::INDEX_EXTERNAL_ID,
        ]);
        // Pinned layouts advertise their ordering/compression traits but
        // GraphAr never offers borrowed adjacency arrays, so there is no
        // ADJ_LIST_ARRAY to withdraw.
        let (add, remove) = Capabilities::layout_masks(self.layout);
        base.union(add).difference(remove)
    }

    fn topology_layout(&self) -> LayoutKind {
        self.layout
    }

    fn schema(&self) -> &GraphSchema {
        &self.meta.schema
    }

    fn vertex_count(&self, label: LabelId) -> usize {
        self.meta.vertex_counts[label.index()]
    }

    fn edge_count(&self, label: LabelId) -> usize {
        self.meta.edge_counts[label.index()]
    }

    fn adjacent(
        &self,
        v: VId,
        _vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
    ) -> Box<dyn Iterator<Item = AdjEntry> + '_> {
        let entries = if self.layout == LayoutKind::Csr {
            match dir {
                Direction::Out => self.adjacency(v, elabel, "out"),
                Direction::In => self.adjacency(v, elabel, "in"),
                Direction::Both => {
                    let mut o = self.adjacency(v, elabel, "out");
                    o.extend(self.adjacency(v, elabel, "in"));
                    o
                }
            }
        } else {
            match dir {
                Direction::Out => self.pinned_adjacency(v, elabel, true),
                Direction::In => self.pinned_adjacency(v, elabel, false),
                Direction::Both => {
                    let mut o = self.pinned_adjacency(v, elabel, true);
                    o.extend(self.pinned_adjacency(v, elabel, false));
                    o
                }
            }
        };
        Box::new(entries.into_iter())
    }

    fn scan_adjacency(
        &self,
        vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
        f: &mut gs_grin::AdjScanFn<'_>,
    ) -> bool {
        // Chunk-granular bulk path: decode each offsets/targets/eids chunk
        // once per scan instead of three clone-outs per vertex through
        // `adjacency`. Still O(working set): one chunk triple is resident
        // at a time.
        let prefix = match dir {
            Direction::Out => "out",
            Direction::In => "in",
            Direction::Both => return gs_grin::scan_via_iterators(self, vlabel, elabel, dir, f),
        };
        let n = self.vertex_count(vlabel);
        if self.layout != LayoutKind::Csr {
            // Pinned-topology bulk path: decode once, then serve every
            // vertex from memory.
            let topo = self.pinned_topology(elabel, matches!(dir, Direction::Out));
            let mut nbrs = Vec::new();
            let mut eids = Vec::new();
            for v in 0..n as u64 {
                let v = VId(v);
                if v.index() >= topo.vertex_count() {
                    f(v, &[], &[]);
                } else if let Some((ns, es)) = topo.adj_slices(v) {
                    f(v, ns, es);
                } else {
                    topo.as_layout().copy_adj(v, &mut nbrs, &mut eids);
                    f(v, &nbrs, &eids);
                }
            }
            return true;
        }
        let base = format!("edge/l{}/{prefix}", elabel.index());
        let nchunks = n.div_ceil(self.meta.vertex_chunk).max(1);
        for k in 0..nchunks {
            let offs = self.u64s(format!("{base}_offsets"), k);
            let nbrs: Vec<VId> = self
                .u64s(format!("{base}_targets"), k)
                .into_iter()
                .map(VId)
                .collect();
            let eids: Vec<gs_grin::EId> = self
                .u64s(format!("{base}_eids"), k)
                .into_iter()
                .map(gs_grin::EId)
                .collect();
            for local in 0..self.meta.vertex_chunk {
                let v = k * self.meta.vertex_chunk + local;
                if v >= n {
                    break;
                }
                if local + 1 < offs.len() {
                    let hi = (offs[local + 1] as usize).min(nbrs.len()).min(eids.len());
                    let lo = (offs[local] as usize).min(hi);
                    f(VId(v as u64), &nbrs[lo..hi], &eids[lo..hi]);
                } else {
                    f(VId(v as u64), &[], &[]);
                }
            }
        }
        true
    }

    fn vertex_property(&self, label: LabelId, v: VId, prop: PropId) -> Value {
        let k = v.index() / self.meta.vertex_chunk;
        let local = v.index() % self.meta.vertex_chunk;
        let rel = format!("vertex/l{}/p{}", label.index(), prop.index());
        match self.load_col(rel, k) {
            Ok(c) => match &*c {
                Chunk::Col(vals) => vals.get(local).cloned().unwrap_or(Value::Null),
                Chunk::U64(_) => Value::Null,
            },
            Err(_) => Value::Null,
        }
    }

    fn edge_property(&self, label: LabelId, e: gs_grin::EId, prop: PropId) -> Value {
        let k = e.index() / self.meta.edge_chunk;
        let local = e.index() % self.meta.edge_chunk;
        let rel = format!("edge/l{}/p{}", label.index(), prop.index());
        match self.load_col(rel, k) {
            Ok(c) => match &*c {
                Chunk::Col(vals) => vals.get(local).cloned().unwrap_or(Value::Null),
                Chunk::U64(_) => Value::Null,
            },
            Err(_) => Value::Null,
        }
    }

    fn internal_id(&self, label: LabelId, external: u64) -> Option<VId> {
        // scan id chunks (archives are not indexed for point lookups)
        let n = self.meta.vertex_counts[label.index()];
        let nchunks = n.div_ceil(self.meta.vertex_chunk).max(1);
        let rel = format!("vertex/l{}/ids", label.index());
        for k in 0..nchunks {
            let ids = self.u64s(rel.clone(), k);
            if let Some(pos) = ids.iter().position(|&e| e == external) {
                return Some(VId((k * self.meta.vertex_chunk + pos) as u64));
            }
        }
        None
    }

    fn external_id(&self, label: LabelId, v: VId) -> Option<u64> {
        let k = v.index() / self.meta.vertex_chunk;
        let local = v.index() % self.meta.vertex_chunk;
        let ids = self.u64s(format!("vertex/l{}/ids", label.index()), k);
        ids.get(local).copied()
    }
}
