//! Scalar expressions evaluated against a record and the graph.
//!
//! Expressions reference record columns positionally (bound by the planner
//! from aliases); property accesses carry the resolved `(label, PropId)` so
//! evaluation never does name lookups.

use gs_graph::{GraphError, LabelId, PropId, Result, Value};
use gs_grin::{CmpOp, GrinGraph};

/// Binary operators (arithmetic + comparison + boolean).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// Aggregate functions used by `GROUP` / `WITH`.
#[derive(Clone, Debug, PartialEq)]
pub enum AggFunc {
    Count,
    CountDistinct,
    Sum,
    Avg,
    Min,
    Max,
    Collect,
}

/// A scalar expression tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Const(Value),
    /// The whole value of a record column.
    Column(usize),
    /// A vertex property: `record[col]` must be `Value::Vertex`.
    VertexProp {
        col: usize,
        label: LabelId,
        prop: PropId,
    },
    /// An edge property: `record[col]` must be `Value::Edge`.
    EdgeProp {
        col: usize,
        label: LabelId,
        prop: PropId,
    },
    /// The external id of a vertex column (Cypher's `id(v)` / LDBC `v.id`).
    VertexId {
        col: usize,
        label: LabelId,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Not(Box<Expr>),
    /// Membership in a literal list.
    In {
        expr: Box<Expr>,
        list: Vec<Value>,
    },
}

impl Expr {
    /// Convenience: `lhs <op> rhs`.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Evaluates against a record within a graph.
    pub fn eval(&self, rec: &[Value], graph: &dyn GrinGraph) -> Result<Value> {
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Column(i) => rec
                .get(*i)
                .cloned()
                .ok_or_else(|| GraphError::Query(format!("column {i} out of range"))),
            Expr::VertexProp { col, label, prop } => match rec.get(*col) {
                Some(Value::Vertex(v, _)) => Ok(graph.vertex_property(*label, *v, *prop)),
                Some(Value::Null) | None => Ok(Value::Null),
                Some(other) => Err(GraphError::Type(format!(
                    "vertex property access on {:?}",
                    other.value_type()
                ))),
            },
            Expr::EdgeProp { col, label, prop } => match rec.get(*col) {
                Some(Value::Edge(e, ..)) => Ok(graph.edge_property(*label, *e, *prop)),
                Some(Value::Null) | None => Ok(Value::Null),
                Some(other) => Err(GraphError::Type(format!(
                    "edge property access on {:?}",
                    other.value_type()
                ))),
            },
            Expr::VertexId { col, label } => match rec.get(*col) {
                Some(Value::Vertex(v, _)) => Ok(graph
                    .external_id(*label, *v)
                    .map_or(Value::Null, |e| Value::Int(e as i64))),
                Some(Value::Null) | None => Ok(Value::Null),
                Some(other) => Err(GraphError::Type(format!(
                    "id() on {:?}",
                    other.value_type()
                ))),
            },
            Expr::Binary { op, lhs, rhs } => {
                let l = lhs.eval(rec, graph)?;
                // short-circuit booleans
                match op {
                    BinOp::And => {
                        if l.as_bool() == Some(false) {
                            return Ok(Value::Bool(false));
                        }
                        let r = rhs.eval(rec, graph)?;
                        return Ok(Value::Bool(
                            l.as_bool().unwrap_or(false) && r.as_bool().unwrap_or(false),
                        ));
                    }
                    BinOp::Or => {
                        if l.as_bool() == Some(true) {
                            return Ok(Value::Bool(true));
                        }
                        let r = rhs.eval(rec, graph)?;
                        return Ok(Value::Bool(
                            l.as_bool().unwrap_or(false) || r.as_bool().unwrap_or(false),
                        ));
                    }
                    _ => {}
                }
                let r = rhs.eval(rec, graph)?;
                eval_binary(*op, &l, &r)
            }
            Expr::Not(e) => {
                let v = e.eval(rec, graph)?;
                Ok(Value::Bool(!v.as_bool().unwrap_or(false)))
            }
            Expr::In { expr, list } => {
                let v = expr.eval(rec, graph)?;
                if v.is_null() {
                    return Ok(Value::Bool(false));
                }
                Ok(Value::Bool(list.iter().any(|x| v.total_cmp(x).is_eq())))
            }
        }
    }

    /// Evaluates as a boolean predicate (SQL semantics: null → false).
    pub fn eval_bool(&self, rec: &[Value], graph: &dyn GrinGraph) -> Result<bool> {
        Ok(self.eval(rec, graph)?.as_bool().unwrap_or(false))
    }

    /// Collects the record columns this expression reads.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Const(_) => {}
            Expr::Column(i)
            | Expr::VertexProp { col: i, .. }
            | Expr::EdgeProp { col: i, .. }
            | Expr::VertexId { col: i, .. } => out.push(*i),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.referenced_columns(out);
                rhs.referenced_columns(out);
            }
            Expr::Not(e) => e.referenced_columns(out),
            Expr::In { expr, .. } => expr.referenced_columns(out),
        }
    }

    /// Rewrites column indexes through `map` (used when projections reshape
    /// the record). Returns `None` if a referenced column is not mapped.
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> Option<usize>) -> Option<Expr> {
        Some(match self {
            Expr::Const(v) => Expr::Const(v.clone()),
            Expr::Column(i) => Expr::Column(map(*i)?),
            Expr::VertexProp { col, label, prop } => Expr::VertexProp {
                col: map(*col)?,
                label: *label,
                prop: *prop,
            },
            Expr::EdgeProp { col, label, prop } => Expr::EdgeProp {
                col: map(*col)?,
                label: *label,
                prop: *prop,
            },
            Expr::VertexId { col, label } => Expr::VertexId {
                col: map(*col)?,
                label: *label,
            },
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(lhs.remap_columns(map)?),
                rhs: Box::new(rhs.remap_columns(map)?),
            },
            Expr::Not(e) => Expr::Not(Box::new(e.remap_columns(map)?)),
            Expr::In { expr, list } => Expr::In {
                expr: Box::new(expr.remap_columns(map)?),
                list: list.clone(),
            },
        })
    }
}

fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    use BinOp::*;
    match op {
        Eq => Ok(Value::Bool(CmpOp::Eq.eval(l, r))),
        Ne => Ok(Value::Bool(CmpOp::Ne.eval(l, r))),
        Lt => Ok(Value::Bool(CmpOp::Lt.eval(l, r))),
        Le => Ok(Value::Bool(CmpOp::Le.eval(l, r))),
        Gt => Ok(Value::Bool(CmpOp::Gt.eval(l, r))),
        Ge => Ok(Value::Bool(CmpOp::Ge.eval(l, r))),
        Add | Sub | Mul | Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            // integer arithmetic when both sides are integral
            if let (Some(a), Some(b)) = (l.as_int(), r.as_int()) {
                return Ok(match op {
                    Add => Value::Int(a.wrapping_add(b)),
                    Sub => Value::Int(a.wrapping_sub(b)),
                    Mul => Value::Int(a.wrapping_mul(b)),
                    Div => {
                        if b == 0 {
                            Value::Null
                        } else {
                            Value::Int(a / b)
                        }
                    }
                    _ => unreachable!(),
                });
            }
            let (a, b) = (
                l.as_float()
                    .ok_or_else(|| GraphError::Type(format!("arith on {l:?}")))?,
                r.as_float()
                    .ok_or_else(|| GraphError::Type(format!("arith on {r:?}")))?,
            );
            Ok(match op {
                Add => Value::Float(a + b),
                Sub => Value::Float(a - b),
                Mul => Value::Float(a * b),
                Div => Value::Float(a / b),
                _ => unreachable!(),
            })
        }
        And | Or => unreachable!("handled with short-circuit"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_grin::graph::mock::MockGraph;

    fn g() -> MockGraph {
        MockGraph::new(3, &[(0, 1, 2.5), (1, 2, 5.0)])
    }

    #[test]
    fn arithmetic_and_comparison() {
        let g = g();
        let rec = vec![Value::Int(10), Value::Int(3)];
        let e = Expr::bin(
            BinOp::Gt,
            Expr::bin(BinOp::Mul, Expr::Column(0), Expr::Const(Value::Int(2))),
            Expr::Const(Value::Int(19)),
        );
        assert_eq!(e.eval(&rec, &g).unwrap(), Value::Bool(true));
        let e2 = Expr::bin(BinOp::Div, Expr::Column(0), Expr::Column(1));
        assert_eq!(e2.eval(&rec, &g).unwrap(), Value::Int(3));
    }

    #[test]
    fn division_by_zero_is_null() {
        let g = g();
        let e = Expr::bin(
            BinOp::Div,
            Expr::Const(Value::Int(1)),
            Expr::Const(Value::Int(0)),
        );
        assert_eq!(e.eval(&[], &g).unwrap(), Value::Null);
    }

    #[test]
    fn mixed_arith_promotes_to_float() {
        let g = g();
        let e = Expr::bin(
            BinOp::Add,
            Expr::Const(Value::Int(1)),
            Expr::Const(Value::Float(0.5)),
        );
        assert_eq!(e.eval(&[], &g).unwrap(), Value::Float(1.5));
    }

    #[test]
    fn vertex_and_edge_props() {
        let mut mg = g();
        mg.set_tag(gs_graph::VId(1), 7);
        let rec = vec![
            Value::Vertex(gs_graph::VId(1), LabelId(0)),
            Value::Edge(
                gs_graph::EId(0),
                LabelId(0),
                gs_graph::VId(0),
                gs_graph::VId(1),
            ),
        ];
        let e = Expr::VertexProp {
            col: 0,
            label: LabelId(0),
            prop: PropId(0),
        };
        assert_eq!(e.eval(&rec, &mg).unwrap(), Value::Int(7));
        let w = Expr::EdgeProp {
            col: 1,
            label: LabelId(0),
            prop: PropId(0),
        };
        assert!(w.eval(&rec, &mg).unwrap().as_float().is_some());
    }

    #[test]
    fn in_list_and_not() {
        let g = g();
        let e = Expr::In {
            expr: Box::new(Expr::Const(Value::Int(3))),
            list: vec![Value::Int(1), Value::Int(3)],
        };
        assert_eq!(e.eval(&[], &g).unwrap(), Value::Bool(true));
        let ne = Expr::Not(Box::new(e));
        assert_eq!(ne.eval(&[], &g).unwrap(), Value::Bool(false));
    }

    #[test]
    fn short_circuit_and_or() {
        let g = g();
        // (false AND <out-of-range column>) must not error
        let e = Expr::bin(
            BinOp::And,
            Expr::Const(Value::Bool(false)),
            Expr::Column(99),
        );
        assert_eq!(e.eval(&[], &g).unwrap(), Value::Bool(false));
        let e2 = Expr::bin(BinOp::Or, Expr::Const(Value::Bool(true)), Expr::Column(99));
        assert_eq!(e2.eval(&[], &g).unwrap(), Value::Bool(true));
    }

    #[test]
    fn remap_columns_total_and_partial() {
        let e = Expr::bin(BinOp::Add, Expr::Column(0), Expr::Column(2));
        let shifted = e.remap_columns(&|i| Some(i + 10)).unwrap();
        let mut cols = Vec::new();
        shifted.referenced_columns(&mut cols);
        assert_eq!(cols, vec![10, 12]);
        assert!(e
            .remap_columns(&|i| if i == 0 { Some(0) } else { None })
            .is_none());
    }

    #[test]
    fn null_propagation() {
        let g = g();
        let e = Expr::bin(
            BinOp::Add,
            Expr::Const(Value::Null),
            Expr::Const(Value::Int(1)),
        );
        assert_eq!(e.eval(&[], &g).unwrap(), Value::Null);
        let cmp = Expr::bin(
            BinOp::Eq,
            Expr::Const(Value::Null),
            Expr::Const(Value::Null),
        );
        assert_eq!(cmp.eval(&[], &g).unwrap(), Value::Bool(false));
    }
}
