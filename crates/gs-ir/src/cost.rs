//! Static cost analysis: abstract interpretation over GraphIR.
//!
//! The third member of the static-analysis family after `gs-ir::verify`
//! (plans, §6b) and `gs-lint` (sources, §6g): an abstract interpreter
//! that pushes a *cardinality interval* `[lo, hi]` and a point estimate
//! through every operator of a [`LogicalPlan`] or [`PhysicalPlan`],
//! together with the record width, so that every plan carries
//! machine-checked cardinality and memory bounds before a single tuple
//! flows (the GOpt idea of choosing plans by estimated intermediate
//! result size, made an engine-independent analysis).
//!
//! * The **estimate** uses [`CostStats`] (label counts, per-edge-label
//!   average degrees, sampled distinct values — the GLogue catalog's
//!   numbers) and the usual selectivity heuristics.
//! * The **interval** is sound: `lo` and `hi` bound the true operator
//!   output for *any* data distribution consistent with the statistics
//!   (scans are exact, expansions are bounded by recorded max degrees,
//!   everything downstream of a predicate keeps `lo = 0`). Without
//!   statistics the analysis falls back to conservative bounds
//!   (`hi = ∞`) and says so.
//!
//! Findings are irlint-style [`Diagnostic`]s with stable codes under the
//! same Off/Warn/Deny [`VerifyLevel`] discipline:
//!
//! * `C001` — cross-product scan with no connecting predicate anywhere
//!   downstream;
//! * `C002` — estimated rows blow past the configured expansion budget
//!   (unbounded multi-hop expansion);
//! * `C003` — estimated peak memory exceeds the deployment budget;
//! * `C301` — no / incomplete statistics, bounds are conservative;
//! * `C302` — low-confidence estimate (a defaulted selectivity or
//!   distinct count fed the numbers);
//! * `C303` — a rewrite rule increased estimated cost (emitted by
//!   `gs-optimizer`, attributed to the rule).
//!
//! Consumers: `gs-optimizer` checks each RBO rule cost-non-increasing
//! and ranks rules by estimated benefit; `gs-serve` sheds or demotes
//! statically over-budget prepared statements before they reach an
//! engine; `gs-bench costcheck` tracks estimator quality (q-error
//! percentiles) against actual per-operator cardinalities.

use crate::expr::{BinOp, Expr};
use crate::logical::{LogicalOp, LogicalPlan, ProjectItem};
use crate::pattern::Pattern;
use crate::physical::{ExpandOut, PhysicalOp, PhysicalPlan};
use crate::record::ColumnKind;
use crate::verify::{Diagnostic, Severity, VerifyLevel, VerifyReport};
use gs_graph::{LabelId, PropId, Result};
use gs_grin::Direction;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// Diagnostic codes
// ---------------------------------------------------------------------

/// Cross-product scan with no connecting predicate downstream.
pub const C_CROSS_PRODUCT: &str = "C001";
/// Estimated rows exceed the expansion budget (multi-hop blowup).
pub const C_EXPANSION_BLOWUP: &str = "C002";
/// Estimated peak memory exceeds the deployment budget.
pub const C_MEMORY_BUDGET: &str = "C003";
/// Statistics missing or incomplete; bounds are conservative.
pub const W_NO_STATISTICS: &str = "C301";
/// A defaulted selectivity / distinct count fed the estimate.
pub const W_LOW_CONFIDENCE: &str = "C302";
/// A rewrite rule increased the estimated plan cost.
pub const W_COST_INCREASE: &str = "C303";

/// Assumed bytes per record column (a [`gs_graph::Value`] plus `Vec`
/// bookkeeping) for memory-bound estimation.
pub const VALUE_BYTES: f64 = 48.0;

/// Label cardinality assumed when no statistics are available.
const DEFAULT_LABEL_COUNT: f64 = 1_000.0;
/// Expansion fan-out assumed when no statistics are available.
const DEFAULT_FANOUT: f64 = 10.0;
/// Distinct-value count assumed when a property was never sampled.
const DEFAULT_DISTINCT: u64 = 10;

// ---------------------------------------------------------------------
// Cardinality intervals
// ---------------------------------------------------------------------

/// A sound cardinality interval: the true operator output row count lies
/// in `[lo, hi]` (with `hi = ∞` when no finite bound is known).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CardInterval {
    pub lo: f64,
    pub hi: f64,
}

impl CardInterval {
    /// The exact interval `[n, n]`.
    pub fn exact(n: f64) -> Self {
        Self { lo: n, hi: n }
    }

    /// `[0, hi]` — anything a predicate may leave behind.
    pub fn at_most(hi: f64) -> Self {
        Self { lo: 0.0, hi }
    }

    /// Whether `n` falls inside the interval (the soundness property).
    pub fn contains(&self, n: f64) -> bool {
        n >= self.lo && n <= self.hi
    }

    /// Interval width ratio used as a confidence proxy (∞ when unbounded).
    pub fn spread(&self) -> f64 {
        if self.lo > 0.0 {
            self.hi / self.lo
        } else {
            f64::INFINITY
        }
    }
}

// ---------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------

/// Per-edge-label statistics as the cost model consumes them. Average
/// degrees drive estimates; max degrees drive the sound `hi` bounds.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EdgeCostStats {
    pub count: u64,
    pub avg_out_degree: f64,
    pub avg_in_degree: f64,
    pub max_out_degree: u64,
    pub max_in_degree: u64,
}

/// The statistics a cost analysis runs against — a dependency-free
/// mirror of `gs-optimizer`'s GLogue catalog (which converts into this;
/// `gs-ir` cannot depend on the optimizer crate).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CostStats {
    /// Vertex count per vertex label (indexed by label id).
    pub vertex_counts: Vec<u64>,
    /// Edge statistics per edge label (indexed by label id).
    pub edge_stats: Vec<EdgeCostStats>,
    /// Sampled distinct-value counts: (vertex label, prop) → estimate.
    /// Ordered map so any iteration over it is deterministic.
    pub distinct_values: BTreeMap<(u16, u16), u64>,
}

impl CostStats {
    /// Cardinality of a vertex label (`None` when outside the stats).
    pub fn label_count(&self, l: LabelId) -> Option<f64> {
        self.vertex_counts.get(l.index()).map(|&n| n as f64)
    }

    fn distinct(&self, label: LabelId, prop: PropId) -> Option<u64> {
        self.distinct_values.get(&(label.0, prop.0)).copied()
    }

    /// Average expansion fan-out of `elabel` in `dir`.
    pub fn fanout_avg(&self, elabel: LabelId, dir: Direction) -> Option<f64> {
        let s = self.edge_stats.get(elabel.index())?;
        Some(match dir {
            Direction::Out => s.avg_out_degree,
            Direction::In => s.avg_in_degree,
            Direction::Both => s.avg_out_degree + s.avg_in_degree,
        })
    }

    /// Max expansion fan-out of `elabel` in `dir` — the sound per-row
    /// bound on expansion output.
    pub fn fanout_max(&self, elabel: LabelId, dir: Direction) -> Option<f64> {
        let s = self.edge_stats.get(elabel.index())?;
        Some(match dir {
            Direction::Out => s.max_out_degree as f64,
            Direction::In => s.max_in_degree as f64,
            Direction::Both => (s.max_out_degree + s.max_in_degree) as f64,
        })
    }
}

// ---------------------------------------------------------------------
// Budgets
// ---------------------------------------------------------------------

/// The budgets the C-codes are checked against.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostBudget {
    /// Estimated rows past which `C002` fires (expansion blowup).
    pub max_rows: f64,
    /// Estimated peak bytes past which `C003` fires (deployment memory).
    pub max_memory_bytes: u64,
}

impl Default for CostBudget {
    fn default() -> Self {
        Self {
            max_rows: 1e8,
            max_memory_bytes: 4 << 30, // 4 GiB
        }
    }
}

impl CostBudget {
    /// A budget with the memory ceiling set (the deployment knob).
    pub fn with_memory(bytes: u64) -> Self {
        Self {
            max_memory_bytes: bytes,
            ..Self::default()
        }
    }
}

// ---------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------

/// Cost of one operator's *output*.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpCost {
    /// Point estimate of output rows.
    pub est_rows: f64,
    /// Sound output-row interval.
    pub interval: CardInterval,
    /// Record width (columns) flowing out of the op.
    pub width: usize,
    /// Estimated bytes to materialise this op's output.
    pub est_bytes: f64,
}

/// The outcome of a cost analysis over one plan.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CostReport {
    /// One entry per plan operator, in plan order.
    pub per_op: Vec<OpCost>,
    /// Sum of estimated intermediate sizes — the paper's plan cost, the
    /// number rewrite rules are compared on.
    pub total_est_rows: f64,
    /// Estimated rows out of the final operator.
    pub output_est_rows: f64,
    /// Estimated peak materialised bytes across the plan.
    pub peak_est_bytes: f64,
    /// C-coded diagnostics (errors C0xx, warnings C3xx).
    pub report: VerifyReport,
}

impl CostReport {
    /// Whether a diagnostic with `code` was emitted.
    pub fn has_code(&self, code: &str) -> bool {
        self.report.has_code(code)
    }

    /// Whether the plan's static bounds exceed `budget`.
    pub fn over_budget(&self, budget: &CostBudget) -> bool {
        self.output_est_rows > budget.max_rows
            || self.total_est_rows > budget.max_rows
            || self.peak_est_bytes > budget.max_memory_bytes as f64
    }
}

/// Applies a [`VerifyLevel`] to a cost report at a boundary, recording
/// `ir.cost.*` telemetry. Only `Deny` + C-errors rejects.
pub fn enforce_cost(cost: &CostReport, level: VerifyLevel, context: &str) -> Result<()> {
    if level == VerifyLevel::Off {
        return Ok(());
    }
    gs_telemetry::counter!("ir.cost.plans", at = context; 1);
    gs_telemetry::counter!("ir.cost.errors", at = context; cost.report.error_count() as u64);
    gs_telemetry::counter!("ir.cost.warnings", at = context; cost.report.warning_count() as u64);
    if level == VerifyLevel::Deny && cost.report.error_count() > 0 {
        gs_telemetry::counter!("ir.cost.denied", at = context; 1);
        return cost.report.check(context);
    }
    Ok(())
}

// ---------------------------------------------------------------------
// The abstract interpreter
// ---------------------------------------------------------------------

struct CostChecker<'a> {
    stats: Option<&'a CostStats>,
    budget: &'a CostBudget,
    diags: Vec<Diagnostic>,
    /// Number of estimates that fell back to a default (drives C302).
    defaults_used: usize,
    /// Set once C002 has fired (one report per plan, at the first blowup).
    blowup_reported: bool,
}

impl<'a> CostChecker<'a> {
    fn new(stats: Option<&'a CostStats>, budget: &'a CostBudget) -> Self {
        Self {
            stats,
            budget,
            diags: Vec::new(),
            defaults_used: 0,
            blowup_reported: false,
        }
    }

    fn emit(&mut self, code: &'static str, severity: Severity, op: Option<usize>, msg: String) {
        self.diags.push(Diagnostic {
            code,
            severity,
            op_index: op,
            rule: None,
            message: msg,
        });
    }

    /// `(count, known)` — `known = false` means the estimate is a
    /// default and no finite upper bound may be derived from it.
    fn label_count(&mut self, l: LabelId, op: Option<usize>) -> (f64, bool) {
        match self.stats.and_then(|s| s.label_count(l)) {
            Some(n) => (n, true),
            None => {
                if self.stats.is_some() {
                    self.emit(
                        W_NO_STATISTICS,
                        Severity::Warning,
                        op,
                        format!("no cardinality statistics for vertex label {l:?}"),
                    );
                }
                (DEFAULT_LABEL_COUNT, false)
            }
        }
    }

    fn fanout(&mut self, elabel: LabelId, dir: Direction, op: Option<usize>) -> (f64, f64) {
        match self
            .stats
            .and_then(|s| Some((s.fanout_avg(elabel, dir)?, s.fanout_max(elabel, dir)?)))
        {
            Some((avg, max)) => (avg, max),
            None => {
                if self.stats.is_some() {
                    self.emit(
                        W_NO_STATISTICS,
                        Severity::Warning,
                        op,
                        format!("no degree statistics for edge label {elabel:?}"),
                    );
                }
                (DEFAULT_FANOUT, f64::INFINITY)
            }
        }
    }

    /// Estimated selectivity (0..=1) of a predicate. Labels ride inside
    /// `VertexProp`/`VertexId`/`EdgeProp`, so no layout is needed.
    fn selectivity(&mut self, pred: &Expr) -> f64 {
        match pred {
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::And => self.selectivity(lhs) * self.selectivity(rhs),
                BinOp::Or => (self.selectivity(lhs) + self.selectivity(rhs)).min(1.0),
                BinOp::Eq => match &**lhs {
                    Expr::VertexProp { label, prop, .. } => {
                        match self.stats.and_then(|s| s.distinct(*label, *prop)) {
                            Some(d) => 1.0 / d.max(1) as f64,
                            None => {
                                self.defaults_used += 1;
                                1.0 / DEFAULT_DISTINCT as f64
                            }
                        }
                    }
                    Expr::VertexId { label, .. } => {
                        match self.stats.and_then(|s| s.label_count(*label)) {
                            Some(n) => 1.0 / n.max(1.0),
                            None => {
                                self.defaults_used += 1;
                                1.0 / DEFAULT_LABEL_COUNT
                            }
                        }
                    }
                    _ => {
                        self.defaults_used += 1;
                        0.1
                    }
                },
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 0.33,
                BinOp::Ne => 0.9,
                _ => {
                    self.defaults_used += 1;
                    0.5
                }
            },
            Expr::Not(e) => (1.0 - self.selectivity(e)).clamp(0.0, 1.0),
            Expr::In { expr, list } => {
                if let Expr::VertexId { label, .. } = &**expr {
                    if let Some(n) = self.stats.and_then(|s| s.label_count(*label)) {
                        return (list.len() as f64 / n.max(1.0)).min(1.0);
                    }
                }
                self.defaults_used += 1;
                (list.len() as f64 / DEFAULT_LABEL_COUNT).min(1.0)
            }
            Expr::Const(gs_graph::Value::Bool(b)) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            _ => {
                self.defaults_used += 1;
                0.5
            }
        }
    }

    /// Records one op's output cost, checking the C002/C003 budgets.
    fn step(
        &mut self,
        per_op: &mut Vec<OpCost>,
        op_index: usize,
        expands: bool,
        est_rows: f64,
        interval: CardInterval,
        width: usize,
    ) -> (f64, CardInterval) {
        let est_rows = est_rows.clamp(interval.lo, interval.hi.max(interval.lo));
        let est_bytes = est_rows * width.max(1) as f64 * VALUE_BYTES;
        if expands && !self.blowup_reported && est_rows > self.budget.max_rows {
            self.blowup_reported = true;
            self.emit(
                C_EXPANSION_BLOWUP,
                Severity::Error,
                Some(op_index),
                format!(
                    "estimated {est_rows:.0} rows exceed the expansion budget of {:.0}",
                    self.budget.max_rows
                ),
            );
        }
        per_op.push(OpCost {
            est_rows,
            interval,
            width,
            est_bytes,
        });
        (est_rows, interval)
    }

    fn finish(mut self, per_op: Vec<OpCost>) -> CostReport {
        if self.stats.is_none() {
            self.emit(
                W_NO_STATISTICS,
                Severity::Warning,
                None,
                "no statistics catalog; bounds are conservative capability-derived defaults".into(),
            );
        } else if self.defaults_used > 0 {
            self.emit(
                W_LOW_CONFIDENCE,
                Severity::Warning,
                None,
                format!(
                    "{} low-confidence estimate(s): defaulted selectivity or distinct count",
                    self.defaults_used
                ),
            );
        }
        let peak = per_op.iter().map(|c| c.est_bytes).fold(0.0, f64::max);
        if peak > self.budget.max_memory_bytes as f64 {
            let at = per_op
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.est_bytes.total_cmp(&b.est_bytes))
                .map(|(i, _)| i);
            self.diags.push(Diagnostic {
                code: C_MEMORY_BUDGET,
                severity: Severity::Error,
                op_index: at,
                rule: None,
                message: format!(
                    "estimated peak memory {:.0} bytes exceeds the budget of {} bytes",
                    peak, self.budget.max_memory_bytes
                ),
            });
        }
        let total: f64 = per_op.iter().map(|c| c.est_rows).sum();
        let output = per_op.last().map(|c| c.est_rows).unwrap_or(0.0);
        CostReport {
            total_est_rows: total,
            output_est_rows: output,
            peak_est_bytes: peak,
            per_op,
            report: VerifyReport {
                diagnostics: self.diags,
            },
        }
    }
}

/// Columns referenced by an expression.
fn expr_columns(e: &Expr, out: &mut Vec<usize>) {
    match e {
        Expr::Column(c) => out.push(*c),
        Expr::VertexProp { col, .. } | Expr::EdgeProp { col, .. } | Expr::VertexId { col, .. } => {
            out.push(*col)
        }
        Expr::Binary { lhs, rhs, .. } => {
            expr_columns(lhs, out);
            expr_columns(rhs, out);
        }
        Expr::Not(inner) => expr_columns(inner, out),
        Expr::In { expr, .. } => expr_columns(expr, out),
        Expr::Const(_) => {}
    }
}

/// Does any op after `start` connect the columns below `boundary` to the
/// columns at/above it (a predicate or intersection spanning both sides)?
fn physically_connected(ops: &[PhysicalOp], start: usize, boundary: usize) -> bool {
    ops[start..].iter().any(|op| match op {
        PhysicalOp::Select { predicate } => {
            let mut cols = Vec::new();
            expr_columns(predicate, &mut cols);
            cols.iter().any(|&c| c >= boundary) && cols.iter().any(|&c| c < boundary)
        }
        PhysicalOp::ExpandIntersect {
            src_col, dst_col, ..
        } => (*src_col < boundary) != (*dst_col < boundary),
        _ => false,
    })
}

// ---------------------------------------------------------------------
// Physical analysis
// ---------------------------------------------------------------------

/// Runs the abstract interpreter over a physical plan.
pub fn cost_physical(
    plan: &PhysicalPlan,
    stats: Option<&CostStats>,
    budget: &CostBudget,
) -> CostReport {
    let mut ck = CostChecker::new(stats, budget);
    let mut per_op = Vec::with_capacity(plan.ops.len());
    // execution starts from one empty record
    let mut est = 1.0f64;
    let mut iv = CardInterval::exact(1.0);
    let mut kinds: Vec<ColumnKind> = Vec::new();

    for (i, op) in plan.ops.iter().enumerate() {
        match op {
            PhysicalOp::Scan {
                label,
                predicate,
                index_lookup,
            } => {
                let (n, known) = ck.label_count(*label, Some(i));
                if !kinds.is_empty() && !physically_connected(&plan.ops, i + 1, kinds.len()) {
                    ck.emit(
                        C_CROSS_PRODUCT,
                        Severity::Error,
                        Some(i),
                        format!(
                            "scan of label {label:?} cross-products {} bound column(s) with no \
                             connecting predicate downstream",
                            kinds.len()
                        ),
                    );
                }
                let sel = match (index_lookup, predicate) {
                    (Some((prop, _)), _) => {
                        let d = stats
                            .and_then(|s| s.distinct(*label, *prop))
                            .unwrap_or(DEFAULT_DISTINCT);
                        // residual predicate may filter further, but the
                        // index lookup already bounds the estimate
                        1.0 / d.max(1) as f64
                    }
                    (None, Some(p)) => ck.selectivity(p),
                    (None, None) => 1.0,
                };
                let exact = known && predicate.is_none() && index_lookup.is_none();
                let next = CardInterval {
                    lo: if exact { iv.lo * n } else { 0.0 },
                    hi: if known { iv.hi * n } else { f64::INFINITY },
                };
                kinds.push(ColumnKind::Vertex(*label));
                (est, iv) = ck.step(&mut per_op, i, true, est * n * sel, next, kinds.len());
            }
            PhysicalOp::Expand {
                elabel,
                dir,
                predicate,
                out,
                ..
            } => {
                let (avg, max) = ck.fanout(*elabel, *dir, Some(i));
                let sel = predicate.as_ref().map(|p| ck.selectivity(p)).unwrap_or(1.0);
                let next = CardInterval::at_most(iv.hi * max);
                kinds.push(match out {
                    ExpandOut::Edge => ColumnKind::Edge(*elabel),
                    ExpandOut::VertexFused { label } => ColumnKind::Vertex(*label),
                });
                (est, iv) = ck.step(&mut per_op, i, true, est * avg * sel, next, kinds.len());
            }
            PhysicalOp::GetVertex {
                label, predicate, ..
            } => {
                let sel = predicate.as_ref().map(|p| ck.selectivity(p)).unwrap_or(1.0);
                let next = if predicate.is_none() {
                    iv // exactly one endpoint per edge
                } else {
                    CardInterval::at_most(iv.hi)
                };
                kinds.push(ColumnKind::Vertex(*label));
                (est, iv) = ck.step(&mut per_op, i, false, est * sel, next, kinds.len());
            }
            PhysicalOp::ExpandIntersect {
                elabel,
                dir,
                dst_col,
                bind_edge,
                predicate,
                ..
            } => {
                let (avg, max) = ck.fanout(*elabel, *dir, Some(i));
                let n_dst = match kinds.get(*dst_col) {
                    Some(ColumnKind::Vertex(l)) => ck.label_count(*l, Some(i)).0,
                    _ => DEFAULT_LABEL_COUNT,
                };
                // probability an elabel edge closes onto the one bound dst
                let close = (avg / n_dst.max(1.0)).min(1.0);
                let sel = predicate.as_ref().map(|p| ck.selectivity(p)).unwrap_or(1.0);
                let hi = if *bind_edge { iv.hi * max } else { iv.hi };
                if *bind_edge {
                    kinds.push(ColumnKind::Edge(*elabel));
                }
                (est, iv) = ck.step(
                    &mut per_op,
                    i,
                    true,
                    est * close * sel,
                    CardInterval::at_most(hi),
                    kinds.len(),
                );
            }
            PhysicalOp::Select { predicate } => {
                let sel = ck.selectivity(predicate);
                (est, iv) = ck.step(
                    &mut per_op,
                    i,
                    false,
                    est * sel,
                    CardInterval::at_most(iv.hi),
                    kinds.len(),
                );
            }
            PhysicalOp::Project { items } => {
                let mut next_kinds = Vec::with_capacity(items.len());
                for (it, _) in items {
                    next_kinds.push(match it {
                        ProjectItem::Expr(Expr::Column(c)) => {
                            kinds.get(*c).cloned().unwrap_or(ColumnKind::Scalar)
                        }
                        _ => ColumnKind::Scalar,
                    });
                }
                let n_aggs = items
                    .iter()
                    .filter(|(it, _)| matches!(it, ProjectItem::Agg(..)))
                    .count();
                let (next_est, next_iv) = project_cardinality(est, iv, n_aggs, items.len());
                kinds = next_kinds;
                (est, iv) = ck.step(&mut per_op, i, false, next_est, next_iv, kinds.len());
            }
            PhysicalOp::Order { limit, .. } => {
                let next = match limit {
                    Some(n) => CardInterval {
                        lo: iv.lo.min(*n as f64),
                        hi: iv.hi.min(*n as f64),
                    },
                    None => iv,
                };
                let next_est = limit.map(|n| est.min(n as f64)).unwrap_or(est);
                (est, iv) = ck.step(&mut per_op, i, false, next_est, next, kinds.len());
            }
            PhysicalOp::Dedup { .. } => {
                let next = CardInterval {
                    lo: if iv.lo > 0.0 { 1.0 } else { 0.0 },
                    hi: iv.hi,
                };
                (est, iv) = ck.step(&mut per_op, i, false, est, next, kinds.len());
            }
            PhysicalOp::Limit { n } => {
                let next = CardInterval {
                    lo: iv.lo.min(*n as f64),
                    hi: iv.hi.min(*n as f64),
                };
                (est, iv) = ck.step(&mut per_op, i, false, est.min(*n as f64), next, kinds.len());
            }
        }
    }
    ck.finish(per_op)
}

/// Output cardinality of a projection: keyless all-aggregate projections
/// produce exactly one row (even on empty input); grouped aggregation
/// produces between one group (when input is non-empty) and one per row;
/// plain projections are 1:1.
fn project_cardinality(
    est: f64,
    iv: CardInterval,
    n_aggs: usize,
    n_items: usize,
) -> (f64, CardInterval) {
    if n_aggs == 0 {
        return (est, iv);
    }
    if n_aggs == n_items {
        return (1.0, CardInterval::exact(1.0));
    }
    // grouped: #groups ≤ #rows; at least one group when input non-empty
    let lo = if iv.lo > 0.0 { 1.0 } else { 0.0 };
    (
        est.max(1.0).sqrt().max(1.0).min(est.max(1.0)),
        CardInterval { lo, hi: iv.hi },
    )
}

// ---------------------------------------------------------------------
// Logical analysis
// ---------------------------------------------------------------------

/// Does any op after `start` connect old columns (below `boundary` in the
/// layout) to the new one — the logical-plan cross-product check.
fn logically_connected(ops: &[LogicalOp], start: usize, boundary: usize) -> bool {
    ops[start..].iter().any(|op| match op {
        LogicalOp::Select { predicate } => {
            let mut cols = Vec::new();
            expr_columns(predicate, &mut cols);
            cols.iter().any(|&c| c >= boundary) && cols.iter().any(|&c| c < boundary)
        }
        _ => false,
    })
}

/// Runs the abstract interpreter over a logical plan.
pub fn cost_logical(
    plan: &LogicalPlan,
    stats: Option<&CostStats>,
    budget: &CostBudget,
) -> CostReport {
    let mut ck = CostChecker::new(stats, budget);
    let mut per_op = Vec::with_capacity(plan.ops.len());
    let mut est = 1.0f64;
    let mut iv = CardInterval::exact(1.0);

    for (i, op) in plan.ops.iter().enumerate() {
        let width_before = plan.layouts.get(i).map(|l| l.width()).unwrap_or_default();
        let width = plan
            .layouts
            .get(i + 1)
            .map(|l| l.width())
            .unwrap_or(width_before);
        match op {
            LogicalOp::ScanVertex {
                label, predicate, ..
            } => {
                let (n, known) = ck.label_count(*label, Some(i));
                if width_before > 0 && !logically_connected(&plan.ops, i + 1, width_before) {
                    ck.emit(
                        C_CROSS_PRODUCT,
                        Severity::Error,
                        Some(i),
                        format!(
                            "scan of label {label:?} cross-products {width_before} bound \
                             column(s) with no connecting predicate downstream"
                        ),
                    );
                }
                let sel = predicate.as_ref().map(|p| ck.selectivity(p)).unwrap_or(1.0);
                let next = CardInterval {
                    lo: if known && predicate.is_none() {
                        iv.lo * n
                    } else {
                        0.0
                    },
                    hi: if known { iv.hi * n } else { f64::INFINITY },
                };
                (est, iv) = ck.step(&mut per_op, i, true, est * n * sel, next, width);
            }
            LogicalOp::ExpandEdge {
                elabel,
                dir,
                predicate,
                ..
            } => {
                let (avg, max) = ck.fanout(*elabel, *dir, Some(i));
                let sel = predicate.as_ref().map(|p| ck.selectivity(p)).unwrap_or(1.0);
                (est, iv) = ck.step(
                    &mut per_op,
                    i,
                    true,
                    est * avg * sel,
                    CardInterval::at_most(iv.hi * max),
                    width,
                );
            }
            LogicalOp::GetVertex { predicate, .. } => {
                let sel = predicate.as_ref().map(|p| ck.selectivity(p)).unwrap_or(1.0);
                let next = if predicate.is_none() {
                    iv
                } else {
                    CardInterval::at_most(iv.hi)
                };
                (est, iv) = ck.step(&mut per_op, i, false, est * sel, next, width);
            }
            LogicalOp::Match { pattern } => {
                let (m_est, m_hi) = ck.pattern_cost(pattern, i);
                (est, iv) = ck.step(
                    &mut per_op,
                    i,
                    true,
                    est * m_est,
                    CardInterval::at_most(iv.hi * m_hi),
                    width,
                );
            }
            LogicalOp::Select { predicate } => {
                let sel = ck.selectivity(predicate);
                (est, iv) = ck.step(
                    &mut per_op,
                    i,
                    false,
                    est * sel,
                    CardInterval::at_most(iv.hi),
                    width,
                );
            }
            LogicalOp::Project { items } => {
                let n_aggs = items
                    .iter()
                    .filter(|(it, _)| matches!(it, ProjectItem::Agg(..)))
                    .count();
                let (next_est, next_iv) = project_cardinality(est, iv, n_aggs, items.len());
                (est, iv) = ck.step(&mut per_op, i, false, next_est, next_iv, width);
            }
            LogicalOp::Order { limit, .. } => {
                let next = match limit {
                    Some(n) => CardInterval {
                        lo: iv.lo.min(*n as f64),
                        hi: iv.hi.min(*n as f64),
                    },
                    None => iv,
                };
                let next_est = limit.map(|n| est.min(n as f64)).unwrap_or(est);
                (est, iv) = ck.step(&mut per_op, i, false, next_est, next, width);
            }
            LogicalOp::Dedup { .. } => {
                let next = CardInterval {
                    lo: if iv.lo > 0.0 { 1.0 } else { 0.0 },
                    hi: iv.hi,
                };
                (est, iv) = ck.step(&mut per_op, i, false, est, next, width);
            }
            LogicalOp::Limit { n } => {
                let next = CardInterval {
                    lo: iv.lo.min(*n as f64),
                    hi: iv.hi.min(*n as f64),
                };
                (est, iv) = ck.step(&mut per_op, i, false, est.min(*n as f64), next, width);
            }
        }
    }
    ck.finish(per_op)
}

impl CostChecker<'_> {
    /// `(estimated rows, sound upper bound)` for a whole `Match` pattern,
    /// simulated vertex-by-vertex in declaration order (order only moves
    /// the intermediate sizes, not the output cardinality).
    fn pattern_cost(&mut self, pattern: &Pattern, op: usize) -> (f64, f64) {
        let n = pattern.vertices.len();
        let mut est = 1.0f64;
        let mut hi = 1.0f64;
        let mut visited = vec![false; n];
        let mut edge_done = vec![false; pattern.edges.len()];
        for vi in 0..n {
            let pv = &pattern.vertices[vi];
            let sel = pv
                .predicate
                .as_ref()
                .map(|p| self.selectivity(p))
                .unwrap_or(1.0);
            let conn = pattern
                .incident(vi)
                .into_iter()
                .find(|&(ei, _, other)| !edge_done[ei] && visited[other]);
            match conn {
                None => {
                    // anchor (or disconnected component): scan
                    let (count, known) = self.label_count(pv.label, Some(op));
                    est *= count * sel;
                    hi *= if known { count } else { f64::INFINITY };
                }
                Some((ei, dir_from_vi, _)) => {
                    let pe = &pattern.edges[ei];
                    let dir = match dir_from_vi {
                        Direction::Out => Direction::In,
                        Direction::In => Direction::Out,
                        Direction::Both => Direction::Both,
                    };
                    let (avg, max) = self.fanout(pe.label, dir, Some(op));
                    let esel = pe
                        .predicate
                        .as_ref()
                        .map(|p| self.selectivity(p))
                        .unwrap_or(1.0);
                    est *= avg * sel * esel;
                    hi *= max;
                    edge_done[ei] = true;
                }
            }
            visited[vi] = true;
            // closing edges only filter (each closes onto one bound vertex)
            for (ej, _, other) in pattern.incident(vi) {
                if edge_done[ej] || !visited[other] {
                    continue;
                }
                let pe = &pattern.edges[ej];
                let (avg, _) = self.fanout(pe.label, Direction::Out, Some(op));
                let n_other = self.label_count(pattern.vertices[other].label, Some(op)).0;
                est *= (avg / n_other.max(1.0)).min(1.0);
                edge_done[ej] = true;
            }
        }
        (est, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{ColumnKind, Layout};
    use gs_graph::Value;

    const V: LabelId = LabelId(0);
    const E: LabelId = LabelId(0);

    fn stats() -> CostStats {
        CostStats {
            vertex_counts: vec![100],
            edge_stats: vec![EdgeCostStats {
                count: 400,
                avg_out_degree: 4.0,
                avg_in_degree: 4.0,
                max_out_degree: 12,
                max_in_degree: 9,
            }],
            distinct_values: [((0u16, 0u16), 50u64)].into_iter().collect(),
        }
    }

    fn scan() -> PhysicalOp {
        PhysicalOp::Scan {
            label: V,
            predicate: None,
            index_lookup: None,
        }
    }

    fn expand() -> PhysicalOp {
        PhysicalOp::Expand {
            src_col: 0,
            src_label: V,
            elabel: E,
            dir: Direction::Out,
            predicate: None,
            out: ExpandOut::VertexFused { label: V },
        }
    }

    fn plan(ops: Vec<PhysicalOp>) -> PhysicalPlan {
        PhysicalPlan {
            ops,
            layout: Layout::new(),
        }
    }

    #[test]
    fn scan_is_exact_with_statistics() {
        let s = stats();
        let c = cost_physical(&plan(vec![scan()]), Some(&s), &CostBudget::default());
        assert_eq!(c.per_op[0].interval, CardInterval::exact(100.0));
        assert_eq!(c.output_est_rows, 100.0);
        assert!(c.report.is_clean(), "{}", c.report.render());
    }

    #[test]
    fn expansion_bounds_use_max_degree() {
        let s = stats();
        let c = cost_physical(
            &plan(vec![scan(), expand()]),
            Some(&s),
            &CostBudget::default(),
        );
        let e = &c.per_op[1];
        assert_eq!(e.interval.lo, 0.0);
        assert_eq!(e.interval.hi, 100.0 * 12.0);
        assert!((e.est_rows - 400.0).abs() < 1e-9);
    }

    #[test]
    fn c001_cross_product_without_connecting_predicate() {
        let s = stats();
        let c = cost_physical(
            &plan(vec![scan(), scan()]),
            Some(&s),
            &CostBudget::default(),
        );
        assert!(c.has_code(C_CROSS_PRODUCT), "{}", c.report.render());
        assert_eq!(c.report.error_count(), 1);
        // a connecting predicate downstream silences it
        let connected = plan(vec![
            scan(),
            scan(),
            PhysicalOp::Select {
                predicate: Expr::bin(
                    BinOp::Eq,
                    Expr::VertexId { col: 0, label: V },
                    Expr::VertexId { col: 1, label: V },
                ),
            },
        ]);
        let c = cost_physical(&connected, Some(&s), &CostBudget::default());
        assert!(!c.has_code(C_CROSS_PRODUCT), "{}", c.report.render());
    }

    #[test]
    fn c002_expansion_blowup_past_budget() {
        let s = stats();
        let budget = CostBudget {
            max_rows: 1_000.0,
            ..CostBudget::default()
        };
        let c = cost_physical(
            &plan(vec![scan(), expand(), expand(), expand()]),
            Some(&s),
            &budget,
        );
        assert!(c.has_code(C_EXPANSION_BLOWUP), "{}", c.report.render());
        // reported once, at the first op crossing the budget
        assert_eq!(
            c.report
                .diagnostics
                .iter()
                .filter(|d| d.code == C_EXPANSION_BLOWUP)
                .count(),
            1
        );
        let generous = cost_physical(
            &plan(vec![scan(), expand()]),
            Some(&s),
            &CostBudget::default(),
        );
        assert!(!generous.has_code(C_EXPANSION_BLOWUP));
    }

    #[test]
    fn c003_memory_budget() {
        let s = stats();
        let budget = CostBudget {
            max_memory_bytes: 1_000,
            ..CostBudget::default()
        };
        let c = cost_physical(&plan(vec![scan()]), Some(&s), &budget);
        assert!(c.has_code(C_MEMORY_BUDGET), "{}", c.report.render());
        assert!(c.peak_est_bytes > 1_000.0);
    }

    #[test]
    fn c301_without_statistics() {
        let c = cost_physical(&plan(vec![scan()]), None, &CostBudget::default());
        assert!(c.has_code(W_NO_STATISTICS), "{}", c.report.render());
        assert_eq!(c.report.error_count(), 0);
        // unbounded: hi is infinite but lo stays sound
        assert!(c.per_op[0].interval.hi.is_infinite());
    }

    #[test]
    fn c301_for_label_outside_statistics() {
        let s = stats();
        let p = plan(vec![PhysicalOp::Scan {
            label: LabelId(7),
            predicate: None,
            index_lookup: None,
        }]);
        let c = cost_physical(&p, Some(&s), &CostBudget::default());
        assert!(c.has_code(W_NO_STATISTICS), "{}", c.report.render());
    }

    #[test]
    fn c302_on_defaulted_selectivity() {
        let s = stats();
        let p = plan(vec![
            scan(),
            PhysicalOp::Select {
                // property not in distinct_values → defaulted distinct
                predicate: Expr::bin(
                    BinOp::Eq,
                    Expr::VertexProp {
                        col: 0,
                        label: V,
                        prop: PropId(3),
                    },
                    Expr::Const(Value::Int(1)),
                ),
            },
        ]);
        let c = cost_physical(&p, Some(&s), &CostBudget::default());
        assert!(c.has_code(W_LOW_CONFIDENCE), "{}", c.report.render());
    }

    #[test]
    fn limit_clamps_and_projection_aggregates() {
        let s = stats();
        let p = plan(vec![
            scan(),
            PhysicalOp::Limit { n: 7 },
            PhysicalOp::Project {
                items: vec![(
                    ProjectItem::Agg(crate::expr::AggFunc::Count, Expr::Column(0)),
                    "n".into(),
                )],
            },
        ]);
        let c = cost_physical(&p, Some(&s), &CostBudget::default());
        assert_eq!(c.per_op[1].interval, CardInterval { lo: 7.0, hi: 7.0 });
        // keyless aggregate: exactly one row, even over empty input
        assert_eq!(c.per_op[2].interval, CardInterval::exact(1.0));
    }

    #[test]
    fn logical_and_physical_agree_on_simple_chain() {
        let s = stats();
        let mut l0 = Layout::new();
        l0.push("v", ColumnKind::Vertex(V)).unwrap();
        let lp = LogicalPlan {
            ops: vec![LogicalOp::ScanVertex {
                alias: "v".into(),
                label: V,
                predicate: None,
            }],
            layouts: vec![Layout::new(), l0],
        };
        let cl = cost_logical(&lp, Some(&s), &CostBudget::default());
        let cp = cost_physical(&plan(vec![scan()]), Some(&s), &CostBudget::default());
        assert_eq!(cl.output_est_rows, cp.output_est_rows);
        assert_eq!(cl.per_op[0].interval, cp.per_op[0].interval);
    }

    #[test]
    fn enforce_denies_only_errors() {
        let s = stats();
        let cross = cost_physical(
            &plan(vec![scan(), scan()]),
            Some(&s),
            &CostBudget::default(),
        );
        assert!(enforce_cost(&cross, VerifyLevel::Warn, "test").is_ok());
        assert!(enforce_cost(&cross, VerifyLevel::Deny, "test").is_err());
        let clean = cost_physical(&plan(vec![scan()]), Some(&s), &CostBudget::default());
        assert!(enforce_cost(&clean, VerifyLevel::Deny, "test").is_ok());
        assert!(enforce_cost(&cross, VerifyLevel::Off, "test").is_ok());
    }

    #[test]
    fn over_budget_reflects_output_and_memory() {
        let s = stats();
        let c = cost_physical(&plan(vec![scan()]), Some(&s), &CostBudget::default());
        assert!(!c.over_budget(&CostBudget::default()));
        assert!(c.over_budget(&CostBudget {
            max_rows: 10.0,
            ..CostBudget::default()
        }));
        assert!(c.over_budget(&CostBudget {
            max_memory_bytes: 16,
            ..CostBudget::default()
        }));
    }
}
