//! LEB128 variable-length integer codec.
//!
//! The paper notes GRAPE "employs varint encoding ... to reduce peak memory
//! usage" for its message buffers, and GraphAr uses lightweight encodings for
//! its chunked columns. Both share this implementation.

/// Appends `v` to `out` in LEB128 form; returns bytes written (1..=10).
#[inline]
pub fn encode_u64(mut v: u64, out: &mut Vec<u8>) -> usize {
    let mut n = 0;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        n += 1;
        if v == 0 {
            out.push(byte);
            return n;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes a LEB128 u64 from `buf`; returns `(value, bytes_read)` or `None`
/// on truncation/overflow.
#[inline]
pub fn decode_u64(buf: &[u8]) -> Option<(u64, usize)> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for (i, &b) in buf.iter().enumerate() {
        if shift >= 64 {
            return None; // overflow: more than 10 bytes
        }
        let low = (b & 0x7f) as u64;
        // the 10th byte may only carry 1 bit
        if shift == 63 && low > 1 {
            return None;
        }
        v |= low << shift;
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
        shift += 7;
    }
    None
}

/// ZigZag-encodes a signed value then varint-encodes it.
#[inline]
pub fn encode_i64(v: i64, out: &mut Vec<u8>) -> usize {
    encode_u64(zigzag(v), out)
}

/// Decodes a ZigZag varint i64.
#[inline]
pub fn decode_i64(buf: &[u8]) -> Option<(i64, usize)> {
    decode_u64(buf).map(|(u, n)| (unzigzag(u), n))
}

#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Delta-encodes a sorted (or any) u64 slice into zigzag varints. The first
/// element is stored absolutely. Used by GraphAr offset/neighbor chunks.
pub fn encode_deltas(values: &[u64], out: &mut Vec<u8>) {
    encode_u64(values.len() as u64, out);
    let mut prev = 0u64;
    for (i, &v) in values.iter().enumerate() {
        if i == 0 {
            encode_u64(v, out);
        } else {
            // wrapping delta: total over u64, compact for nearby values
            encode_i64(v.wrapping_sub(prev) as i64, out);
        }
        prev = v;
    }
}

/// Decodes a delta-encoded u64 sequence; returns `(values, bytes_read)`.
pub fn decode_deltas(buf: &[u8]) -> Option<(Vec<u64>, usize)> {
    let (len, mut pos) = decode_u64(buf)?;
    let mut values = Vec::with_capacity(len as usize);
    let mut prev = 0u64;
    for i in 0..len {
        if i == 0 {
            let (v, n) = decode_u64(&buf[pos..])?;
            pos += n;
            prev = v;
        } else {
            let (d, n) = decode_i64(&buf[pos..])?;
            pos += n;
            prev = prev.wrapping_add(d as u64);
        }
        values.push(prev);
    }
    Some((values, pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trip_edges() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX, u32::MAX as u64] {
            let mut buf = Vec::new();
            let n = encode_u64(v, &mut buf);
            assert_eq!(n, buf.len());
            assert_eq!(decode_u64(&buf), Some((v, n)));
        }
    }

    #[test]
    fn i64_round_trip_edges() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -64, 63] {
            let mut buf = Vec::new();
            encode_i64(v, &mut buf);
            assert_eq!(decode_i64(&buf).unwrap().0, v);
        }
    }

    #[test]
    fn truncated_input_is_none() {
        let mut buf = Vec::new();
        encode_u64(300, &mut buf);
        assert!(decode_u64(&buf[..1]).is_none());
        assert!(decode_u64(&[]).is_none());
    }

    #[test]
    fn overlong_input_is_none() {
        // 11 continuation bytes can never be a valid u64
        let buf = [0x80u8; 11];
        assert!(decode_u64(&buf).is_none());
    }

    #[test]
    fn zigzag_properties() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        for v in [-5i64, 5, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn delta_round_trip_sorted_and_unsorted() {
        for values in [
            vec![],
            vec![7u64],
            vec![1, 2, 3, 1000, 1001],
            vec![10, 3, 99, 0], // deltas can be negative
        ] {
            let mut buf = Vec::new();
            encode_deltas(&values, &mut buf);
            let (back, n) = decode_deltas(&buf).unwrap();
            assert_eq!(back, values);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn delta_encoding_is_compact_for_sorted_runs() {
        let values: Vec<u64> = (1_000_000..1_001_000).collect();
        let mut buf = Vec::new();
        encode_deltas(&values, &mut buf);
        // 1000 deltas of 1 → ~1 byte each plus header; raw would be 8000 B.
        assert!(buf.len() < 1100, "len = {}", buf.len());
    }
}
