/root/repo/target/debug/deps/gs_hiactor-15f214fd773de15c.d: crates/gs-hiactor/src/lib.rs

/root/repo/target/debug/deps/gs_hiactor-15f214fd773de15c: crates/gs-hiactor/src/lib.rs

crates/gs-hiactor/src/lib.rs:
