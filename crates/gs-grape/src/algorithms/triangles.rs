//! Triangle counting over pluggable layouts.
//!
//! Forward-orientation algorithm: orient every undirected edge from the
//! smaller to the larger endpoint; a triangle `{a < b < c}` is then counted
//! exactly once, at edge `(a, b)`, as a common forward-neighbor `c`. The
//! per-edge intersection goes through
//! [`TopologyLayout::intersection_count`], so the layout picks the
//! strategy: plain CSR merges linearly, sorted CSR switches to galloping
//! search when a hub list dwarfs the other side — the win this layout
//! exists for on power-law graphs.

use gs_graph::csr::Csr;
use gs_graph::layout::{LayoutKind, TopologyLayout};
use gs_graph::VId;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Counts triangles of the undirected graph induced by `edges`
/// (direction, self-loops, and duplicates are normalised away), using the
/// given topology layout for the intersection kernel. Parallelised over
/// vertex chunks claimed from a shared cursor, so hub-heavy prefixes don't
/// pin the whole count on one thread.
pub fn triangle_count(n: usize, edges: &[(VId, VId)], layout: LayoutKind, threads: usize) -> u64 {
    // forward orientation: smaller endpoint → larger, dedup
    let mut fw: Vec<(VId, VId)> = edges
        .iter()
        .filter(|(s, d)| s != d)
        .map(|&(s, d)| if s < d { (s, d) } else { (d, s) })
        .collect();
    fw.sort_unstable();
    fw.dedup();
    let topo = TopologyLayout::build(layout, Csr::from_edges(n, &fw));

    let threads = threads.max(1);
    let total = AtomicU64::new(0);
    let cursor = AtomicUsize::new(0);
    const CHUNK: usize = 256;
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            let topo = &topo;
            let total = &total;
            let cursor = &cursor;
            s.spawn(move |_| {
                let mut local = 0u64;
                loop {
                    let lo = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                    if lo >= n {
                        break;
                    }
                    for v in lo..(lo + CHUNK).min(n) {
                        let vid = VId(v as u64);
                        topo.for_each_adj(vid, |w, _| {
                            local += topo.intersection_count(vid, w) as u64;
                        });
                    }
                }
                total.fetch_add(local, Ordering::Relaxed);
            });
        }
    })
    .expect("triangle scope");
    total.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_known_triangles() {
        // K4 has 4 triangles
        let mut edges = Vec::new();
        for a in 0..4u64 {
            for b in (a + 1)..4 {
                edges.push((VId(a), VId(b)));
            }
        }
        for layout in LayoutKind::ALL {
            assert_eq!(triangle_count(4, &edges, layout, 2), 4, "{layout}");
        }
    }

    #[test]
    fn normalises_direction_duplicates_and_loops() {
        let edges = vec![
            (VId(0), VId(1)),
            (VId(1), VId(0)), // reverse duplicate
            (VId(1), VId(2)),
            (VId(2), VId(0)),
            (VId(2), VId(2)), // self-loop
            (VId(0), VId(1)), // duplicate
        ];
        for layout in LayoutKind::ALL {
            assert_eq!(triangle_count(3, &edges, layout, 1), 1, "{layout}");
        }
    }

    #[test]
    fn layouts_and_threads_agree_on_random_graph() {
        use rand::Rng;
        let mut rng = rand_pcg::Pcg64Mcg::new(13);
        let edges: Vec<(VId, VId)> = (0..2000)
            .map(|_| (VId(rng.gen_range(0..150)), VId(rng.gen_range(0..150))))
            .collect();
        let want = triangle_count(150, &edges, LayoutKind::Csr, 1);
        for layout in LayoutKind::ALL {
            for threads in [1, 4] {
                assert_eq!(
                    triangle_count(150, &edges, layout, threads),
                    want,
                    "{layout} x{threads}"
                );
            }
        }
    }

    #[test]
    fn empty_and_tiny() {
        assert_eq!(triangle_count(0, &[], LayoutKind::Csr, 2), 0);
        assert_eq!(
            triangle_count(2, &[(VId(0), VId(1))], LayoutKind::SortedCsr, 2),
            0
        );
    }
}
