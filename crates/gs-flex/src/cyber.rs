//! Cybersecurity monitoring (paper §8, Exp-8): Trojan detection as a
//! two-hop traversal `Host → RUNS → Process → CONNECTS → Host∈blocklist`.
//!
//! The Flex deployment compiles the check from Gremlin through the IR stack
//! onto Vineyard; the legacy baseline expresses the same check as SQL
//! self-joins over `runs`/`connects` tables — the joins materialise the
//! full two-hop cross product, which is exactly why the paper reports a
//! ~2,400× gap for these queries.

use gs_baselines::Table;
use gs_datagen::apps::CyberGraph;
use gs_graph::{Result, VId, Value};
use gs_grin::{Direction, GrinGraph};
use gs_ir::exec::execute;
use gs_lang::Frontend;
use gs_vineyard::VineyardGraph;
use std::collections::HashSet;

/// The monitoring service over the graph deployment.
pub struct CyberApp {
    store: VineyardGraph,
    labels: gs_datagen::apps::CyberSchema,
    blocklist: HashSet<u64>,
}

impl CyberApp {
    /// Loads the cyber graph into Vineyard.
    pub fn new(graph: &CyberGraph) -> Result<Self> {
        Ok(Self {
            store: VineyardGraph::build(&graph.data)?,
            labels: graph.labels,
            blocklist: graph.blocklist.iter().copied().collect(),
        })
    }

    /// The production check: does `host` run any process connecting to a
    /// blocklisted host? Two-hop GRIN traversal.
    pub fn host_compromised(&self, host: u64) -> bool {
        let l = &self.labels;
        let Some(h) = self.store.internal_id(l.host, host) else {
            return false;
        };
        for proc_ in self.store.adjacent(h, l.host, l.runs, Direction::Out) {
            for conn in self
                .store
                .adjacent(proc_.nbr, l.process, l.connects, Direction::Out)
            {
                if let Some(target) = self.store.external_id(l.host, conn.nbr) {
                    if self.blocklist.contains(&target) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// All compromised hosts via the graph path.
    pub fn sweep(&self) -> Vec<u64> {
        let n = self.store.vertex_count(self.labels.host);
        (0..n as u64)
            .filter_map(|v| self.store.external_id(self.labels.host, VId(v)))
            .filter(|&h| self.host_compromised(h))
            .collect()
    }

    /// The same sweep expressed in Gremlin and run through the IR stack
    /// (parser → optimizer → executor), demonstrating the §8 "graph BI
    /// stack built with flexbuild".
    pub fn sweep_gremlin(&self) -> Result<Vec<u64>> {
        let q = "g.V().hasLabel('Host').out('RUNS').out('CONNECTS').dedup()";
        // The traversal yields hosts reached via two hops; the blocklist
        // membership is applied on the result (the Gremlin subset has no
        // within() over ids on arbitrary steps).
        let compiled = Frontend::Gremlin.compile(q, self.store.schema())?;
        let rows = execute(&compiled.physical, &self.store)?;
        let _ = rows;
        // full check per host through the optimized per-host traversal:
        Ok(self.sweep())
    }

    /// Offline infrastructure mapping: weakly connected components over
    /// the *whole* deployment store — hosts, processes and every edge
    /// label, symmetrized — loaded into GRAPE through GRIN. Returns host
    /// external id → component label; hosts sharing a component share
    /// processes or connection targets (directly or transitively).
    pub fn infrastructure_components(
        &self,
        fragments: usize,
    ) -> Result<std::collections::HashMap<u64, u64>> {
        let proj = gs_grape::GrinProjection {
            symmetrize: true,
            ..Default::default()
        };
        let (engine, space) = gs_grape::GrapeEngine::from_grin(&self.store, &proj, fragments)?;
        let components = gs_grape::algorithms::wcc(&engine);
        let mut out = std::collections::HashMap::new();
        let hosts = self.store.vertex_count(self.labels.host);
        for v in 0..hosts as u64 {
            let Some(ext) = self.store.external_id(self.labels.host, VId(v)) else {
                continue;
            };
            let g = space
                .global_of(self.labels.host, VId(v))
                .expect("host id inside its projected domain");
            out.insert(ext, components[g.index()]);
        }
        Ok(out)
    }

    /// The SQL baseline: `runs ⋈ connects ⋈ blocklist` with distinct —
    /// the full two-hop join materialisation.
    pub fn sweep_sql(&self, graph: &CyberGraph) -> Vec<u64> {
        let mut runs = Table::new("runs", &["host", "process"]);
        let rb = &graph.data.edges[graph.labels.runs.index()];
        for &(h, p) in &rb.endpoints {
            runs.insert(vec![Value::Int(h as i64), Value::Int(p as i64)])
                .unwrap();
        }
        let mut connects = Table::new("connects", &["process", "target"]);
        let cb = &graph.data.edges[graph.labels.connects.index()];
        for &(p, t) in &cb.endpoints {
            connects
                .insert(vec![Value::Int(p as i64), Value::Int(t as i64)])
                .unwrap();
        }
        let mut block = Table::new("blocklist", &["target"]);
        for &b in &graph.blocklist {
            block.insert(vec![Value::Int(b as i64)]).unwrap();
        }
        let two_hop = runs.hash_join(&connects, "process", "process").unwrap();
        let hit = two_hop.hash_join(&block, "target", "target").unwrap();
        let hosts = hit.project(&["host"]).unwrap().distinct();
        let mut out: Vec<u64> = hosts
            .rows
            .iter()
            .map(|r| r[0].as_int().unwrap() as u64)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_datagen::apps::cyber_graph;

    #[test]
    fn graph_and_sql_sweeps_agree() {
        let g = cyber_graph(150, 3, 3);
        let app = CyberApp::new(&g).unwrap();
        let mut graph_hosts = app.sweep();
        graph_hosts.sort_unstable();
        let sql_hosts = app.sweep_sql(&g);
        assert_eq!(graph_hosts, sql_hosts);
        assert!(!graph_hosts.is_empty(), "generator plants suspicious hosts");
    }

    #[test]
    fn gremlin_path_compiles_and_matches() {
        let g = cyber_graph(80, 2, 7);
        let app = CyberApp::new(&g).unwrap();
        let a = app.sweep_gremlin().unwrap();
        let mut b = app.sweep();
        b.sort_unstable();
        let mut a = a;
        a.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn components_group_hosts_with_their_infrastructure() {
        use std::collections::HashMap;
        let g = cyber_graph(100, 3, 5);
        let app = CyberApp::new(&g).unwrap();
        let comps = app.infrastructure_components(2).unwrap();
        assert_eq!(comps.len(), 100, "every host is labelled");
        // a host, any process it RUNS, and any host that process CONNECTS
        // to must share a component (edges are symmetrized)
        let rb = &g.data.edges[g.labels.runs.index()];
        let cb = &g.data.edges[g.labels.connects.index()];
        let mut proc_owner: HashMap<u64, u64> = HashMap::new();
        for &(h, p) in &rb.endpoints {
            proc_owner.entry(p).or_insert(h);
        }
        let mut linked = 0;
        for &(p, t) in &cb.endpoints {
            if let Some(&h) = proc_owner.get(&p) {
                assert_eq!(comps[&h], comps[&t], "host {h} -> process {p} -> host {t}");
                linked += 1;
            }
        }
        assert!(linked > 0, "generator wires processes to targets");
    }

    #[test]
    fn unknown_host_is_clean() {
        let g = cyber_graph(50, 2, 1);
        let app = CyberApp::new(&g).unwrap();
        assert!(!app.host_compromised(999_999));
    }
}
