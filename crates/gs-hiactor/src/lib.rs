//! # gs-hiactor — HiActor, the high-concurrency OLTP engine
//!
//! HiActor (paper §5, after Alibaba's hiactor framework) targets the OLTP
//! side of graph querying: many small concurrent queries, each cheap, where
//! throughput and tail latency matter more than per-query parallelism. The
//! runtime is a set of *shard* actors — one OS thread each, processing its
//! mailbox sequentially — plus a stored-procedure registry, mirroring how
//! production deployments run parameterized queries at high QPS (§8
//! real-time fraud detection runs exactly this stack over GART).
//!
//! A query occupies exactly one shard (no cross-worker exchange), which is
//! the design contrast with Gaia: minimal coordination overhead per query,
//! no data parallelism within one.

use gs_grin::GrinGraph;
use gs_ir::exec::execute;
use gs_ir::physical::PhysicalPlan;
use gs_ir::record::Record;
use gs_ir::{GraphError, Result, Value};
use gs_sanitizer::channel::{bounded, unbounded, TrackedReceiver, TrackedSender};
use gs_sanitizer::SharedCell;
use gs_telemetry::observe;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The shard-actor runtime.
pub struct HiActorRuntime {
    shards: Vec<TrackedSender<Job>>,
    /// Jobs currently waiting in (or running from) each shard's mailbox.
    depths: Vec<Arc<AtomicU64>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    next: AtomicUsize,
}

impl HiActorRuntime {
    /// Spawns `shards` actor threads.
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for i in 0..shards {
            let (tx, rx): (TrackedSender<Job>, TrackedReceiver<Job>) = unbounded("hiactor.mailbox");
            senders.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("hiactor-shard-{i}"))
                    .spawn(move || {
                        // the actor loop: drain the mailbox sequentially. A
                        // panicking job must not take the whole shard down —
                        // its caller sees the dropped result channel as a
                        // structured error; the shard keeps serving.
                        for job in rx {
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        }
                    })
                    .expect("spawn shard"),
            );
        }
        Self {
            shards: senders,
            depths: (0..shards).map(|_| Arc::new(AtomicU64::new(0))).collect(),
            handles,
            next: AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Jobs currently queued on (or running from) shard `i`.
    pub fn queue_depth(&self, i: usize) -> u64 {
        self.depths[i % self.depths.len()].load(Ordering::Relaxed)
    }

    /// Submits a job to a specific shard (or round-robin when `None`);
    /// returns a completion receiver.
    pub fn submit<T, F>(&self, shard: Option<usize>, f: F) -> TrackedReceiver<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (tx, rx) = bounded("hiactor.result", 1);
        let idx = shard
            .unwrap_or_else(|| self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len())
            % self.shards.len();
        let depth = Arc::clone(&self.depths[idx]);
        let d = depth.fetch_add(1, Ordering::Relaxed) + 1;
        observe!("hiactor.queue_depth", shard = idx; d);
        // the depth must come back down even when the job panics out of the
        // shard loop's catch_unwind, so decrement from a drop guard —
        // before publishing the result, so a caller that has observed
        // completion never sees this job still counted
        struct DepthGuard(Arc<AtomicU64>);
        impl Drop for DepthGuard {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::Relaxed);
            }
        }
        let guard = DepthGuard(depth);
        let job: Job = Box::new(move || {
            let out = f();
            drop(guard);
            let _ = tx.send(out);
        });
        // a dead shard drops the job here, which drops `tx`; the caller
        // observes a disconnected result channel and maps it to a
        // structured error instead of this send panicking
        let _ = self.shards[idx].send(job);
        rx
    }

    /// Blocks until all shards have drained their current mailboxes.
    pub fn quiesce(&self) {
        let receivers: Vec<TrackedReceiver<()>> = (0..self.shards.len())
            .map(|i| self.submit(Some(i), || ()))
            .collect();
        for r in receivers {
            let _ = r.recv();
        }
    }
}

impl Drop for HiActorRuntime {
    fn drop(&mut self) {
        self.shards.clear(); // close mailboxes → actors exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The GRIN capabilities HiActor requires from a store: iterator access
/// plus properties, and external-id lookup so parameterized procedures can
/// seed traversals from user-supplied ids. Validated at
/// [`gs_ir::QueryEngine::execute`], mirroring Gaia.
pub const REQUIRED_CAPABILITIES: gs_grin::Capabilities = gs_grin::Capabilities::VERTEX_LIST_ITER
    .union(gs_grin::Capabilities::ADJ_LIST_ITER)
    .union(gs_grin::Capabilities::PROPERTY)
    .union(gs_grin::Capabilities::INDEX_EXTERNAL_ID);

/// A stored procedure: parameters in, records out.
pub type Procedure =
    Arc<dyn Fn(&HashMap<String, Value>) -> Result<Vec<Record>> + Send + Sync + 'static>;

/// The OLTP query service: a HiActor runtime plus a stored-procedure
/// registry. Procedures capture their own graph access (e.g. a GART store
/// they snapshot per call), exactly like registered procedures in a graph
/// database.
pub struct QueryService {
    runtime: HiActorRuntime,
    procedures: SharedCell<HashMap<String, Procedure>>,
    verify: gs_ir::VerifyLevel,
}

impl QueryService {
    /// Service over `shards` actor threads.
    pub fn new(shards: usize) -> Self {
        Self {
            runtime: HiActorRuntime::new(shards),
            procedures: SharedCell::new("hiactor.procedures", HashMap::new()),
            verify: gs_ir::VerifyLevel::default(),
        }
    }

    /// Sets the submit-time plan verification level for ad-hoc plans.
    pub fn with_verify(mut self, verify: gs_ir::VerifyLevel) -> Self {
        self.verify = verify;
        self
    }

    /// The underlying runtime (for ad-hoc jobs).
    pub fn runtime(&self) -> &HiActorRuntime {
        &self.runtime
    }

    /// Registers a native stored procedure.
    pub fn register(&self, name: &str, proc_: Procedure) {
        self.procedures.update(|m| {
            m.insert(name.to_string(), proc_);
        });
    }

    /// Registers a pre-compiled physical plan as a procedure over a fixed
    /// graph handle (parameters are ignored — the plan is fully bound).
    pub fn register_plan(&self, name: &str, plan: PhysicalPlan, graph: Arc<dyn GrinGraph>) {
        let proc_: Procedure = Arc::new(move |_params| execute(&plan, graph.as_ref()));
        self.register(name, proc_);
    }

    /// Calls a procedure asynchronously; the result arrives on the returned
    /// channel. Unknown procedure names are reported through the channel.
    pub fn call(
        &self,
        name: &str,
        params: HashMap<String, Value>,
    ) -> TrackedReceiver<Result<Vec<Record>>> {
        let proc_ = self.procedures.read_with(|m| m.get(name).cloned());
        match proc_ {
            Some(p) => {
                let name = name.to_string();
                self.runtime.submit(None, move || {
                    let start = gs_telemetry::enabled().then(Instant::now);
                    let r = p(&params);
                    if let Some(t) = start {
                        observe!("hiactor.proc_ns", name = name; t.elapsed().as_nanos() as u64);
                    }
                    r
                })
            }
            None => {
                let (tx, rx) = bounded("hiactor.result", 1);
                let _ = tx.send(Err(GraphError::Query(format!(
                    "unknown procedure `{name}`"
                ))));
                rx
            }
        }
    }

    /// Synchronous convenience wrapper. A procedure that panics (or a shard
    /// that shut down mid-call) surfaces as a structured [`GraphError`]
    /// rather than a caller-side panic.
    pub fn call_sync(&self, name: &str, params: HashMap<String, Value>) -> Result<Vec<Record>> {
        self.call(name, params).recv().map_err(|_| {
            GraphError::Query(
                "hiactor shard worker terminated before replying \
                 (procedure panicked or shard shut down)"
                    .into(),
            )
        })?
    }
}

impl gs_ir::QueryEngine for QueryService {
    /// Runs the plan as a one-shot job on one shard actor (a query
    /// occupies exactly one shard — HiActor's OLTP contract), blocking
    /// until the shard replies.
    fn execute(&self, plan: &PhysicalPlan, graph: &dyn GrinGraph) -> Result<Vec<Record>> {
        graph.capabilities().require(REQUIRED_CAPABILITIES)?;
        gs_ir::verify::verify_on_submit(plan, graph.schema(), self.verify, "hiactor")?;
        // `submit` needs a 'static closure but `graph` is a borrow. Erase
        // the lifetime behind a Send-able raw pointer: sound because we
        // block on `recv()` below, so `graph` outlives every use — the
        // channel only resolves once the job (and its last use of the
        // pointer) is finished or dropped.
        struct SendPtr(*const (dyn GrinGraph + 'static));
        unsafe impl Send for SendPtr {}
        impl SendPtr {
            // method (not field) access, so the closure captures the whole
            // Send wrapper rather than the raw pointer field
            fn graph(&self) -> &dyn GrinGraph {
                unsafe { &*self.0 }
            }
        }
        let ptr = SendPtr(unsafe {
            std::mem::transmute::<*const (dyn GrinGraph + '_), *const (dyn GrinGraph + 'static)>(
                graph as *const _,
            )
        });
        let plan = plan.clone();
        let rx = self.runtime.submit(None, move || {
            let start = gs_telemetry::enabled().then(Instant::now);
            let r = execute(&plan, ptr.graph());
            if let Some(t) = start {
                observe!("hiactor.proc_ns", name = "adhoc"; t.elapsed().as_nanos() as u64);
            }
            r
        });
        rx.recv().map_err(|_| {
            GraphError::Query(
                "hiactor shard worker terminated before replying \
                 (query panicked or shard shut down)"
                    .into(),
            )
        })?
    }

    fn name(&self) -> &'static str {
        "hiactor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_grin::graph::mock::MockGraph;
    use gs_ir::physical::lower_naive;
    use gs_ir::PlanBuilder;

    fn graph() -> Arc<MockGraph> {
        Arc::new(MockGraph::new(
            100,
            &(0..300u64)
                .map(|i| (i % 100, (i * 13 + 1) % 100, 1.0))
                .collect::<Vec<_>>(),
        ))
    }

    #[test]
    fn runtime_executes_jobs_on_all_shards() {
        let rt = HiActorRuntime::new(4);
        let results: Vec<_> = (0..16)
            .map(|i| rt.submit(Some(i % 4), move || i * 2))
            .collect();
        let sum: usize = results.into_iter().map(|r| r.recv().unwrap()).sum();
        assert_eq!(sum, (0..16).map(|i| i * 2).sum());
    }

    #[test]
    fn shard_mailboxes_are_sequential() {
        // jobs on ONE shard must run in submission order
        let rt = HiActorRuntime::new(2);
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut rxs = Vec::new();
        for i in 0..50 {
            let log = Arc::clone(&log);
            rxs.push(rt.submit(Some(0), move || log.lock().push(i)));
        }
        for rx in rxs {
            rx.recv().unwrap();
        }
        assert_eq!(*log.lock(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn queue_depth_drains_to_zero() {
        let rt = HiActorRuntime::new(2);
        let rxs: Vec<_> = (0..100)
            .map(|i| rt.submit(Some(i % 2), move || i))
            .collect();
        for rx in rxs {
            rx.recv().unwrap();
        }
        rt.quiesce();
        assert_eq!(rt.queue_depth(0), 0);
        assert_eq!(rt.queue_depth(1), 0);
    }

    #[test]
    fn plan_procedure_round_trip() {
        let g = graph();
        let s = g.schema().clone();
        let plan = lower_naive(&PlanBuilder::new(&s).scan("a", "V").unwrap().build()).unwrap();
        let svc = QueryService::new(2);
        svc.register_plan("all_vertices", plan, g);
        let rows = svc.call_sync("all_vertices", HashMap::new()).unwrap();
        assert_eq!(rows.len(), 100);
    }

    #[test]
    fn native_procedure_with_params() {
        let g = graph();
        let svc = QueryService::new(2);
        let gg = Arc::clone(&g);
        svc.register(
            "degree_of",
            Arc::new(move |params| {
                let id = params
                    .get("id")
                    .and_then(|v| v.as_int())
                    .ok_or_else(|| GraphError::Query("missing id".into()))?
                    as u64;
                let d = gg.degree(
                    gs_graph::VId(id),
                    gs_graph::LabelId(0),
                    gs_graph::LabelId(0),
                    gs_grin::Direction::Out,
                );
                Ok(vec![vec![Value::Int(d as i64)]])
            }),
        );
        let mut p = HashMap::new();
        p.insert("id".to_string(), Value::Int(0));
        let rows = svc.call_sync("degree_of", p).unwrap();
        assert_eq!(rows[0][0], Value::Int(3));
    }

    #[test]
    fn query_engine_runs_adhoc_plans() {
        use gs_ir::QueryEngine;
        let g = graph();
        let s = g.schema().clone();
        let plan = lower_naive(&PlanBuilder::new(&s).scan("a", "V").unwrap().build()).unwrap();
        let svc = QueryService::new(2);
        assert_eq!(QueryEngine::name(&svc), "hiactor");
        let rows = QueryEngine::execute(&svc, &plan, g.as_ref()).unwrap();
        assert_eq!(rows.len(), 100);
    }

    #[test]
    fn unknown_procedure_errors() {
        let svc = QueryService::new(1);
        assert!(svc.call_sync("ghost", HashMap::new()).is_err());
    }

    #[test]
    fn panicking_procedure_surfaces_structured_error() {
        let svc = QueryService::new(2);
        svc.register("boom", Arc::new(|_| panic!("procedure exploded")));
        svc.register("ok", Arc::new(|_| Ok(vec![vec![Value::Int(7)]])));
        // silence the panic backtrace this test deliberately provokes
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = svc.call_sync("boom", HashMap::new()).unwrap_err();
        std::panic::set_hook(prev);
        match &err {
            GraphError::Query(msg) => {
                assert!(msg.contains("terminated"), "unexpected message: {msg}")
            }
            other => panic!("expected Query error, got {other:?}"),
        }
        // the shard survived the panic and still serves calls
        for _ in 0..8 {
            let rows = svc.call_sync("ok", HashMap::new()).unwrap();
            assert_eq!(rows[0][0], Value::Int(7));
        }
    }

    #[test]
    fn adhoc_query_after_worker_death_reports_terminated() {
        use gs_ir::QueryEngine;
        let g = graph();
        let s = g.schema().clone();
        let plan = lower_naive(&PlanBuilder::new(&s).scan("a", "V").unwrap().build()).unwrap();
        let svc = QueryService::new(1);
        // kill the single shard mid-stream: a job that panics, then an
        // ad-hoc query right behind it on the same mailbox
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let dead = svc.runtime().submit(Some(0), || panic!("worker killed"));
        assert!(dead.recv().is_err(), "panicked job must not reply");
        std::panic::set_hook(prev);
        // the runtime absorbed the death; the next query still runs
        let rows = QueryEngine::execute(&svc, &plan, g.as_ref()).unwrap();
        assert_eq!(rows.len(), 100);
    }

    #[test]
    fn concurrent_calls_complete() {
        let g = graph();
        let svc = QueryService::new(4);
        let gg = Arc::clone(&g);
        svc.register(
            "noop",
            Arc::new(move |_| {
                // touch the graph so the closure isn't optimised away
                let _ = gg.vertex_count(gs_graph::LabelId(0));
                Ok(vec![])
            }),
        );
        let rxs: Vec<_> = (0..1000)
            .map(|_| svc.call("noop", HashMap::new()))
            .collect();
        for rx in rxs {
            rx.recv().unwrap().unwrap();
        }
        svc.runtime().quiesce();
    }
}
