//! Serving over a durable GART store across a restart: the data version
//! the result cache is keyed by *is* the store's committed version, so
//! recovery hands a restarted server the exact version the crashed one
//! was serving — pre-restart cache keys stay semantically valid, and the
//! first post-restart commit bumps the version and invalidates them.

use gs_gart::{DurabilityConfig, GartStore};
use gs_graph::schema::GraphSchema;
use gs_graph::ValueType;
use gs_grin::Value;
use gs_serve::{GartServeStore, Priority, ServeConfig, ServeStore, Server};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

fn schema() -> (GraphSchema, gs_grin::LabelId) {
    let mut s = GraphSchema::new();
    let vl = s.add_vertex_label("Account", &[("id", ValueType::Int)]);
    (s, vl)
}

fn tmpdir() -> PathBuf {
    let d = std::env::temp_dir().join(format!("gs-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn open(dir: &PathBuf) -> (Arc<GartStore>, gs_grin::LabelId) {
    let (s, vl) = schema();
    (GartStore::open(s, DurabilityConfig::new(dir)).unwrap(), vl)
}

fn server(store: &Arc<GartStore>) -> Arc<Server> {
    Arc::new(Server::new(
        Box::new(gs_ir::ReferenceEngine::default()),
        Box::new(GartServeStore::new(Arc::clone(store))),
        ServeConfig::default(),
    ))
}

#[test]
fn data_version_survives_restart_and_post_restart_commits_invalidate() {
    let dir = tmpdir();
    let (store, vl) = open(&dir);
    for i in 1..=3 {
        store.add_vertex(vl, i, vec![Value::Int(i as i64)]).unwrap();
    }
    store.commit();

    let params: HashMap<String, Value> = HashMap::new();
    let text = "MATCH (v:Account {id: 2}) RETURN v";

    let srv = server(&store);
    let session = srv.session("tenant-a", Priority::Normal);
    let rows = session
        .query(gs_lang::Frontend::Cypher, text, &params)
        .unwrap();
    assert_eq!(rows.len(), 1);
    // identical re-execution at the same version is a result-cache hit
    session
        .query(gs_lang::Frontend::Cypher, text, &params)
        .unwrap();
    assert_eq!(srv.stats().result_hits, 1);
    let served_version = GartServeStore::new(Arc::clone(&store)).data_version();
    assert_eq!(served_version, 1);

    // restart: drop the serving stack, recover the store from disk
    drop(session);
    drop(srv);
    drop(store);
    let (store, vl) = open(&dir);
    let facade = GartServeStore::new(Arc::clone(&store));
    assert_eq!(
        facade.data_version(),
        served_version,
        "recovery must hand the restarted server the committed version"
    );

    // a fresh server over the recovered store serves identical rows
    let srv = server(&store);
    let session = srv.session("tenant-a", Priority::Normal);
    let recovered = session
        .query(gs_lang::Frontend::Cypher, text, &params)
        .unwrap();
    assert_eq!(*recovered, *rows);
    let before = srv.stats();

    // the first post-restart commit bumps the version: the cached result
    // silently stops matching and the query re-executes
    store.add_vertex(vl, 4, vec![Value::Int(4)]).unwrap();
    store.commit();
    assert_eq!(facade.data_version(), served_version + 1);
    session
        .query(gs_lang::Frontend::Cypher, text, &params)
        .unwrap();
    let after = srv.stats();
    assert_eq!(
        after.result_misses,
        before.result_misses + 1,
        "post-restart commit must invalidate the cached result"
    );
    assert_eq!(after.result_hits, before.result_hits);

    let _ = std::fs::remove_dir_all(&dir);
}
