/root/repo/target/debug/deps/gs_optimizer-a059ced9c1920101.d: crates/gs-optimizer/src/lib.rs crates/gs-optimizer/src/glogue.rs crates/gs-optimizer/src/rbo.rs Cargo.toml

/root/repo/target/debug/deps/libgs_optimizer-a059ced9c1920101.rmeta: crates/gs-optimizer/src/lib.rs crates/gs-optimizer/src/glogue.rs crates/gs-optimizer/src/rbo.rs Cargo.toml

crates/gs-optimizer/src/lib.rs:
crates/gs-optimizer/src/glogue.rs:
crates/gs-optimizer/src/rbo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
