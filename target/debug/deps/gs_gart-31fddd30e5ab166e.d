/root/repo/target/debug/deps/gs_gart-31fddd30e5ab166e.d: crates/gs-gart/src/lib.rs

/root/repo/target/debug/deps/gs_gart-31fddd30e5ab166e: crates/gs-gart/src/lib.rs

crates/gs-gart/src/lib.rs:
