/root/repo/target/debug/deps/gs_vineyard-dd5f2bd85a432781.d: crates/gs-vineyard/src/lib.rs

/root/repo/target/debug/deps/libgs_vineyard-dd5f2bd85a432781.rlib: crates/gs-vineyard/src/lib.rs

/root/repo/target/debug/deps/libgs_vineyard-dd5f2bd85a432781.rmeta: crates/gs-vineyard/src/lib.rs

crates/gs-vineyard/src/lib.rs:
