/root/repo/target/debug/deps/gs_learn-cdf3e16e5c5c169a.d: crates/gs-learn/src/lib.rs crates/gs-learn/src/ncn.rs crates/gs-learn/src/pipeline.rs crates/gs-learn/src/sage.rs crates/gs-learn/src/sampler.rs crates/gs-learn/src/tensor.rs

/root/repo/target/debug/deps/libgs_learn-cdf3e16e5c5c169a.rlib: crates/gs-learn/src/lib.rs crates/gs-learn/src/ncn.rs crates/gs-learn/src/pipeline.rs crates/gs-learn/src/sage.rs crates/gs-learn/src/sampler.rs crates/gs-learn/src/tensor.rs

/root/repo/target/debug/deps/libgs_learn-cdf3e16e5c5c169a.rmeta: crates/gs-learn/src/lib.rs crates/gs-learn/src/ncn.rs crates/gs-learn/src/pipeline.rs crates/gs-learn/src/sage.rs crates/gs-learn/src/sampler.rs crates/gs-learn/src/tensor.rs

crates/gs-learn/src/lib.rs:
crates/gs-learn/src/ncn.rs:
crates/gs-learn/src/pipeline.rs:
crates/gs-learn/src/sage.rs:
crates/gs-learn/src/sampler.rs:
crates/gs-learn/src/tensor.rs:
