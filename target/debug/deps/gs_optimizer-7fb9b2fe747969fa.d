/root/repo/target/debug/deps/gs_optimizer-7fb9b2fe747969fa.d: crates/gs-optimizer/src/lib.rs crates/gs-optimizer/src/glogue.rs crates/gs-optimizer/src/rbo.rs

/root/repo/target/debug/deps/libgs_optimizer-7fb9b2fe747969fa.rlib: crates/gs-optimizer/src/lib.rs crates/gs-optimizer/src/glogue.rs crates/gs-optimizer/src/rbo.rs

/root/repo/target/debug/deps/libgs_optimizer-7fb9b2fe747969fa.rmeta: crates/gs-optimizer/src/lib.rs crates/gs-optimizer/src/glogue.rs crates/gs-optimizer/src/rbo.rs

crates/gs-optimizer/src/lib.rs:
crates/gs-optimizer/src/glogue.rs:
crates/gs-optimizer/src/rbo.rs:
