/root/repo/target/release/deps/gs_hiactor-1d899b63ecdae9d7.d: crates/gs-hiactor/src/lib.rs

/root/repo/target/release/deps/libgs_hiactor-1d899b63ecdae9d7.rlib: crates/gs-hiactor/src/lib.rs

/root/repo/target/release/deps/libgs_hiactor-1d899b63ecdae9d7.rmeta: crates/gs-hiactor/src/lib.rs

crates/gs-hiactor/src/lib.rs:
