//! # gs-grin — GRIN, the unified Graph Retrieval INterface
//!
//! GRIN decouples execution engines from storage backends: engines program
//! against the [`GrinGraph`] trait; backends implement whichever *traits*
//! (capability groups) they can support and advertise them through
//! [`Capabilities`]. This is the Rust realisation of the paper's Figure 4:
//! six categories — topology, property, partition, index, predicate, and
//! common (errors) — with both array-like and iterator-based access traits.
//!
//! A backend that cannot support a capability simply does not set the flag;
//! engines check capabilities and fall back to the iterator paths, so e.g. a
//! PageRank written once runs on Vineyard (array access), GART (versioned
//! iterator access), and GraphAr (chunked access) unchanged — the behaviour
//! demonstrated in Fig. 7(a).

pub mod capability;
pub mod graph;
pub mod predicate;

pub use capability::Capabilities;
pub use graph::{
    scan_via_iterators, AdjEntry, AdjScanFn, Direction, GrinGraph, PartitionInfo, VertexRef,
};
pub use predicate::{CmpOp, EdgePredicate, PropPredicate};

// Re-export the substrate so engine crates can depend on gs-grin alone.
pub use gs_graph::{
    EId, GraphError, GraphLayout, GraphSchema, LabelId, LayoutKind, PropId, PropertyGraphData,
    Result, TopologyLayout, VId, Value, ValueType,
};
