/root/repo/target/debug/deps/telemetry-6bfdea289b22652e.d: tests/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-6bfdea289b22652e.rmeta: tests/telemetry.rs Cargo.toml

tests/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
