/root/repo/target/debug/deps/gs_graphar-707887a41072e8cf.d: crates/gs-graphar/src/lib.rs crates/gs-graphar/src/codec.rs crates/gs-graphar/src/csv.rs crates/gs-graphar/src/format.rs crates/gs-graphar/src/store.rs

/root/repo/target/debug/deps/gs_graphar-707887a41072e8cf: crates/gs-graphar/src/lib.rs crates/gs-graphar/src/codec.rs crates/gs-graphar/src/csv.rs crates/gs-graphar/src/format.rs crates/gs-graphar/src/store.rs

crates/gs-graphar/src/lib.rs:
crates/gs-graphar/src/codec.rs:
crates/gs-graphar/src/csv.rs:
crates/gs-graphar/src/format.rs:
crates/gs-graphar/src/store.rs:
