//! Bounded LRU caches for the serving layer.
//!
//! Deliberately simple: a map plus a logical-time stamp per entry, with
//! eviction scanning for the least-recently-used slot. Capacities are
//! small (dozens to hundreds of statements), so the O(capacity) eviction
//! scan is noise next to a query execution, and the behaviour is fully
//! deterministic — important because `gs-bench storm` asserts identical
//! cache-hit accounting across same-seed runs.
//!
//! Every operation — including lookups, which touch the LRU stamp — is a
//! combining write on a [`SharedCell`], so concurrent sessions are
//! admissible under the gs-sanitizer race checker (unordered combining
//! writes are allowed; the cell's lock makes each op atomic).

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

use gs_sanitizer::SharedCell;

struct Slot<V> {
    value: V,
    used: u64,
}

struct Inner<K, V> {
    map: HashMap<K, Slot<V>>,
    tick: u64,
}

/// A bounded least-recently-used map with hit/miss/eviction accounting.
pub struct LruCache<K, V> {
    inner: SharedCell<Inner<K, V>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries (minimum 1).
    pub fn new(label: &'static str, capacity: usize) -> Self {
        Self {
            inner: SharedCell::new(
                label,
                Inner {
                    map: HashMap::new(),
                    tick: 0,
                },
            ),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        let out = self.inner.update(|c| {
            c.tick += 1;
            let tick = c.tick;
            c.map.get_mut(key).map(|slot| {
                slot.used = tick;
                slot.value.clone()
            })
        });
        match &out {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        out
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry if the cache is full.
    pub fn insert(&self, key: K, value: V) {
        let evicted = self.inner.update(|c| {
            c.tick += 1;
            let tick = c.tick;
            if let Some(slot) = c.map.get_mut(&key) {
                slot.value = value;
                slot.used = tick;
                return false;
            }
            let mut evicted = false;
            if c.map.len() >= self.capacity {
                if let Some(victim) = c
                    .map
                    .iter()
                    .min_by_key(|(_, s)| s.used)
                    .map(|(k, _)| k.clone())
                {
                    c.map.remove(&victim);
                    evicted = true;
                }
            }
            c.map.insert(key, Slot { value, used: tick });
            evicted
        });
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.update(|c| c.map.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses, evictions) so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_with_lru_eviction() {
        let c: LruCache<u64, u64> = LruCache::new("test.cache", 2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(10)); // 1 is now most recent
        c.insert(3, 30); // evicts 2
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.len(), 2);
        let (hits, misses, evictions) = c.stats();
        assert_eq!((hits, misses, evictions), (3, 1, 1));
    }

    #[test]
    fn reinsert_refreshes_in_place() {
        let c: LruCache<u64, u64> = LruCache::new("test.cache2", 2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh, no eviction
        assert_eq!(c.len(), 2);
        c.insert(3, 30); // evicts 2 (1 was refreshed)
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.get(&2), None);
    }
}
