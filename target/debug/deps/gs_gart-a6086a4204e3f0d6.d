/root/repo/target/debug/deps/gs_gart-a6086a4204e3f0d6.d: crates/gs-gart/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgs_gart-a6086a4204e3f0d6.rmeta: crates/gs-gart/src/lib.rs Cargo.toml

crates/gs-gart/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
