//! Predicate pushdown (GRIN's *predicate* category).
//!
//! The optimizer's `FilterPushIntoMatch` rule pushes `SELECT` predicates into
//! `GET_VERTEX` / `EXPAND_EDGE`; when the storage backend advertises
//! [`crate::Capabilities::PREDICATE_PUSHDOWN`] the predicate travels all the
//! way to the store, which can evaluate it against its columnar data without
//! materialising vertices/edges first.

use gs_graph::{PropId, Value};

/// Comparison operators supported by pushed-down predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Evaluates `lhs <op> rhs` with the total ordering from [`Value`].
    pub fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        if lhs.is_null() || rhs.is_null() {
            return false; // SQL-style three-valued logic collapsed to false
        }
        let ord = lhs.total_cmp(rhs);
        match self {
            CmpOp::Eq => ord == std::cmp::Ordering::Equal,
            CmpOp::Ne => ord != std::cmp::Ordering::Equal,
            CmpOp::Lt => ord == std::cmp::Ordering::Less,
            CmpOp::Le => ord != std::cmp::Ordering::Greater,
            CmpOp::Gt => ord == std::cmp::Ordering::Greater,
            CmpOp::Ge => ord != std::cmp::Ordering::Less,
        }
    }
}

/// One property comparison: `prop <op> constant`.
#[derive(Clone, Debug, PartialEq)]
pub struct PropPredicate {
    pub prop: PropId,
    pub op: CmpOp,
    pub value: Value,
}

impl PropPredicate {
    /// Builds an equality predicate.
    pub fn eq(prop: PropId, value: Value) -> Self {
        Self {
            prop,
            op: CmpOp::Eq,
            value,
        }
    }

    /// Evaluates against a property value.
    #[inline]
    pub fn eval(&self, v: &Value) -> bool {
        self.op.eval(v, &self.value)
    }
}

/// Conjunction of property predicates evaluated against an *edge* during
/// adjacency expansion; `Pass` matches everything.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EdgePredicate {
    pub conjuncts: Vec<PropPredicate>,
}

impl EdgePredicate {
    /// The always-true predicate.
    pub fn pass() -> Self {
        Self::default()
    }

    /// True when this predicate filters nothing.
    pub fn is_pass(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// Adds one conjunct.
    #[must_use]
    pub fn and(mut self, p: PropPredicate) -> Self {
        self.conjuncts.push(p);
        self
    }

    /// Evaluates given a property accessor.
    pub fn eval(&self, get_prop: impl Fn(PropId) -> Value) -> bool {
        self.conjuncts.iter().all(|c| c.eval(&get_prop(c.prop)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_ops() {
        use CmpOp::*;
        let a = Value::Int(3);
        let b = Value::Int(5);
        assert!(Lt.eval(&a, &b));
        assert!(Le.eval(&a, &a));
        assert!(Gt.eval(&b, &a));
        assert!(Ge.eval(&b, &b));
        assert!(Eq.eval(&a, &a));
        assert!(Ne.eval(&a, &b));
    }

    #[test]
    fn nulls_never_match() {
        assert!(!CmpOp::Eq.eval(&Value::Null, &Value::Null));
        assert!(!CmpOp::Ne.eval(&Value::Null, &Value::Int(1)));
    }

    #[test]
    fn cross_type_numeric_compare() {
        assert!(CmpOp::Lt.eval(&Value::Int(3), &Value::Float(3.5)));
        assert!(CmpOp::Eq.eval(&Value::Float(4.0), &Value::Int(4)));
    }

    #[test]
    fn edge_predicate_conjunction() {
        let p = EdgePredicate::pass()
            .and(PropPredicate {
                prop: PropId(0),
                op: CmpOp::Ge,
                value: Value::Int(10),
            })
            .and(PropPredicate::eq(PropId(1), Value::Str("x".into())));
        let props = [Value::Int(12), Value::Str("x".into())];
        assert!(p.eval(|pid| props[pid.index()].clone()));
        let props2 = [Value::Int(12), Value::Str("y".into())];
        assert!(!p.eval(|pid| props2[pid.index()].clone()));
    }

    #[test]
    fn pass_predicate_matches_everything() {
        let p = EdgePredicate::pass();
        assert!(p.is_pass());
        assert!(p.eval(|_| Value::Null));
    }
}
