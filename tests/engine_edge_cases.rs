//! Edge-case integration tests for the execution engines and front-ends —
//! conditions the happy-path unit tests don't reach.

use graphscope_flex::prelude::*;
use gs_ir::physical::lower_naive;
use gs_ir::physical::PhysicalPlan;
use gs_ir::record::Record;
use std::collections::HashMap;
use std::sync::Arc;

/// All execution in this file goes through the unified [`QueryEngine`]
/// interface, via the prepared-handle path (prepare once, execute many).
fn run(engine: &dyn QueryEngine, plan: &PhysicalPlan, graph: &dyn GrinGraph) -> Vec<Record> {
    engine.prepare(plan).unwrap().execute(graph).unwrap()
}

fn tiny_store() -> (VineyardGraph, GraphSchema) {
    let mut schema = GraphSchema::new();
    let v = schema.add_vertex_label("V", &[("x", ValueType::Int)]);
    schema.add_edge_label("E", v, v, &[("w", ValueType::Float)]);
    let mut data = PropertyGraphData::new(schema.clone());
    for i in 0..6u64 {
        data.add_vertex(v, i, vec![Value::Int(i as i64)]);
    }
    let e = schema.edge_label_by_name("E").unwrap().id;
    for (s, d, w) in [(0u64, 1u64, 1.0f64), (1, 2, 2.0), (2, 0, 3.0), (3, 4, 4.0)] {
        data.add_edge(e, s, d, vec![Value::Float(w)]);
    }
    (VineyardGraph::build(&data).unwrap(), schema)
}

#[test]
fn empty_result_queries_are_fine_everywhere() {
    let (store, schema) = tiny_store();
    let q = "MATCH (a:V)-[:E]->(b:V) WHERE a.x > 999 RETURN a, b";
    let plan = parse_cypher(q, &schema, &HashMap::new()).unwrap();
    let phys = lower_naive(&plan).unwrap();
    assert!(run(&ReferenceEngine::default(), &phys, &store).is_empty());
    for workers in [1, 4] {
        assert!(run(&GaiaEngine::new(workers), &phys, &store).is_empty());
    }
    assert!(run(&QueryService::new(2), &phys, &store).is_empty());
}

#[test]
fn aggregates_over_empty_input_yield_identities() {
    let (store, schema) = tiny_store();
    let q = "MATCH (a:V) WHERE a.x > 999 RETURN COUNT(*) AS c, SUM(a.x) AS s";
    let plan = parse_cypher(q, &schema, &HashMap::new()).unwrap();
    let phys = lower_naive(&plan).unwrap();
    let rows = run(&GaiaEngine::new(3), &phys, &store);
    assert_eq!(rows, vec![vec![Value::Int(0), Value::Int(0)]]);
}

#[test]
fn order_limit_zero_and_huge() {
    let (store, schema) = tiny_store();
    for (limit, expect) in [(0usize, 0usize), (1000, 6)] {
        let q = format!("MATCH (a:V) RETURN a ORDER BY a.x ASC LIMIT {limit}");
        let plan = parse_cypher(&q, &schema, &HashMap::new()).unwrap();
        let rows = run(&GaiaEngine::new(2), &lower_naive(&plan).unwrap(), &store);
        assert_eq!(rows.len(), expect);
    }
}

#[test]
fn self_loops_and_parallel_edges_in_patterns() {
    let mut schema = GraphSchema::new();
    let v = schema.add_vertex_label("V", &[]);
    let e = schema.add_edge_label("E", v, v, &[]);
    let mut data = PropertyGraphData::new(schema.clone());
    data.add_vertex(v, 0, vec![]);
    data.add_vertex(v, 1, vec![]);
    data.add_edge(e, 0, 0, vec![]); // self loop
    data.add_edge(e, 0, 1, vec![]);
    data.add_edge(e, 0, 1, vec![]); // parallel edge
    let store = VineyardGraph::build(&data).unwrap();
    let q = "MATCH (a:V)-[:E]->(b:V) RETURN a, b";
    let plan = parse_cypher(q, &schema, &HashMap::new()).unwrap();
    let rows = run(
        &ReferenceEngine::default(),
        &lower_naive(&plan).unwrap(),
        &store,
    );
    // homomorphic matching: self loop binds a=b; parallel edges double-count
    assert_eq!(rows.len(), 3);
}

#[test]
fn cypher_parser_rejects_malformed_inputs() {
    let (_, schema) = tiny_store();
    for bad in [
        "MATCH (a:V RETURN a",                // unclosed node
        "MATCH (a:V)-[:E]->(b:V) RETURN",     // empty items
        "MATCH (a:V) WHERE RETURN a",         // empty predicate
        "MATCH (a:V) RETURN a ORDER LIMIT 2", // ORDER without BY
        "MATCH (a:V)<-[:E]->(b:V) RETURN a",  // both arrows
        "RETURN 1 +",                         // dangling operator
    ] {
        assert!(
            parse_cypher(bad, &schema, &HashMap::new()).is_err(),
            "accepted: {bad}"
        );
    }
}

#[test]
fn gremlin_parser_rejects_malformed_inputs() {
    let (_, schema) = tiny_store();
    for bad in [
        "g.V().hasLabel('V').out()",     // out without label
        "g.V().hasLabel('V').limit(-1)", // negative limit
        "g.V().hasLabel('V')..count()",  // double dot
        "g.E()",                         // unsupported source
    ] {
        assert!(parse_gremlin(bad, &schema).is_err(), "accepted: {bad}");
    }
}

#[test]
fn hiactor_survives_procedure_panics_isolated_to_result() {
    // a procedure returning an error must not poison the shard
    let svc = QueryService::new(1);
    svc.register(
        "fails",
        Arc::new(|_| Err(gs_graph::GraphError::Query("intentional".into()))),
    );
    svc.register("ok", Arc::new(|_| Ok(vec![vec![Value::Int(1)]])));
    assert!(svc.call_sync("fails", HashMap::new()).is_err());
    // the shard keeps serving
    assert_eq!(
        svc.call_sync("ok", HashMap::new()).unwrap()[0][0],
        Value::Int(1)
    );
}

#[test]
fn gart_snapshot_of_empty_store_is_usable() {
    let schema = GraphSchema::homogeneous(false);
    let store = GartStore::new(schema);
    let snap = store.snapshot();
    assert_eq!(snap.vertex_count(gs_graph::LabelId(0)), 0);
    assert_eq!(snap.edge_count(gs_graph::LabelId(0)), 0);
    assert_eq!(
        snap.adjacent(
            VId(0),
            gs_graph::LabelId(0),
            gs_graph::LabelId(0),
            Direction::Out
        )
        .count(),
        0
    );
}

#[test]
fn graphar_store_out_of_range_access_is_safe() {
    let data = PropertyGraphData::from_edge_list(10, &[(0, 1), (1, 2)]);
    let dir = std::env::temp_dir().join(format!("gs-edge-graphar-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    gs_graphar::write_archive(&dir, &data).unwrap();
    let store = gs_graphar::GraphArStore::open(&dir).unwrap();
    let l = gs_graph::LabelId(0);
    // far past the vertex domain
    assert_eq!(store.adjacent(VId(10_000), l, l, Direction::Out).count(), 0);
    assert!(store.external_id(l, VId(10_000)).is_none());
    assert!(store.internal_id(l, 999_999).is_none());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gaia_second_scan_is_a_cross_product() {
    let (store, schema) = tiny_store();
    let q = "MATCH (a:V), (b:V) RETURN a, b";
    // disconnected pattern: parse rejects it? (our Pattern requires
    // connectivity) — verify the error is clean rather than a panic
    match parse_cypher(q, &schema, &HashMap::new()) {
        Ok(plan) => {
            // if accepted, execution must produce the full cross product
            let rows = run(
                &ReferenceEngine::default(),
                &lower_naive(&plan).unwrap(),
                &store,
            );
            assert_eq!(rows.len(), 36);
        }
        Err(e) => {
            assert!(e.to_string().contains("disconnected"), "{e}");
        }
    }
}

#[test]
fn snb_generation_scales_monotonically() {
    use gs_datagen::snb::{generate, SnbConfig};
    let small = generate(&SnbConfig::lite(100));
    let large = generate(&SnbConfig::lite(400));
    assert!(large.data.vertex_count() > small.data.vertex_count());
    assert!(large.data.edge_count() > small.data.edge_count());
}
