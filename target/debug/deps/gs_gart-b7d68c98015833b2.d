/root/repo/target/debug/deps/gs_gart-b7d68c98015833b2.d: crates/gs-gart/src/lib.rs

/root/repo/target/debug/deps/libgs_gart-b7d68c98015833b2.rlib: crates/gs-gart/src/lib.rs

/root/repo/target/debug/deps/libgs_gart-b7d68c98015833b2.rmeta: crates/gs-gart/src/lib.rs

crates/gs-gart/src/lib.rs:
