//! Quickstart: assemble a GraphScope Flex stack brick by brick.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the whole LEGO box once: compose a deployment with flexbuild,
//! load a property graph into Vineyard, query it in Cypher *and* Gremlin
//! through the shared IR (optimizer + Gaia engine), then run an analytical
//! algorithm on GRAPE over the same data.

use graphscope_flex::prelude::*;
use std::collections::HashMap;

fn main() -> gs_graph::Result<()> {
    // ---- 1. pick your bricks (paper §3: flexbuild) -------------------
    let deployment = FlexBuild::compose(
        "quickstart",
        &[
            Component::Cypher,
            Component::Gremlin,
            Component::GraphIr,
            Component::Optimizer,
            Component::OlapCodegen,
            Component::Gaia,
            Component::Grin,
            Component::Vineyard,
        ],
        DeployTarget::SingleMachineBinary,
    )
    .expect("component selection composes");
    println!(
        "deployment `{}` with {} bricks\n",
        deployment.name,
        deployment.components.len()
    );

    // ---- 2. define a labeled property graph and load Vineyard --------
    let mut schema = GraphSchema::new();
    let person = schema.add_vertex_label(
        "Person",
        &[("name", ValueType::Str), ("age", ValueType::Int)],
    );
    let item = schema.add_vertex_label("Item", &[("price", ValueType::Float)]);
    schema.add_edge_label("KNOWS", person, person, &[]);
    let buy = schema.add_edge_label("BUY", person, item, &[("date", ValueType::Date)]);

    let mut data = PropertyGraphData::new(schema.clone());
    for (id, name, age) in [(1u64, "ann", 34i64), (2, "bob", 28), (3, "cho", 45)] {
        data.add_vertex(person, id, vec![Value::Str(name.into()), Value::Int(age)]);
    }
    for (id, price) in [(10u64, 9.99f64), (11, 199.0), (12, 3.5)] {
        data.add_vertex(item, id, vec![Value::Float(price)]);
    }
    let knows = schema.edge_label_by_name("KNOWS").unwrap().id;
    data.add_edge(knows, 1, 2, vec![]);
    data.add_edge(knows, 2, 1, vec![]);
    data.add_edge(knows, 2, 3, vec![]);
    data.add_edge(knows, 3, 2, vec![]);
    data.add_edge(buy, 2, 10, vec![Value::Date(15000)]);
    data.add_edge(buy, 2, 11, vec![Value::Date(15001)]);
    data.add_edge(buy, 3, 12, vec![Value::Date(15002)]);

    let store = VineyardGraph::build(&data)?;
    println!(
        "Vineyard holds {} persons, {} items",
        store.vertex_count(person),
        store.vertex_count(item)
    );

    // ---- 3. the same question in Cypher and Gremlin ------------------
    // "what do my friends buy, and for how much?"
    let cypher = "MATCH (a:Person {name: 'ann'})-[:KNOWS]-(f:Person)-[:BUY]->(i:Item) \
                  RETURN f.name AS friend, i.price AS price ORDER BY price DESC LIMIT 10";
    let plan_c = parse_cypher(cypher, &schema, &HashMap::new())?;

    let gremlin =
        "g.V().hasLabel('Person').has('name', 'ann').out('KNOWS').out('BUY').values('price')";
    let plan_g = parse_gremlin(gremlin, &schema)?;

    // one optimizer + one engine serve both front-ends
    let optimizer = Optimizer::new(GlogueCatalog::build(&store, 100));
    let gaia = GaiaEngine::new(2);

    let rows = gaia.execute(&optimizer.optimize(&plan_c)?, &store)?;
    println!("\nCypher results (friend, price):");
    for r in &rows {
        println!("  {} — {}", r[0], r[1]);
    }

    let rows = gaia.execute(&optimizer.optimize(&plan_g)?, &store)?;
    println!("\nGremlin results (price only):");
    for r in &rows {
        println!("  {}", r[0]);
    }

    // ---- 4. analytics on GRAPE over the same relationships -----------
    let knows_batch = &data.edges[knows.index()];
    let edges: Vec<(VId, VId)> = knows_batch
        .endpoints
        .iter()
        .map(|&(s, d)| (VId(s - 1), VId(d - 1))) // persons are ids 1..=3
        .collect();
    let engine = GrapeEngine::from_edges(3, &edges, 2);
    let ranks = grape_algorithms::pagerank(&engine, 0.85, 20);
    println!("\nPageRank over KNOWS:");
    for (i, r) in ranks.iter().enumerate() {
        println!("  person {} → {:.4}", i + 1, r);
    }
    Ok(())
}
