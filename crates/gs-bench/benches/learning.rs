//! Criterion microbenchmarks for the learning stack (Fig. 7l/7m
//! companions): sampling throughput and training step cost.

use criterion::{criterion_group, criterion_main, Criterion};
use gs_datagen::catalog::Dataset;
use gs_graph::{LabelId, PropertyGraphData, VId};
use gs_learn::{GraphSage, Sampler};
use gs_vineyard::VineyardGraph;

fn sampling_and_training(c: &mut Criterion) {
    let el = Dataset::by_abbr("PD").unwrap().edges(0.05);
    let pairs: Vec<(u64, u64)> = el.edges().iter().map(|&(s, d)| (s.0, d.0)).collect();
    let graph = VineyardGraph::build(&PropertyGraphData::from_edge_list(
        el.vertex_count(),
        &pairs,
    ))
    .unwrap();
    let l0 = LabelId(0);
    let sampler = Sampler::new(&graph, l0, l0, vec![15, 10, 5], 32);
    let seeds: Vec<VId> = (0..128u64).map(VId).collect();

    let mut group = c.benchmark_group("learning");
    group.bench_function("sample_batch_128_fanout_15_10_5", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            sampler.sample(&seeds, seed)
        })
    });
    let batch = sampler.sample(&seeds, 1);
    let labels: Vec<usize> = seeds.iter().map(|&v| sampler.label_of(v, 8)).collect();
    group.bench_function("sage_forward_backward_step", |b| {
        let mut model = GraphSage::new(3, 32, 64, 8, 1);
        b.iter(|| {
            let loss = model.forward_backward(&batch, &labels);
            model.step(0.005);
            loss
        })
    });
    group.finish();
}

fn bench_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = bench_config();
    targets = sampling_and_training
}
criterion_main!(benches);
