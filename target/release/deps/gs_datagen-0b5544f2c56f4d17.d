/root/repo/target/release/deps/gs_datagen-0b5544f2c56f4d17.d: crates/gs-datagen/src/lib.rs crates/gs-datagen/src/apps.rs crates/gs-datagen/src/catalog.rs crates/gs-datagen/src/powerlaw.rs crates/gs-datagen/src/rmat.rs crates/gs-datagen/src/snb.rs

/root/repo/target/release/deps/libgs_datagen-0b5544f2c56f4d17.rlib: crates/gs-datagen/src/lib.rs crates/gs-datagen/src/apps.rs crates/gs-datagen/src/catalog.rs crates/gs-datagen/src/powerlaw.rs crates/gs-datagen/src/rmat.rs crates/gs-datagen/src/snb.rs

/root/repo/target/release/deps/libgs_datagen-0b5544f2c56f4d17.rmeta: crates/gs-datagen/src/lib.rs crates/gs-datagen/src/apps.rs crates/gs-datagen/src/catalog.rs crates/gs-datagen/src/powerlaw.rs crates/gs-datagen/src/rmat.rs crates/gs-datagen/src/snb.rs

crates/gs-datagen/src/lib.rs:
crates/gs-datagen/src/apps.rs:
crates/gs-datagen/src/catalog.rs:
crates/gs-datagen/src/powerlaw.rs:
crates/gs-datagen/src/rmat.rs:
crates/gs-datagen/src/snb.rs:
