//! End-to-end serving-layer invariants (`gs-serve`).
//!
//! Three families of guarantees:
//! * the prepare/execute split pays off: equal statements hit the plan
//!   cache across sessions, and result caching is exactly as fresh as the
//!   store — a GART commit bumps the data version and stale rows stop
//!   matching with **no explicit purge**;
//! * the admission ladder surfaces through sessions: `Overloaded` is a
//!   structured error, low priority sheds first, high priority keeps
//!   getting served to capacity;
//! * under injected faults (chaos builds) the service degrades — every
//!   request ends in rows or a structured error, nothing panics.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use gs_datagen::apps::fraud_graph;
use gs_gart::GartStore;
use gs_graph::{GraphError, Value};
use gs_ir::{ReferenceEngine, VerifyLevel};
use gs_lang::Frontend;
use gs_serve::{
    AdmissionConfig, CostAction, CostBudget, CostGate, GartServeStore, Priority, ServeConfig,
    Server, TenantQuota,
};

fn fraud_server(capacity: usize) -> (Arc<Server>, Arc<GartStore>, gs_datagen::apps::FraudWorkload) {
    let workload = fraud_graph(60, 20, 200, 50, 7);
    let store = GartStore::from_data(&workload.data).expect("workload loads");
    let config = ServeConfig {
        admission: AdmissionConfig {
            capacity,
            default_quota: TenantQuota {
                max_inflight: capacity,
            },
            ..Default::default()
        },
        ..Default::default()
    };
    let server = Arc::new(Server::new(
        Box::new(ReferenceEngine::with_verify(VerifyLevel::Deny)),
        Box::new(GartServeStore::new(Arc::clone(&store))),
        config,
    ));
    (server, store, workload)
}

const DEG_QUERY: &str = "MATCH (v:Account {id: 3})-[:KNOWS]-(f:Account) RETURN v, COUNT(f) AS deg";

fn deg(rows: &[gs_ir::Record]) -> i64 {
    match rows.first().and_then(|r| r.last()) {
        Some(Value::Int(n)) => *n,
        other => panic!("expected a count, got {other:?}"),
    }
}

/// Equal statement text + params across sessions → one compilation, many
/// hits; repeated execution at one data version → one execution, many
/// cached row batches.
#[test]
fn plan_and_result_caches_hit_across_sessions() {
    let (server, _store, _workload) = fraud_server(8);
    let params = HashMap::new();

    let s1 = server.session("checkout", Priority::High);
    let s2 = server.session("analytics", Priority::Normal);
    let first = s1.query(Frontend::Cypher, DEG_QUERY, &params).unwrap();
    let second = s2.query(Frontend::Cypher, DEG_QUERY, &params).unwrap();
    assert_eq!(first, second, "cached rows must equal computed rows");

    let stats = server.stats();
    assert_eq!(stats.plan_misses, 1, "one compile for the shared statement");
    assert_eq!(stats.plan_hits, 1, "second session reuses the plan");
    assert_eq!(stats.result_misses, 1, "one execution at this version");
    assert_eq!(stats.result_hits, 1, "second call served from rows cache");
    assert_eq!(stats.executed, 1);

    // prepared-statement path shares the same caches
    let stmt = s1.prepare(Frontend::Cypher, DEG_QUERY, &params).unwrap();
    let third = s1.execute(stmt).unwrap();
    assert_eq!(first, third);
    let stats = server.stats();
    assert_eq!(stats.plan_hits, 2);
    assert_eq!(stats.result_hits, 2);
    assert_eq!(stats.executed, 1, "still a single real execution");
}

/// The invalidation rule: a GART commit bumps the data version, cached
/// results stop matching, and re-execution sees the new rows — while the
/// compiled plan (keyed by schema epoch, unchanged) stays hot.
#[test]
fn gart_commit_invalidates_results_but_not_plans() {
    let (server, store, workload) = fraud_server(8);
    let params = HashMap::new();
    let session = server.session("risk", Priority::Normal);

    let before = deg(&session.query(Frontend::Cypher, DEG_QUERY, &params).unwrap());

    // a new friendship lands online (KNOWS is symmetric, as in datagen)
    store
        .add_edge(workload.labels.knows, 3, 59, vec![])
        .expect("edge inserts");
    store
        .add_edge(workload.labels.knows, 59, 3, vec![])
        .expect("edge inserts");
    store.commit();

    let after = deg(&session.query(Frontend::Cypher, DEG_QUERY, &params).unwrap());
    assert!(
        after > before,
        "post-commit read must see the new edge: {before} -> {after}"
    );

    let stats = server.stats();
    assert_eq!(stats.plan_misses, 1, "schema epoch unchanged: plan reused");
    assert_eq!(stats.plan_hits, 1);
    assert_eq!(
        stats.result_misses, 2,
        "version bump must orphan the cached rows"
    );
    assert_eq!(stats.result_hits, 0);
    assert_eq!(stats.executed, 2);

    // and the new version's rows are cached in their own right
    let again = deg(&session.query(Frontend::Cypher, DEG_QUERY, &params).unwrap());
    assert_eq!(again, after);
    assert_eq!(server.stats().result_hits, 1);
}

/// `Overloaded` travels through the session API as a structured error,
/// low priority sheds first at the watermark, and high priority is still
/// served — no starvation, no panic.
#[test]
fn admission_sheds_low_priority_first_and_surfaces_overloaded() {
    let (server, _store, _workload) = fraud_server(2);
    let params = HashMap::new();
    let low = server.session("risk", Priority::Low);
    let high = server.session("checkout", Priority::High);

    // half the slots busy: load 0.5 is exactly the low-priority watermark
    let held = server
        .admission()
        .admit("background", Priority::High, Instant::now())
        .unwrap();

    let err = low
        .query(Frontend::Cypher, DEG_QUERY, &params)
        .expect_err("low priority must shed at the watermark");
    assert!(
        matches!(err, GraphError::Overloaded { .. }),
        "expected Overloaded, got {err:?}"
    );
    assert!(
        high.query(Frontend::Cypher, DEG_QUERY, &params).is_ok(),
        "high priority is served while low sheds"
    );

    let stats = server.stats();
    assert_eq!(stats.shed_low, 1);
    assert_eq!(stats.shed_high, 0);
    assert!(stats.errors == 0, "shedding is not an execution error");

    // pressure released → the same low-priority session is served again
    drop(held);
    assert!(low.query(Frontend::Cypher, DEG_QUERY, &params).is_ok());
}

/// Per-tenant quotas bound one noisy tenant without touching its peers.
#[test]
fn tenant_quota_is_isolated_from_other_tenants() {
    let workload = fraud_graph(60, 20, 200, 50, 7);
    let store = GartStore::from_data(&workload.data).expect("workload loads");
    let config = ServeConfig {
        admission: AdmissionConfig {
            capacity: 16,
            default_quota: TenantQuota { max_inflight: 1 },
            ..Default::default()
        },
        ..Default::default()
    };
    let server = Arc::new(Server::new(
        Box::new(ReferenceEngine::with_verify(VerifyLevel::Deny)),
        Box::new(GartServeStore::new(store)),
        config,
    ));
    let params = HashMap::new();

    // the noisy tenant's single slot is occupied...
    let held = server
        .admission()
        .admit("noisy", Priority::High, Instant::now())
        .unwrap();
    let noisy = server.session("noisy", Priority::High);
    let err = noisy
        .query(Frontend::Cypher, DEG_QUERY, &params)
        .expect_err("quota must cap the noisy tenant");
    assert!(matches!(err, GraphError::Overloaded { .. }));

    // ...while a quiet tenant sails through
    let quiet = server.session("quiet", Priority::Low);
    assert!(quiet.query(Frontend::Cypher, DEG_QUERY, &params).is_ok());
    drop(held);
}

fn tiny_cost_gate(action: CostAction) -> CostGate {
    CostGate {
        budget: CostBudget {
            max_rows: 1.0,
            ..Default::default()
        },
        tenants: HashMap::new(),
        action,
    }
}

/// The static cost gate sheds an over-budget query from the *plan alone*:
/// the engine never runs, so `executed` stays zero and no execution error
/// is recorded — only a structured `Overloaded` and a `cost_shed` count.
#[test]
fn statically_over_budget_query_is_shed_before_any_engine_runs() {
    let workload = fraud_graph(60, 20, 200, 50, 7);
    let store = GartStore::from_data(&workload.data).expect("workload loads");
    let config = ServeConfig {
        cost: Some(tiny_cost_gate(CostAction::Shed)),
        ..Default::default()
    };
    let server = Arc::new(Server::new(
        Box::new(ReferenceEngine::with_verify(VerifyLevel::Deny)),
        Box::new(GartServeStore::new(store)),
        config,
    ));
    let params = HashMap::new();
    let session = server.session("analytics", Priority::High);

    let err = session
        .query(Frontend::Cypher, DEG_QUERY, &params)
        .expect_err("a one-row budget must reject the scan statically");
    assert!(
        matches!(err, GraphError::Overloaded { .. }),
        "expected Overloaded, got {err:?}"
    );

    let stats = server.stats();
    assert_eq!(stats.cost_shed, 1, "the gate must account for the shed");
    assert_eq!(stats.executed, 0, "the query must never reach an engine");
    assert_eq!(stats.errors, 0, "static shedding is not an execution error");
    assert_eq!(stats.plan_misses, 1, "the plan itself is still compiled");
}

/// `Demote` keeps an over-budget query runnable, but at `Low` priority:
/// under pressure it sheds at the low watermark like any other low query,
/// and once pressure lifts it executes normally.
#[test]
fn demoted_over_budget_query_sheds_at_the_low_watermark() {
    let workload = fraud_graph(60, 20, 200, 50, 7);
    let store = GartStore::from_data(&workload.data).expect("workload loads");
    let config = ServeConfig {
        admission: AdmissionConfig {
            capacity: 2,
            default_quota: TenantQuota { max_inflight: 2 },
            ..Default::default()
        },
        cost: Some(tiny_cost_gate(CostAction::Demote)),
        ..Default::default()
    };
    let server = Arc::new(Server::new(
        Box::new(ReferenceEngine::with_verify(VerifyLevel::Deny)),
        Box::new(GartServeStore::new(store)),
        config,
    ));
    let params = HashMap::new();
    let high = server.session("analytics", Priority::High);

    // half the slots busy: load 0.5 is exactly the low-priority watermark
    let held = server
        .admission()
        .admit("background", Priority::High, Instant::now())
        .unwrap();

    let err = high
        .query(Frontend::Cypher, DEG_QUERY, &params)
        .expect_err("demoted to Low, the query must shed at the watermark");
    assert!(matches!(err, GraphError::Overloaded { .. }));

    let stats = server.stats();
    assert_eq!(stats.cost_demoted, 1);
    assert_eq!(stats.cost_shed, 0, "Demote must not hard-shed");
    assert_eq!(stats.shed_low, 1, "the demoted query sheds as Low");
    assert_eq!(stats.shed_high, 0);

    // pressure released → the demoted query runs to completion
    drop(held);
    assert!(high.query(Frontend::Cypher, DEG_QUERY, &params).is_ok());
    let stats = server.stats();
    assert_eq!(stats.cost_demoted, 2, "still over budget, demoted again");
    assert_eq!(stats.executed, 1);
}

/// Chaos-armed smoke: with shard faults injected under the HiActor
/// engine, serving degrades — every request is accounted for as rows,
/// a shed, or a structured error. Nothing panics, nothing hangs.
#[cfg(feature = "chaos")]
mod chaos_on {
    use super::*;
    use gs_hiactor::QueryService;

    #[test]
    fn serving_degrades_gracefully_under_injected_faults() {
        let plan = gs_chaos::FaultPlan::new(0x5E12)
            .slow_shard(0, std::time::Duration::from_millis(2))
            .dead_shard(1, 6);
        let ((ok, shed, errs, total), stats) = gs_chaos::with_chaos(plan, || {
            let workload = fraud_graph(60, 20, 200, 50, 7);
            let store = GartStore::from_data(&workload.data).expect("workload loads");
            let config = ServeConfig {
                cache_results: false, // force every request onto the engine
                ..Default::default()
            };
            let server = Arc::new(Server::new(
                Box::new(QueryService::new(2)),
                Box::new(GartServeStore::new(store)),
                config,
            ));
            let params = HashMap::new();
            let session = server.session("checkout", Priority::High);
            let (mut ok, mut shed, mut errs) = (0u64, 0u64, 0u64);
            let total = 24u64;
            for i in 0..total {
                let q = format!("MATCH (v:Account {{id: {}}}) RETURN v", i % 10);
                match session.query(Frontend::Cypher, &q, &params) {
                    Ok(_) => ok += 1,
                    Err(GraphError::Overloaded { .. }) | Err(GraphError::Unavailable(_)) => {
                        shed += 1
                    }
                    Err(_) => errs += 1,
                }
            }
            (ok, shed, errs, total)
        });
        assert_eq!(ok + shed + errs, total, "every request must be accounted");
        assert!(ok > 0, "a slow shard alone must not zero out the service");
        assert!(
            stats.shard_delays > 0 || stats.shard_deaths > 0,
            "faults must actually have fired: {stats:?}"
        );
    }
}
