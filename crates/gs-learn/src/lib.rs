//! # gs-learn — the GraphScope Flex learning stack
//!
//! GNN training over GRIN graphs (paper §7), built from:
//!
//! * [`tensor`] — a minimal dense tensor library with hand-written backprop
//!   (the PyTorch/TensorFlow substitute; see DESIGN.md),
//! * [`sampler`] — multi-hop fan-out sampling plus feature collection,
//!   modelled as the paper's sampling dataflow,
//! * [`sage`] — GraphSAGE (the Fig. 7l/7m model),
//! * [`ncn`] — Neural Common Neighbor link prediction (the §8 social
//!   relation prediction model),
//! * [`pipeline`] — the decoupled, asynchronously pipelined
//!   sampling/training runtime with independent scaling of both sides.

pub mod ncn;
pub mod pipeline;
pub mod sage;
pub mod sampler;
pub mod tensor;

pub use ncn::{build_examples, common_neighbors, LinkExample, NcnModel};
pub use pipeline::{train_epoch, EpochStats, PipelineConfig};
pub use sage::GraphSage;
pub use sampler::{SampledBatch, Sampler};
pub use tensor::{Linear, Matrix};
