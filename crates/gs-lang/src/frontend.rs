//! The unified front-end compilation surface.
//!
//! Both query languages used to be driven through ad-hoc call chains —
//! `parse_cypher` / `parse_gremlin`, then a caller-chosen mix of
//! `lower_naive` / `Optimizer::optimize` / verifier invocations. Serving a
//! query should be one decision (*which language*) and one call:
//! [`Frontend::compile`] runs parse → lower → optimize → irlint-verify and
//! hands back a [`CompiledQuery`] carrying the verified logical and
//! physical plans plus a deterministic cache key, so a serving layer can
//! do this work once per statement and execute many times.

use std::collections::HashMap;

use gs_graph::schema::GraphSchema;
use gs_graph::{Result, Value};
use gs_ir::logical::LogicalPlan;
use gs_ir::physical::PhysicalPlan;
use gs_ir::verify_physical;
use gs_optimizer::Optimizer;

use crate::cypher::parse_cypher;
use crate::gremlin::parse_gremlin;

/// Which query language front-end compiles the source text.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Frontend {
    /// Declarative pattern syntax (`MATCH ... RETURN`), with `$name`
    /// parameter substitution.
    Cypher,
    /// Imperative traversal syntax (`g.V().hasLabel(...)...`).
    Gremlin,
}

impl Frontend {
    /// Short identifier used in diagnostics and telemetry labels.
    pub fn name(&self) -> &'static str {
        match self {
            Frontend::Cypher => "cypher",
            Frontend::Gremlin => "gremlin",
        }
    }

    /// Compiles `source` with the default rule-based optimizer and no
    /// parameters. See [`Frontend::compile_with`].
    pub fn compile(&self, source: &str, schema: &GraphSchema) -> Result<CompiledQuery> {
        self.compile_with(source, schema, &HashMap::new(), &Optimizer::rbo_only())
    }

    /// The full pipeline: parse → lower → optimize → verify, exactly once.
    ///
    /// The front-end parser verifies the logical plan at its boundary; the
    /// optimizer's output is then irlint-verified against `schema` here, so
    /// a [`CompiledQuery`] is *known-good* — executors may skip submit-time
    /// verification for plans that came through this surface (that is what
    /// the prepared-statement path does).
    ///
    /// `params` feeds Cypher's `$name` substitution; Gremlin has no
    /// parameter syntax, but the parameters still contribute to the cache
    /// key so distinct bindings never alias.
    pub fn compile_with(
        &self,
        source: &str,
        schema: &GraphSchema,
        params: &HashMap<String, Value>,
        optimizer: &Optimizer,
    ) -> Result<CompiledQuery> {
        let logical = match self {
            Frontend::Cypher => parse_cypher(source, schema, params)?,
            Frontend::Gremlin => parse_gremlin(source, schema)?,
        };
        let physical = optimizer.optimize(&logical)?;
        verify_physical(&physical, schema).check(self.name())?;
        Ok(CompiledQuery {
            frontend: *self,
            source: source.to_string(),
            cache_key: statement_key(*self, source, params),
            logical,
            physical,
        })
    }
}

/// A query compiled through [`Frontend::compile`]: the verified plans plus
/// the identity under which a plan cache may store them.
#[derive(Clone, Debug)]
pub struct CompiledQuery {
    /// The language the source was written in.
    pub frontend: Frontend,
    /// The original query text.
    pub source: String,
    /// The verified logical DAG (kept for re-optimization with better
    /// statistics later).
    pub logical: LogicalPlan,
    /// The verified physical plan, ready for any [`gs_ir::QueryEngine`].
    pub physical: PhysicalPlan,
    /// Deterministic key over (frontend, source, parameter bindings). A
    /// plan cache must combine this with the *schema epoch* — the plans
    /// were verified against one schema and must not outlive it.
    pub cache_key: u64,
}

/// FNV-1a over (frontend, source, sorted parameter bindings): stable
/// across runs and platforms, so cache keys are reproducible in
/// deterministic benchmarks.
pub fn statement_key(frontend: Frontend, source: &str, params: &HashMap<String, Value>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h ^= 0xff;
        h = h.wrapping_mul(PRIME);
    };
    eat(frontend.name().as_bytes());
    eat(source.as_bytes());
    let mut keys: Vec<&String> = params.keys().collect();
    keys.sort();
    for k in keys {
        eat(k.as_bytes());
        eat(params[k].to_string().as_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::value::ValueType;

    fn schema() -> GraphSchema {
        let mut s = GraphSchema::new();
        let v = s.add_vertex_label("V", &[("x", ValueType::Int)]);
        s.add_edge_label("E", v, v, &[]);
        s
    }

    #[test]
    fn both_frontends_compile_and_key_differs() {
        let s = schema();
        let c = Frontend::Cypher
            .compile("MATCH (a:V)-[:E]->(b:V) RETURN b", &s)
            .unwrap();
        let g = Frontend::Gremlin
            .compile("g.V().hasLabel('V').out('E')", &s)
            .unwrap();
        assert_eq!(c.frontend.name(), "cypher");
        assert!(!c.physical.ops.is_empty());
        assert!(!g.physical.ops.is_empty());
        assert_ne!(c.cache_key, g.cache_key);
    }

    #[test]
    fn cache_key_is_deterministic_and_param_sensitive() {
        let s = schema();
        let mut p1 = HashMap::new();
        p1.insert("id".to_string(), Value::Int(1));
        let mut p2 = HashMap::new();
        p2.insert("id".to_string(), Value::Int(2));
        let q = "MATCH (a:V {x: $id}) RETURN a";
        let a = Frontend::Cypher
            .compile_with(q, &s, &p1, &Optimizer::rbo_only())
            .unwrap();
        let b = Frontend::Cypher
            .compile_with(q, &s, &p1, &Optimizer::rbo_only())
            .unwrap();
        let c = Frontend::Cypher
            .compile_with(q, &s, &p2, &Optimizer::rbo_only())
            .unwrap();
        assert_eq!(a.cache_key, b.cache_key);
        assert_ne!(a.cache_key, c.cache_key);
    }

    #[test]
    fn compile_rejects_unknown_label() {
        let s = schema();
        assert!(Frontend::Cypher
            .compile("MATCH (a:Nope) RETURN a", &s)
            .is_err());
        assert!(Frontend::Gremlin
            .compile("g.V().hasLabel('Nope')", &s)
            .is_err());
    }
}
