//! LDBC SNB-lite social network generator.
//!
//! A scaled-down analogue of the LDBC Social Network Benchmark datagen: the
//! Person/Forum/Post/Comment/Tag labeled-property schema with the
//! correlations the benchmark queries depend on — community-structured
//! KNOWS, forum membership skew, reply trees, and date-ordered content
//! creation. The interactive (Fig. 7f), BI (Fig. 7g), and storage (Fig. 7a)
//! experiments all run over graphs from this module.

use gs_graph::data::PropertyGraphData;
use gs_graph::schema::GraphSchema;
use gs_graph::value::{Value, ValueType};
use gs_graph::LabelId;
use rand::Rng;
use rand_pcg::Pcg64Mcg;

/// Label handles for the SNB-lite schema.
#[derive(Clone, Copy, Debug)]
pub struct SnbSchema {
    pub person: LabelId,
    pub forum: LabelId,
    pub post: LabelId,
    pub comment: LabelId,
    pub tag: LabelId,
    pub knows: LabelId,
    pub has_member: LabelId,
    pub container_of: LabelId,
    pub reply_of: LabelId,
    pub has_creator_post: LabelId,
    pub has_creator_comment: LabelId,
    pub likes_post: LabelId,
    pub has_tag_post: LabelId,
    pub has_interest: LabelId,
}

impl SnbSchema {
    /// Builds the SNB-lite schema; label ids are stable across runs.
    pub fn create() -> (GraphSchema, SnbSchema) {
        let mut s = GraphSchema::new();
        let person = s.add_vertex_label(
            "Person",
            &[
                ("firstName", ValueType::Str),
                ("lastName", ValueType::Str),
                ("birthday", ValueType::Date),
                ("creationDate", ValueType::Date),
                ("locationIP", ValueType::Str),
                ("browserUsed", ValueType::Str),
            ],
        );
        let forum = s.add_vertex_label(
            "Forum",
            &[("title", ValueType::Str), ("creationDate", ValueType::Date)],
        );
        let post = s.add_vertex_label(
            "Post",
            &[
                ("content", ValueType::Str),
                ("creationDate", ValueType::Date),
                ("length", ValueType::Int),
            ],
        );
        let comment = s.add_vertex_label(
            "Comment",
            &[
                ("content", ValueType::Str),
                ("creationDate", ValueType::Date),
                ("length", ValueType::Int),
            ],
        );
        let tag = s.add_vertex_label("Tag", &[("name", ValueType::Str)]);
        let knows = s.add_edge_label(
            "KNOWS",
            person,
            person,
            &[("creationDate", ValueType::Date)],
        );
        let has_member = s.add_edge_label(
            "HAS_MEMBER",
            forum,
            person,
            &[("joinDate", ValueType::Date)],
        );
        let container_of = s.add_edge_label("CONTAINER_OF", forum, post, &[]);
        let reply_of = s.add_edge_label("REPLY_OF", comment, post, &[]);
        let has_creator_post = s.add_edge_label("POST_HAS_CREATOR", post, person, &[]);
        let has_creator_comment = s.add_edge_label("COMMENT_HAS_CREATOR", comment, person, &[]);
        let likes_post =
            s.add_edge_label("LIKES", person, post, &[("creationDate", ValueType::Date)]);
        let has_tag_post = s.add_edge_label("HAS_TAG", post, tag, &[]);
        let has_interest = s.add_edge_label("HAS_INTEREST", person, tag, &[]);
        (
            s,
            SnbSchema {
                person,
                forum,
                post,
                comment,
                tag,
                knows,
                has_member,
                container_of,
                reply_of,
                has_creator_post,
                has_creator_comment,
                likes_post,
                has_tag_post,
                has_interest,
            },
        )
    }
}

/// A generated SNB-lite graph plus its label handles and entity counts.
pub struct SnbGraph {
    pub data: PropertyGraphData,
    pub labels: SnbSchema,
    pub persons: usize,
    pub forums: usize,
    pub posts: usize,
    pub comments: usize,
    pub tags: usize,
}

/// SNB-lite generator configuration. `scale_persons` drives everything else
/// with LDBC-like ratios.
#[derive(Clone, Copy, Debug)]
pub struct SnbConfig {
    pub persons: usize,
    pub seed: u64,
}

impl SnbConfig {
    /// Paper's SNB-x datasets scaled to laptop size: SNB-30-lite by default.
    pub fn lite(persons: usize) -> Self {
        Self { persons, seed: 30 }
    }
}

const FIRST_NAMES: &[&str] = &[
    "Jan", "Wei", "Ana", "Ivan", "Meera", "Otto", "Lena", "Yusuf", "Chen", "Aiko", "Omar", "Nina",
    "Raj", "Sara", "Tomas", "Zoe",
];
const LAST_NAMES: &[&str] = &[
    "Smith", "Garcia", "Mueller", "Ivanov", "Tanaka", "Kumar", "Silva", "Chen", "Olsen", "Moreau",
    "Rossi", "Novak",
];
const BROWSERS: &[&str] = &["Firefox", "Chrome", "Safari", "Opera", "IE"];
const TAG_NAMES: &[&str] = &[
    "rock", "jazz", "football", "chess", "physics", "history", "cooking", "travel", "ai", "film",
    "poetry", "biking", "gaming", "fashion", "space", "gardens",
];

/// Day numbers: SNB activity window 2010-01-01 .. 2013-01-01, as days.
const DATE_LO: i64 = 14610;
const DATE_HI: i64 = 15706;

/// Generates an SNB-lite graph. Deterministic in `cfg`.
pub fn generate(cfg: &SnbConfig) -> SnbGraph {
    let (schema, l) = SnbSchema::create();
    let mut g = PropertyGraphData::new(schema);
    let mut rng = Pcg64Mcg::new((cfg.seed as u128) << 64 | 0x51db);
    let np = cfg.persons.max(8);
    let nforum = (np / 10).max(2);
    let ntag = TAG_NAMES.len();
    // Community structure: persons are grouped into sqrt(np)-sized cities;
    // KNOWS edges prefer the same community (drives IC-style 2-hop queries).
    let comm = (np as f64).sqrt().ceil() as usize;

    // External id spaces are disjoint per label by construction (each label
    // numbers its entities 0..count), matching LDBC's per-type id spaces.
    for p in 0..np {
        let birthday = DATE_LO - rng.gen_range(6000i64..20000);
        let creation = rng.gen_range(DATE_LO..DATE_HI);
        g.add_vertex(
            l.person,
            p as u64,
            vec![
                Value::Str(FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())].to_string()),
                Value::Str(LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())].to_string()),
                Value::Date(birthday),
                Value::Date(creation),
                Value::Str(format!(
                    "{}.{}.{}.{}",
                    rng.gen_range(1..255),
                    rng.gen_range(0..255),
                    rng.gen_range(0..255),
                    rng.gen_range(1..255)
                )),
                Value::Str(BROWSERS[rng.gen_range(0..BROWSERS.len())].to_string()),
            ],
        );
    }
    for (t, name) in TAG_NAMES.iter().enumerate() {
        g.add_vertex(l.tag, t as u64, vec![Value::Str(name.to_string())]);
    }
    for f in 0..nforum {
        g.add_vertex(
            l.forum,
            f as u64,
            vec![
                Value::Str(format!("Forum {f}")),
                Value::Date(rng.gen_range(DATE_LO..DATE_HI)),
            ],
        );
    }

    // KNOWS: ~avg 18 friends at SNB shape; 70% intra-community.
    let avg_knows = 12usize;
    let mut knows_seen = std::collections::HashSet::new();
    for p in 0..np {
        let deg = rng.gen_range(1..=avg_knows * 2);
        for _ in 0..deg {
            let q = if rng.gen::<f64>() < 0.7 {
                let base = (p / comm) * comm;
                base + rng.gen_range(0..comm.min(np - base))
            } else {
                rng.gen_range(0..np)
            };
            if q == p {
                continue;
            }
            let (a, b) = (p.min(q), p.max(q));
            if knows_seen.insert((a, b)) {
                let date = Value::Date(rng.gen_range(DATE_LO..DATE_HI));
                // KNOWS is undirected in SNB; store both directions.
                g.add_edge(l.knows, a as u64, b as u64, vec![date.clone()]);
                g.add_edge(l.knows, b as u64, a as u64, vec![date]);
            }
        }
    }

    // Forum membership: Zipf-skewed forum popularity.
    for p in 0..np {
        let memberships = rng.gen_range(1..=4);
        for _ in 0..memberships {
            let f = zipf_index(&mut rng, nforum, 1.2);
            g.add_edge(
                l.has_member,
                f as u64,
                p as u64,
                vec![Value::Date(rng.gen_range(DATE_LO..DATE_HI))],
            );
        }
    }

    // Posts: each person authors 0..6 posts into a (preferably joined) forum.
    let mut npost = 0u64;
    let mut post_dates: Vec<i64> = Vec::new();
    let mut post_creator: Vec<u64> = Vec::new();
    for p in 0..np {
        for _ in 0..rng.gen_range(0..6) {
            let date = rng.gen_range(DATE_LO..DATE_HI);
            let len = rng.gen_range(5..200);
            g.add_vertex(
                l.post,
                npost,
                vec![
                    Value::Str(format!(
                        "post {npost} about {}",
                        TAG_NAMES[zipf_index(&mut rng, ntag, 1.0)]
                    )),
                    Value::Date(date),
                    Value::Int(len),
                ],
            );
            let f = zipf_index(&mut rng, nforum, 1.2);
            g.add_edge(l.container_of, f as u64, npost, vec![]);
            g.add_edge(l.has_creator_post, npost, p as u64, vec![]);
            let t = zipf_index(&mut rng, ntag, 1.0);
            g.add_edge(l.has_tag_post, npost, t as u64, vec![]);
            post_dates.push(date);
            post_creator.push(p as u64);
            npost += 1;
        }
    }

    // Comments: reply trees on posts (skewed to popular posts).
    let mut ncomment = 0u64;
    if npost > 0 {
        for p in 0..np {
            for _ in 0..rng.gen_range(0..8) {
                let target = zipf_index(&mut rng, npost as usize, 1.1) as u64;
                let date = (post_dates[target as usize] + rng.gen_range(0i64..60)).min(DATE_HI - 1);
                g.add_vertex(
                    l.comment,
                    ncomment,
                    vec![
                        Value::Str(format!("re: post {target}")),
                        Value::Date(date),
                        Value::Int(rng.gen_range(2..80)),
                    ],
                );
                g.add_edge(l.reply_of, ncomment, target, vec![]);
                g.add_edge(l.has_creator_comment, ncomment, p as u64, vec![]);
                ncomment += 1;
            }
        }

        // Likes: person → post, skewed.
        for p in 0..np {
            for _ in 0..rng.gen_range(0..10) {
                let target = zipf_index(&mut rng, npost as usize, 1.1) as u64;
                g.add_edge(
                    l.likes_post,
                    p as u64,
                    target,
                    vec![Value::Date(rng.gen_range(DATE_LO..DATE_HI))],
                );
            }
        }
    }

    // Interests: person → tag.
    for p in 0..np {
        for _ in 0..rng.gen_range(1..4) {
            let t = zipf_index(&mut rng, ntag, 1.0);
            g.add_edge(l.has_interest, p as u64, t as u64, vec![]);
        }
    }

    let _ = post_creator;
    SnbGraph {
        data: g,
        labels: l,
        persons: np,
        forums: nforum,
        posts: npost as usize,
        comments: ncomment as usize,
        tags: ntag,
    }
}

/// Samples an index in `0..n` with Zipf(exponent) skew toward low indices.
fn zipf_index(rng: &mut Pcg64Mcg, n: usize, exponent: f64) -> usize {
    debug_assert!(n > 0);
    // Approximate inverse-CDF via rejection-free power transform: fast and
    // close enough for workload skew.
    let u: f64 = rng.gen::<f64>();
    let x = (1.0 - u * (1.0 - (n as f64).powf(1.0 - exponent))).powf(1.0 / (1.0 - exponent));
    // x ∈ [1, n]; shift to a 0-based index.
    ((x.floor() as usize).saturating_sub(1)).min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_payload() {
        let g = generate(&SnbConfig::lite(200));
        g.data.validate().unwrap();
        assert_eq!(g.persons, 200);
        assert!(g.posts > 0);
        assert!(g.comments > 0);
    }

    #[test]
    fn deterministic() {
        let a = generate(&SnbConfig::lite(100));
        let b = generate(&SnbConfig::lite(100));
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn knows_is_symmetric() {
        let g = generate(&SnbConfig::lite(150));
        let knows = &g.data.edges[g.labels.knows.index()];
        let set: std::collections::HashSet<_> = knows.endpoints.iter().copied().collect();
        for &(a, b) in &knows.endpoints {
            assert!(set.contains(&(b, a)), "KNOWS {a}->{b} missing reverse");
        }
    }

    #[test]
    fn replies_reference_existing_posts() {
        let g = generate(&SnbConfig::lite(120));
        let replies = &g.data.edges[g.labels.reply_of.index()];
        for &(_, post) in &replies.endpoints {
            assert!((post as usize) < g.posts);
        }
    }

    #[test]
    fn comment_dates_follow_post_dates() {
        let g = generate(&SnbConfig::lite(120));
        // build post date lookup
        let posts = &g.data.vertices[g.labels.post.index()];
        let post_date: Vec<i64> = posts
            .properties
            .iter()
            .map(|p| p[1].as_int().unwrap())
            .collect();
        let comments = &g.data.vertices[g.labels.comment.index()];
        let comment_date: Vec<i64> = comments
            .properties
            .iter()
            .map(|p| p[1].as_int().unwrap())
            .collect();
        let replies = &g.data.edges[g.labels.reply_of.index()];
        for &(c, p) in &replies.endpoints {
            assert!(comment_date[c as usize] >= post_date[p as usize]);
        }
    }

    #[test]
    fn zipf_index_prefers_low_indices() {
        let mut rng = Pcg64Mcg::new(9);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[zipf_index(&mut rng, 10, 1.2)] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "{counts:?}");
    }
}
