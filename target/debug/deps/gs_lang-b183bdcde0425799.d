/root/repo/target/debug/deps/gs_lang-b183bdcde0425799.d: crates/gs-lang/src/lib.rs crates/gs-lang/src/cypher.rs crates/gs-lang/src/gremlin.rs crates/gs-lang/src/lexer.rs Cargo.toml

/root/repo/target/debug/deps/libgs_lang-b183bdcde0425799.rmeta: crates/gs-lang/src/lib.rs crates/gs-lang/src/cypher.rs crates/gs-lang/src/gremlin.rs crates/gs-lang/src/lexer.rs Cargo.toml

crates/gs-lang/src/lib.rs:
crates/gs-lang/src/cypher.rs:
crates/gs-lang/src/gremlin.rs:
crates/gs-lang/src/lexer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
