//! k-core decomposition via the FLASH model: iteratively peel vertices with
//! remaining degree < k, notifying neighbours of removals — a loop-until-
//! empty control flow that showcases FLASH's flexibility beyond fixpoint
//! vertex-centric models. Expects a symmetrized edge list.

use crate::engine::GrapeEngine;
use crate::flash::{run_flash, VertexSubset};

/// Returns membership of the k-core: `true` for vertices that survive
/// peeling, indexed by global id.
pub fn kcore(engine: &GrapeEngine, k: usize) -> Vec<bool> {
    engine.run_flash_kcore(k)
}

impl GrapeEngine {
    fn run_flash_kcore(&self, k: usize) -> Vec<bool> {
        run_flash(self, |ctx| {
            let frag = ctx.frag;
            let inner = frag.inner_count;
            let mut degree: Vec<i64> = (0..inner as u32)
                .map(|l| frag.out_degree(l) as i64)
                .collect();
            let mut alive = VertexSubset::full(frag);

            loop {
                // peel set: alive vertices below the threshold
                let peel = ctx.vertex_filter(&alive, |l| degree[l as usize] < k as i64);
                let peeled_now = ctx.size(&peel);
                if peeled_now == 0 {
                    break;
                }
                for l in peel.iter() {
                    alive.set(l, false);
                }
                // notify neighbours: their degree drops by 1 per removed edge
                let received = ctx.edge_map::<u64>(&peel, |_, _| Some(1));
                for (l, _) in received {
                    if alive.contains(l) {
                        degree[l as usize] -= 1;
                    }
                }
            }
            (0..inner as u32)
                .map(|l| (frag.global(l), alive.contains(l)))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::edgelist::EdgeList;
    use gs_graph::VId;

    /// Reference peeling.
    fn reference_kcore(n: usize, edges: &[(VId, VId)], k: usize) -> Vec<bool> {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(s, d) in edges {
            adj[s.index()].push(d.index());
        }
        let mut deg: Vec<i64> = adj.iter().map(|a| a.len() as i64).collect();
        let mut alive = vec![true; n];
        loop {
            let peel: Vec<usize> = (0..n).filter(|&v| alive[v] && deg[v] < k as i64).collect();
            if peel.is_empty() {
                break;
            }
            for &v in &peel {
                alive[v] = false;
                for &w in &adj[v] {
                    if alive[w] {
                        deg[w] -= 1;
                    }
                }
            }
        }
        alive
    }

    #[test]
    fn clique_plus_tail() {
        // 4-clique (0-3) with a tail 3-4-5 (symmetrized)
        let mut el = EdgeList::new(6);
        for i in 0..4u64 {
            for j in 0..4u64 {
                if i != j {
                    el.push(VId(i), VId(j));
                }
            }
        }
        el.push(VId(3), VId(4));
        el.push(VId(4), VId(3));
        el.push(VId(4), VId(5));
        el.push(VId(5), VId(4));
        for k_frag in [1, 2, 3] {
            let engine = GrapeEngine::from_edges(6, el.edges(), k_frag);
            let got = kcore(&engine, 3);
            assert_eq!(
                got,
                vec![true, true, true, true, false, false],
                "k={k_frag}"
            );
        }
    }

    #[test]
    fn matches_reference_on_random_graph() {
        use rand::Rng;
        let mut rng = rand_pcg::Pcg64Mcg::new(23);
        let mut el = EdgeList::new(80);
        for _ in 0..400 {
            el.push(VId(rng.gen_range(0..80)), VId(rng.gen_range(0..80)));
        }
        el.symmetrize();
        for k in [2, 4, 6] {
            let engine = GrapeEngine::from_edges(80, el.edges(), 3);
            assert_eq!(
                kcore(&engine, k),
                reference_kcore(80, el.edges(), k),
                "core {k}"
            );
        }
    }
}
