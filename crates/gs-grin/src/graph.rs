//! The [`GrinGraph`] trait — GRIN's handle/API surface.
//!
//! Conventions shared by all backends:
//!
//! * Vertices are identified by `(LabelId, VId)`; internal ids are dense
//!   *within* a label (GRIN's internal-id-assignment index trait).
//! * Edges are identified by `(LabelId, EId)`; edge ids are dense within an
//!   edge label, so backends can keep per-label edge-property columns.
//! * Every backend must provide iterator-based topology access; array-like
//!   access, in-adjacency, predicate pushdown, etc. are optional and
//!   advertised via [`Capabilities`].

use crate::capability::Capabilities;
use crate::predicate::EdgePredicate;
use gs_graph::partition::PartitionId;
use gs_graph::{EId, GraphSchema, LabelId, PropId, VId, Value};

/// Direction of adjacency expansion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    Out,
    In,
    /// Union of in and out (Gremlin's `both()`).
    Both,
}

/// One adjacency entry returned during expansion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdjEntry {
    /// The neighbor vertex (its label is determined by the edge label's
    /// endpoint constraint and the traversal direction).
    pub nbr: VId,
    /// The edge connecting to the neighbor.
    pub edge: EId,
}

/// A fully-qualified vertex reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VertexRef {
    pub label: LabelId,
    pub id: VId,
}

impl VertexRef {
    pub fn new(label: LabelId, id: VId) -> Self {
        Self { label, id }
    }
}

/// Callback fed by [`GrinGraph::scan_adjacency`]: one `(vertex, neighbors,
/// edge_ids)` row per vertex, with `neighbors[i]` reached via `edge_ids[i]`.
pub type AdjScanFn<'a> = dyn FnMut(VId, &[VId], &[EId]) + 'a;

/// Partition metadata (GRIN's partition category): which partition this
/// graph handle represents and how vertices map to partitions.
#[derive(Clone, Debug)]
pub struct PartitionInfo {
    pub partition: PartitionId,
    pub total_partitions: usize,
}

/// GRIN's unified graph retrieval handle.
///
/// Methods that correspond to optional traits have default implementations
/// that either derive the answer from required methods (e.g. `degree` via
/// iteration) or return `None` (array access), matching GRIN's "backends
/// provide only the traits feasible for them" contract.
pub trait GrinGraph: Send + Sync {
    /// Advertised capability set.
    fn capabilities(&self) -> Capabilities;

    /// Which [`gs_graph::LayoutKind`] the backend materialised its
    /// topology in. Plain CSR by default; backends built with a different
    /// layout override this and adjust [`GrinGraph::capabilities`]
    /// accordingly ([`Capabilities::layout_masks`]).
    fn topology_layout(&self) -> gs_graph::LayoutKind {
        gs_graph::LayoutKind::Csr
    }

    /// Graph schema (labels + properties).
    fn schema(&self) -> &GraphSchema;

    // ---------------- topology ----------------

    /// Number of vertices with the given label.
    fn vertex_count(&self, label: LabelId) -> usize;

    /// Number of edges with the given edge label.
    fn edge_count(&self, label: LabelId) -> usize;

    /// Iterator over all vertices of a label (iterator-based vertex list).
    fn vertices(&self, label: LabelId) -> Box<dyn Iterator<Item = VId> + '_> {
        Box::new((0..self.vertex_count(label) as u64).map(VId))
    }

    /// Iterator-based adjacency expansion — the one required topology trait.
    fn adjacent(
        &self,
        v: VId,
        vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
    ) -> Box<dyn Iterator<Item = AdjEntry> + '_>;

    /// Push-based adjacency visitation. Semantically identical to draining
    /// [`GrinGraph::adjacent`], but backends guarding their structures with
    /// locks (GART) can override it to hold the lock once per scan instead
    /// of materialising an iterator.
    fn for_each_adjacent(
        &self,
        v: VId,
        vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
        f: &mut dyn FnMut(AdjEntry),
    ) {
        for e in self.adjacent(v, vlabel, elabel, dir) {
            f(e);
        }
    }

    /// Array-like adjacency access: `(neighbors, edge_ids)` slices.
    /// `None` when the backend lacks [`Capabilities::ADJ_LIST_ARRAY`] or the
    /// direction is unavailable.
    fn adjacent_slice(
        &self,
        _v: VId,
        _vlabel: LabelId,
        _elabel: LabelId,
        _dir: Direction,
    ) -> Option<(&[VId], &[EId])> {
        None
    }

    /// Degree of `v` under the edge label/direction; backends with offset
    /// arrays should override with O(1) implementations.
    fn degree(&self, v: VId, vlabel: LabelId, elabel: LabelId, dir: Direction) -> usize {
        self.adjacent(v, vlabel, elabel, dir).count()
    }

    /// Dense internal-id range of a label — the array-like vertex list.
    /// `Some(0..n)` when internal ids form a contiguous domain the caller
    /// may index directly; backends lacking
    /// [`Capabilities::VERTEX_LIST_ARRAY`] (or whose visible set at a
    /// snapshot is not the full id domain) return `None` and callers fall
    /// back to [`GrinGraph::vertices`].
    fn vertex_range(&self, _label: LabelId) -> Option<std::ops::Range<u64>> {
        None
    }

    /// Whole-label bulk adjacency visitation: calls `f(v, neighbors,
    /// edge_ids)` exactly once per vertex of `vlabel` (in ascending
    /// internal-id order, skipping vertices not visible to this handle).
    ///
    /// Returns `true` when the scan was served by a backend fast path —
    /// [`Capabilities::ADJ_LIST_ARRAY`]-style slice access or a
    /// single-lock/chunk-granular pooled scan — and `false` when the
    /// default iterator fallback ran. Either way the callback observes
    /// identical data; the flag only tells engines (and telemetry) which
    /// path fed them. This is the bulk trait GRAPE's fragment loader is
    /// built on.
    fn scan_adjacency(
        &self,
        vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
        f: &mut AdjScanFn<'_>,
    ) -> bool {
        scan_via_iterators(self, vlabel, elabel, dir, f)
    }

    // ---------------- property ----------------

    /// A vertex property value ([`Value::Null`] when absent).
    fn vertex_property(&self, label: LabelId, v: VId, prop: PropId) -> Value;

    /// An edge property value ([`Value::Null`] when absent).
    fn edge_property(&self, label: LabelId, e: EId, prop: PropId) -> Value;

    // ---------------- index ----------------

    /// External→internal vertex id lookup (index category).
    fn internal_id(&self, _label: LabelId, _external: u64) -> Option<VId> {
        None
    }

    /// Internal→external vertex id lookup.
    fn external_id(&self, _label: LabelId, _v: VId) -> Option<u64> {
        None
    }

    /// Property-value index: vertices of `label` whose `prop` equals `value`.
    /// Default scans; backends with hash indexes override.
    fn vertices_by_property(&self, label: LabelId, prop: PropId, value: &Value) -> Vec<VId> {
        let mut out = Vec::new();
        for v in self.vertices(label) {
            if self
                .vertex_property(label, v, prop)
                .total_cmp(value)
                .is_eq()
                && !self.vertex_property(label, v, prop).is_null()
            {
                out.push(v);
            }
        }
        out
    }

    // ---------------- predicate ----------------

    /// Adjacency expansion with an edge predicate. The default filters on
    /// top of [`GrinGraph::adjacent`]; backends with
    /// [`Capabilities::PREDICATE_PUSHDOWN`] may evaluate against columnar
    /// storage directly.
    fn adjacent_filtered<'a>(
        &'a self,
        v: VId,
        vlabel: LabelId,
        elabel: LabelId,
        dir: Direction,
        pred: &'a EdgePredicate,
    ) -> Box<dyn Iterator<Item = AdjEntry> + 'a> {
        if pred.is_pass() {
            return self.adjacent(v, vlabel, elabel, dir);
        }
        Box::new(
            self.adjacent(v, vlabel, elabel, dir)
                .filter(move |a| pred.eval(|pid| self.edge_property(elabel, a.edge, pid))),
        )
    }

    // ---------------- partition ----------------

    /// Partition metadata; `None` for non-partitioned (single-fragment)
    /// handles.
    fn partition_info(&self) -> Option<PartitionInfo> {
        None
    }
}

/// Iterator-based fallback behind [`GrinGraph::scan_adjacency`]: visits
/// every vertex of `vlabel` via [`GrinGraph::vertices`], drains its
/// adjacency through [`GrinGraph::for_each_adjacent`] into scratch buffers,
/// and hands the buffers to `f`. Always returns `false` (no fast path).
///
/// Backend overrides call this for directions their arrays cannot serve
/// (e.g. `Direction::Both`); it is generic rather than a default-method
/// body so those overrides can reuse it on `Self` directly.
pub fn scan_via_iterators<G: GrinGraph + ?Sized>(
    g: &G,
    vlabel: LabelId,
    elabel: LabelId,
    dir: Direction,
    f: &mut AdjScanFn<'_>,
) -> bool {
    let mut nbrs: Vec<VId> = Vec::new();
    let mut eids: Vec<EId> = Vec::new();
    for v in g.vertices(vlabel) {
        nbrs.clear();
        eids.clear();
        g.for_each_adjacent(v, vlabel, elabel, dir, &mut |a| {
            nbrs.push(a.nbr);
            eids.push(a.edge);
        });
        f(v, &nbrs, &eids);
    }
    false
}

/// A tiny in-memory GRIN implementation used by unit tests across the
/// workspace (not a real backend — Vineyard/GART/GraphAr are those).
pub mod mock {
    use super::*;
    use gs_graph::csr::Csr;
    use gs_graph::props::PropertyTable;
    use gs_graph::schema::GraphSchema;
    use gs_graph::ValueType;

    /// Single-label mock graph backed by CSR + CSC with one optional edge
    /// weight column and one vertex int property `tag`.
    pub struct MockGraph {
        schema: GraphSchema,
        out: Csr,
        in_: Csr,
        vertex_tags: Vec<i64>,
        edge_weights: Vec<f64>,
        /// When set, the mock withholds its array-like traits (capabilities,
        /// slices, ranges) and serves everything through iterators — lets
        /// tests prove iterator fallbacks against a backend that genuinely
        /// refuses array access.
        iter_only: bool,
    }

    impl MockGraph {
        /// Builds a mock that advertises only iterator capabilities (no
        /// `VERTEX_LIST_ARRAY`/`ADJ_LIST_ARRAY`), for exercising fallback
        /// paths.
        pub fn new_iter_only(n: usize, edges: &[(u64, u64, f64)]) -> Self {
            let mut g = Self::new(n, edges);
            g.iter_only = true;
            g
        }

        /// Builds a mock from `n` vertices and (src, dst, weight) triples.
        pub fn new(n: usize, edges: &[(u64, u64, f64)]) -> Self {
            let mut schema = GraphSchema::new();
            let v = schema.add_vertex_label("V", &[("tag", ValueType::Int)]);
            schema.add_edge_label("E", v, v, &[("weight", ValueType::Float)]);
            let pairs: Vec<(VId, VId)> = edges.iter().map(|&(s, d, _)| (VId(s), VId(d))).collect();
            let out = Csr::from_edges(n, &pairs);
            // Edge ids were assigned in CSR order; rebuild the weight array
            // in that order by replaying adjacency.
            let mut edge_weights = vec![0.0; edges.len()];
            {
                use std::collections::HashMap;
                let mut remaining: HashMap<(u64, u64), Vec<f64>> = HashMap::new();
                for &(s, d, w) in edges {
                    remaining.entry((s, d)).or_default().push(w);
                }
                for s in 0..n as u64 {
                    for (d, e) in out.adj(VId(s)) {
                        let ws = remaining.get_mut(&(s, d.0)).unwrap();
                        edge_weights[e.index()] = ws.pop().unwrap();
                    }
                }
            }
            let in_ = out.transpose();
            Self {
                schema,
                out,
                in_,
                vertex_tags: vec![0; n],
                edge_weights,
                iter_only: false,
            }
        }

        /// Sets the `tag` property of a vertex.
        pub fn set_tag(&mut self, v: VId, tag: i64) {
            self.vertex_tags[v.index()] = tag;
        }
    }

    impl GrinGraph for MockGraph {
        fn capabilities(&self) -> Capabilities {
            if self.iter_only {
                return Capabilities::of(&[
                    Capabilities::VERTEX_LIST_ITER,
                    Capabilities::ADJ_LIST_ITER,
                    Capabilities::IN_ADJACENCY,
                    Capabilities::PROPERTY,
                    Capabilities::INDEX_INTERNAL_ID,
                    Capabilities::INDEX_EXTERNAL_ID,
                ]);
            }
            Capabilities::of(&[
                Capabilities::VERTEX_LIST_ITER,
                Capabilities::VERTEX_LIST_ARRAY,
                Capabilities::ADJ_LIST_ITER,
                Capabilities::ADJ_LIST_ARRAY,
                Capabilities::IN_ADJACENCY,
                Capabilities::PROPERTY,
                Capabilities::INDEX_INTERNAL_ID,
                Capabilities::INDEX_EXTERNAL_ID,
            ])
        }

        fn schema(&self) -> &GraphSchema {
            &self.schema
        }

        fn vertex_count(&self, _label: LabelId) -> usize {
            self.out.vertex_count()
        }

        fn edge_count(&self, _label: LabelId) -> usize {
            self.out.edge_count()
        }

        fn adjacent(
            &self,
            v: VId,
            _vlabel: LabelId,
            _elabel: LabelId,
            dir: Direction,
        ) -> Box<dyn Iterator<Item = AdjEntry> + '_> {
            match dir {
                Direction::Out => {
                    Box::new(self.out.adj(v).map(|(nbr, edge)| AdjEntry { nbr, edge }))
                }
                Direction::In => {
                    Box::new(self.in_.adj(v).map(|(nbr, edge)| AdjEntry { nbr, edge }))
                }
                Direction::Both => Box::new(
                    self.out
                        .adj(v)
                        .chain(self.in_.adj(v))
                        .map(|(nbr, edge)| AdjEntry { nbr, edge }),
                ),
            }
        }

        fn adjacent_slice(
            &self,
            v: VId,
            _vlabel: LabelId,
            _elabel: LabelId,
            dir: Direction,
        ) -> Option<(&[VId], &[EId])> {
            if self.iter_only {
                return None;
            }
            match dir {
                Direction::Out => Some((self.out.neighbors(v), self.out.edge_ids(v))),
                Direction::In => Some((self.in_.neighbors(v), self.in_.edge_ids(v))),
                Direction::Both => None,
            }
        }

        fn vertex_range(&self, _label: LabelId) -> Option<std::ops::Range<u64>> {
            if self.iter_only {
                None
            } else {
                Some(0..self.out.vertex_count() as u64)
            }
        }

        fn scan_adjacency(
            &self,
            vlabel: LabelId,
            elabel: LabelId,
            dir: Direction,
            f: &mut AdjScanFn<'_>,
        ) -> bool {
            if self.iter_only || dir == Direction::Both {
                return scan_via_iterators(self, vlabel, elabel, dir, f);
            }
            let csr = match dir {
                Direction::Out => &self.out,
                Direction::In => &self.in_,
                Direction::Both => unreachable!(),
            };
            for v in 0..csr.vertex_count() as u64 {
                let v = VId(v);
                f(v, csr.neighbors(v), csr.edge_ids(v));
            }
            true
        }

        fn degree(&self, v: VId, _vl: LabelId, _el: LabelId, dir: Direction) -> usize {
            match dir {
                Direction::Out => self.out.degree(v),
                Direction::In => self.in_.degree(v),
                Direction::Both => self.out.degree(v) + self.in_.degree(v),
            }
        }

        fn vertex_property(&self, _label: LabelId, v: VId, prop: PropId) -> Value {
            if prop == PropId(0) {
                self.vertex_tags
                    .get(v.index())
                    .map_or(Value::Null, |&t| Value::Int(t))
            } else {
                Value::Null
            }
        }

        fn edge_property(&self, _label: LabelId, e: EId, prop: PropId) -> Value {
            if prop == PropId(0) {
                self.edge_weights
                    .get(e.index())
                    .map_or(Value::Null, |&w| Value::Float(w))
            } else {
                Value::Null
            }
        }

        fn internal_id(&self, _label: LabelId, external: u64) -> Option<VId> {
            if (external as usize) < self.out.vertex_count() {
                Some(VId(external))
            } else {
                None
            }
        }

        fn external_id(&self, _label: LabelId, v: VId) -> Option<u64> {
            if v.index() < self.out.vertex_count() {
                Some(v.0)
            } else {
                None
            }
        }
    }

    // Silence unused-import warning for PropertyTable (kept for docs parity).
    #[allow(unused)]
    fn _assert_table_usable(_t: PropertyTable) {}
}

#[cfg(test)]
mod tests {
    use super::mock::MockGraph;
    use super::*;
    use crate::predicate::{CmpOp, PropPredicate};

    fn diamond() -> MockGraph {
        // 0 -> 1 (w=1.0), 0 -> 2 (w=2.0), 1 -> 3 (w=3.0), 2 -> 3 (w=4.0)
        MockGraph::new(4, &[(0, 1, 1.0), (0, 2, 2.0), (1, 3, 3.0), (2, 3, 4.0)])
    }

    const L: LabelId = LabelId(0);

    #[test]
    fn out_and_in_adjacency_agree() {
        let g = diamond();
        let outs: Vec<_> = g
            .adjacent(VId(0), L, L, Direction::Out)
            .map(|a| a.nbr)
            .collect();
        assert_eq!(outs, vec![VId(1), VId(2)]);
        let ins: Vec<_> = g
            .adjacent(VId(3), L, L, Direction::In)
            .map(|a| a.nbr)
            .collect();
        assert_eq!(ins, vec![VId(1), VId(2)]);
        assert_eq!(g.degree(VId(0), L, L, Direction::Both), 2);
        assert_eq!(g.degree(VId(3), L, L, Direction::In), 2);
    }

    #[test]
    fn both_direction_unions() {
        let g = diamond();
        let both: Vec<_> = g
            .adjacent(VId(1), L, L, Direction::Both)
            .map(|a| a.nbr)
            .collect();
        assert_eq!(both, vec![VId(3), VId(0)]);
    }

    #[test]
    fn edge_properties_follow_edge_ids_through_directions() {
        let g = diamond();
        // weight of 1->3 must be 3.0 whether discovered via out(1) or in(3)
        let e_out = g
            .adjacent(VId(1), L, L, Direction::Out)
            .next()
            .unwrap()
            .edge;
        let e_in = g
            .adjacent(VId(3), L, L, Direction::In)
            .find(|a| a.nbr == VId(1))
            .unwrap()
            .edge;
        assert_eq!(e_out, e_in);
        assert_eq!(g.edge_property(L, e_out, PropId(0)), Value::Float(3.0));
    }

    #[test]
    fn predicate_filtered_expansion() {
        let g = diamond();
        let pred = EdgePredicate::pass().and(PropPredicate {
            prop: PropId(0),
            op: CmpOp::Gt,
            value: Value::Float(1.5),
        });
        let filtered: Vec<_> = g
            .adjacent_filtered(VId(0), L, L, Direction::Out, &pred)
            .map(|a| a.nbr)
            .collect();
        assert_eq!(filtered, vec![VId(2)]);
    }

    #[test]
    fn vertices_by_property_default_scan() {
        let mut g = diamond();
        g.set_tag(VId(2), 7);
        let hits = g.vertices_by_property(L, PropId(0), &Value::Int(7));
        assert_eq!(hits, vec![VId(2)]);
        // tag 0 matches the other three vertices
        let zeros = g.vertices_by_property(L, PropId(0), &Value::Int(0));
        assert_eq!(zeros, vec![VId(0), VId(1), VId(3)]);
    }

    #[test]
    fn adjacent_slice_fast_path() {
        let g = diamond();
        let (nbrs, eids) = g.adjacent_slice(VId(0), L, L, Direction::Out).unwrap();
        assert_eq!(nbrs, &[VId(1), VId(2)]);
        assert_eq!(eids.len(), 2);
        assert!(g.adjacent_slice(VId(0), L, L, Direction::Both).is_none());
    }

    #[test]
    fn capabilities_advertised() {
        let g = diamond();
        assert!(g
            .capabilities()
            .supports(Capabilities::ADJ_LIST_ARRAY | Capabilities::IN_ADJACENCY));
        assert!(!g.capabilities().supports(Capabilities::MVCC));
    }

    #[test]
    fn iter_only_mock_withholds_array_traits() {
        let g = MockGraph::new_iter_only(4, &[(0, 1, 1.0), (0, 2, 2.0), (1, 3, 3.0)]);
        assert!(!g.capabilities().supports(Capabilities::ADJ_LIST_ARRAY));
        assert!(!g.capabilities().supports(Capabilities::VERTEX_LIST_ARRAY));
        assert!(g.capabilities().supports(Capabilities::ADJ_LIST_ITER));
        assert!(g.adjacent_slice(VId(0), L, L, Direction::Out).is_none());
        assert!(g.vertex_range(L).is_none());
    }

    type ScanRow = (VId, Vec<VId>, Vec<EId>);

    fn collect_scan(g: &dyn GrinGraph, dir: Direction) -> (bool, Vec<ScanRow>) {
        let mut rows = Vec::new();
        let bulk = g.scan_adjacency(L, L, dir, &mut |v, nbrs, eids| {
            rows.push((v, nbrs.to_vec(), eids.to_vec()));
        });
        (bulk, rows)
    }

    #[test]
    fn scan_adjacency_bulk_and_fallback_agree() {
        let edges = [(0, 1, 1.0), (0, 2, 2.0), (1, 3, 3.0), (2, 3, 4.0)];
        let bulk_graph = MockGraph::new(4, &edges);
        let iter_graph = MockGraph::new_iter_only(4, &edges);
        for dir in [Direction::Out, Direction::In, Direction::Both] {
            let (fast, rows_fast) = collect_scan(&bulk_graph, dir);
            let (slow, rows_slow) = collect_scan(&iter_graph, dir);
            assert_eq!(fast, dir != Direction::Both, "dir {dir:?}");
            assert!(!slow, "iter-only mock must use the fallback");
            assert_eq!(rows_fast, rows_slow, "dir {dir:?}");
        }
    }

    #[test]
    fn scan_adjacency_visits_every_vertex_once() {
        let g = diamond();
        let (_, rows) = collect_scan(&g, Direction::Out);
        let visited: Vec<VId> = rows.iter().map(|(v, _, _)| *v).collect();
        assert_eq!(visited, vec![VId(0), VId(1), VId(2), VId(3)]);
        let total_edges: usize = rows.iter().map(|(_, n, _)| n.len()).sum();
        assert_eq!(total_edges, g.edge_count(L));
    }
}
