/root/repo/target/debug/deps/properties-f074c851c1072d86.d: tests/properties.rs

/root/repo/target/debug/deps/properties-f074c851c1072d86: tests/properties.rs

tests/properties.rs:
