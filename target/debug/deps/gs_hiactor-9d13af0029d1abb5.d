/root/repo/target/debug/deps/gs_hiactor-9d13af0029d1abb5.d: crates/gs-hiactor/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgs_hiactor-9d13af0029d1abb5.rmeta: crates/gs-hiactor/src/lib.rs Cargo.toml

crates/gs-hiactor/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
