/root/repo/target/release/deps/gs_gart-b8decc76fd997da6.d: crates/gs-gart/src/lib.rs

/root/repo/target/release/deps/libgs_gart-b8decc76fd997da6.rlib: crates/gs-gart/src/lib.rs

/root/repo/target/release/deps/libgs_gart-b8decc76fd997da6.rmeta: crates/gs-gart/src/lib.rs

crates/gs-gart/src/lib.rs:
