/root/repo/target/debug/deps/query-aaa54b2d85170a50.d: crates/gs-bench/benches/query.rs Cargo.toml

/root/repo/target/debug/deps/libquery-aaa54b2d85170a50.rmeta: crates/gs-bench/benches/query.rs Cargo.toml

crates/gs-bench/benches/query.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
