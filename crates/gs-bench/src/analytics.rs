//! `gs-bench analytics` — layout × algorithm throughput matrix.
//!
//! Benchmarks the pluggable-topology work end to end on seeded gs-datagen
//! graphs: every [`LayoutKind`] (plain, sorted, compressed CSR) runs the
//! GRAPE traversal core — push-only Pregel BFS vs the direction-optimizing
//! scheduler, Pregel SSSP vs DO-SSSP, PageRank — plus the
//! intersection-bound kernels (triangle counting, where the sorted layout's
//! galloping search earns its keep on power-law hubs). Every combination is
//! cross-checked for result equality before a single timing is reported:
//! a layout or traversal mode that changes results is a failed run, not a
//! fast one.
//!
//! Results go to `BENCH_analytics.json`. With `--deny`, exits non-zero if
//! direction-optimizing BFS is slower than the push-only baseline on the
//! default layout — the regression gate CI runs.

use std::time::Instant;

use gs_datagen::{powerlaw, rmat};
use gs_grape::algorithms::{self, triangle_count};
use gs_grape::traversal::{bfs_with_policy, sssp_with_policy, TraversalPolicy};
use gs_grape::GrapeEngine;
use gs_graph::csr::Csr;
use gs_graph::json::Json;
use gs_graph::layout::{LayoutKind, TopologyLayout};
use gs_graph::VId;

/// Benchmark knobs (deterministic given `seed`).
#[derive(Clone, Copy, Debug)]
pub struct AnalyticsConfig {
    pub seed: u64,
    /// R-MAT scale for the traversal graph (n = 2^scale, m ≈ 16n).
    pub scale: u32,
    /// Preferential-attachment vertex count for the triangle graph.
    pub tri_n: usize,
    /// GRAPE fragment count / kernel thread count.
    pub fragments: usize,
    /// Timed repetitions per measurement (best-of).
    pub runs: usize,
}

impl Default for AnalyticsConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            scale: 13,
            tri_n: 6000,
            fragments: 4,
            runs: 3,
        }
    }
}

/// One layout's measurements over both benchmark graphs.
#[derive(Clone, Debug)]
pub struct LayoutRow {
    pub layout: LayoutKind,
    /// Engine build time (partition + per-fragment layout materialisation).
    pub build_ms: f64,
    /// Heap bytes of the out-topology at this layout (whole graph).
    pub heap_bytes: usize,
    pub bfs_push_ms: f64,
    pub bfs_do_ms: f64,
    /// Supersteps the DO scheduler ran in pull mode.
    pub pull_steps: u64,
    pub sssp_push_ms: f64,
    pub sssp_do_ms: f64,
    pub pagerank_ms: f64,
    pub triangles_ms: f64,
}

/// The full run: per-layout rows plus the cross-layout summary numbers.
#[derive(Clone, Debug)]
pub struct AnalyticsReport {
    pub seed: u64,
    /// Traversal graph size.
    pub n: usize,
    pub m: usize,
    /// Triangle graph size (after symmetrization).
    pub tri_n: usize,
    pub tri_m: usize,
    pub triangles: u64,
    pub rows: Vec<LayoutRow>,
    /// push-only / direction-optimizing BFS time on the default layout.
    pub do_bfs_speedup: f64,
    /// plain-CSR merge / sorted-CSR galloping triangle time.
    pub galloping_speedup: f64,
    /// The CI gate: DO-BFS at least matched the push-only baseline.
    pub do_bfs_ok: bool,
}

fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..runs.max(1) {
        let t = Instant::now();
        let v = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        out = Some(v);
    }
    (best, out.unwrap())
}

/// Runs the matrix. Panics (failing the bench) on any cross-layout or
/// cross-mode result mismatch.
pub fn run(cfg: &AnalyticsConfig) -> AnalyticsReport {
    // traversal graph: Graph500-parameterised R-MAT, heavy-tailed and
    // low-diameter, the regime direction optimization was designed for
    let mut rcfg = rmat::RmatConfig::graph500(cfg.scale);
    rcfg.seed = cfg.seed;
    let el = rmat::generate(&rcfg);
    let n = el.vertex_count();
    let edges = el.edges().to_vec();
    // deterministic positive weights; shared by every SSSP run
    let weights: Vec<f64> = edges
        .iter()
        .map(|&(s, d)| ((s.0 * 31 + d.0 * 7) % 100 + 1) as f64 / 10.0)
        .collect();
    // source: the busiest vertex, so the frontier actually grows
    let csr = Csr::from_edges(n, &edges);
    let src = VId((0..n)
        .max_by_key(|&v| csr.degree(VId(v as u64)))
        .unwrap_or(0) as u64);

    // triangle graph: preferential attachment grows the hub structure that
    // separates merge from galloping intersections
    let mut tri = powerlaw::preferential_attachment(cfg.tri_n, 8, cfg.seed);
    tri.symmetrize();
    tri.dedup_simple();
    let tri_edges = tri.edges().to_vec();

    let mut rows = Vec::new();
    let mut bfs_baseline: Option<Vec<u64>> = None;
    let mut sssp_baseline: Option<Vec<u64>> = None; // f64 bits
    let mut pr_baseline: Option<Vec<f64>> = None;
    let mut triangles = 0u64;
    for layout in LayoutKind::ALL {
        let (build_ms, engine) = best_of(1, || {
            GrapeEngine::from_edges_with_layout(n, &edges, cfg.fragments, layout)
        });
        let wengine = GrapeEngine::from_weighted_edges_with_layout(
            n,
            &edges,
            &weights,
            cfg.fragments,
            layout,
        );

        let (bfs_push_ms, push_depths) = best_of(cfg.runs, || algorithms::bfs(&engine, src));
        let (bfs_do_ms, (do_depths, report)) = best_of(cfg.runs, || {
            bfs_with_policy(&engine, src, TraversalPolicy::Auto)
        });
        assert_eq!(
            do_depths, push_depths,
            "{layout}: DO-BFS diverged from Pregel BFS"
        );
        match &bfs_baseline {
            Some(b) => assert_eq!(&do_depths, b, "{layout}: BFS diverged across layouts"),
            None => bfs_baseline = Some(do_depths),
        }

        let (sssp_push_ms, push_dist) = best_of(cfg.runs, || algorithms::sssp(&wengine, src));
        let (sssp_do_ms, (do_dist, _)) = best_of(cfg.runs, || {
            sssp_with_policy(&wengine, src, TraversalPolicy::Auto)
        });
        let bits: Vec<u64> = do_dist.iter().map(|d| d.to_bits()).collect();
        assert_eq!(
            bits,
            push_dist.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
            "{layout}: DO-SSSP not bit-identical to Pregel SSSP"
        );
        match &sssp_baseline {
            Some(b) => assert_eq!(&bits, b, "{layout}: SSSP diverged across layouts"),
            None => sssp_baseline = Some(bits),
        }

        let (pagerank_ms, pr) = best_of(cfg.runs, || algorithms::pagerank(&engine, 0.85, 10));
        match &pr_baseline {
            Some(b) => assert_eq!(&pr, b, "{layout}: PageRank diverged across layouts"),
            None => pr_baseline = Some(pr),
        }

        let (triangles_ms, tc) = best_of(cfg.runs, || {
            triangle_count(cfg.tri_n, &tri_edges, layout, cfg.fragments)
        });
        if triangles == 0 {
            triangles = tc;
        }
        assert_eq!(
            tc, triangles,
            "{layout}: triangle count diverged across layouts"
        );

        let heap_bytes = TopologyLayout::build(layout, csr.clone()).heap_bytes();
        rows.push(LayoutRow {
            layout,
            build_ms,
            heap_bytes,
            bfs_push_ms,
            bfs_do_ms,
            pull_steps: report.pull_steps,
            sssp_push_ms,
            sssp_do_ms,
            pagerank_ms,
            triangles_ms,
        });
    }

    let default_row = &rows[0];
    let do_bfs_speedup = default_row.bfs_push_ms / default_row.bfs_do_ms;
    let csr_tri = rows
        .iter()
        .find(|r| r.layout == LayoutKind::Csr)
        .unwrap()
        .triangles_ms;
    let sorted_tri = rows
        .iter()
        .find(|r| r.layout == LayoutKind::SortedCsr)
        .unwrap()
        .triangles_ms;
    AnalyticsReport {
        seed: cfg.seed,
        n,
        m: edges.len(),
        tri_n: cfg.tri_n,
        tri_m: tri_edges.len(),
        triangles,
        do_bfs_speedup,
        galloping_speedup: csr_tri / sorted_tri,
        do_bfs_ok: default_row.bfs_do_ms <= default_row.bfs_push_ms,
        rows,
    }
}

impl AnalyticsReport {
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("bench", Json::str("analytics")),
            ("seed", Json::Int(self.seed as i64)),
            (
                "traversal_graph",
                Json::obj([
                    ("vertices", Json::Int(self.n as i64)),
                    ("edges", Json::Int(self.m as i64)),
                ]),
            ),
            (
                "triangle_graph",
                Json::obj([
                    ("vertices", Json::Int(self.tri_n as i64)),
                    ("edges", Json::Int(self.tri_m as i64)),
                    ("triangles", Json::Int(self.triangles as i64)),
                ]),
            ),
            (
                "layouts",
                Json::arr(self.rows.iter().map(|r| {
                    Json::obj([
                        ("layout", Json::str(r.layout.name())),
                        ("build_ms", Json::Float(r.build_ms)),
                        ("topology_heap_bytes", Json::Int(r.heap_bytes as i64)),
                        ("bfs_push_ms", Json::Float(r.bfs_push_ms)),
                        ("bfs_do_ms", Json::Float(r.bfs_do_ms)),
                        ("bfs_do_pull_steps", Json::Int(r.pull_steps as i64)),
                        ("sssp_push_ms", Json::Float(r.sssp_push_ms)),
                        ("sssp_do_ms", Json::Float(r.sssp_do_ms)),
                        ("pagerank_ms", Json::Float(r.pagerank_ms)),
                        ("triangles_ms", Json::Float(r.triangles_ms)),
                    ])
                })),
            ),
            ("do_bfs_speedup", Json::Float(self.do_bfs_speedup)),
            ("galloping_speedup", Json::Float(self.galloping_speedup)),
            ("do_bfs_ok", Json::Bool(self.do_bfs_ok)),
        ])
    }
}

/// CLI entry (`gs-bench analytics`): runs, writes the report, prints the
/// table, and enforces the `--deny` gate. Returns the process exit code.
pub fn run_cli(deny: bool, seed: u64, out_path: &str) -> i32 {
    let cfg = AnalyticsConfig {
        seed,
        ..Default::default()
    };
    let report = run(&cfg);
    std::fs::write(out_path, report.to_json().render()).expect("write BENCH_analytics.json");

    let mut table = crate::util::TablePrinter::new(&[
        "layout",
        "build ms",
        "topo MiB",
        "bfs push",
        "bfs DO",
        "pull",
        "sssp push",
        "sssp DO",
        "pagerank",
        "triangles",
    ]);
    for r in &report.rows {
        table.row(vec![
            r.layout.to_string(),
            format!("{:.1}", r.build_ms),
            format!("{:.2}", r.heap_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.2}", r.bfs_push_ms),
            format!("{:.2}", r.bfs_do_ms),
            r.pull_steps.to_string(),
            format!("{:.2}", r.sssp_push_ms),
            format!("{:.2}", r.sssp_do_ms),
            format!("{:.2}", r.pagerank_ms),
            format!("{:.2}", r.triangles_ms),
        ]);
    }
    table.print();
    println!(
        "direction-optimizing BFS speedup (vs push-only, {} layout): {:.2}x",
        report.rows[0].layout, report.do_bfs_speedup
    );
    println!(
        "galloping triangle speedup (sorted_csr vs csr): {:.2}x",
        report.galloping_speedup
    );
    if deny && !report.do_bfs_ok {
        eprintln!("DENY: direction-optimizing BFS slower than the push-only baseline");
        return 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_is_consistent_and_serializes() {
        let cfg = AnalyticsConfig {
            seed: 7,
            scale: 8,
            tri_n: 400,
            fragments: 2,
            runs: 1,
        };
        let report = run(&cfg);
        assert_eq!(report.rows.len(), LayoutKind::ALL.len());
        assert!(report.triangles > 0);
        // compressed topology must actually be smaller than plain CSR
        let plain = report.rows[0].heap_bytes;
        let compressed = report
            .rows
            .iter()
            .find(|r| r.layout == LayoutKind::CompressedCsr)
            .unwrap()
            .heap_bytes;
        assert!(compressed < plain, "{compressed} !< {plain}");
        let json = report.to_json().render();
        let doc = Json::parse(&json).unwrap();
        assert_eq!(doc.field("bench").unwrap().as_str(), Some("analytics"));
        assert_eq!(
            doc.field("layouts").unwrap().as_arr().unwrap().len(),
            LayoutKind::ALL.len()
        );
    }
}
