/root/repo/target/debug/deps/engine_edge_cases-5e5ace9698bca232.d: tests/engine_edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libengine_edge_cases-5e5ace9698bca232.rmeta: tests/engine_edge_cases.rs Cargo.toml

tests/engine_edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
