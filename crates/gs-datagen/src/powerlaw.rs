//! Power-law and webgraph-like generators.
//!
//! Three families matching Table 1's dataset shapes:
//!
//! * [`preferential_attachment`] — Barabási–Albert-style social graphs for
//!   the FB0/FB1/CF/TW analogues (dense, heavy-tailed, low locality),
//! * [`zipf_sparse`] — very sparse graphs with Zipf-distributed out-degrees
//!   for the ZF analogue (|V| ≈ |E|/2.4, many degree-0/1 vertices),
//! * [`copying_model`] — a copying/evolving model that produces the high
//!   id-locality adjacency typical of crawled webgraphs (WB/UK/IT/AR),
//!   where neighbours cluster near the source id. Locality matters for the
//!   cache behaviour the Graphalytics experiments measure.

use gs_graph::edgelist::EdgeList;
use gs_graph::VId;
use rand::Rng;
use rand_pcg::Pcg64Mcg;

fn rng_for(seed: u64) -> Pcg64Mcg {
    Pcg64Mcg::new((seed as u128) << 64 | 0xda3e_39cb_94b9_5bdb)
}

/// Barabási–Albert preferential attachment: each new vertex attaches `k`
/// edges to targets sampled proportionally to current degree.
pub fn preferential_attachment(n: usize, k: usize, seed: u64) -> EdgeList {
    assert!(n > k && k >= 1);
    let mut rng = rng_for(seed);
    let mut el = EdgeList::new(n);
    // Repeated-endpoint list gives degree-proportional sampling in O(1).
    let mut endpoints: Vec<u64> = Vec::with_capacity(2 * n * k);
    // seed clique among the first k+1 vertices
    for i in 0..=k as u64 {
        for j in 0..i {
            el.push(VId(i), VId(j));
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    for v in (k as u64 + 1)..n as u64 {
        for _ in 0..k {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            el.push(VId(v), VId(t));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    el
}

/// Sparse Zipf out-degree graph: out-degree of vertex `i` follows a Zipf
/// tail; targets are uniform. Produces the ZF shape: |E| ≈ 2.4 |V|, long
/// thin tail of low-degree vertices.
pub fn zipf_sparse(n: usize, exponent: f64, max_degree: usize, seed: u64) -> EdgeList {
    let mut rng = rng_for(seed ^ 0x2f);
    let mut el = EdgeList::new(n);
    // Inverse-CDF Zipf sampling over 1..=max_degree.
    let norm: f64 = (1..=max_degree).map(|k| (k as f64).powf(-exponent)).sum();
    for v in 0..n as u64 {
        let u: f64 = rng.gen::<f64>() * norm;
        let mut acc = 0.0;
        let mut deg = 1;
        for k in 1..=max_degree {
            acc += (k as f64).powf(-exponent);
            if u <= acc {
                deg = k;
                break;
            }
        }
        for _ in 0..deg {
            let t = rng.gen_range(0..n as u64);
            el.push(VId(v), VId(t));
        }
    }
    el
}

/// Copying/evolving model with id-locality: with probability `locality` a
/// new edge copies a neighbour of a nearby vertex (producing tight id
/// ranges, like crawl order in webgraphs); otherwise it links uniformly.
pub fn copying_model(n: usize, k: usize, locality: f64, seed: u64) -> EdgeList {
    assert!((0.0..=1.0).contains(&locality));
    let mut rng = rng_for(seed ^ 0x77eb);
    let mut el = EdgeList::new(n);
    let mut adj: Vec<Vec<u64>> = vec![Vec::new(); n];
    for v in 1..n as u64 {
        for _ in 0..k {
            let t = if rng.gen::<f64>() < locality && v > 4 {
                // copy a neighbour of a vertex in the recent window
                let w = v - 1 - rng.gen_range(0..(v.min(64) - 1).max(1));
                let nb = &adj[w as usize];
                if nb.is_empty() {
                    w
                } else {
                    nb[rng.gen_range(0..nb.len())]
                }
            } else {
                rng.gen_range(0..v)
            };
            el.push(VId(v), VId(t));
            adj[v as usize].push(t);
        }
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pa_counts() {
        let el = preferential_attachment(1000, 4, 7);
        assert_eq!(el.vertex_count(), 1000);
        // clique edges + k per remaining vertex
        assert_eq!(el.edge_count(), 4 * 5 / 2 + (1000 - 5) * 4);
    }

    #[test]
    fn pa_is_heavy_tailed() {
        let el = preferential_attachment(5000, 4, 11);
        let mut el2 = el.clone();
        el2.symmetrize();
        let g = el2.to_csr();
        let max_deg = (0..g.vertex_count())
            .map(|v| g.degree(VId(v as u64)))
            .max()
            .unwrap();
        let avg = g.edge_count() / g.vertex_count();
        assert!(max_deg > 10 * avg, "max {max_deg} vs avg {avg}");
    }

    #[test]
    fn zipf_sparse_ratio() {
        let el = zipf_sparse(10_000, 2.0, 100, 3);
        let ratio = el.edge_count() as f64 / el.vertex_count() as f64;
        assert!((1.0..4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn copying_model_has_locality() {
        let el = copying_model(10_000, 8, 0.8, 5);
        // measure average |src - dst|: should be much smaller than uniform
        let avg_gap: f64 = el
            .edges()
            .iter()
            .map(|(s, d)| (s.0 as f64 - d.0 as f64).abs())
            .sum::<f64>()
            / el.edge_count() as f64;
        let uniform_expectation = 10_000.0 / 3.0;
        assert!(
            avg_gap < uniform_expectation * 0.8,
            "avg gap {avg_gap} not local"
        );
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            preferential_attachment(500, 3, 42).edges(),
            preferential_attachment(500, 3, 42).edges()
        );
        assert_eq!(
            zipf_sparse(500, 2.0, 50, 42).edges(),
            zipf_sparse(500, 2.0, 50, 42).edges()
        );
        assert_eq!(
            copying_model(500, 3, 0.7, 42).edges(),
            copying_model(500, 3, 0.7, 42).edges()
        );
    }
}
