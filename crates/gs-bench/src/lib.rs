//! # gs-bench — the experiment harness
//!
//! One module per paper table/figure (see DESIGN.md's experiment index);
//! the `figures` binary drives them:
//!
//! ```text
//! cargo run --release -p gs-bench --bin figures -- all
//! cargo run --release -p gs-bench --bin figures -- fig7c [scale]
//! ```
//!
//! Each experiment prints paper-style rows plus the paper's reported
//! shape so EXPERIMENTS.md can record expectation vs measurement.

pub mod analytics;
pub mod chaos;
pub mod costcheck;
pub mod durability;
pub mod experiments;
pub mod irlint;
pub mod lint;
pub mod sanitize;
pub mod storm;
pub mod util;

pub use util::{time_it, Row, TablePrinter};
