//! Experiment registry: one entry per paper table/figure.

pub mod ablations;
pub mod analytics;
pub mod apps;
pub mod learning;
pub mod query;
pub mod storage;

/// An experiment entry point: takes the scale factor.
pub type ExperimentFn = fn(f64);

/// Every experiment, keyed by its paper id.
pub const EXPERIMENTS: &[(&str, ExperimentFn)] = &[
    ("table1", storage::table1),
    ("fig7a", storage::fig7a),
    ("fig7b", storage::fig7b),
    ("fig7c", storage::fig7c),
    ("fig7d", storage::fig7d),
    ("fig7e", query::fig7e),
    ("fig7f", query::fig7f),
    ("fig7g", query::fig7g),
    ("fig7h", analytics::fig7h),
    ("fig7i", analytics::fig7i),
    ("fig7j", analytics::fig7j),
    ("fig7k", analytics::fig7k),
    ("fig7l", learning::fig7l),
    ("fig7m", learning::fig7m),
    ("table2", apps::table2),
    ("exp6", apps::exp6),
    ("exp7", apps::exp7),
    ("exp8", apps::exp8),
    ("ablation-fence", ablations::ablation_fence),
    ("ablation-messages", ablations::ablation_messages),
    ("ablation-index", ablations::ablation_index),
    ("ablation-ingress", ablations::ablation_ingress),
];

/// Runs one experiment by name; `None` if unknown.
pub fn run(name: &str, scale: f64) -> Option<()> {
    let (_, f) = EXPERIMENTS.iter().find(|(n, _)| *n == name)?;
    f(scale);
    Some(())
}
