//! TuGraph-like interactive graph database baseline (Fig. 7f comparator).
//!
//! A conventional single-store graph database profile: B-tree-backed
//! adjacency (ordered maps rather than CSR arrays), string-keyed property
//! maps per element, a global reader-writer lock around the store, and
//! interpreted traversal — each hop re-resolves labels and properties by
//! name. Queries execute single-threaded (no intra-query parallelism),
//! which is the latency profile the SNB Interactive audits show.

use gs_graph::{GraphError, Result, Value};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};

/// Internal vertex key: (label name, external id).
pub type VKey = (String, u64);

/// One adjacency direction: (src key, edge type) → ordered list of
/// (dst key, edge properties).
type AdjIndex = BTreeMap<(VKey, String), Vec<(VKey, HashMap<String, Value>)>>;

#[derive(Default)]
struct Store {
    /// vertex key → properties.
    vertices: BTreeMap<VKey, HashMap<String, Value>>,
    out_edges: AdjIndex,
    /// reverse adjacency.
    in_edges: AdjIndex,
}

/// The baseline database.
pub struct TuGraphDb {
    store: RwLock<Store>,
}

impl Default for TuGraphDb {
    fn default() -> Self {
        Self::new()
    }
}

impl TuGraphDb {
    pub fn new() -> Self {
        Self {
            store: RwLock::new(Store::default()),
        }
    }

    /// Inserts a vertex.
    pub fn add_vertex(&self, label: &str, id: u64, props: HashMap<String, Value>) {
        self.store
            .write()
            .vertices
            .insert((label.to_string(), id), props);
    }

    /// Inserts an edge (updates both adjacency directions).
    pub fn add_edge(
        &self,
        etype: &str,
        src: VKey,
        dst: VKey,
        props: HashMap<String, Value>,
    ) -> Result<()> {
        let mut g = self.store.write();
        if !g.vertices.contains_key(&src) || !g.vertices.contains_key(&dst) {
            return Err(GraphError::NotFound("edge endpoint".into()));
        }
        g.out_edges
            .entry((src.clone(), etype.to_string()))
            .or_default()
            .push((dst.clone(), props.clone()));
        g.in_edges
            .entry((dst, etype.to_string()))
            .or_default()
            .push((src, props));
        Ok(())
    }

    /// Point lookup.
    pub fn vertex_prop(&self, key: &VKey, prop: &str) -> Option<Value> {
        self.store.read().vertices.get(key)?.get(prop).cloned()
    }

    /// Whether a vertex exists.
    pub fn has_vertex(&self, key: &VKey) -> bool {
        self.store.read().vertices.contains_key(key)
    }

    /// Out-neighbours with edge properties (whole list cloned — the
    /// interpreted access path).
    pub fn out_neighbors(&self, key: &VKey, etype: &str) -> Vec<(VKey, HashMap<String, Value>)> {
        self.store
            .read()
            .out_edges
            .get(&(key.clone(), etype.to_string()))
            .cloned()
            .unwrap_or_default()
    }

    /// In-neighbours with edge properties.
    pub fn in_neighbors(&self, key: &VKey, etype: &str) -> Vec<(VKey, HashMap<String, Value>)> {
        self.store
            .read()
            .in_edges
            .get(&(key.clone(), etype.to_string()))
            .cloned()
            .unwrap_or_default()
    }

    /// Full scan of one label with a filter.
    pub fn scan_vertices(
        &self,
        label: &str,
        mut f: impl FnMut(u64, &HashMap<String, Value>) -> bool,
    ) -> Vec<u64> {
        let g = self.store.read();
        let mut out = Vec::new();
        for ((l, id), props) in g.vertices.range((label.to_string(), 0)..) {
            if l != label {
                break;
            }
            if f(*id, props) {
                out.push(*id);
            }
        }
        out
    }

    /// Vertex count for a label.
    pub fn vertex_count(&self, label: &str) -> usize {
        self.scan_vertices(label, |_, _| true).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(l: &str, id: u64) -> VKey {
        (l.to_string(), id)
    }

    #[test]
    fn crud_round_trip() {
        let db = TuGraphDb::new();
        db.add_vertex(
            "Person",
            1,
            HashMap::from([("name".to_string(), Value::Str("ann".into()))]),
        );
        db.add_vertex("Person", 2, HashMap::new());
        db.add_edge(
            "KNOWS",
            key("Person", 1),
            key("Person", 2),
            HashMap::from([("since".to_string(), Value::Int(2020))]),
        )
        .unwrap();
        assert_eq!(
            db.vertex_prop(&key("Person", 1), "name"),
            Some(Value::Str("ann".into()))
        );
        let out = db.out_neighbors(&key("Person", 1), "KNOWS");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, key("Person", 2));
        assert_eq!(out[0].1["since"], Value::Int(2020));
        let inn = db.in_neighbors(&key("Person", 2), "KNOWS");
        assert_eq!(inn[0].0, key("Person", 1));
    }

    #[test]
    fn dangling_edge_rejected() {
        let db = TuGraphDb::new();
        db.add_vertex("Person", 1, HashMap::new());
        assert!(db
            .add_edge("KNOWS", key("Person", 1), key("Person", 9), HashMap::new())
            .is_err());
    }

    #[test]
    fn scan_filters_by_label_range() {
        let db = TuGraphDb::new();
        for i in 0..5 {
            db.add_vertex("A", i, HashMap::new());
            db.add_vertex("B", i, HashMap::new());
        }
        assert_eq!(db.vertex_count("A"), 5);
        let odd = db.scan_vertices("A", |id, _| id % 2 == 1);
        assert_eq!(odd, vec![1, 3]);
    }
}
