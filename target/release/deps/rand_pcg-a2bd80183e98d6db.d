/root/repo/target/release/deps/rand_pcg-a2bd80183e98d6db.d: vendor/rand_pcg/src/lib.rs

/root/repo/target/release/deps/librand_pcg-a2bd80183e98d6db.rlib: vendor/rand_pcg/src/lib.rs

/root/repo/target/release/deps/librand_pcg-a2bd80183e98d6db.rmeta: vendor/rand_pcg/src/lib.rs

vendor/rand_pcg/src/lib.rs:
