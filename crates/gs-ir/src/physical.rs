//! The physical stage: a concrete, ordered execution plan.
//!
//! Physical plans are linear operator chains over records. The naive
//! lowering here ([`lower_naive`]) preserves the logical op order and uses
//! *unfused* `ExpandEdge` + `GetVertex` pairs with *unpushed* predicates —
//! it is the "without optimization" baseline of Fig. 7(e). The optimizer in
//! `gs-optimizer` produces better plans via RBO/CBO; both lowerings share
//! [`compile_pattern`].

use crate::expr::Expr;
use crate::logical::{LogicalOp, LogicalPlan, ProjectItem};
use crate::pattern::Pattern;
use crate::record::{ColumnKind, Layout};
use gs_graph::{GraphError, LabelId, PropId, Result, Value};
use gs_grin::Direction;

/// What an expand produces.
#[derive(Clone, Debug, PartialEq)]
pub enum ExpandOut {
    /// Append the matched edge as a column.
    Edge,
    /// Append the far-endpoint vertex (fused EXPAND_EDGE+GET_VERTEX).
    VertexFused { label: LabelId },
}

/// Physical operators.
#[derive(Clone, Debug, PartialEq)]
pub enum PhysicalOp {
    /// Source: emit one record per vertex of `label` (cross-producted with
    /// any incoming records). `index_lookup` uses a property index instead
    /// of a full scan when the store supports it.
    Scan {
        label: LabelId,
        predicate: Option<Expr>,
        index_lookup: Option<(PropId, Value)>,
    },
    /// Flat-map: expand adjacency of the vertex at `src_col`.
    Expand {
        src_col: usize,
        src_label: LabelId,
        elabel: LabelId,
        dir: Direction,
        /// Predicate over the produced column (col 0 = produced value, in a
        /// temporary 1-column view).
        predicate: Option<Expr>,
        out: ExpandOut,
    },
    /// Map: endpoint of the edge at `edge_col` (the end away from the
    /// expansion source, as recorded in the edge value).
    GetVertex {
        edge_col: usize,
        label: LabelId,
        predicate: Option<Expr>,
        /// Which endpoint: true = edge destination, false = edge source.
        take_dst: bool,
    },
    /// Closes a pattern cycle: keep records where an `elabel` edge connects
    /// `src_col` to the already-bound `dst_col` (in `dir` from src).
    ExpandIntersect {
        src_col: usize,
        elabel: LabelId,
        dir: Direction,
        dst_col: usize,
        /// Optionally bind the connecting edge as a new column.
        bind_edge: bool,
        predicate: Option<Expr>,
    },
    /// Relational filter.
    Select {
        predicate: Expr,
    },
    /// Projection / grouped aggregation.
    Project {
        items: Vec<(ProjectItem, String)>,
    },
    Order {
        keys: Vec<(Expr, bool)>,
        limit: Option<usize>,
    },
    Dedup {
        columns: Vec<usize>,
    },
    Limit {
        n: usize,
    },
}

impl PhysicalOp {
    /// Rewrites every column reference through `map` (for post-fusion column
    /// compaction). Returns `None` if any reference is unmapped.
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> Option<usize>) -> Option<PhysicalOp> {
        Some(match self {
            PhysicalOp::Scan {
                label,
                predicate,
                index_lookup,
            } => PhysicalOp::Scan {
                label: *label,
                predicate: predicate.clone(),
                index_lookup: index_lookup.clone(),
            },
            PhysicalOp::Expand {
                src_col,
                src_label,
                elabel,
                dir,
                predicate,
                out,
            } => PhysicalOp::Expand {
                src_col: map(*src_col)?,
                src_label: *src_label,
                elabel: *elabel,
                dir: *dir,
                predicate: predicate.clone(),
                out: out.clone(),
            },
            PhysicalOp::GetVertex {
                edge_col,
                label,
                predicate,
                take_dst,
            } => PhysicalOp::GetVertex {
                edge_col: map(*edge_col)?,
                label: *label,
                predicate: predicate.clone(),
                take_dst: *take_dst,
            },
            PhysicalOp::ExpandIntersect {
                src_col,
                elabel,
                dir,
                dst_col,
                bind_edge,
                predicate,
            } => PhysicalOp::ExpandIntersect {
                src_col: map(*src_col)?,
                elabel: *elabel,
                dir: *dir,
                dst_col: map(*dst_col)?,
                bind_edge: *bind_edge,
                predicate: predicate.clone(),
            },
            PhysicalOp::Select { predicate } => PhysicalOp::Select {
                predicate: predicate.remap_columns(map)?,
            },
            PhysicalOp::Project { items } => PhysicalOp::Project {
                items: items
                    .iter()
                    .map(|(it, name)| {
                        let it = match it {
                            ProjectItem::Expr(e) => ProjectItem::Expr(e.remap_columns(map)?),
                            ProjectItem::Agg(f, e) => {
                                ProjectItem::Agg(f.clone(), e.remap_columns(map)?)
                            }
                        };
                        Some((it, name.clone()))
                    })
                    .collect::<Option<Vec<_>>>()?,
            },
            PhysicalOp::Order { keys, limit } => PhysicalOp::Order {
                keys: keys
                    .iter()
                    .map(|(e, asc)| Some((e.remap_columns(map)?, *asc)))
                    .collect::<Option<Vec<_>>>()?,
                limit: *limit,
            },
            PhysicalOp::Dedup { columns } => PhysicalOp::Dedup {
                columns: columns
                    .iter()
                    .map(|c| map(*c))
                    .collect::<Option<Vec<_>>>()?,
            },
            PhysicalOp::Limit { n } => PhysicalOp::Limit { n: *n },
        })
    }

    /// Index of the column this op *appends*, if any (relative to its input
    /// width).
    pub fn appends_column(&self) -> bool {
        matches!(
            self,
            PhysicalOp::Scan { .. }
                | PhysicalOp::Expand { .. }
                | PhysicalOp::GetVertex { .. }
                | PhysicalOp::ExpandIntersect {
                    bind_edge: true,
                    ..
                }
        )
    }

    /// Stable lowercase operator name, used as the `op` telemetry field
    /// on `ir.cost.actual_rows` and in costcheck reports.
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalOp::Scan { .. } => "scan",
            PhysicalOp::Expand { .. } => "expand",
            PhysicalOp::GetVertex { .. } => "get_vertex",
            PhysicalOp::ExpandIntersect { .. } => "expand_intersect",
            PhysicalOp::Select { .. } => "select",
            PhysicalOp::Project { .. } => "project",
            PhysicalOp::Order { .. } => "order",
            PhysicalOp::Dedup { .. } => "dedup",
            PhysicalOp::Limit { .. } => "limit",
        }
    }
}

/// A physical plan with its output layout.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhysicalPlan {
    pub ops: Vec<PhysicalOp>,
    pub layout: Layout,
}

/// Compiles a pattern into physical ops given a vertex visit `order`
/// (indices into `pattern.vertices`; the first element is the anchor).
///
/// * `fused` — use fused vertex expansion instead of `ExpandEdge`+`GetVertex`
///   when the edge is not alias-bound;
/// * `push_predicates` — attach vertex/edge predicates to scans/expands
///   instead of emitting trailing `Select`s.
///
/// Aliases already present in `layout` are reused as bound anchors (the
/// second `MATCH` of a multi-stage query extends existing bindings).
pub fn compile_pattern(
    pattern: &Pattern,
    order: &[usize],
    layout: &mut Layout,
    ops: &mut Vec<PhysicalOp>,
    fused: bool,
    push_predicates: bool,
) -> Result<()> {
    pattern.validate()?;
    if order.len() != pattern.vertices.len() {
        return Err(GraphError::Query("pattern order length mismatch".into()));
    }
    let mut bound: Vec<bool> = pattern
        .vertices
        .iter()
        .map(|v| layout.index_of(&v.alias).is_some())
        .collect();
    let mut edge_done = vec![false; pattern.edges.len()];
    // edges between two already-bound (pre-existing) vertices must still be
    // checked at the end; handle via the same incident-edge closure loop.

    let mut deferred_selects: Vec<Expr> = Vec::new();

    for &vi in order {
        let pv = &pattern.vertices[vi];
        if !bound[vi] {
            // find a done-able connection to an already-bound vertex
            let conn = pattern
                .incident(vi)
                .into_iter()
                .find(|&(ei, _, other)| !edge_done[ei] && bound[other]);
            match conn {
                None => {
                    // anchor: scan
                    let pred = pv.predicate.clone();
                    let col = layout.push(&pv.alias, ColumnKind::Vertex(pv.label))?;
                    if push_predicates {
                        ops.push(PhysicalOp::Scan {
                            label: pv.label,
                            predicate: pred.clone().map(|p| remap_to(p, 0)),
                            index_lookup: pred.as_ref().and_then(extract_eq_lookup),
                        });
                    } else {
                        ops.push(PhysicalOp::Scan {
                            label: pv.label,
                            predicate: None,
                            index_lookup: None,
                        });
                        if let Some(p) = pred {
                            deferred_selects.push(remap_to(p, col));
                        }
                    }
                }
                Some((ei, dir_from_other_view, other)) => {
                    // We expand FROM `other` TO `vi`. `incident(vi)` gave the
                    // direction from vi's perspective; invert it.
                    let pe = &pattern.edges[ei];
                    let dir = match dir_from_other_view {
                        Direction::Out => Direction::In, // edge leaves vi → from other it arrives
                        Direction::In => Direction::Out,
                        Direction::Both => Direction::Both,
                    };
                    let src_col = layout.require(&pattern.vertices[other].alias)?;
                    let src_label = pattern.vertices[other].label;
                    let epred = pe.predicate.clone();
                    let vpred = pv.predicate.clone();
                    let want_edge_alias = pe.alias.is_some();
                    // Fusion is only legal when nothing downstream needs the
                    // edge: no alias binding and no edge predicate.
                    if fused && !want_edge_alias && epred.is_none() {
                        let col = layout.push(&pv.alias, ColumnKind::Vertex(pv.label))?;
                        ops.push(PhysicalOp::Expand {
                            src_col,
                            src_label,
                            elabel: pe.label,
                            dir,
                            predicate: None,
                            out: ExpandOut::VertexFused { label: pv.label },
                        });
                        if let Some(p) = vpred {
                            if push_predicates {
                                // the vertex predicate can run inline on the
                                // fused output column
                                deferred_selects.push(remap_to(p, col));
                            } else {
                                deferred_selects.push(remap_to(p, col));
                            }
                        }
                    } else {
                        let ealias = pe.alias.clone().unwrap_or_else(|| format!("__e{ei}"));
                        let ecol = layout.push(&ealias, ColumnKind::Edge(pe.label))?;
                        ops.push(PhysicalOp::Expand {
                            src_col,
                            src_label,
                            elabel: pe.label,
                            dir,
                            predicate: if push_predicates {
                                epred.clone().map(|p| remap_to(p, 0))
                            } else {
                                None
                            },
                            out: ExpandOut::Edge,
                        });
                        if !push_predicates {
                            if let Some(p) = epred {
                                deferred_selects.push(remap_to(p, ecol));
                            }
                        }
                        let vcol = layout.push(&pv.alias, ColumnKind::Vertex(pv.label))?;
                        ops.push(PhysicalOp::GetVertex {
                            edge_col: ecol,
                            label: pv.label,
                            predicate: if push_predicates {
                                vpred.clone().map(|p| remap_to(p, 0))
                            } else {
                                None
                            },
                            // Edge values are traversal-oriented (from =
                            // expansion origin): the pattern's far endpoint
                            // is always the `to` side, whatever the stored
                            // direction.
                            take_dst: true,
                        });
                        if !push_predicates {
                            if let Some(p) = vpred {
                                deferred_selects.push(remap_to(p, vcol));
                            }
                        }
                    }
                    edge_done[ei] = true;
                }
            }
            bound[vi] = true;
        }
        // close any remaining edges between vi and other bound vertices
        for (ei, dir, other) in pattern.incident(vi) {
            if edge_done[ei] || !bound[other] {
                continue;
            }
            let pe = &pattern.edges[ei];
            let src_col = layout.require(&pattern.vertices[vi].alias)?;
            let dst_col = layout.require(&pattern.vertices[other].alias)?;
            let bind_edge = pe.alias.is_some();
            ops.push(PhysicalOp::ExpandIntersect {
                src_col,
                elabel: pe.label,
                dir,
                dst_col,
                bind_edge,
                predicate: pe.predicate.clone().map(|p| remap_to(p, 0)),
            });
            if bind_edge {
                layout.push(pe.alias.as_ref().unwrap(), ColumnKind::Edge(pe.label))?;
            }
            edge_done[ei] = true;
        }
    }

    for p in deferred_selects {
        ops.push(PhysicalOp::Select { predicate: p });
    }
    if let Some(missing) = edge_done.iter().position(|d| !d) {
        return Err(GraphError::Query(format!(
            "pattern edge {missing} not compiled (disconnected order?)"
        )));
    }
    Ok(())
}

/// Rebinds a single-column predicate (written against column 0) to `col`.
fn remap_to(p: Expr, col: usize) -> Expr {
    p.remap_columns(&|i| if i == 0 { Some(col) } else { None })
        .expect("single-column predicate")
}

/// Extracts `prop == const` from a vertex predicate for index lookups.
fn extract_eq_lookup(p: &Expr) -> Option<(PropId, Value)> {
    if let Expr::Binary {
        op: crate::expr::BinOp::Eq,
        lhs,
        rhs,
    } = p
    {
        if let (Expr::VertexProp { col: 0, prop, .. }, Expr::Const(v)) = (&**lhs, &**rhs) {
            return Some((*prop, v.clone()));
        }
        if let (Expr::Const(v), Expr::VertexProp { col: 0, prop, .. }) = (&**lhs, &**rhs) {
            return Some((*prop, v.clone()));
        }
    }
    None
}

/// Naive lowering: logical ops in order, unfused expansion, no predicate
/// pushdown, patterns compiled in declaration order.
pub fn lower_naive(plan: &LogicalPlan) -> Result<PhysicalPlan> {
    lower_with(plan, false, false, |pattern| {
        (0..pattern.vertices.len()).collect()
    })
}

/// Shared lowering skeleton. `order_fn` picks the pattern visit order
/// (identity for naive, GLogue for CBO).
pub fn lower_with(
    plan: &LogicalPlan,
    fused: bool,
    push_predicates: bool,
    order_fn: impl Fn(&Pattern) -> Vec<usize>,
) -> Result<PhysicalPlan> {
    let mut layout = Layout::new();
    let mut ops = Vec::new();
    for (op_idx, op) in plan.ops.iter().enumerate() {
        match op {
            LogicalOp::ScanVertex {
                alias,
                label,
                predicate,
            } => {
                let col = layout.push(alias, ColumnKind::Vertex(*label))?;
                if push_predicates {
                    ops.push(PhysicalOp::Scan {
                        label: *label,
                        predicate: predicate.clone().map(|p| remap_to(p, 0)),
                        index_lookup: predicate.as_ref().and_then(extract_eq_lookup),
                    });
                } else {
                    ops.push(PhysicalOp::Scan {
                        label: *label,
                        predicate: None,
                        index_lookup: None,
                    });
                    if let Some(p) = predicate.clone() {
                        ops.push(PhysicalOp::Select {
                            predicate: remap_to(p, col),
                        });
                    }
                }
            }
            LogicalOp::ExpandEdge {
                src,
                elabel,
                dir,
                alias,
                predicate,
            } => {
                let src_col = layout.require(src)?;
                let src_label = layout.vertex_label(src)?;
                let ecol = layout.push(alias, ColumnKind::Edge(*elabel))?;
                ops.push(PhysicalOp::Expand {
                    src_col,
                    src_label,
                    elabel: *elabel,
                    dir: *dir,
                    predicate: if push_predicates {
                        predicate.clone().map(|p| remap_to(p, 0))
                    } else {
                        None
                    },
                    out: ExpandOut::Edge,
                });
                if !push_predicates {
                    if let Some(p) = predicate.clone() {
                        ops.push(PhysicalOp::Select {
                            predicate: remap_to(p, ecol),
                        });
                    }
                }
            }
            LogicalOp::GetVertex {
                edge,
                alias,
                predicate,
            } => {
                let edge_col = layout.require(edge)?;
                // the produced vertex label comes from the logical layout
                let after = &plan.layouts[op_idx + 1];
                let label = match after.kind_of(alias) {
                    Some(ColumnKind::Vertex(l)) => *l,
                    _ => {
                        return Err(GraphError::Query(format!(
                            "GetVertex target `{alias}` has no vertex kind"
                        )))
                    }
                };
                let vcol = layout.push(alias, ColumnKind::Vertex(label))?;
                ops.push(PhysicalOp::GetVertex {
                    edge_col,
                    label,
                    predicate: if push_predicates {
                        predicate.clone().map(|p| remap_to(p, 0))
                    } else {
                        None
                    },
                    take_dst: true,
                });
                if !push_predicates {
                    if let Some(p) = predicate.clone() {
                        ops.push(PhysicalOp::Select {
                            predicate: remap_to(p, vcol),
                        });
                    }
                }
            }
            LogicalOp::Match { pattern } => {
                let order = order_fn(pattern);
                compile_pattern(
                    pattern,
                    &order,
                    &mut layout,
                    &mut ops,
                    fused,
                    push_predicates,
                )?;
                // Physical column order depends on the visit order; restore
                // the canonical (declaration-order) layout that downstream
                // expressions were bound against, dropping internal `__e*`
                // columns along the way.
                let canonical = &plan.layouts[op_idx + 1];
                let phys_aliases: Vec<&str> = layout.aliases().collect();
                let canon_aliases: Vec<&str> = canonical.aliases().collect();
                if phys_aliases != canon_aliases {
                    let items: Vec<(ProjectItem, String)> = canonical
                        .aliases()
                        .map(|a| {
                            Ok((
                                ProjectItem::Expr(Expr::Column(layout.require(a)?)),
                                a.to_string(),
                            ))
                        })
                        .collect::<Result<Vec<_>>>()?;
                    ops.push(PhysicalOp::Project { items });
                    layout = canonical.clone();
                }
            }
            LogicalOp::Select { predicate } => {
                ops.push(PhysicalOp::Select {
                    predicate: predicate.clone(),
                });
            }
            LogicalOp::Project { items } => {
                ops.push(PhysicalOp::Project {
                    items: items.clone(),
                });
                // rebuild layout from items
                let mut nl = Layout::new();
                for (it, name) in items {
                    let kind = match it {
                        ProjectItem::Expr(Expr::Column(c)) => layout.kind(*c).clone(),
                        _ => ColumnKind::Scalar,
                    };
                    nl.push(name, kind)?;
                }
                layout = nl;
            }
            LogicalOp::Order { keys, limit } => {
                ops.push(PhysicalOp::Order {
                    keys: keys.clone(),
                    limit: *limit,
                });
            }
            LogicalOp::Dedup { columns } => {
                let cols = columns
                    .iter()
                    .map(|a| layout.require(a))
                    .collect::<Result<Vec<_>>>()?;
                ops.push(PhysicalOp::Dedup { columns: cols });
            }
            LogicalOp::Limit { n } => ops.push(PhysicalOp::Limit { n: *n }),
        }
    }
    Ok(PhysicalPlan { ops, layout })
}
