//! [`SharedCell`]: a labelled wrapper for hot cross-thread state whose
//! accesses are race-checked under `sanitize`.
//!
//! The cell is always internally synchronized (a `parking_lot::RwLock`),
//! so every access is *atomic* — but atomicity is not *ordering*. The
//! sanitizer checks that accesses are ordered by real happens-before
//! edges (tracked locks, channels, barriers), which is what protocols
//! like GRAPE's double-buffered aggregator actually rely on:
//!
//! * [`SharedCell::update`] is a **combining** write (e.g. `+=`) —
//!   unordered with other updates by design, but racy against reads and
//!   exclusive writes;
//! * [`SharedCell::set`] is an **exclusive** write — racy against every
//!   unordered access;
//! * [`SharedCell::read_with`] / [`SharedCell::get`] are reads — racy
//!   against unordered writes of either kind.
//!
//! A violation is reported as `S002` with the cell's site label.

#[cfg(feature = "sanitize")]
use crate::state::{self, CellAccess};

/// Internally synchronized shared state with, under `sanitize`,
/// vector-clock happens-before race checking. See the module docs.
pub struct SharedCell<T> {
    #[cfg(feature = "sanitize")]
    id: usize,
    inner: parking_lot::RwLock<T>,
}

impl<T> SharedCell<T> {
    /// A cell labelled `label` for diagnostics.
    pub fn new(label: &'static str, value: T) -> Self {
        #[cfg(not(feature = "sanitize"))]
        let _ = label;
        Self {
            #[cfg(feature = "sanitize")]
            id: state::register_cell(label),
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Consumes the cell, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    /// Reads through a closure (shared access).
    #[inline]
    pub fn read_with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        #[cfg(feature = "sanitize")]
        state::on_cell_access(self.id, CellAccess::Read);
        f(&self.inner.read())
    }

    /// A combining (commutative) in-place write, e.g. an accumulate.
    /// Concurrent `update`s are allowed; unordered reads or `set`s against
    /// an `update` are races.
    #[inline]
    pub fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        #[cfg(feature = "sanitize")]
        state::on_cell_access(self.id, CellAccess::Update);
        f(&mut self.inner.write())
    }

    /// An exclusive write: replaces the value. Every other unordered
    /// access races with it.
    #[inline]
    pub fn set(&self, value: T) {
        #[cfg(feature = "sanitize")]
        state::on_cell_access(self.id, CellAccess::Set);
        *self.inner.write() = value;
    }
}

impl<T: Copy> SharedCell<T> {
    /// Copies the current value out (a read).
    #[inline]
    pub fn get(&self) -> T {
        self.read_with(|v| *v)
    }
}
