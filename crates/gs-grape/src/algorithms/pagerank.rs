//! Distributed PageRank on GRAPE.
//!
//! Each round: every fragment drains incoming rank shares into `next`,
//! redistributes global dangling mass (an f64 all-reduce), and pushes
//! `rank/out_degree` along out-edges through the aggregated message
//! buffers. Fixed iteration count per Graphalytics.

use crate::engine::{ClusterAborted, CommHandle, GrapeEngine};
use crate::fragment::Fragment;
use crate::messages::OutBuffers;
use crate::recover::{checkpoint, run_recoverable, CheckpointStore, RecoveryConfig};

/// One PageRank iteration over a fragment: push shares, all-reduce the
/// dangling mass, exchange, and recombine. Shared by the plain and the
/// recoverable drivers so a restarted run replays the identical
/// arithmetic of an uninterrupted one.
fn pagerank_step(
    frag: &Fragment,
    comm: &CommHandle,
    n: usize,
    damping: f64,
    rank: &mut [f64],
    recv: &mut [f64],
    out: &mut OutBuffers,
) -> Result<(), ClusterAborted> {
    let inner = frag.inner_count;
    // push shares along out edges
    let mut dangling_local = 0.0;
    for l in 0..inner as u32 {
        let deg = frag.out_degree(l);
        if deg == 0 {
            dangling_local += rank[l as usize];
            continue;
        }
        let share = rank[l as usize] / deg as f64;
        frag.for_each_out(l, |nbr, _| {
            let g = frag.global(nbr.0 as u32);
            out.send(frag.owner(g).index(), g, share);
        });
    }
    let dangling = comm.try_allreduce_f64(dangling_local)?;
    let (blocks, _) = comm.try_exchange(out)?;
    recv.iter_mut().for_each(|x| *x = 0.0);
    for b in &blocks {
        b.for_each::<f64>(|g, share| {
            let l = frag.local(g).expect("routed to owner") as usize;
            recv[l] += share;
        });
    }
    let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
    for l in 0..inner {
        rank[l] = base + damping * recv[l];
    }
    Ok(())
}

/// Runs `iters` PageRank iterations with the given damping factor; returns
/// ranks indexed by global id (summing to ~1). With
/// [`GrapeEngine::with_recovery`] armed, runs under checkpoint/restart.
pub fn pagerank(engine: &GrapeEngine, damping: f64, iters: usize) -> Vec<f64> {
    if let Some(cfg) = engine.recovery.clone() {
        let store = CheckpointStore::new();
        return pagerank_recoverable(engine, damping, iters, &cfg, &store);
    }
    let n = engine.global_n();
    engine.run(|frag, comm| {
        let inner = frag.inner_count;
        let mut rank = vec![1.0 / n as f64; inner];
        let mut recv = vec![0.0f64; inner];
        let mut out = OutBuffers::new(comm.workers);
        for step in 0..iters {
            gs_chaos::worker_kill_point(comm.my_id, step);
            pagerank_step(frag, comm, n, damping, &mut rank, &mut recv, &mut out)
                .expect("pagerank step aborted");
        }
        (0..inner as u32)
            .map(|l| (frag.global(l), rank[l as usize]))
            .collect()
    })
}

/// PageRank under coordinated checkpoint/restart: snapshots the per-
/// fragment ranks every `cfg.interval` iterations into `store`, detects
/// dead workers and lost messages, and restarts all workers from the last
/// committed checkpoint. The replayed arithmetic is identical — the global
/// dangling-mass f64 reduction folds contributions in a canonical order —
/// so a faulted run reproduces the uninterrupted ranks bit-for-bit.
pub fn pagerank_recoverable(
    engine: &GrapeEngine,
    damping: f64,
    iters: usize,
    cfg: &RecoveryConfig,
    store: &CheckpointStore<Vec<f64>>,
) -> Vec<f64> {
    let n = engine.global_n();
    run_recoverable(engine, cfg, |frag, comm, _attempt| {
        let inner = frag.inner_count;
        let idx = frag.id.index();
        let (start, mut rank) = match store.restore(idx) {
            Some((step, ranks)) => (step + 1, ranks),
            None => (0, vec![1.0 / n as f64; inner]),
        };
        let mut recv = vec![0.0f64; inner];
        let mut out = OutBuffers::new(comm.workers);
        for step in start..iters {
            gs_chaos::worker_kill_point(comm.my_id, step);
            pagerank_step(frag, comm, n, damping, &mut rank, &mut recv, &mut out)?;
            // gate on globally agreed values only: every worker makes the
            // identical collective sequence
            if cfg.interval > 0 && (step + 1) % cfg.interval == 0 && step + 1 < iters {
                checkpoint(comm, store, idx, step, rank.clone())?;
            }
        }
        Ok((0..inner as u32)
            .map(|l| (frag.global(l), rank[l as usize]))
            .collect())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::reference;
    use gs_graph::VId;

    fn diamond_edges() -> Vec<(VId, VId)> {
        vec![
            (VId(0), VId(1)),
            (VId(0), VId(2)),
            (VId(1), VId(3)),
            (VId(2), VId(3)),
            (VId(3), VId(0)),
        ]
    }

    #[test]
    fn matches_reference_on_diamond() {
        let edges = diamond_edges();
        for k in [1, 2, 4] {
            let engine = GrapeEngine::from_edges(4, &edges, k);
            let got = pagerank(&engine, 0.85, 30);
            let want = reference::pagerank(4, &edges, 0.85, 30);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-12, "k={k}: {got:?} vs {want:?}");
            }
        }
    }

    #[test]
    fn handles_dangling_vertices() {
        // vertex 2 has no out-edges
        let edges = vec![(VId(0), VId(1)), (VId(1), VId(2))];
        let engine = GrapeEngine::from_edges(3, &edges, 2);
        let got = pagerank(&engine, 0.85, 40);
        let want = reference::pagerank(3, &edges, 0.85, 40);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12);
        }
        let total: f64 = got.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass conserved: {total}");
    }

    #[test]
    fn matches_reference_on_random_graph() {
        use rand::Rng;
        let mut rng = rand_pcg::Pcg64Mcg::new(31);
        let n = 300;
        let edges: Vec<(VId, VId)> = (0..1500)
            .map(|_| (VId(rng.gen_range(0..n)), VId(rng.gen_range(0..n))))
            .collect();
        let engine = GrapeEngine::from_edges(n as usize, &edges, 4);
        let got = pagerank(&engine, 0.85, 20);
        let want = reference::pagerank(n as usize, &edges, 0.85, 20);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-10);
        }
    }
}
