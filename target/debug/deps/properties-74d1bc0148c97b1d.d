/root/repo/target/debug/deps/properties-74d1bc0148c97b1d.d: tests/properties.rs

/root/repo/target/debug/deps/properties-74d1bc0148c97b1d: tests/properties.rs

tests/properties.rs:
