/root/repo/target/debug/deps/graphscope_flex-12ce244b236c48eb.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgraphscope_flex-12ce244b236c48eb.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
