//! Static plan verification and linting (`gs-irlint`).
//!
//! GraphIR is the seam between frontends (`gs-lang`), the optimizer
//! (`gs-optimizer`) and the execution engines — which makes it the place
//! where a malformed plan can silently cross a layer boundary and only
//! blow up (or return wrong rows) deep inside an engine. This module is a
//! schema-aware static analysis over [`LogicalPlan`] and [`PhysicalPlan`]:
//!
//! * **type checks** — every operator is checked against the
//!   [`GraphSchema`] and the flowing [`Layout`]: aliases resolve, column
//!   kinds match what each op consumes/produces, expressions are
//!   well-typed against vertex/edge property types, expand directions
//!   respect edge-label endpoint constraints;
//! * **dataflow invariants** — layout widths line up across op
//!   boundaries, column references stay in range, projection outputs stay
//!   dense and alias-unique;
//! * **lints** — plan smells reported as warnings: unbounded scans,
//!   order-without-limit, cross-product scans, dedup-after-order,
//!   constant predicates.
//!
//! Every check emits a [`Diagnostic`] with a stable code (`E0xx` errors,
//! `W1xx` warnings); [`VerifyLevel`] decides what happens on submit
//! (`Off`/`Warn`/`Deny`). Verification runs at every stack boundary: both
//! frontends verify after lowering, the optimizer verifies after each RBO
//! rule (attributing failures to the rule), engines verify on submit, and
//! `flexbuild` folds rejections into its structured build errors.

use crate::expr::{BinOp, Expr};
use crate::logical::{LogicalOp, LogicalPlan, ProjectItem};
use crate::pattern::Pattern;
use crate::physical::{ExpandOut, PhysicalOp, PhysicalPlan};
use crate::record::{ColumnKind, Layout};
use gs_graph::schema::GraphSchema;
use gs_graph::{GraphError, LabelId, Result, ValueType};
use gs_grin::Direction;
use std::fmt;

// ---------------------------------------------------------------------
// Diagnostic codes
// ---------------------------------------------------------------------

/// A label id that is not defined in the schema.
pub const E_UNKNOWN_LABEL: &str = "E001";
/// An alias referenced by an op is not bound in the incoming layout.
pub const E_UNKNOWN_ALIAS: &str = "E002";
/// A column holds the wrong [`ColumnKind`] for the operation.
pub const E_KIND_MISMATCH: &str = "E003";
/// An expansion direction contradicts the edge label's endpoint labels.
pub const E_ENDPOINT_MISMATCH: &str = "E004";
/// A column index is out of range for the record width at that point.
pub const E_COLUMN_RANGE: &str = "E005";
/// A property access names a property the schema marks absent (or binds
/// the wrong label).
pub const E_UNKNOWN_PROPERTY: &str = "E006";
/// An expression is ill-typed (arithmetic on strings, boolean connectives
/// over non-booleans, non-boolean predicates).
pub const E_TYPE_MISMATCH: &str = "E007";
/// The plan's declared layout disagrees with the layout the ops produce.
pub const E_LAYOUT_MISMATCH: &str = "E008";
/// A `Match` pattern fails structural validation.
pub const E_BAD_PATTERN: &str = "E009";
/// Duplicate alias within one layout stage (projection outputs, bindings).
pub const E_DUPLICATE_ALIAS: &str = "E010";

/// Scan with no predicate, no index lookup, and no downstream
/// cardinality-reducing op.
pub const W_UNBOUNDED_SCAN: &str = "W101";
/// Order with no fused limit, no later `Limit`, over unaggregated input.
pub const W_ORDER_NO_LIMIT: &str = "W102";
/// A scan over a non-empty record stream (cross-product expansion).
pub const W_CROSS_PRODUCT: &str = "W103";
/// Dedup downstream of an order (distinct-then-sort is cheaper).
pub const W_DEDUP_AFTER_ORDER: &str = "W104";
/// A constant predicate (always true or always false).
pub const W_CONST_PREDICATE: &str = "W105";

// ---------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------

/// Diagnostic severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

/// One verifier finding, with a span-style anchor (`op_index`) into the
/// plan and, when raised under the optimizer, the rewrite rule to blame.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Stable code (`E0xx` / `W1xx`).
    pub code: &'static str,
    pub severity: Severity,
    /// Index of the op the finding anchors to (`None` = whole plan).
    pub op_index: Option<usize>,
    /// The rewrite rule that produced the offending plan, if known.
    pub rule: Option<String>,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{}[{sev}]", self.code)?;
        if let Some(i) = self.op_index {
            write!(f, " op#{i}")?;
        }
        if let Some(r) = &self.rule {
            write!(f, " (after {r})")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// What to do with verifier findings at a submit boundary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VerifyLevel {
    /// Skip verification entirely.
    Off,
    /// Verify and record telemetry, but never reject.
    #[default]
    Warn,
    /// Reject plans with error-severity diagnostics (warnings never block).
    Deny,
}

/// The outcome of a verification pass.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VerifyReport {
    pub diagnostics: Vec<Diagnostic>,
}

impl VerifyReport {
    /// No diagnostics at all (errors or warnings).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether a diagnostic with `code` was emitted.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Tags every diagnostic with the rewrite rule that produced the plan.
    pub fn with_rule(mut self, rule: &str) -> Self {
        for d in &mut self.diagnostics {
            d.rule = Some(rule.to_string());
        }
        self
    }

    /// One line per diagnostic.
    pub fn render(&self) -> String {
        self.diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    }

    /// Errors rendered on one line (warnings omitted).
    pub fn render_errors(&self) -> String {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    }

    /// Fails if any error-severity diagnostic was emitted (warnings pass).
    pub fn check(&self, context: &str) -> Result<()> {
        if self.error_count() == 0 {
            return Ok(());
        }
        Err(GraphError::Query(format!(
            "plan verification failed in {context}: {}",
            self.render_errors()
        )))
    }
}

/// Applies a [`VerifyLevel`] to a report at a submit boundary, recording
/// `ir.verify.*` telemetry counters. Only `Deny` + errors rejects.
pub fn enforce(report: &VerifyReport, level: VerifyLevel, context: &str) -> Result<()> {
    if level == VerifyLevel::Off {
        return Ok(());
    }
    gs_telemetry::counter!("ir.verify.plans", at = context; 1);
    gs_telemetry::counter!("ir.verify.errors", at = context; report.error_count() as u64);
    gs_telemetry::counter!("ir.verify.warnings", at = context; report.warning_count() as u64);
    if level == VerifyLevel::Deny && report.error_count() > 0 {
        gs_telemetry::counter!("ir.verify.denied", at = context; 1);
        return report.check(context);
    }
    Ok(())
}

/// Engine-side submit hook: verify a physical plan against the graph's
/// schema under `level`. `Off` skips the pass entirely.
pub fn verify_on_submit(
    plan: &PhysicalPlan,
    schema: &GraphSchema,
    level: VerifyLevel,
    context: &str,
) -> Result<()> {
    if level == VerifyLevel::Off {
        return Ok(());
    }
    enforce(&verify_physical(plan, schema), level, context)
}

// ---------------------------------------------------------------------
// Checker core
// ---------------------------------------------------------------------

struct Checker<'a> {
    schema: &'a GraphSchema,
    diags: Vec<Diagnostic>,
    op_index: Option<usize>,
}

impl<'a> Checker<'a> {
    fn new(schema: &'a GraphSchema) -> Self {
        Self {
            schema,
            diags: Vec::new(),
            op_index: None,
        }
    }

    fn emit(&mut self, code: &'static str, severity: Severity, message: String) {
        self.diags.push(Diagnostic {
            code,
            severity,
            op_index: self.op_index,
            rule: None,
            message,
        });
    }

    fn error(&mut self, code: &'static str, message: String) {
        self.emit(code, Severity::Error, message);
    }

    fn warn(&mut self, code: &'static str, message: String) {
        self.emit(code, Severity::Warning, message);
    }

    fn finish(self) -> VerifyReport {
        VerifyReport {
            diagnostics: self.diags,
        }
    }

    /// Vertex label known to the schema?
    fn check_vlabel(&mut self, l: LabelId) -> bool {
        if self.schema.vertex_label(l).is_err() {
            self.error(E_UNKNOWN_LABEL, format!("unknown vertex label {l:?}"));
            return false;
        }
        true
    }

    /// Edge label known to the schema?
    fn check_elabel(&mut self, l: LabelId) -> bool {
        if self.schema.edge_label(l).is_err() {
            self.error(E_UNKNOWN_LABEL, format!("unknown edge label {l:?}"));
            return false;
        }
        true
    }

    /// Checks `src_label --elabel/dir--> far` against the edge label's
    /// endpoint constraint; `far = None` when the far side is not bound.
    fn check_endpoints(
        &mut self,
        src_label: LabelId,
        elabel: LabelId,
        dir: Direction,
        far: Option<LabelId>,
    ) {
        let Ok(def) = self.schema.edge_label(elabel) else {
            self.error(E_UNKNOWN_LABEL, format!("unknown edge label {elabel:?}"));
            return;
        };
        let (src, dst, name) = (def.src, def.dst, def.name.clone());
        match dir {
            Direction::Out => {
                if src_label != src {
                    self.error(
                        E_ENDPOINT_MISMATCH,
                        format!(
                            "out() over `{name}` from label {src_label:?}, edge starts at {src:?}"
                        ),
                    );
                }
                if let Some(f) = far {
                    if f != dst {
                        self.error(
                            E_ENDPOINT_MISMATCH,
                            format!("out() over `{name}` reaches {dst:?}, plan binds {f:?}"),
                        );
                    }
                }
            }
            Direction::In => {
                if src_label != dst {
                    self.error(
                        E_ENDPOINT_MISMATCH,
                        format!(
                            "in() over `{name}` from label {src_label:?}, edge ends at {dst:?}"
                        ),
                    );
                }
                if let Some(f) = far {
                    if f != src {
                        self.error(
                            E_ENDPOINT_MISMATCH,
                            format!("in() over `{name}` reaches {src:?}, plan binds {f:?}"),
                        );
                    }
                }
            }
            Direction::Both => {
                if src_label != src && src_label != dst {
                    self.error(
                        E_ENDPOINT_MISMATCH,
                        format!("both() over `{name}` from label {src_label:?}, edge connects {src:?}-{dst:?}"),
                    );
                }
                if let Some(f) = far {
                    if src != dst {
                        self.error(
                            E_ENDPOINT_MISMATCH,
                            format!("both() over heterogeneous `{name}` cannot bind one far label"),
                        );
                    } else if f != src {
                        self.error(
                            E_ENDPOINT_MISMATCH,
                            format!("both() over `{name}` reaches {src:?}, plan binds {f:?}"),
                        );
                    }
                }
            }
        }
    }

    /// Static type of an expression over columns of the given kinds.
    /// `None` = statically unknown (scalar columns, nulls).
    fn expr_type(&mut self, e: &Expr, kinds: &[ColumnKind]) -> Option<ValueType> {
        match e {
            Expr::Const(v) => {
                if v.is_null() {
                    None
                } else {
                    Some(v.value_type())
                }
            }
            Expr::Column(i) => match kinds.get(*i) {
                Some(ColumnKind::Vertex(_)) => Some(ValueType::Vertex),
                Some(ColumnKind::Edge(_)) => Some(ValueType::Edge),
                Some(ColumnKind::Scalar) => None,
                None => {
                    self.error(
                        E_COLUMN_RANGE,
                        format!("column {i} out of range (record width {})", kinds.len()),
                    );
                    None
                }
            },
            Expr::VertexProp { col, label, prop } => {
                match kinds.get(*col) {
                    Some(ColumnKind::Vertex(l)) => {
                        if l != label {
                            self.error(
                                E_UNKNOWN_PROPERTY,
                                format!(
                                    "vertex property bound to label {label:?} but column {col} holds {l:?}"
                                ),
                            );
                            return None;
                        }
                    }
                    Some(other) => {
                        self.error(
                            E_KIND_MISMATCH,
                            format!("vertex property access on {other:?} column {col}"),
                        );
                        return None;
                    }
                    None => {
                        self.error(
                            E_COLUMN_RANGE,
                            format!("column {col} out of range (record width {})", kinds.len()),
                        );
                        return None;
                    }
                }
                let Ok(def) = self.schema.vertex_label(*label) else {
                    self.error(E_UNKNOWN_LABEL, format!("unknown vertex label {label:?}"));
                    return None;
                };
                match def.properties.iter().find(|p| p.id == *prop) {
                    Some(p) => Some(p.value_type),
                    None => {
                        self.error(
                            E_UNKNOWN_PROPERTY,
                            format!("vertex label `{}` has no property {prop:?}", def.name),
                        );
                        None
                    }
                }
            }
            Expr::EdgeProp { col, label, prop } => {
                match kinds.get(*col) {
                    Some(ColumnKind::Edge(l)) => {
                        if l != label {
                            self.error(
                                E_UNKNOWN_PROPERTY,
                                format!(
                                    "edge property bound to label {label:?} but column {col} holds {l:?}"
                                ),
                            );
                            return None;
                        }
                    }
                    Some(other) => {
                        self.error(
                            E_KIND_MISMATCH,
                            format!("edge property access on {other:?} column {col}"),
                        );
                        return None;
                    }
                    None => {
                        self.error(
                            E_COLUMN_RANGE,
                            format!("column {col} out of range (record width {})", kinds.len()),
                        );
                        return None;
                    }
                }
                let Ok(def) = self.schema.edge_label(*label) else {
                    self.error(E_UNKNOWN_LABEL, format!("unknown edge label {label:?}"));
                    return None;
                };
                match def.properties.iter().find(|p| p.id == *prop) {
                    Some(p) => Some(p.value_type),
                    None => {
                        self.error(
                            E_UNKNOWN_PROPERTY,
                            format!("edge label `{}` has no property {prop:?}", def.name),
                        );
                        None
                    }
                }
            }
            Expr::VertexId { col, .. } => {
                match kinds.get(*col) {
                    Some(ColumnKind::Vertex(_)) => {}
                    Some(other) => {
                        self.error(E_KIND_MISMATCH, format!("id() on {other:?} column {col}"));
                    }
                    None => {
                        self.error(
                            E_COLUMN_RANGE,
                            format!("column {col} out of range (record width {})", kinds.len()),
                        );
                    }
                }
                Some(ValueType::Int)
            }
            Expr::Binary { op, lhs, rhs } => {
                let lt = self.expr_type(lhs, kinds);
                let rt = self.expr_type(rhs, kinds);
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                        let numeric = |t: ValueType| {
                            matches!(
                                t,
                                ValueType::Int
                                    | ValueType::Float
                                    | ValueType::Date
                                    | ValueType::Bool
                            )
                        };
                        for t in [lt, rt].into_iter().flatten() {
                            if !numeric(t) {
                                self.error(E_TYPE_MISMATCH, format!("arithmetic on {t:?} operand"));
                                return None;
                            }
                        }
                        match (lt, rt) {
                            (Some(ValueType::Float), _) | (_, Some(ValueType::Float)) => {
                                Some(ValueType::Float)
                            }
                            (Some(_), Some(_)) => Some(ValueType::Int),
                            _ => None,
                        }
                    }
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        Some(ValueType::Bool)
                    }
                    BinOp::And | BinOp::Or => {
                        for t in [lt, rt].into_iter().flatten() {
                            if t != ValueType::Bool {
                                self.error(
                                    E_TYPE_MISMATCH,
                                    format!("boolean connective over {t:?} operand"),
                                );
                            }
                        }
                        Some(ValueType::Bool)
                    }
                }
            }
            Expr::Not(inner) => {
                if let Some(t) = self.expr_type(inner, kinds) {
                    if t != ValueType::Bool {
                        self.error(E_TYPE_MISMATCH, format!("NOT over {t:?} operand"));
                    }
                }
                Some(ValueType::Bool)
            }
            Expr::In { expr, .. } => {
                self.expr_type(expr, kinds);
                Some(ValueType::Bool)
            }
        }
    }

    /// Checks a predicate expression: well-typed and boolean-valued.
    fn check_predicate(&mut self, p: &Expr, kinds: &[ColumnKind], what: &str) {
        if matches!(p, Expr::Const(_)) {
            self.warn(W_CONST_PREDICATE, format!("{what} predicate is a constant"));
        }
        if let Some(t) = self.expr_type(p, kinds) {
            if t != ValueType::Bool {
                self.error(
                    E_TYPE_MISMATCH,
                    format!("{what} predicate has type {t:?}, expected bool"),
                );
            }
        }
    }

    /// Structural + schema checks over a `Match` pattern.
    fn check_pattern(&mut self, pattern: &Pattern) {
        if let Err(e) = pattern.validate() {
            self.error(E_BAD_PATTERN, e.to_string());
            return;
        }
        for pv in &pattern.vertices {
            if self.check_vlabel(pv.label) {
                if let Some(p) = &pv.predicate {
                    let kinds = [ColumnKind::Vertex(pv.label)];
                    self.check_predicate(p, &kinds, &format!("pattern vertex `{}`", pv.alias));
                }
            }
        }
        for pe in &pattern.edges {
            if !self.check_elabel(pe.label) {
                continue;
            }
            let def = self.schema.edge_label(pe.label).expect("checked");
            let (src, dst, name) = (def.src, def.dst, def.name.clone());
            let sl = pattern.vertices[pe.src].label;
            let dl = pattern.vertices[pe.dst].label;
            if sl != src || dl != dst {
                self.error(
                    E_ENDPOINT_MISMATCH,
                    format!(
                        "pattern edge `{}` connects {sl:?}->{dl:?}, schema says {src:?}->{dst:?}",
                        pe.alias.as_deref().unwrap_or(&name)
                    ),
                );
            }
            if let Some(p) = &pe.predicate {
                let kinds = [ColumnKind::Edge(pe.label)];
                self.check_predicate(
                    p,
                    &kinds,
                    &format!("pattern edge `{}`", pe.alias.as_deref().unwrap_or(&name)),
                );
            }
        }
    }
}

/// Column kinds of a layout, in column order.
fn layout_kinds(layout: &Layout) -> Vec<ColumnKind> {
    (0..layout.width())
        .map(|i| layout.kind(i).clone())
        .collect()
}

// ---------------------------------------------------------------------
// Logical verification
// ---------------------------------------------------------------------

/// Verifies a logical plan against a schema.
pub fn verify_logical(plan: &LogicalPlan, schema: &GraphSchema) -> VerifyReport {
    let mut c = Checker::new(schema);
    if plan.layouts.len() != plan.ops.len() + 1 {
        c.error(
            E_LAYOUT_MISMATCH,
            format!(
                "plan has {} ops but {} layouts (want ops+1)",
                plan.ops.len(),
                plan.layouts.len()
            ),
        );
        return c.finish();
    }
    for (i, op) in plan.ops.iter().enumerate() {
        c.op_index = Some(i);
        let input = &plan.layouts[i];
        let kinds = layout_kinds(input);
        let expected = logical_output_layout(&mut c, op, input, &kinds, &plan.layouts[i + 1]);
        if let Some(exp) = expected {
            if exp != plan.layouts[i + 1] {
                let want: Vec<&str> = exp.aliases().collect();
                let got: Vec<&str> = plan.layouts[i + 1].aliases().collect();
                c.error(
                    E_LAYOUT_MISMATCH,
                    format!(
                        "layout after op {i} should be [{}], plan declares [{}]",
                        want.join(", "),
                        got.join(", ")
                    ),
                );
            }
        }
    }
    c.op_index = None;
    lint_logical(&mut c, plan);
    c.finish()
}

/// Checks one logical op against its input layout and returns the layout
/// it should produce (`None` when an error prevents computing it).
fn logical_output_layout(
    c: &mut Checker,
    op: &LogicalOp,
    input: &Layout,
    kinds: &[ColumnKind],
    declared: &Layout,
) -> Option<Layout> {
    let extend = |c: &mut Checker, alias: &str, kind: ColumnKind| -> Option<Layout> {
        let mut out = input.clone();
        if out.push(alias, kind).is_err() {
            c.error(
                E_DUPLICATE_ALIAS,
                format!("alias `{alias}` already bound in this stage"),
            );
            return None;
        }
        Some(out)
    };
    match op {
        LogicalOp::ScanVertex {
            alias,
            label,
            predicate,
        } => {
            if !c.check_vlabel(*label) {
                return None;
            }
            if let Some(p) = predicate {
                c.check_predicate(p, &[ColumnKind::Vertex(*label)], "scan");
            }
            if input.width() > 0 {
                c.warn(
                    W_CROSS_PRODUCT,
                    format!(
                        "scan of `{alias}` cross-products with {} bound columns",
                        input.width()
                    ),
                );
            }
            extend(c, alias, ColumnKind::Vertex(*label))
        }
        LogicalOp::ExpandEdge {
            src,
            elabel,
            dir,
            alias,
            predicate,
        } => {
            let Some(col) = input.index_of(src) else {
                c.error(E_UNKNOWN_ALIAS, unknown_alias_message(src, input));
                return None;
            };
            let ColumnKind::Vertex(sl) = input.kind(col) else {
                c.error(
                    E_KIND_MISMATCH,
                    format!(
                        "expand source `{src}` is {:?}, expected vertex",
                        input.kind(col)
                    ),
                );
                return None;
            };
            c.check_endpoints(*sl, *elabel, *dir, None);
            if let Some(p) = predicate {
                c.check_predicate(p, &[ColumnKind::Edge(*elabel)], "expand");
            }
            extend(c, alias, ColumnKind::Edge(*elabel))
        }
        LogicalOp::GetVertex {
            edge,
            alias,
            predicate,
        } => {
            let Some(col) = input.index_of(edge) else {
                c.error(E_UNKNOWN_ALIAS, unknown_alias_message(edge, input));
                return None;
            };
            let ColumnKind::Edge(el) = input.kind(col) else {
                c.error(
                    E_KIND_MISMATCH,
                    format!(
                        "get-vertex input `{edge}` is {:?}, expected edge",
                        input.kind(col)
                    ),
                );
                return None;
            };
            // the produced vertex label is whatever the binder declared;
            // require it to be an endpoint of the edge label
            let Some(ColumnKind::Vertex(vl)) = declared.kind_of(alias).cloned() else {
                c.error(
                    E_LAYOUT_MISMATCH,
                    format!(
                        "get-vertex target `{alias}` has no vertex kind in the declared layout"
                    ),
                );
                return None;
            };
            if let Ok(def) = c.schema.edge_label(*el) {
                if vl != def.src && vl != def.dst {
                    c.error(
                        E_ENDPOINT_MISMATCH,
                        format!(
                            "get-vertex binds `{alias}` to {vl:?}, but `{}` connects {:?}-{:?}",
                            def.name, def.src, def.dst
                        ),
                    );
                }
            } else {
                c.error(E_UNKNOWN_LABEL, format!("unknown edge label {el:?}"));
            }
            if let Some(p) = predicate {
                c.check_predicate(p, &[ColumnKind::Vertex(vl)], "get-vertex");
            }
            extend(c, alias, ColumnKind::Vertex(vl))
        }
        LogicalOp::Match { pattern } => {
            c.check_pattern(pattern);
            // mirror PlanBuilder::match_pattern: unbound vertices in
            // declaration order, then aliased edges
            let mut out = input.clone();
            for pv in &pattern.vertices {
                if out.index_of(&pv.alias).is_none()
                    && out.push(&pv.alias, ColumnKind::Vertex(pv.label)).is_err()
                {
                    c.error(
                        E_DUPLICATE_ALIAS,
                        format!("pattern vertex alias `{}` collides", pv.alias),
                    );
                    return None;
                }
            }
            for pe in &pattern.edges {
                if let Some(a) = &pe.alias {
                    if out.push(a, ColumnKind::Edge(pe.label)).is_err() {
                        c.error(
                            E_DUPLICATE_ALIAS,
                            format!("pattern edge alias `{a}` collides"),
                        );
                        return None;
                    }
                }
            }
            Some(out)
        }
        LogicalOp::Select { predicate } => {
            c.check_predicate(predicate, kinds, "select");
            Some(input.clone())
        }
        LogicalOp::Project { items } => {
            let mut out = Layout::new();
            for (it, name) in items {
                let kind = match it {
                    ProjectItem::Expr(e) => {
                        c.expr_type(e, kinds);
                        match e {
                            Expr::Column(col) => {
                                kinds.get(*col).cloned().unwrap_or(ColumnKind::Scalar)
                            }
                            _ => ColumnKind::Scalar,
                        }
                    }
                    ProjectItem::Agg(_, e) => {
                        c.expr_type(e, kinds);
                        ColumnKind::Scalar
                    }
                };
                if out.push(name, kind).is_err() {
                    c.error(
                        E_DUPLICATE_ALIAS,
                        format!("projection output `{name}` duplicated"),
                    );
                    return None;
                }
            }
            Some(out)
        }
        LogicalOp::Order { keys, .. } => {
            for (e, _) in keys {
                c.expr_type(e, kinds);
            }
            Some(input.clone())
        }
        LogicalOp::Dedup { columns } => {
            for a in columns {
                if input.index_of(a).is_none() {
                    c.error(E_UNKNOWN_ALIAS, unknown_alias_message(a, input));
                }
            }
            Some(input.clone())
        }
        LogicalOp::Limit { .. } => Some(input.clone()),
    }
}

fn unknown_alias_message(alias: &str, layout: &Layout) -> String {
    let avail: Vec<&str> = layout.aliases().collect();
    if avail.is_empty() {
        format!("unknown alias `{alias}` (no aliases bound)")
    } else {
        format!("unknown alias `{alias}` (available: {})", avail.join(", "))
    }
}

/// Plan-smell lints over a logical plan.
fn lint_logical(c: &mut Checker, plan: &LogicalPlan) {
    let reduces = |op: &LogicalOp| -> bool {
        match op {
            LogicalOp::Select { .. } | LogicalOp::Limit { .. } | LogicalOp::Dedup { .. } => true,
            LogicalOp::Order { limit, .. } => limit.is_some(),
            LogicalOp::Project { items } => items
                .iter()
                .any(|(it, _)| matches!(it, ProjectItem::Agg(..))),
            LogicalOp::ScanVertex { predicate, .. } => predicate.is_some(),
            LogicalOp::ExpandEdge { predicate, .. } | LogicalOp::GetVertex { predicate, .. } => {
                predicate.is_some()
            }
            LogicalOp::Match { pattern } => {
                pattern.vertices.iter().any(|v| v.predicate.is_some())
                    || pattern.edges.iter().any(|e| e.predicate.is_some())
            }
        }
    };
    let mut aggregated = false;
    let mut saw_order = false;
    for (i, op) in plan.ops.iter().enumerate() {
        c.op_index = Some(i);
        match op {
            LogicalOp::ScanVertex {
                alias, predicate, ..
            } if predicate.is_none() && !plan.ops[i + 1..].iter().any(reduces) => {
                c.warn(
                    W_UNBOUNDED_SCAN,
                    format!("scan of `{alias}` has no predicate and nothing downstream bounds it"),
                );
            }
            LogicalOp::Project { items }
                if items
                    .iter()
                    .any(|(it, _)| matches!(it, ProjectItem::Agg(..))) =>
            {
                aggregated = true;
            }
            LogicalOp::Order { limit, .. } => {
                saw_order = true;
                let later_limit = plan.ops[i + 1..]
                    .iter()
                    .any(|o| matches!(o, LogicalOp::Limit { .. }));
                if limit.is_none() && !later_limit && !aggregated {
                    c.warn(
                        W_ORDER_NO_LIMIT,
                        "order over unaggregated input with no limit".to_string(),
                    );
                }
            }
            LogicalOp::Dedup { .. } if saw_order => {
                c.warn(
                    W_DEDUP_AFTER_ORDER,
                    "dedup after order; deduplicating first is cheaper".to_string(),
                );
            }
            _ => {}
        }
    }
    c.op_index = None;
}

// ---------------------------------------------------------------------
// Physical verification
// ---------------------------------------------------------------------

/// Verifies a physical plan against a schema, reconstructing the record
/// kinds op by op (mirroring the reference executor's semantics).
pub fn verify_physical(plan: &PhysicalPlan, schema: &GraphSchema) -> VerifyReport {
    let mut c = Checker::new(schema);
    let mut kinds: Vec<ColumnKind> = Vec::new();
    let mut aggregated = false;
    let mut saw_order = false;
    for (i, op) in plan.ops.iter().enumerate() {
        c.op_index = Some(i);
        match op {
            PhysicalOp::Scan {
                label,
                predicate,
                index_lookup,
            } => {
                if c.check_vlabel(*label) {
                    if let Some(p) = predicate {
                        c.check_predicate(p, &[ColumnKind::Vertex(*label)], "scan");
                    }
                    if let Some((prop, _)) = index_lookup {
                        let def = c.schema.vertex_label(*label).expect("checked");
                        if !def.properties.iter().any(|p| p.id == *prop) {
                            let name = def.name.clone();
                            c.error(
                                E_UNKNOWN_PROPERTY,
                                format!("index lookup on `{name}` names absent property {prop:?}"),
                            );
                        }
                    }
                }
                if !kinds.is_empty() {
                    c.warn(
                        W_CROSS_PRODUCT,
                        format!("scan cross-products with {} bound columns", kinds.len()),
                    );
                }
                if predicate.is_none()
                    && index_lookup.is_none()
                    && !plan.ops[i + 1..].iter().any(physical_reduces)
                {
                    c.warn(
                        W_UNBOUNDED_SCAN,
                        "scan has no predicate and nothing downstream bounds it".to_string(),
                    );
                }
                kinds.push(ColumnKind::Vertex(*label));
            }
            PhysicalOp::Expand {
                src_col,
                src_label,
                elabel,
                dir,
                predicate,
                out,
            } => {
                match kinds.get(*src_col) {
                    Some(ColumnKind::Vertex(l)) => {
                        if l != src_label {
                            c.error(
                                E_KIND_MISMATCH,
                                format!(
                                    "expand source col {src_col} holds {l:?}, op expects {src_label:?}"
                                ),
                            );
                        }
                    }
                    Some(other) => c.error(
                        E_KIND_MISMATCH,
                        format!("expand source col {src_col} is {other:?}, expected vertex"),
                    ),
                    None => c.error(
                        E_COLUMN_RANGE,
                        format!(
                            "expand source col {src_col} out of range (width {})",
                            kinds.len()
                        ),
                    ),
                }
                let far = match out {
                    ExpandOut::Edge => None,
                    ExpandOut::VertexFused { label } => Some(*label),
                };
                c.check_endpoints(*src_label, *elabel, *dir, far);
                match out {
                    ExpandOut::Edge => {
                        if let Some(p) = predicate {
                            c.check_predicate(p, &[ColumnKind::Edge(*elabel)], "expand");
                        }
                        kinds.push(ColumnKind::Edge(*elabel));
                    }
                    ExpandOut::VertexFused { label } => {
                        c.check_vlabel(*label);
                        if let Some(p) = predicate {
                            c.check_predicate(p, &[ColumnKind::Vertex(*label)], "fused expand");
                        }
                        kinds.push(ColumnKind::Vertex(*label));
                    }
                }
            }
            PhysicalOp::GetVertex {
                edge_col,
                label,
                predicate,
                ..
            } => {
                match kinds.get(*edge_col) {
                    Some(ColumnKind::Edge(el)) => {
                        if let Ok(def) = c.schema.edge_label(*el) {
                            if *label != def.src && *label != def.dst {
                                c.error(
                                    E_ENDPOINT_MISMATCH,
                                    format!(
                                        "get-vertex binds {label:?}, but `{}` connects {:?}-{:?}",
                                        def.name, def.src, def.dst
                                    ),
                                );
                            }
                        }
                    }
                    Some(other) => c.error(
                        E_KIND_MISMATCH,
                        format!("get-vertex col {edge_col} is {other:?}, expected edge"),
                    ),
                    None => c.error(
                        E_COLUMN_RANGE,
                        format!(
                            "get-vertex col {edge_col} out of range (width {})",
                            kinds.len()
                        ),
                    ),
                }
                if c.check_vlabel(*label) {
                    if let Some(p) = predicate {
                        c.check_predicate(p, &[ColumnKind::Vertex(*label)], "get-vertex");
                    }
                }
                kinds.push(ColumnKind::Vertex(*label));
            }
            PhysicalOp::ExpandIntersect {
                src_col,
                elabel,
                dir,
                dst_col,
                bind_edge,
                predicate,
            } => {
                let end_label = |c: &mut Checker, col: usize, what: &str| -> Option<LabelId> {
                    match kinds.get(col) {
                        Some(ColumnKind::Vertex(l)) => Some(*l),
                        Some(other) => {
                            c.error(
                                E_KIND_MISMATCH,
                                format!("intersect {what} col {col} is {other:?}, expected vertex"),
                            );
                            None
                        }
                        None => {
                            c.error(
                                E_COLUMN_RANGE,
                                format!(
                                    "intersect {what} col {col} out of range (width {})",
                                    kinds.len()
                                ),
                            );
                            None
                        }
                    }
                };
                let sl = end_label(&mut c, *src_col, "source");
                let dl = end_label(&mut c, *dst_col, "target");
                if let Some(sl) = sl {
                    c.check_endpoints(sl, *elabel, *dir, dl);
                } else {
                    c.check_elabel(*elabel);
                }
                if let Some(p) = predicate {
                    c.check_predicate(p, &[ColumnKind::Edge(*elabel)], "intersect");
                }
                if *bind_edge {
                    kinds.push(ColumnKind::Edge(*elabel));
                }
            }
            PhysicalOp::Select { predicate } => {
                c.check_predicate(predicate, &kinds, "select");
            }
            PhysicalOp::Project { items } => {
                let mut names: Vec<&str> = Vec::new();
                let mut out_kinds = Vec::with_capacity(items.len());
                for (it, name) in items {
                    if names.contains(&name.as_str()) {
                        c.error(
                            E_DUPLICATE_ALIAS,
                            format!("projection output `{name}` duplicated"),
                        );
                    }
                    names.push(name);
                    match it {
                        ProjectItem::Expr(e) => {
                            c.expr_type(e, &kinds);
                            out_kinds.push(match e {
                                Expr::Column(col) => {
                                    kinds.get(*col).cloned().unwrap_or(ColumnKind::Scalar)
                                }
                                _ => ColumnKind::Scalar,
                            });
                        }
                        ProjectItem::Agg(_, e) => {
                            c.expr_type(e, &kinds);
                            aggregated = true;
                            out_kinds.push(ColumnKind::Scalar);
                        }
                    }
                }
                kinds = out_kinds;
            }
            PhysicalOp::Order { keys, limit } => {
                for (e, _) in keys {
                    c.expr_type(e, &kinds);
                }
                saw_order = true;
                let later_limit = plan.ops[i + 1..]
                    .iter()
                    .any(|o| matches!(o, PhysicalOp::Limit { .. }));
                if limit.is_none() && !later_limit && !aggregated {
                    c.warn(
                        W_ORDER_NO_LIMIT,
                        "order over unaggregated input with no limit".to_string(),
                    );
                }
            }
            PhysicalOp::Dedup { columns } => {
                for col in columns {
                    if *col >= kinds.len() {
                        c.error(
                            E_COLUMN_RANGE,
                            format!("dedup col {col} out of range (width {})", kinds.len()),
                        );
                    }
                }
                if saw_order {
                    c.warn(
                        W_DEDUP_AFTER_ORDER,
                        "dedup after order; deduplicating first is cheaper".to_string(),
                    );
                }
            }
            PhysicalOp::Limit { .. } => {}
        }
    }
    c.op_index = None;
    // final dataflow invariant: the declared output layout matches the
    // reconstructed kinds (an empty declared layout means "unspecified",
    // the convention hand-built test plans use)
    if plan.layout.width() > 0 {
        let declared = layout_kinds(&plan.layout);
        if declared.len() != kinds.len() {
            c.error(
                E_LAYOUT_MISMATCH,
                format!(
                    "ops produce {} columns, declared layout has {}",
                    kinds.len(),
                    declared.len()
                ),
            );
        } else {
            for (i, (got, want)) in kinds.iter().zip(declared.iter()).enumerate() {
                if got != want {
                    c.error(
                        E_LAYOUT_MISMATCH,
                        format!("output column {i} is {got:?}, declared layout says {want:?}"),
                    );
                }
            }
        }
    }
    c.finish()
}

/// Ops that bound or shrink the record stream (used by the unbounded-scan
/// lint).
fn physical_reduces(op: &PhysicalOp) -> bool {
    match op {
        PhysicalOp::Select { .. }
        | PhysicalOp::Limit { .. }
        | PhysicalOp::Dedup { .. }
        | PhysicalOp::ExpandIntersect { .. } => true,
        PhysicalOp::Order { limit, .. } => limit.is_some(),
        PhysicalOp::Project { items } => items
            .iter()
            .any(|(it, _)| matches!(it, ProjectItem::Agg(..))),
        PhysicalOp::Scan {
            predicate,
            index_lookup,
            ..
        } => predicate.is_some() || index_lookup.is_some(),
        PhysicalOp::Expand { predicate, .. } | PhysicalOp::GetVertex { predicate, .. } => {
            predicate.is_some()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use crate::expr::AggFunc;
    use crate::pattern::{PatternEdge, PatternVertex};
    use crate::physical::lower_naive;
    use gs_graph::{Value, ValueType};

    /// Person --BUY--> Item, Person --KNOWS--> Person.
    fn schema() -> GraphSchema {
        let mut s = GraphSchema::new();
        let person = s.add_vertex_label(
            "Person",
            &[("name", ValueType::Str), ("age", ValueType::Int)],
        );
        let item = s.add_vertex_label("Item", &[("price", ValueType::Float)]);
        s.add_edge_label("BUY", person, item, &[("date", ValueType::Date)]);
        s.add_edge_label("KNOWS", person, person, &[]);
        s
    }

    const PERSON: LabelId = LabelId(0);
    const ITEM: LabelId = LabelId(1);
    const BUY: LabelId = LabelId(0);
    const KNOWS: LabelId = LabelId(1);

    fn scan(label: LabelId) -> PhysicalOp {
        PhysicalOp::Scan {
            label,
            predicate: None,
            index_lookup: None,
        }
    }

    fn phys(ops: Vec<PhysicalOp>) -> PhysicalPlan {
        PhysicalPlan {
            ops,
            layout: Layout::new(),
        }
    }

    #[test]
    fn builder_plan_verifies_clean() {
        let s = schema();
        let b = PlanBuilder::new(&s)
            .scan("a", "Person")
            .unwrap()
            .expand_edge("a", "BUY", Direction::Out, "e")
            .unwrap()
            .get_vertex("e", "i")
            .unwrap();
        let pred = Expr::bin(
            BinOp::Gt,
            b.prop("i", "price").unwrap(),
            Expr::Const(Value::Float(10.0)),
        );
        let plan = b
            .select(pred)
            .project(vec![(
                ProjectItem::Agg(AggFunc::Count, Expr::Column(2)),
                "n",
            )])
            .unwrap()
            .build();
        let rep = verify_logical(&plan, &s);
        assert!(rep.is_clean(), "{}", rep.render());
        let rep = verify_physical(&lower_naive(&plan).unwrap(), &s);
        assert!(rep.is_clean(), "{}", rep.render());
    }

    #[test]
    fn e001_unknown_label() {
        let s = schema();
        let rep = verify_physical(&phys(vec![scan(LabelId(9))]), &s);
        assert!(rep.has_code(E_UNKNOWN_LABEL), "{}", rep.render());
        assert!(rep.error_count() > 0);
    }

    #[test]
    fn e002_unknown_alias() {
        let s = schema();
        let plan = LogicalPlan {
            ops: vec![
                LogicalOp::ScanVertex {
                    alias: "a".into(),
                    label: PERSON,
                    predicate: None,
                },
                LogicalOp::ExpandEdge {
                    src: "ghost".into(),
                    elabel: KNOWS,
                    dir: Direction::Out,
                    alias: "e".into(),
                    predicate: None,
                },
            ],
            layouts: {
                let mut l0 = Layout::new();
                l0.push("a", ColumnKind::Vertex(PERSON)).unwrap();
                let mut l1 = l0.clone();
                l1.push("e", ColumnKind::Edge(KNOWS)).unwrap();
                vec![Layout::new(), l0, l1]
            },
        };
        let rep = verify_logical(&plan, &s);
        assert!(rep.has_code(E_UNKNOWN_ALIAS), "{}", rep.render());
        let msg = rep.render();
        assert!(msg.contains("available: a"), "lists bound aliases: {msg}");
    }

    #[test]
    fn e003_kind_mismatch() {
        let s = schema();
        // Expand whose source column is an edge, and GetVertex on a vertex
        let rep = verify_physical(
            &phys(vec![
                scan(PERSON),
                PhysicalOp::GetVertex {
                    edge_col: 0,
                    label: ITEM,
                    predicate: None,
                    take_dst: true,
                },
            ]),
            &s,
        );
        assert!(rep.has_code(E_KIND_MISMATCH), "{}", rep.render());
    }

    #[test]
    fn e004_endpoint_mismatch() {
        let s = schema();
        // BUY starts at Person; expanding out of an Item violates it
        let rep = verify_physical(
            &phys(vec![
                scan(ITEM),
                PhysicalOp::Expand {
                    src_col: 0,
                    src_label: ITEM,
                    elabel: BUY,
                    dir: Direction::Out,
                    predicate: None,
                    out: ExpandOut::Edge,
                },
            ]),
            &s,
        );
        assert!(rep.has_code(E_ENDPOINT_MISMATCH), "{}", rep.render());
        // fused far label must be the far endpoint
        let rep = verify_physical(
            &phys(vec![
                scan(PERSON),
                PhysicalOp::Expand {
                    src_col: 0,
                    src_label: PERSON,
                    elabel: BUY,
                    dir: Direction::Out,
                    predicate: None,
                    out: ExpandOut::VertexFused { label: PERSON },
                },
            ]),
            &s,
        );
        assert!(rep.has_code(E_ENDPOINT_MISMATCH), "{}", rep.render());
    }

    #[test]
    fn e005_column_out_of_range() {
        let s = schema();
        let rep = verify_physical(
            &phys(vec![
                scan(PERSON),
                PhysicalOp::Select {
                    predicate: Expr::bin(BinOp::Eq, Expr::Column(5), Expr::Const(Value::Int(1))),
                },
            ]),
            &s,
        );
        assert!(rep.has_code(E_COLUMN_RANGE), "{}", rep.render());
        let rep = verify_physical(
            &phys(vec![scan(PERSON), PhysicalOp::Dedup { columns: vec![3] }]),
            &s,
        );
        assert!(rep.has_code(E_COLUMN_RANGE), "{}", rep.render());
    }

    #[test]
    fn e006_unknown_property() {
        let s = schema();
        // Person has props 0 (name) and 1 (age); prop 7 is absent
        let rep = verify_physical(
            &phys(vec![
                scan(PERSON),
                PhysicalOp::Select {
                    predicate: Expr::bin(
                        BinOp::Gt,
                        Expr::VertexProp {
                            col: 0,
                            label: PERSON,
                            prop: gs_graph::PropId(7),
                        },
                        Expr::Const(Value::Int(0)),
                    ),
                },
            ]),
            &s,
        );
        assert!(rep.has_code(E_UNKNOWN_PROPERTY), "{}", rep.render());
    }

    #[test]
    fn e007_type_mismatch() {
        let s = schema();
        // arithmetic over a Str property
        let name_plus_one = Expr::bin(
            BinOp::Add,
            Expr::VertexProp {
                col: 0,
                label: PERSON,
                prop: gs_graph::PropId(0),
            },
            Expr::Const(Value::Int(1)),
        );
        let rep = verify_physical(
            &phys(vec![
                scan(PERSON),
                PhysicalOp::Project {
                    items: vec![(ProjectItem::Expr(name_plus_one), "x".into())],
                },
            ]),
            &s,
        );
        assert!(rep.has_code(E_TYPE_MISMATCH), "{}", rep.render());
        // non-boolean predicate
        let rep = verify_physical(
            &phys(vec![
                scan(PERSON),
                PhysicalOp::Select {
                    predicate: Expr::VertexProp {
                        col: 0,
                        label: PERSON,
                        prop: gs_graph::PropId(1),
                    },
                },
            ]),
            &s,
        );
        assert!(rep.has_code(E_TYPE_MISMATCH), "{}", rep.render());
    }

    #[test]
    fn e008_layout_mismatch() {
        let s = schema();
        // declared layout says Edge, the ops produce a vertex column
        let mut layout = Layout::new();
        layout.push("a", ColumnKind::Edge(BUY)).unwrap();
        let plan = PhysicalPlan {
            ops: vec![scan(PERSON)],
            layout,
        };
        let rep = verify_physical(&plan, &s);
        assert!(rep.has_code(E_LAYOUT_MISMATCH), "{}", rep.render());
        // logical: layouts vector with the wrong arity
        let plan = LogicalPlan {
            ops: vec![],
            layouts: vec![],
        };
        let rep = verify_logical(&plan, &s);
        assert!(rep.has_code(E_LAYOUT_MISMATCH), "{}", rep.render());
    }

    #[test]
    fn e009_bad_pattern() {
        let s = schema();
        let pattern = Pattern {
            vertices: vec![
                PatternVertex {
                    alias: "a".into(),
                    label: PERSON,
                    predicate: None,
                },
                PatternVertex {
                    alias: "b".into(),
                    label: PERSON,
                    predicate: None,
                },
            ],
            edges: vec![PatternEdge {
                alias: None,
                label: KNOWS,
                src: 0,
                dst: 9, // out of range
                predicate: None,
            }],
        };
        let mut l1 = Layout::new();
        l1.push("a", ColumnKind::Vertex(PERSON)).unwrap();
        l1.push("b", ColumnKind::Vertex(PERSON)).unwrap();
        let plan = LogicalPlan {
            ops: vec![LogicalOp::Match { pattern }],
            layouts: vec![Layout::new(), l1],
        };
        let rep = verify_logical(&plan, &s);
        assert!(rep.has_code(E_BAD_PATTERN), "{}", rep.render());
    }

    #[test]
    fn e010_duplicate_alias() {
        let s = schema();
        let rep = verify_physical(
            &phys(vec![
                scan(PERSON),
                PhysicalOp::Project {
                    items: vec![
                        (ProjectItem::Expr(Expr::Column(0)), "x".into()),
                        (ProjectItem::Expr(Expr::Column(0)), "x".into()),
                    ],
                },
            ]),
            &s,
        );
        assert!(rep.has_code(E_DUPLICATE_ALIAS), "{}", rep.render());
    }

    #[test]
    fn w101_unbounded_scan() {
        let s = schema();
        let rep = verify_physical(&phys(vec![scan(PERSON)]), &s);
        assert!(rep.has_code(W_UNBOUNDED_SCAN), "{}", rep.render());
        assert_eq!(rep.error_count(), 0);
        // a downstream limit silences it
        let rep = verify_physical(&phys(vec![scan(PERSON), PhysicalOp::Limit { n: 5 }]), &s);
        assert!(!rep.has_code(W_UNBOUNDED_SCAN), "{}", rep.render());
    }

    #[test]
    fn w102_order_without_limit() {
        let s = schema();
        let order = PhysicalOp::Order {
            keys: vec![(Expr::Column(0), true)],
            limit: None,
        };
        let rep = verify_physical(
            &phys(vec![
                scan(PERSON),
                PhysicalOp::Limit { n: 9 },
                order.clone(),
            ]),
            &s,
        );
        assert!(rep.has_code(W_ORDER_NO_LIMIT), "{}", rep.render());
        // aggregated input is exempt (top-level reports sort small groups)
        let rep = verify_physical(
            &phys(vec![
                scan(PERSON),
                PhysicalOp::Project {
                    items: vec![(
                        ProjectItem::Agg(AggFunc::Count, Expr::Column(0)),
                        "n".into(),
                    )],
                },
                order,
            ]),
            &s,
        );
        assert!(!rep.has_code(W_ORDER_NO_LIMIT), "{}", rep.render());
    }

    #[test]
    fn w103_cross_product() {
        let s = schema();
        let rep = verify_physical(
            &phys(vec![scan(PERSON), scan(ITEM), PhysicalOp::Limit { n: 1 }]),
            &s,
        );
        assert!(rep.has_code(W_CROSS_PRODUCT), "{}", rep.render());
    }

    #[test]
    fn w104_dedup_after_order() {
        let s = schema();
        let rep = verify_physical(
            &phys(vec![
                scan(PERSON),
                PhysicalOp::Order {
                    keys: vec![(Expr::Column(0), true)],
                    limit: Some(10),
                },
                PhysicalOp::Dedup { columns: vec![0] },
            ]),
            &s,
        );
        assert!(rep.has_code(W_DEDUP_AFTER_ORDER), "{}", rep.render());
    }

    #[test]
    fn w105_constant_predicate() {
        let s = schema();
        let rep = verify_physical(
            &phys(vec![
                scan(PERSON),
                PhysicalOp::Select {
                    predicate: Expr::Const(Value::Bool(true)),
                },
            ]),
            &s,
        );
        assert!(rep.has_code(W_CONST_PREDICATE), "{}", rep.render());
    }

    #[test]
    fn enforce_levels() {
        let s = schema();
        let bad = phys(vec![scan(LabelId(9))]);
        let rep = verify_physical(&bad, &s);
        assert!(enforce(&rep, VerifyLevel::Off, "test").is_ok());
        assert!(enforce(&rep, VerifyLevel::Warn, "test").is_ok());
        let err = enforce(&rep, VerifyLevel::Deny, "test").unwrap_err();
        assert!(err.to_string().contains("E001"), "{err}");
        // warnings never block, even under Deny
        let warn_only = verify_physical(&phys(vec![scan(PERSON)]), &s);
        assert_eq!(warn_only.error_count(), 0);
        assert!(enforce(&warn_only, VerifyLevel::Deny, "test").is_ok());
    }

    #[test]
    fn diagnostics_render_with_rule_attribution() {
        let s = schema();
        let rep = verify_physical(&phys(vec![scan(LabelId(9))]), &s).with_rule("SomeRule");
        let msg = rep.render();
        assert!(msg.contains("after SomeRule"), "{msg}");
        assert!(msg.contains("op#0"), "{msg}");
    }
}
