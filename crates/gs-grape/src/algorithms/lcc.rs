//! Local clustering coefficient.
//!
//! LCC needs neighbour-of-neighbour intersection; on edge-cut fragments
//! that requires shipping adjacency lists, which costs O(Σ deg²) traffic.
//! Since LCC is not among the figures the paper reports (PageRank/BFS are),
//! we provide the shared-memory implementation used by the BI workloads:
//! adjacency intersection over the symmetrized topology, parallelised over
//! vertex ranges. The intersection strategy follows the layout: plain CSR
//! merges linearly, [`LayoutKind::SortedCsr`] switches to galloping search
//! when one list dwarfs the other (hub-heavy graphs).

use gs_graph::csr::Csr;
use gs_graph::layout::{LayoutKind, TopologyLayout};
use gs_graph::VId;

/// LCC per vertex over a symmetrized, deduplicated edge list (plain CSR).
pub fn lcc(n: usize, edges: &[(VId, VId)], threads: usize) -> Vec<f64> {
    lcc_with_layout(n, edges, threads, LayoutKind::Csr)
}

/// LCC with an explicit topology layout; results are identical across
/// layouts, only the intersection strategy (and footprint) changes.
pub fn lcc_with_layout(
    n: usize,
    edges: &[(VId, VId)],
    threads: usize,
    layout: LayoutKind,
) -> Vec<f64> {
    let topo = TopologyLayout::build(layout, Csr::from_edges(n, edges));
    let threads = threads.max(1);
    let chunk = n.div_ceil(threads).max(1);
    let mut out = vec![0.0; n];
    crossbeam::thread::scope(|s| {
        for (t, slot) in out.chunks_mut(chunk).enumerate() {
            let topo = &topo;
            s.spawn(move |_| {
                let lo = t * chunk;
                for (i, val) in slot.iter_mut().enumerate() {
                    let v = VId((lo + i) as u64);
                    let d = topo.degree(v);
                    if d < 2 {
                        *val = 0.0;
                        continue;
                    }
                    // count closed pairs: |{(u,w) : u,w ∈ N(v), u→w}|
                    let mut links = 0usize;
                    topo.for_each_adj(v, |u, _| {
                        links += topo.intersection_count(u, v);
                    });
                    *val = links as f64 / (d * (d - 1)) as f64;
                }
            });
        }
    })
    .expect("lcc scope");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_graph::edgelist::EdgeList;

    #[test]
    fn triangle_has_lcc_one() {
        let mut el = EdgeList::new(3);
        el.push(VId(0), VId(1));
        el.push(VId(1), VId(2));
        el.push(VId(0), VId(2));
        el.symmetrize();
        let got = lcc(3, el.edges(), 2);
        assert_eq!(got, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn star_has_lcc_zero() {
        let mut el = EdgeList::new(5);
        for i in 1..5u64 {
            el.push(VId(0), VId(i));
        }
        el.symmetrize();
        let got = lcc(5, el.edges(), 2);
        assert!(got.iter().all(|&x| x == 0.0), "{got:?}");
    }

    #[test]
    fn square_with_diagonal() {
        // 0-1-2-3-0 plus 0-2: LCC(1) = 2*1/(2*1)=1? N(1)={0,2}, edge 0-2
        // exists → 2 ordered pairs closed of 2 → 1.0
        let mut el = EdgeList::new(4);
        for &(a, b) in &[(0u64, 1u64), (1, 2), (2, 3), (3, 0), (0, 2)] {
            el.push(VId(a), VId(b));
        }
        el.symmetrize();
        let got = lcc(4, el.edges(), 1);
        assert_eq!(got[1], 1.0);
        assert_eq!(got[3], 1.0);
        // N(0) = {1,2,3}: closed ordered pairs: (1,2),(2,1),(2,3),(3,2) → 4/6
        assert!((got[0] - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn thread_count_does_not_change_result() {
        use rand::Rng;
        let mut rng = rand_pcg::Pcg64Mcg::new(8);
        let mut el = EdgeList::new(50);
        for _ in 0..300 {
            el.push(VId(rng.gen_range(0..50)), VId(rng.gen_range(0..50)));
        }
        el.symmetrize();
        assert_eq!(lcc(50, el.edges(), 1), lcc(50, el.edges(), 4));
    }

    #[test]
    fn layouts_agree_bitwise() {
        use rand::Rng;
        let mut rng = rand_pcg::Pcg64Mcg::new(77);
        let mut el = EdgeList::new(80);
        for _ in 0..600 {
            el.push(VId(rng.gen_range(0..80)), VId(rng.gen_range(0..80)));
        }
        el.symmetrize();
        el.dedup_simple();
        let base = lcc_with_layout(80, el.edges(), 2, LayoutKind::Csr);
        for layout in [LayoutKind::SortedCsr, LayoutKind::CompressedCsr] {
            let got = lcc_with_layout(80, el.edges(), 2, layout);
            assert_eq!(got, base, "layout {layout}");
        }
    }
}
